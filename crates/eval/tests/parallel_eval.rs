//! Parallel rank accumulation must equal the sequential protocol exactly —
//! same counts, same hits, and a reciprocal-rank sum that is bit-identical
//! at every thread count (the chunk merge order is fixed by the query count,
//! not by `RETIA_NUM_THREADS`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use retia_eval::{
    collect_metrics, collect_paired_metrics, rank_of, rank_of_filtered, FilterSet, Metrics,
};
use retia_tensor::parallel;

/// A synthetic evaluation: `n` queries over `candidates` scores each.
fn synthetic_scores(
    n: usize,
    candidates: usize,
    seed: u64,
) -> (Vec<Vec<f32>>, Vec<usize>, Vec<FilterSet>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    let mut targets = Vec::with_capacity(n);
    let mut filters = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f32> = (0..candidates).map(|_| rng.gen::<f32>()).collect();
        targets.push(rng.gen_range(0..candidates));
        let mut f = FilterSet::new();
        for _ in 0..rng.gen_range(0..5usize) {
            f.insert(rng.gen_range(0..candidates) as u32);
        }
        rows.push(row);
        filters.push(f);
    }
    (rows, targets, filters)
}

#[test]
fn parallel_metrics_equal_sequential_at_every_thread_count() {
    let (rows, targets, filters) = synthetic_scores(500, 400, 42);
    let n = rows.len();

    // The sequential protocol, exactly as a single-threaded evaluator runs it
    // chunk by chunk (merge() adds the same partial sums left to right).
    let mut seq_raw = Metrics::new();
    let mut seq_filtered = Metrics::new();
    for i in 0..n {
        seq_raw.record(rank_of(&rows[i], targets[i]));
        seq_filtered.record(rank_of_filtered(&rows[i], targets[i], &filters[i]));
    }

    for threads in [1usize, 2, 8] {
        parallel::set_num_threads(threads);
        let (raw, filtered) = collect_paired_metrics(n, rows[0].len(), |i| {
            (rank_of(&rows[i], targets[i]), rank_of_filtered(&rows[i], targets[i], &filters[i]))
        });
        let single = collect_metrics(n, rows[0].len(), |i| rank_of(&rows[i], targets[i]));
        parallel::set_num_threads(0);

        assert_eq!(raw.count(), seq_raw.count(), "threads={threads}");
        assert_eq!(filtered.count(), seq_filtered.count());
        assert_eq!(raw.hits1(), seq_raw.hits1());
        assert_eq!(raw.hits3(), seq_raw.hits3());
        assert_eq!(raw.hits10(), seq_raw.hits10());
        assert_eq!(filtered.hits10(), seq_filtered.hits10());
        // Hits and counts are integers, so equality above is exact; the MRR
        // sum is floating point, where the guarantee is bit-identity across
        // thread counts (checked against threads=1 via `single` below) and
        // near-equality against the unchunked sequential order.
        assert!((raw.mrr() - seq_raw.mrr()).abs() < 1e-12, "threads={threads}");
        assert!((filtered.mrr() - seq_filtered.mrr()).abs() < 1e-12);
        assert_eq!(single.mrr().to_bits(), raw.mrr().to_bits(), "raw path vs paired path drifted");
    }
}

#[test]
fn per_thread_partials_merge_to_sequential_totals() {
    // Metrics::merge is the reduction the parallel evaluator relies on:
    // hand-split the query stream, merge, and require exact agreement.
    let ranks: Vec<f64> = (1..=97).map(|r| 1.0 + (r % 13) as f64 / 2.0).collect();
    let mut whole = Metrics::new();
    for &r in &ranks {
        whole.record(r);
    }
    for split in [1usize, 7, 16, 96] {
        let mut merged = Metrics::new();
        for chunk in ranks.chunks(split) {
            let mut part = Metrics::new();
            for &r in chunk {
                part.record(r);
            }
            merged.merge(&part);
        }
        assert_eq!(merged.count(), whole.count(), "split={split}");
        assert_eq!(merged.hits1(), whole.hits1());
        assert_eq!(merged.hits3(), whole.hits3());
        assert_eq!(merged.hits10(), whole.hits10());
        assert!((merged.mrr() - whole.mrr()).abs() < 1e-12, "split={split}");
    }
}
