//! Property-based tests of the ranking functions.

use proptest::prelude::*;
use retia_eval::{rank_of, rank_of_filtered, FilterSet, Metrics};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn rank_bounds(scores in prop::collection::vec(-10.0f32..10.0, 1..50), target_raw in 0usize..50) {
        let target = target_raw % scores.len();
        let r = rank_of(&scores, target);
        prop_assert!(r >= 1.0);
        prop_assert!(r <= scores.len() as f64);
    }

    #[test]
    fn raising_target_score_never_worsens_rank(
        scores in prop::collection::vec(-5.0f32..5.0, 2..30),
        target_raw in 0usize..30,
        boost in 0.1f32..5.0,
    ) {
        let target = target_raw % scores.len();
        let before = rank_of(&scores, target);
        let mut boosted = scores.clone();
        boosted[target] += boost;
        let after = rank_of(&boosted, target);
        prop_assert!(after <= before, "boosting worsened rank: {} -> {}", before, after);
    }

    #[test]
    fn filtering_never_worsens_rank(
        scores in prop::collection::vec(-5.0f32..5.0, 2..30),
        target_raw in 0usize..30,
        filtered in prop::collection::vec(0u32..30, 0..10),
    ) {
        let target = target_raw % scores.len();
        let filter: FilterSet = filtered.into_iter().filter(|&f| (f as usize) < scores.len()).collect();
        prop_assert!(rank_of_filtered(&scores, target, &filter) <= rank_of(&scores, target));
    }

    #[test]
    fn ranks_of_all_candidates_sum_correctly(scores in prop::collection::vec(-5.0f32..5.0, 1..20)) {
        // Average-tie ranks over all candidates are a permutation-average of
        // 1..n, so they must sum to n(n+1)/2.
        let n = scores.len();
        let total: f64 = (0..n).map(|t| rank_of(&scores, t)).sum();
        let expected = (n * (n + 1)) as f64 / 2.0;
        prop_assert!((total - expected).abs() < 1e-6 * expected.max(1.0));
    }

    #[test]
    fn mrr_is_mean_of_reciprocal_ranks(ranks in prop::collection::vec(1.0f64..100.0, 1..50)) {
        let mut m = Metrics::new();
        for &r in &ranks {
            m.record(r);
        }
        let expected: f64 = ranks.iter().map(|r| 1.0 / r).sum::<f64>() / ranks.len() as f64;
        prop_assert!((m.mrr() - expected).abs() < 1e-12);
        prop_assert!(m.hits1() <= m.hits3() && m.hits3() <= m.hits10());
    }

    #[test]
    fn merge_is_equivalent_to_joint_recording(
        a in prop::collection::vec(1.0f64..50.0, 0..20),
        b in prop::collection::vec(1.0f64..50.0, 0..20),
    ) {
        let mut separate_a = Metrics::new();
        for &r in &a { separate_a.record(r); }
        let mut separate_b = Metrics::new();
        for &r in &b { separate_b.record(r); }
        separate_a.merge(&separate_b);

        let mut joint = Metrics::new();
        for &r in a.iter().chain(b.iter()) { joint.record(r); }

        prop_assert!((separate_a.mrr() - joint.mrr()).abs() < 1e-12);
        prop_assert_eq!(separate_a.count(), joint.count());
    }
}
