//! Wall-clock measurement for the run-time comparison (Table VIII).

use std::time::{Duration, Instant};

/// A cumulative stopwatch. Measured regions are scoped with [`guard`]
/// (RAII: the span ends when the guard drops, on every exit path including
/// panics) or the [`time`] closure wrapper.
///
/// [`guard`]: Stopwatch::guard
/// [`time`]: Stopwatch::time
#[derive(Debug)]
pub struct Stopwatch {
    total: Duration,
    started: Option<Instant>,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::new()
    }
}

impl Stopwatch {
    /// A stopped stopwatch at zero.
    pub fn new() -> Self {
        Stopwatch { total: Duration::ZERO, started: None }
    }

    /// Opens a measured span that ends (and accumulates) when the returned
    /// guard is dropped. The borrow makes overlapping manual spans on the
    /// same stopwatch impossible.
    #[must_use = "the span is measured until the guard drops; binding it to _ ends it immediately"]
    pub fn guard(&mut self) -> StopwatchGuard<'_> {
        StopwatchGuard { start: Instant::now(), sw: self }
    }

    /// Starts (or restarts) timing. Idempotent while running.
    #[deprecated(note = "manual start/stop is easy to unbalance across early \
                         returns and panics; scope the region with `guard()` or `time()`")]
    pub fn start(&mut self) {
        if self.started.is_none() {
            self.started = Some(Instant::now());
        }
    }

    /// Stops timing, accumulating the elapsed span. Idempotent while stopped.
    #[deprecated(note = "manual start/stop is easy to unbalance across early \
                         returns and panics; scope the region with `guard()` or `time()`")]
    pub fn stop(&mut self) {
        if let Some(s) = self.started.take() {
            self.total += s.elapsed();
        }
    }

    /// Total accumulated time (including the current span if one is open
    /// via the deprecated `start`).
    pub fn elapsed(&self) -> Duration {
        match self.started {
            Some(s) => self.total + s.elapsed(),
            None => self.total,
        }
    }

    /// Times a closure, accumulating its duration, and returns its output.
    /// The duration is recorded even if the closure panics.
    pub fn time<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let _g = self.guard();
        f()
    }
}

/// An open measured span on a [`Stopwatch`]; accumulates on drop.
#[derive(Debug)]
pub struct StopwatchGuard<'a> {
    sw: &'a mut Stopwatch,
    start: Instant,
}

impl Drop for StopwatchGuard<'_> {
    fn drop(&mut self) {
        self.sw.total += self.start.elapsed();
    }
}

/// Formats a duration the way the paper's Table VIII does
/// (`s` / `min` / `h` / `d` units).
pub fn format_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs < 60.0 {
        format!("{secs:.2} s")
    } else if secs < 3600.0 {
        format!("{:.2} min", secs / 60.0)
    } else if secs < 86_400.0 {
        format!("{:.2} h", secs / 3600.0)
    } else {
        format!("{:.2} d", secs / 86_400.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_accumulates_across_spans() {
        let mut sw = Stopwatch::new();
        {
            let _g = sw.guard();
            std::thread::sleep(Duration::from_millis(5));
        }
        let first = sw.elapsed();
        assert!(first >= Duration::from_millis(5));
        sw.time(|| std::thread::sleep(Duration::from_millis(5)));
        assert!(sw.elapsed() > first);
        assert!(sw.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn guard_records_on_panic() {
        let mut sw = Stopwatch::new();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sw.time(|| {
                std::thread::sleep(Duration::from_millis(3));
                panic!("measured region panics");
            })
        }));
        assert!(caught.is_err());
        assert!(sw.elapsed() >= Duration::from_millis(3), "panicked span was lost");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_start_stop_still_work() {
        let mut sw = Stopwatch::new();
        sw.stop();
        assert_eq!(sw.elapsed(), Duration::ZERO);
        sw.start();
        std::thread::sleep(Duration::from_millis(3));
        sw.start();
        sw.stop();
        assert!(sw.elapsed() >= Duration::from_millis(3));
    }

    #[test]
    fn format_units() {
        assert_eq!(format_duration(Duration::from_secs_f64(3.33)), "3.33 s");
        assert_eq!(format_duration(Duration::from_secs(120)), "2.00 min");
        assert_eq!(format_duration(Duration::from_secs(7200)), "2.00 h");
        assert_eq!(format_duration(Duration::from_secs(172_800)), "2.00 d");
    }

    #[test]
    fn format_unit_boundaries() {
        // Just under / exactly at each unit rollover.
        assert_eq!(format_duration(Duration::from_secs_f64(59.9)), "59.90 s");
        assert_eq!(format_duration(Duration::from_secs(60)), "1.00 min");
        assert_eq!(format_duration(Duration::from_secs_f64(3599.4)), "59.99 min");
        assert_eq!(format_duration(Duration::from_secs(3600)), "1.00 h");
        assert_eq!(format_duration(Duration::from_secs(86_399)), "24.00 h");
        assert_eq!(format_duration(Duration::from_secs(86_400)), "1.00 d");
        assert_eq!(format_duration(Duration::ZERO), "0.00 s");
    }
}
