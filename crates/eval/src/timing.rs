//! Wall-clock measurement for the run-time comparison (Table VIII).

use std::time::{Duration, Instant};

/// A simple cumulative stopwatch: start/stop around the measured region,
/// read the total at the end.
#[derive(Debug)]
pub struct Stopwatch {
    total: Duration,
    started: Option<Instant>,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::new()
    }
}

impl Stopwatch {
    /// A stopped stopwatch at zero.
    pub fn new() -> Self {
        Stopwatch { total: Duration::ZERO, started: None }
    }

    /// Starts (or restarts) timing. Idempotent while running.
    pub fn start(&mut self) {
        if self.started.is_none() {
            self.started = Some(Instant::now());
        }
    }

    /// Stops timing, accumulating the elapsed span. Idempotent while stopped.
    pub fn stop(&mut self) {
        if let Some(s) = self.started.take() {
            self.total += s.elapsed();
        }
    }

    /// Total accumulated time (including the current span if running).
    pub fn elapsed(&self) -> Duration {
        match self.started {
            Some(s) => self.total + s.elapsed(),
            None => self.total,
        }
    }

    /// Times a closure, accumulating its duration, and returns its output.
    pub fn time<T>(&mut self, f: impl FnOnce() -> T) -> T {
        self.start();
        let out = f();
        self.stop();
        out
    }
}

/// Formats a duration the way the paper's Table VIII does
/// (`s` / `min` / `h` / `d` units).
pub fn format_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs < 60.0 {
        format!("{secs:.2} s")
    } else if secs < 3600.0 {
        format!("{:.2} min", secs / 60.0)
    } else if secs < 86_400.0 {
        format!("{:.2} h", secs / 3600.0)
    } else {
        format!("{:.2} d", secs / 86_400.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_across_spans() {
        let mut sw = Stopwatch::new();
        sw.time(|| std::thread::sleep(Duration::from_millis(5)));
        let first = sw.elapsed();
        sw.time(|| std::thread::sleep(Duration::from_millis(5)));
        assert!(sw.elapsed() > first);
        assert!(sw.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn stop_without_start_is_noop() {
        let mut sw = Stopwatch::new();
        sw.stop();
        assert_eq!(sw.elapsed(), Duration::ZERO);
    }

    #[test]
    fn double_start_does_not_reset() {
        let mut sw = Stopwatch::new();
        sw.start();
        std::thread::sleep(Duration::from_millis(3));
        sw.start();
        sw.stop();
        assert!(sw.elapsed() >= Duration::from_millis(3));
    }

    #[test]
    fn format_units() {
        assert_eq!(format_duration(Duration::from_secs_f64(3.33)), "3.33 s");
        assert_eq!(format_duration(Duration::from_secs(120)), "2.00 min");
        assert_eq!(format_duration(Duration::from_secs(7200)), "2.00 h");
        assert_eq!(format_duration(Duration::from_secs(172_800)), "2.00 d");
    }
}
