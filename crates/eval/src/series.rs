//! Per-timestamp metric series — the longitudinal view behind online-
//! training analyses (how forecasting quality evolves along the evaluation
//! stream, where regime shifts hurt, and how quickly continual training
//! recovers).

use crate::metrics::Metrics;

/// Metrics broken down by evaluation timestamp, in stream order.
#[derive(Clone, Debug, Default)]
pub struct MetricSeries {
    entries: Vec<(u32, Metrics)>,
}

impl MetricSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulator for timestamp `t`; timestamps must be appended in
    /// non-decreasing order (the evaluation stream order).
    pub fn at(&mut self, t: u32) -> &mut Metrics {
        match self.entries.last() {
            Some(&(last, _)) if last == t => {}
            Some(&(last, _)) => {
                assert!(t > last, "timestamps must be appended in order ({last} then {t})");
                self.entries.push((t, Metrics::new()));
            }
            None => self.entries.push((t, Metrics::new())),
        }
        &mut self.entries.last_mut().expect("just pushed").1
    }

    /// `(timestamp, metrics)` pairs in stream order.
    pub fn entries(&self) -> &[(u32, Metrics)] {
        &self.entries
    }

    /// Aggregate over all timestamps.
    pub fn total(&self) -> Metrics {
        let mut out = Metrics::new();
        for (_, m) in &self.entries {
            out.merge(m);
        }
        out
    }

    /// MRR values in stream order (for plotting / CSV).
    pub fn mrr_series(&self) -> Vec<(u32, f64)> {
        self.entries.iter().map(|(t, m)| (*t, m.mrr())).collect()
    }

    /// Least-squares slope of MRR over the stream (positive = the model is
    /// improving as the stream progresses, the signature of effective online
    /// continual training).
    pub fn mrr_trend(&self) -> f64 {
        let n = self.entries.len();
        if n < 2 {
            return 0.0;
        }
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = self.entries.iter().map(|(_, m)| m.mrr()).collect();
        let mx = xs.iter().sum::<f64>() / n as f64;
        let my = ys.iter().sum::<f64>() / n as f64;
        let num: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let den: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
        if den == 0.0 {
            0.0
        } else {
            num / den
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_timestamp() {
        let mut s = MetricSeries::new();
        s.at(3).record(1.0);
        s.at(3).record(2.0);
        s.at(7).record(4.0);
        assert_eq!(s.entries().len(), 2);
        assert_eq!(s.entries()[0].1.count(), 2);
        assert_eq!(s.total().count(), 3);
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn rejects_out_of_order() {
        let mut s = MetricSeries::new();
        s.at(5).record(1.0);
        s.at(2).record(1.0);
    }

    #[test]
    fn trend_detects_improvement() {
        let mut s = MetricSeries::new();
        // Ranks improve over the stream: 10, 5, 2, 1.
        for (t, r) in [(0u32, 10.0), (1, 5.0), (2, 2.0), (3, 1.0)] {
            s.at(t).record(r);
        }
        assert!(s.mrr_trend() > 0.0);

        let mut flat = MetricSeries::new();
        for t in 0..4u32 {
            flat.at(t).record(4.0);
        }
        assert!(flat.mrr_trend().abs() < 1e-12);
    }

    #[test]
    fn mrr_series_matches_entries() {
        let mut s = MetricSeries::new();
        s.at(1).record(2.0);
        s.at(4).record(1.0);
        let series = s.mrr_series();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0], (1, 0.5));
        assert_eq!(series[1], (4, 1.0));
    }
}
