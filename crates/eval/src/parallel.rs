//! Chunk-parallel per-query rank computation.
//!
//! Ranking a snapshot is embarrassingly parallel across queries, but the
//! order in which f64 reciprocal ranks are summed must not depend on the
//! thread count. Queries are therefore cut into the tensor layer's fixed
//! row chunks, each chunk accumulates its own [`Metrics`] in query order,
//! and the per-chunk partials are merged in ascending chunk order — the
//! same merge tree at any `RETIA_NUM_THREADS`.

use crate::Metrics;
use retia_tensor::parallel::map_row_chunks;

/// Accumulates `rank_of_query(q)` for `q in 0..n_queries` into a [`Metrics`],
/// in parallel over fixed query chunks. `candidates` sizes the per-query cost
/// estimate (a rank is one linear scan of the score row).
///
/// Bit-equal to the sequential loop `for q in 0..n { m.record(rank(q)) }`
/// whenever `n_queries` fits one chunk; for larger counts the partial sums
/// are merged in chunk order, which is deterministic at any thread count.
pub fn collect_metrics<F>(n_queries: usize, candidates: usize, rank_of_query: F) -> Metrics
where
    F: Fn(usize) -> f64 + Sync,
{
    let _t = retia_obs::span!("eval.rank", queries = n_queries);
    let partials = map_row_chunks(n_queries, candidates, |range| {
        let mut m = Metrics::new();
        for q in range {
            m.record(rank_of_query(q));
        }
        m
    });
    let mut out = Metrics::new();
    for p in &partials {
        out.merge(p);
    }
    out
}

/// As [`collect_metrics`], but each query yields a `(raw, filtered)` rank
/// pair scored into two accumulators in one pass — the shape of the
/// link-prediction protocol, where both settings share one score row.
pub fn collect_paired_metrics<F>(
    n_queries: usize,
    candidates: usize,
    ranks_of_query: F,
) -> (Metrics, Metrics)
where
    F: Fn(usize) -> (f64, f64) + Sync,
{
    let _t = retia_obs::span!("eval.rank_paired", queries = n_queries);
    let partials = map_row_chunks(n_queries, candidates, |range| {
        let mut raw = Metrics::new();
        let mut filtered = Metrics::new();
        for q in range {
            let (r, f) = ranks_of_query(q);
            raw.record(r);
            filtered.record(f);
        }
        (raw, filtered)
    });
    let mut raw = Metrics::new();
    let mut filtered = Metrics::new();
    for (pr, pf) in &partials {
        raw.merge(pr);
        filtered.merge(pf);
    }
    (raw, filtered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_query_set_yields_empty_metrics() {
        let m = collect_metrics(0, 1000, |_| unreachable!("no queries"));
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn matches_sequential_exactly() {
        let rank = |q: usize| 1.0 + (q % 37) as f64;
        let n = 1003;
        let mut seq = Metrics::new();
        for q in 0..n {
            seq.record(rank(q));
        }
        let par = collect_metrics(n, 100_000, rank);
        // PartialEq compares the f64 sum too: the chunk-merge order must
        // reproduce the sequential sum bit-for-bit here because record() and
        // merge() add the same values left to right chunk by chunk.
        assert_eq!(par.count(), seq.count());
        assert_eq!(par.hits1(), seq.hits1());
        assert_eq!(par.hits10(), seq.hits10());
        assert!((par.mrr() - seq.mrr()).abs() < 1e-15);
    }
}
