#![warn(missing_docs)]

//! # retia-eval
//!
//! Link-prediction evaluation for TKG extrapolation, following the protocol
//! of RE-GCN/RETIA:
//!
//! * ranks are computed per query over the full candidate set; ties get the
//!   *average* rank (robust against constant-score degenerate models);
//! * the paper reports the **raw** setting (no filtering) — this crate also
//!   implements the **time-aware filtered** setting for completeness;
//! * entity metrics average the subject- and object-forecasting directions;
//! * relation forecasting reports MRR over the `M` original relations.
//!
//! [`Metrics`] accumulates MRR / Hits@{1,3,10}; [`Stopwatch`] provides the
//! wall-clock measurements behind the paper's Table VIII.

mod metrics;
pub mod parallel;
mod ranking;
mod series;
mod timing;

pub use metrics::Metrics;
pub use parallel::{collect_metrics, collect_paired_metrics};
pub use ranking::{rank_of, rank_of_filtered, shard_ranges, top_k, top_k_sharded, FilterSet};
pub use series::MetricSeries;
pub use timing::{format_duration, Stopwatch};
