//! Metric accumulation.

/// Accumulates MRR and Hits@{1,3,10} over a stream of ranks.
///
/// # Examples
///
/// ```
/// use retia_eval::Metrics;
///
/// let mut m = Metrics::new();
/// m.record(1.0); // a query ranked first
/// m.record(4.0); // a query ranked fourth
/// assert_eq!(m.mrr(), 0.625);
/// assert_eq!(m.hits1(), 0.5);
/// assert_eq!(m.hits10(), 1.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Metrics {
    sum_rr: f64,
    hits1: usize,
    hits3: usize,
    hits10: usize,
    count: usize,
}

impl Metrics {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one query's rank (1 = best; fractional average-tie ranks are
    /// accepted — a rank of exactly `k` counts for Hits@k).
    pub fn record(&mut self, rank: f64) {
        assert!(rank >= 1.0, "ranks start at 1, got {rank}");
        self.sum_rr += 1.0 / rank;
        if rank <= 1.0 {
            self.hits1 += 1;
        }
        if rank <= 3.0 {
            self.hits3 += 1;
        }
        if rank <= 10.0 {
            self.hits10 += 1;
        }
        self.count += 1;
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &Metrics) {
        self.sum_rr += other.sum_rr;
        self.hits1 += other.hits1;
        self.hits3 += other.hits3;
        self.hits10 += other.hits10;
        self.count += other.count;
    }

    /// Mean reciprocal rank in `[0, 1]` (0 for an empty accumulator).
    pub fn mrr(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_rr / self.count as f64
        }
    }

    /// Hits@1 in `[0, 1]`.
    pub fn hits1(&self) -> f64 {
        self.frac(self.hits1)
    }

    /// Hits@3 in `[0, 1]`.
    pub fn hits3(&self) -> f64 {
        self.frac(self.hits3)
    }

    /// Hits@10 in `[0, 1]`.
    pub fn hits10(&self) -> f64 {
        self.frac(self.hits10)
    }

    fn frac(&self, n: usize) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            n as f64 / self.count as f64
        }
    }

    /// Number of recorded queries.
    pub fn count(&self) -> usize {
        self.count
    }

    /// `MRR / H@1 / H@3 / H@10` scaled by 100, the way the paper's tables
    /// print them.
    pub fn as_percentages(&self) -> (f64, f64, f64, f64) {
        (self.mrr() * 100.0, self.hits1() * 100.0, self.hits3() * 100.0, self.hits10() * 100.0)
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (mrr, h1, h3, h10) = self.as_percentages();
        write!(f, "MRR {mrr:5.2}  H@1 {h1:5.2}  H@3 {h3:5.2}  H@10 {h10:5.2}  (n={})", self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_metrics_are_zero() {
        let m = Metrics::new();
        assert_eq!(m.mrr(), 0.0);
        assert_eq!(m.hits10(), 0.0);
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn single_perfect_rank() {
        let mut m = Metrics::new();
        m.record(1.0);
        assert_eq!(m.mrr(), 1.0);
        assert_eq!(m.hits1(), 1.0);
        assert_eq!(m.hits3(), 1.0);
    }

    #[test]
    fn mixed_ranks() {
        let mut m = Metrics::new();
        m.record(1.0);
        m.record(2.0);
        m.record(4.0);
        m.record(20.0);
        assert!((m.mrr() - (1.0 + 0.5 + 0.25 + 0.05) / 4.0).abs() < 1e-12);
        assert_eq!(m.hits1(), 0.25);
        assert_eq!(m.hits3(), 0.5);
        assert_eq!(m.hits10(), 0.75);
    }

    #[test]
    fn fractional_tie_rank_counts_boundary() {
        let mut m = Metrics::new();
        m.record(1.5);
        assert_eq!(m.hits1(), 0.0);
        assert_eq!(m.hits3(), 1.0);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Metrics::new();
        a.record(1.0);
        let mut b = Metrics::new();
        b.record(2.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mrr() - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ranks start at 1")]
    fn rejects_invalid_rank() {
        Metrics::new().record(0.5);
    }

    #[test]
    fn percentages_scale_by_100() {
        let mut m = Metrics::new();
        m.record(2.0);
        let (mrr, h1, h3, h10) = m.as_percentages();
        assert_eq!(mrr, 50.0);
        assert_eq!(h1, 0.0);
        assert_eq!(h3, 100.0);
        assert_eq!(h10, 100.0);
    }
}
