//! Rank computation under the raw and time-aware filtered settings.

use std::cmp::Reverse;
use std::collections::HashSet;

/// Flags (once per process) that a query's target score was non-finite.
/// A NaN target makes every `>`/`==` comparison false, which without the
/// guard in [`rank_of`] would count zero candidates above it and report a
/// *perfect* rank for a diverged model. Panicking here would instead abort
/// a whole evaluation run on the first bad query, so the contract is:
/// worst-case rank, loud warning.
fn warn_non_finite_target() {
    retia_obs::metrics::inc("eval.nonfinite_target");
    static WARN: std::sync::Once = std::sync::Once::new();
    WARN.call_once(|| {
        retia_obs::event!(
            retia_obs::Level::Warn,
            "eval.nonfinite_target";
            "non-finite target score encountered; reporting worst-case ranks \
             (the model has likely diverged)"
        );
    });
}

/// Average-tie rank of the candidate at `target` within `scores`
/// (1 = best). Ties contribute the mean of their occupied positions, so a
/// constant-score model ranks everything at `(n + 1) / 2` instead of 1.
///
/// A non-finite (NaN/±inf) target score yields the worst rank `n` — never
/// a silently perfect one. Non-finite *competitor* scores are treated as
/// worse than any finite target.
///
/// # Examples
///
/// ```
/// use retia_eval::rank_of;
///
/// assert_eq!(rank_of(&[0.1, 0.9, 0.3], 1), 1.0);
/// assert_eq!(rank_of(&[0.5, 0.5], 0), 1.5); // tie: average of ranks 1 and 2
/// assert_eq!(rank_of(&[0.1, f32::NAN, 0.3], 1), 3.0); // diverged → worst
/// ```
pub fn rank_of(scores: &[f32], target: usize) -> f64 {
    let t = scores[target];
    if !t.is_finite() {
        warn_non_finite_target();
        return scores.len() as f64;
    }
    let mut greater = 0usize;
    let mut equal = 0usize; // not counting the target itself
    for (i, &s) in scores.iter().enumerate() {
        if s > t {
            greater += 1;
        } else if s == t && i != target {
            equal += 1;
        }
    }
    let rank = greater as f64 + 1.0 + equal as f64 / 2.0;
    debug_assert!(
        rank >= 1.0 && rank <= scores.len() as f64,
        "rank {rank} out of [1, {}]",
        scores.len()
    );
    rank
}

/// Candidates to exclude under the time-aware filtered setting: all
/// ground-truth answers of the *same* query at the *same* timestamp, except
/// the target being ranked.
pub type FilterSet = HashSet<u32>;

/// Average-tie rank with the time-aware filter applied: candidates in
/// `filter` (other than `target`) are ignored entirely.
///
/// As with [`rank_of`], a non-finite target score yields the worst rank
/// over the unfiltered candidate pool.
pub fn rank_of_filtered(scores: &[f32], target: usize, filter: &FilterSet) -> f64 {
    let t = scores[target];
    if !t.is_finite() {
        warn_non_finite_target();
        let pool =
            (0..scores.len()).filter(|&i| i == target || !filter.contains(&(i as u32))).count();
        return pool as f64;
    }
    let mut greater = 0usize;
    let mut equal = 0usize;
    let mut pool = 0usize;
    for (i, &s) in scores.iter().enumerate() {
        if i != target && filter.contains(&(i as u32)) {
            continue;
        }
        pool += 1;
        if s > t {
            greater += 1;
        } else if s == t && i != target {
            equal += 1;
        }
    }
    let rank = greater as f64 + 1.0 + equal as f64 / 2.0;
    debug_assert!(rank >= 1.0 && rank <= pool as f64, "rank {rank} out of [1, {pool}]");
    rank
}

/// The `k` best-scoring candidate indices, in descending score order, using a
/// bounded min-heap (`O(n log k)` time, `O(k)` space — the serve path's
/// per-query cost after the cached decode).
///
/// Deterministic total order: ties break toward the lower index, and
/// non-finite scores sort below every finite score (a diverged score can
/// never crowd a real candidate out of the top-k). Returns fewer than `k`
/// entries only when there are fewer than `k` candidates.
pub fn top_k(scores: &[f32], k: usize) -> Vec<(u32, f32)> {
    use std::collections::BinaryHeap;

    if k == 0 {
        return Vec::new();
    }
    // Max-heap on badness: the root is the worst retained candidate and is
    // evicted whenever a better one arrives.
    let mut heap: BinaryHeap<((Reverse<i32>, u32), u32)> = BinaryHeap::with_capacity(k + 1);
    for (i, &s) in scores.iter().enumerate() {
        heap.push((badness(s, i as u32), i as u32));
        if heap.len() > k {
            heap.pop();
        }
    }
    let mut kept: Vec<((Reverse<i32>, u32), u32)> = heap.into_vec();
    kept.sort_by_key(|e| e.0);
    kept.iter().map(|&(_, i)| (i, scores[i as usize])).collect()
}

/// Badness key: greater = worse candidate. Non-finite scores are worst, then
/// lower (totally-ordered) score, then higher index. This is the *total*
/// order behind [`top_k`]; totality is what makes the sharded merge in
/// [`top_k_sharded`] exact rather than approximate.
fn badness(score: f32, index: u32) -> (Reverse<i32>, u32) {
    let s = if score.is_finite() { score } else { f32::NEG_INFINITY };
    // Sign-magnitude float bits → a totally ordered integer key.
    let bits = s.to_bits() as i32;
    let ordered = if bits < 0 { !bits | i32::MIN } else { bits };
    (Reverse(ordered), index)
}

/// Contiguous candidate ranges `[lo, hi)` splitting `n` items into at most
/// `shards` near-equal pieces (the same split the sharded decode uses).
pub fn shard_ranges(n: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.clamp(1, n.max(1));
    (0..shards).map(|s| (s * n / shards, (s + 1) * n / shards)).collect()
}

/// [`top_k`] evaluated shard-by-shard over contiguous candidate ranges, then
/// merged. Bit-identical to the single-pass `top_k`: each shard's local
/// winners carry their global indices, and the merge re-sorts by the same
/// total [`badness`] order `top_k` uses, so no candidate that belongs in the
/// global top-k can be displaced (it is within the top-k of its own shard by
/// construction). This is the reduction step of the entity-sharded decode;
/// the equivalence is asserted across shard counts in the tests.
pub fn top_k_sharded(scores: &[f32], k: usize, shards: usize) -> Vec<(u32, f32)> {
    // Timed so request traces can attribute merge cost per shard count (the
    // span is inert unless timing, sinks or a live trace are active).
    let _t = retia_obs::span!("eval.topk_merge", candidates = scores.len(), shards = shards);
    let mut merged: Vec<(u32, f32)> = Vec::with_capacity(k.saturating_mul(2));
    for (lo, hi) in shard_ranges(scores.len(), shards) {
        merged.extend(top_k(&scores[lo..hi], k).into_iter().map(|(i, s)| (i + lo as u32, s)));
    }
    merged.sort_by_key(|&(i, s)| badness(s, i));
    merged.truncate(k);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_score_ranks_first() {
        assert_eq!(rank_of(&[0.1, 0.9, 0.3], 1), 1.0);
    }

    #[test]
    fn worst_score_ranks_last() {
        assert_eq!(rank_of(&[0.1, 0.9, 0.3], 0), 3.0);
    }

    #[test]
    fn ties_average() {
        // Target tied with one other at the top: positions 1 and 2 → 1.5.
        assert_eq!(rank_of(&[0.9, 0.9, 0.3], 0), 1.5);
        // All equal over 5 candidates → (5 + 1) / 2 = 3.
        assert_eq!(rank_of(&[1.0; 5], 2), 3.0);
    }

    #[test]
    fn filtered_removes_conflicting_truths() {
        // Candidates 0 and 1 beat the target 2, but 1 is another true answer.
        let scores = [0.9, 0.8, 0.5];
        let mut filter = FilterSet::new();
        filter.insert(1);
        assert_eq!(rank_of(&scores, 2), 3.0);
        assert_eq!(rank_of_filtered(&scores, 2, &filter), 2.0);
    }

    #[test]
    fn filter_never_removes_target() {
        let scores = [0.9, 0.5];
        let mut filter = FilterSet::new();
        filter.insert(1); // the target itself
        assert_eq!(rank_of_filtered(&scores, 1, &filter), 2.0);
    }

    #[test]
    fn nan_target_ranks_worst_not_first() {
        // The original bug: NaN at the target made every comparison false,
        // so a diverged model reported rank 1.0 (perfect MRR).
        assert_eq!(rank_of(&[0.1, f32::NAN, 0.3], 1), 3.0);
        assert_eq!(rank_of(&[f32::NAN, 0.2], 0), 2.0);
        // ±inf targets are equally untrustworthy.
        assert_eq!(rank_of(&[0.1, f32::INFINITY, 0.3], 1), 3.0);
        assert_eq!(rank_of(&[0.1, f32::NEG_INFINITY, 0.3], 1), 3.0);
    }

    #[test]
    fn nan_competitors_rank_below_finite_target() {
        // Finite target, NaN elsewhere: NaN candidates count as worse.
        assert_eq!(rank_of(&[f32::NAN, 0.5, f32::NAN], 1), 1.0);
        assert_eq!(rank_of(&[0.9, 0.5, f32::NAN], 1), 2.0);
    }

    #[test]
    fn all_nan_row_ranks_worst() {
        let scores = [f32::NAN; 7];
        assert_eq!(rank_of(&scores, 3), 7.0);
        let filter = FilterSet::new();
        assert_eq!(rank_of_filtered(&scores, 3, &filter), 7.0);
    }

    #[test]
    fn nan_target_filtered_ranks_worst_in_pool() {
        let scores = [f32::NAN, 0.8, 0.5, 0.2];
        let mut filter = FilterSet::new();
        filter.insert(1);
        // Pool is {0 (target), 2, 3} → worst rank 3, not 1 and not 4.
        assert_eq!(rank_of_filtered(&scores, 0, &filter), 3.0);
        // The filter never removes the target itself.
        filter.insert(0);
        assert_eq!(rank_of_filtered(&scores, 0, &filter), 3.0);
    }

    #[test]
    fn raw_equals_filtered_with_empty_filter() {
        let scores = [0.4, 0.2, 0.7, 0.1];
        let filter = FilterSet::new();
        for t in 0..scores.len() {
            assert_eq!(rank_of(&scores, t), rank_of_filtered(&scores, t, &filter));
        }
    }

    #[test]
    fn top_k_orders_descending() {
        let scores = [0.4, 0.2, 0.7, 0.1, 0.9];
        assert_eq!(top_k(&scores, 3), vec![(4, 0.9), (2, 0.7), (0, 0.4)]);
        assert_eq!(top_k(&scores, 0), vec![]);
        // k beyond n returns everything, still sorted.
        assert_eq!(top_k(&scores, 10).len(), 5);
        assert_eq!(top_k(&scores, 10)[4], (3, 0.1));
    }

    #[test]
    fn top_k_ties_break_toward_lower_index() {
        let scores = [0.5, 0.9, 0.5, 0.9, 0.5];
        assert_eq!(top_k(&scores, 4), vec![(1, 0.9), (3, 0.9), (0, 0.5), (2, 0.5)]);
    }

    #[test]
    fn top_k_negative_scores_order_correctly() {
        let scores = [-0.5, -0.1, -2.0, 0.25];
        assert_eq!(top_k(&scores, 4), vec![(3, 0.25), (1, -0.1), (0, -0.5), (2, -2.0)]);
    }

    #[test]
    fn top_k_nonfinite_sorts_last() {
        let scores = [f32::NAN, 0.2, f32::INFINITY, 0.8, f32::NEG_INFINITY];
        // +inf is non-finite and therefore untrusted: it must not displace
        // finite candidates.
        let got = top_k(&scores, 3);
        assert_eq!(got[0], (3, 0.8));
        assert_eq!(got[1], (1, 0.2));
        assert_eq!(got[2].0, 0); // first non-finite by index
    }

    #[test]
    fn top_k_matches_full_sort_on_finite_inputs() {
        let scores: Vec<f32> = (0..257).map(|i| ((i * 37 % 101) as f32) / 100.0).collect();
        let mut full: Vec<(u32, f32)> =
            scores.iter().copied().enumerate().map(|(i, s)| (i as u32, s)).collect();
        full.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        for k in [1, 2, 10, 101, 257] {
            assert_eq!(top_k(&scores, k), full[..k.min(full.len())].to_vec());
        }
    }

    #[test]
    fn shard_ranges_cover_exactly() {
        for (n, shards) in [(10, 3), (7, 7), (7, 20), (0, 4), (1000, 16), (5, 1)] {
            let ranges = shard_ranges(n, shards);
            assert!(ranges.len() <= shards.max(1));
            assert_eq!(ranges.first().map(|r| r.0), Some(0));
            assert_eq!(ranges.last().map(|r| r.1), Some(n));
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "ranges must tile {n} without gap or overlap");
            }
        }
    }

    #[test]
    fn top_k_sharded_is_bit_identical_to_top_k() {
        // Adversarial score vector: ties across shard boundaries, negatives,
        // and non-finite values, so the merge has to reproduce every tie-break
        // rule exactly.
        let mut scores: Vec<f32> =
            (0..503).map(|i| ((i * 37 % 101) as f32) / 100.0 - 0.5).collect();
        scores[7] = f32::NAN;
        scores[250] = f32::INFINITY;
        scores[251] = f32::NEG_INFINITY;
        scores[499] = scores[3];
        for k in [1usize, 4, 10, 503, 600] {
            let reference = top_k(&scores, k);
            for shards in [1usize, 2, 3, 5, 16, 503] {
                let sharded = top_k_sharded(&scores, k, shards);
                assert_eq!(reference.len(), sharded.len(), "k={k} shards={shards}");
                for (a, b) in reference.iter().zip(sharded.iter()) {
                    assert_eq!(a.0, b.0, "index diverged at k={k} shards={shards}");
                    assert_eq!(
                        a.1.to_bits(),
                        b.1.to_bits(),
                        "score bits diverged at k={k} shards={shards}"
                    );
                }
            }
        }
    }
}
