//! Rank computation under the raw and time-aware filtered settings.

use std::collections::HashSet;

/// Average-tie rank of the candidate at `target` within `scores`
/// (1 = best). Ties contribute the mean of their occupied positions, so a
/// constant-score model ranks everything at `(n + 1) / 2` instead of 1.
///
/// # Examples
///
/// ```
/// use retia_eval::rank_of;
///
/// assert_eq!(rank_of(&[0.1, 0.9, 0.3], 1), 1.0);
/// assert_eq!(rank_of(&[0.5, 0.5], 0), 1.5); // tie: average of ranks 1 and 2
/// ```
pub fn rank_of(scores: &[f32], target: usize) -> f64 {
    let t = scores[target];
    let mut greater = 0usize;
    let mut equal = 0usize; // not counting the target itself
    for (i, &s) in scores.iter().enumerate() {
        if s > t {
            greater += 1;
        } else if s == t && i != target {
            equal += 1;
        }
    }
    greater as f64 + 1.0 + equal as f64 / 2.0
}

/// Candidates to exclude under the time-aware filtered setting: all
/// ground-truth answers of the *same* query at the *same* timestamp, except
/// the target being ranked.
pub type FilterSet = HashSet<u32>;

/// Average-tie rank with the time-aware filter applied: candidates in
/// `filter` (other than `target`) are ignored entirely.
pub fn rank_of_filtered(scores: &[f32], target: usize, filter: &FilterSet) -> f64 {
    let t = scores[target];
    let mut greater = 0usize;
    let mut equal = 0usize;
    for (i, &s) in scores.iter().enumerate() {
        if i != target && filter.contains(&(i as u32)) {
            continue;
        }
        if s > t {
            greater += 1;
        } else if s == t && i != target {
            equal += 1;
        }
    }
    greater as f64 + 1.0 + equal as f64 / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_score_ranks_first() {
        assert_eq!(rank_of(&[0.1, 0.9, 0.3], 1), 1.0);
    }

    #[test]
    fn worst_score_ranks_last() {
        assert_eq!(rank_of(&[0.1, 0.9, 0.3], 0), 3.0);
    }

    #[test]
    fn ties_average() {
        // Target tied with one other at the top: positions 1 and 2 → 1.5.
        assert_eq!(rank_of(&[0.9, 0.9, 0.3], 0), 1.5);
        // All equal over 5 candidates → (5 + 1) / 2 = 3.
        assert_eq!(rank_of(&[1.0; 5], 2), 3.0);
    }

    #[test]
    fn filtered_removes_conflicting_truths() {
        // Candidates 0 and 1 beat the target 2, but 1 is another true answer.
        let scores = [0.9, 0.8, 0.5];
        let mut filter = FilterSet::new();
        filter.insert(1);
        assert_eq!(rank_of(&scores, 2), 3.0);
        assert_eq!(rank_of_filtered(&scores, 2, &filter), 2.0);
    }

    #[test]
    fn filter_never_removes_target() {
        let scores = [0.9, 0.5];
        let mut filter = FilterSet::new();
        filter.insert(1); // the target itself
        assert_eq!(rank_of_filtered(&scores, 1, &filter), 2.0);
    }

    #[test]
    fn raw_equals_filtered_with_empty_filter() {
        let scores = [0.4, 0.2, 0.7, 0.1];
        let filter = FilterSet::new();
        for t in 0..scores.len() {
            assert_eq!(rank_of(&scores, t), rank_of_filtered(&scores, t, &filter));
        }
    }
}
