//! Process-wide metrics registry: counters, gauges and log-bucketed
//! histograms, exportable as a JSON snapshot.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use retia_json::Value;

/// Summary statistics of a histogram.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Approximate median from the log buckets.
    pub p50: f64,
    /// Approximate 99th percentile from the log buckets.
    pub p99: f64,
}

/// Bucket count: 128 power-of-two octaves × 4 linear sub-buckets each.
const BUCKETS: usize = 512;

/// Log-bucketed histogram over absolute magnitudes with 4 linear sub-buckets
/// per power-of-two octave: a value with `2^e <= |v| < 2^(e+1)` lands in
/// sub-bucket `floor((|v| / 2^e - 1) * 4)` of octave `e + 64` (bucket 0 also
/// absorbs zero and anything below `2^-64`; the last bucket absorbs
/// non-finite and anything at or above `2^64`). Quantiles interpolate
/// linearly inside the landing bucket, so the relative error is bounded by
/// the 1.25× sub-bucket width — tight enough to regression-gate p99
/// latencies.
#[derive(Clone, Debug)]
struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: [u64; BUCKETS],
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; BUCKETS],
        }
    }

    fn bucket_of(v: f64) -> usize {
        let mag = v.abs();
        if !mag.is_finite() {
            return BUCKETS - 1;
        }
        if mag == 0.0 {
            return 0;
        }
        let oct = mag.log2().floor() as i64;
        if oct < -64 {
            return 0;
        }
        if oct > 63 {
            return BUCKETS - 1;
        }
        let base = (2.0f64).powi(oct as i32);
        // Linear position inside the octave, in quarters of the base.
        let sub = ((mag / base - 1.0) * 4.0).floor().clamp(0.0, 3.0) as usize;
        ((oct + 64) as usize) * 4 + sub
    }

    /// `[lo, hi)` value range of bucket `i` (bucket 0 reaches down to zero,
    /// the last bucket up to infinity).
    fn bucket_range(i: usize) -> (f64, f64) {
        let oct = (i / 4) as i32 - 64;
        let sub = (i % 4) as f64;
        let base = (2.0f64).powi(oct);
        let lo = if i == 0 { 0.0 } else { base * (1.0 + sub / 4.0) };
        let hi = if i == BUCKETS - 1 { f64::INFINITY } else { base * (1.0 + (sub + 1.0) / 4.0) };
        (lo, hi)
    }

    fn observe(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket_of(v)] += 1;
    }

    fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let rank = (q * self.count as f64).ceil().max(1.0);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let before = seen;
            seen += c;
            if seen as f64 >= rank {
                // Interpolate on rank position inside the landing bucket.
                let (lo, hi) = Self::bucket_range(i);
                let hi = if hi.is_finite() { hi } else { self.max };
                let frac = ((rank - before as f64) / c as f64).clamp(0.0, 1.0);
                return (lo + (hi - lo) * frac).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Interpolated number of observations at or below `threshold`
    /// (fractional inside the threshold's bucket). The SLO engine's "good
    /// event" count.
    fn count_below(&self, threshold: f64) -> f64 {
        if self.count == 0 || threshold < self.min {
            return 0.0;
        }
        if threshold >= self.max {
            return self.count as f64;
        }
        let b = Self::bucket_of(threshold);
        let below: u64 = self.buckets[..b].iter().sum();
        let c = self.buckets[b];
        if c == 0 {
            return below as f64;
        }
        let (lo, hi) = Self::bucket_range(b);
        let frac = if hi.is_finite() && hi > lo {
            ((threshold - lo) / (hi - lo)).clamp(0.0, 1.0)
        } else {
            1.0
        };
        below as f64 + c as f64 * frac
    }

    fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            mean: if self.count == 0 { f64::NAN } else { self.sum / self.count as f64 },
            p50: self.quantile(0.5),
            p99: self.quantile(0.99),
        }
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Named metrics, shared process-wide via [`registry`]. All methods are
/// no-ops while [`crate::enabled`] is false.
pub struct Registry {
    inner: Mutex<Inner>,
}

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(|| Registry { inner: Mutex::new(Inner::default()) })
}

impl Registry {
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Adds `by` to a counter, returning the new value.
    pub fn inc_by(&self, name: &str, by: u64) -> u64 {
        if !crate::enabled() {
            return 0;
        }
        let mut g = self.lock();
        let c = g.counters.entry(name.to_string()).or_insert(0);
        *c += by;
        *c
    }

    /// Adds 1 to a counter.
    pub fn inc(&self, name: &str) -> u64 {
        self.inc_by(name, 1)
    }

    /// Current counter value (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge to `v`.
    pub fn set_gauge(&self, name: &str, v: f64) {
        if !crate::enabled() {
            return;
        }
        self.lock().gauges.insert(name.to_string(), v);
    }

    /// Last gauge value, if any.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.lock().gauges.get(name).copied()
    }

    /// Records one observation into a histogram.
    pub fn observe(&self, name: &str, v: f64) {
        if !crate::enabled() {
            return;
        }
        self.lock().histograms.entry(name.to_string()).or_insert_with(Histogram::new).observe(v);
    }

    /// Summary of a histogram, if it has observations.
    pub fn histogram(&self, name: &str) -> Option<HistogramSummary> {
        self.lock().histograms.get(name).map(Histogram::summary)
    }

    /// `(total, good)` for a histogram: observations recorded and the
    /// (interpolated) number at or below `threshold`. `None` when the
    /// histogram does not exist. The SLO engine's compliance input.
    pub fn histogram_count_below(&self, name: &str, threshold: f64) -> Option<(u64, f64)> {
        self.lock().histograms.get(name).map(|h| (h.count, h.count_below(threshold)))
    }

    /// Every metric as one JSON document (`counters` / `gauges` /
    /// `histograms` objects, keys in lexicographic order).
    pub fn snapshot(&self) -> Value {
        let g = self.lock();
        let mut counters = Value::object();
        for (k, v) in &g.counters {
            counters.insert(k, Value::from(*v));
        }
        let mut gauges = Value::object();
        for (k, v) in &g.gauges {
            gauges.insert(k, Value::from(*v));
        }
        let mut hists = Value::object();
        for (k, h) in &g.histograms {
            let s = h.summary();
            let mut doc = Value::object();
            doc.insert("count", Value::from(s.count));
            doc.insert("sum", Value::from(s.sum));
            doc.insert("min", Value::from(s.min));
            doc.insert("max", Value::from(s.max));
            doc.insert("mean", Value::from(s.mean));
            doc.insert("p50", Value::from(s.p50));
            doc.insert("p99", Value::from(s.p99));
            hists.insert(k, doc);
        }
        let mut out = Value::object();
        out.insert("counters", counters);
        out.insert("gauges", gauges);
        out.insert("histograms", hists);
        out
    }

    /// Clears everything (tests; fresh CLI runs).
    pub fn reset(&self) {
        let mut g = self.lock();
        g.counters.clear();
        g.gauges.clear();
        g.histograms.clear();
    }

    /// Every metric in the Prometheus text exposition format (version
    /// 0.0.4), dependency-free: counters and gauges as single samples,
    /// histograms as cumulative `_bucket{le="..."}` series (occupied buckets
    /// plus `+Inf`) with `_sum` and `_count`. Metric names are sanitized to
    /// the Prometheus charset; non-finite sample values render as `NaN` /
    /// `+Inf` / `-Inf` per the format.
    pub fn prometheus(&self) -> String {
        use std::fmt::Write as _;
        let g = self.lock();
        let mut out = String::new();
        for (k, v) in &g.counters {
            let name = prom_name(k);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (k, v) in &g.gauges {
            let name = prom_name(k);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", prom_f64(*v));
        }
        for (k, h) in &g.histograms {
            let name = prom_name(k);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cum = 0u64;
            for (i, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cum += c;
                let (_, hi) = Histogram::bucket_range(i);
                let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", prom_f64(hi));
            }
            if cum < h.count {
                // Bucket counts always cover every observation; keep +Inf
                // consistent with _count regardless.
                cum = h.count;
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
            let _ = writeln!(out, "{name}_sum {}", prom_f64(h.sum));
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        out
    }
}

/// Sanitizes a metric name to the Prometheus charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*` (every other byte becomes `_`).
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Renders a sample value: finite values via Rust's shortest form, which
/// Prometheus parses; non-finite as the format's spellings.
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Escapes a label value for the exposition format (`\` → `\\`, `"` → `\"`,
/// newline → `\n`). Exposed for anything composing labeled series by hand.
pub fn prom_escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Shorthand for `registry().inc(name)`.
pub fn inc(name: &str) -> u64 {
    registry().inc(name)
}

/// Shorthand for `registry().inc_by(name, by)`.
pub fn inc_by(name: &str, by: u64) -> u64 {
    registry().inc_by(name, by)
}

/// Shorthand for `registry().set_gauge(name, v)`.
pub fn set_gauge(name: &str, v: f64) {
    registry().set_gauge(name, v);
}

/// Shorthand for `registry().observe(name, v)`.
pub fn observe(name: &str, v: f64) {
    registry().observe(name, v);
}

/// Shorthand for `registry().prometheus()`.
pub fn prometheus() -> String {
    registry().prometheus()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn counters_gauges_histograms_roundtrip() {
        let _guard = test_lock::lock();
        registry().reset();
        assert_eq!(registry().counter("c"), 0);
        assert_eq!(registry().inc("c"), 1);
        assert_eq!(registry().inc_by("c", 4), 5);
        registry().set_gauge("g", -2.5);
        assert_eq!(registry().gauge("g"), Some(-2.5));
        assert_eq!(registry().gauge("missing"), None);
        for v in [1.0, 2.0, 4.0, 1000.0] {
            registry().observe("h", v);
        }
        let h = registry().histogram("h").unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 1000.0);
        assert!((h.mean - 251.75).abs() < 1e-9);
        assert!(h.p50 >= 1.0 && h.p50 <= 4.0, "p50 {}", h.p50);
        assert!(h.p99 >= 512.0, "p99 {}", h.p99);
        registry().reset();
        assert_eq!(registry().counter("c"), 0);
    }

    #[test]
    fn snapshot_is_valid_json() {
        let _guard = test_lock::lock();
        registry().reset();
        registry().inc("steps");
        registry().set_gauge("loss", 0.5);
        registry().observe("dur", 3.0);
        let text = registry().snapshot().to_string_pretty();
        let doc = retia_json::parse(&text).unwrap();
        assert_eq!(doc.get("counters").unwrap().get("steps").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("gauges").unwrap().get("loss").unwrap().as_f64(), Some(0.5));
        let h = doc.get("histograms").unwrap().get("dur").unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn disabled_registry_is_a_noop() {
        let _guard = test_lock::lock();
        registry().reset();
        crate::set_enabled(false);
        inc("nope");
        set_gauge("nope", 1.0);
        observe("nope", 1.0);
        crate::set_enabled(true);
        assert_eq!(registry().counter("nope"), 0);
        assert_eq!(registry().gauge("nope"), None);
        assert!(registry().histogram("nope").is_none());
    }

    #[test]
    fn extreme_magnitudes_land_in_end_buckets() {
        assert_eq!(Histogram::bucket_of(0.0), 0);
        assert_eq!(Histogram::bucket_of(f64::INFINITY), BUCKETS - 1);
        assert_eq!(Histogram::bucket_of(1e-300), 0);
        assert_eq!(Histogram::bucket_of(1e300), BUCKETS - 1);
        // 1.5 sits in octave 0 (values [1, 2)), sub-bucket 2 ([1.5, 1.75)).
        assert_eq!(Histogram::bucket_of(1.5), 64 * 4 + 2);
        // Bucket ranges tile the line without gaps.
        for i in 1..BUCKETS - 1 {
            let (lo, hi) = Histogram::bucket_range(i);
            assert!(lo < hi, "bucket {i}");
            assert_eq!(Histogram::bucket_range(i + 1).0, hi, "bucket {i} tiles");
            assert_eq!(Histogram::bucket_of(lo), i, "lower bound of {i} maps back");
        }
    }

    /// SplitMix64 (same generator the loadtest uses) for fixed-seed samples.
    fn mix(seed: &mut u64) -> u64 {
        *seed = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    #[test]
    fn quantile_relative_error_is_bounded() {
        // Latency-shaped fixed-seed sample: a log-uniform body over
        // ~[0.5ms, 500ms] plus a heavy tail.
        let mut seed = 0x5EED_u64;
        let mut h = Histogram::new();
        let mut exact: Vec<f64> = Vec::new();
        for i in 0..4000 {
            let u = (mix(&mut seed) >> 11) as f64 / (1u64 << 53) as f64;
            let mut v = 0.5 * (1000.0f64).powf(u);
            if i % 97 == 0 {
                v *= 20.0; // stragglers
            }
            h.observe(v);
            exact.push(v);
        }
        exact.sort_by(|a, b| a.total_cmp(b));
        for q in [0.5, 0.9, 0.95, 0.99, 0.999] {
            let approx = h.quantile(q);
            let rank = ((q * exact.len() as f64).ceil().max(1.0) as usize).min(exact.len());
            let truth = exact[rank - 1];
            let rel = (approx - truth).abs() / truth;
            assert!(rel <= 0.25, "q={q}: approx {approx} vs exact {truth} (rel {rel:.3})");
        }
    }

    #[test]
    fn count_below_interpolates_against_exact_counts() {
        let mut seed = 7u64;
        let mut h = Histogram::new();
        let mut values = Vec::new();
        for _ in 0..1000 {
            let v = (mix(&mut seed) % 10_000) as f64 / 10.0; // [0, 1000) ms
            h.observe(v);
            values.push(v);
        }
        for threshold in [1.0, 25.0, 250.0, 990.0] {
            let exact = values.iter().filter(|v| **v <= threshold).count() as f64;
            let approx = h.count_below(threshold);
            assert!(
                (approx - exact).abs() <= 0.25 * exact.max(8.0),
                "threshold {threshold}: approx {approx} vs exact {exact}"
            );
        }
        assert_eq!(h.count_below(f64::INFINITY), 1000.0);
        assert_eq!(h.count_below(-1.0), 0.0);
    }

    #[test]
    fn prometheus_names_are_sanitized_and_labels_escaped() {
        assert_eq!(prom_name("serve.request_ms./v1/query"), "serve_request_ms__v1_query");
        assert_eq!(prom_name("0day"), "_day");
        assert_eq!(prom_name("ok:name_9"), "ok:name_9");
        assert_eq!(prom_escape_label("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
    }

    #[test]
    fn prometheus_buckets_are_cumulative_and_consistent_with_snapshot() {
        let _guard = test_lock::lock();
        registry().reset();
        registry().inc_by("serve.requests", 3);
        registry().set_gauge("serve.queue_depth", 2.0);
        for v in [1.0, 2.0, 4.0, 1000.0] {
            registry().observe("serve.request_ms./v1/query", v);
        }
        let text = registry().prometheus();
        registry().reset();
        assert!(text.contains("# TYPE serve_requests counter"), "{text}");
        assert!(text.contains("serve_requests 3"), "{text}");
        assert!(text.contains("serve_queue_depth 2"), "{text}");
        let h = "serve_request_ms__v1_query";
        assert!(text.contains(&format!("# TYPE {h} histogram")), "{text}");
        // Cumulative buckets: `le` ascending, counts non-decreasing, +Inf
        // equals _count, and _sum/_count match the JSON snapshot values.
        let mut last_le = f64::NEG_INFINITY;
        let mut last_cum = 0u64;
        let mut inf_cum = None;
        for line in text.lines().filter(|l| l.starts_with(&format!("{h}_bucket"))) {
            let le_part = line.split("le=\"").nth(1).unwrap().split('"').next().unwrap();
            let cum: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            let le = if le_part == "+Inf" { f64::INFINITY } else { le_part.parse().unwrap() };
            assert!(le > last_le, "le not ascending: {line}");
            assert!(cum >= last_cum, "bucket counts not cumulative: {line}");
            last_le = le;
            last_cum = cum;
            if le == f64::INFINITY {
                inf_cum = Some(cum);
            }
        }
        assert_eq!(inf_cum, Some(4), "+Inf bucket must count every observation");
        assert!(text.contains(&format!("{h}_count 4")), "{text}");
        assert!(text.contains(&format!("{h}_sum 1007")), "{text}");
    }
}
