//! Process-wide metrics registry: counters, gauges and log-bucketed
//! histograms, exportable as a JSON snapshot.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use retia_json::Value;

/// Summary statistics of a histogram.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Approximate median from the log buckets.
    pub p50: f64,
    /// Approximate 99th percentile from the log buckets.
    pub p99: f64,
}

/// Power-of-two-bucketed histogram over absolute magnitudes: bucket `i`
/// holds values with `2^(i-64) <= |v| < 2^(i-63)` (bucket 0 also absorbs
/// zero and anything smaller). Quantiles are bucket upper bounds — within a
/// factor of 2, which is plenty for loss/duration dashboards.
#[derive(Clone, Debug)]
struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: [u64; 128],
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; 128],
        }
    }

    fn bucket_of(v: f64) -> usize {
        let mag = v.abs();
        if !mag.is_finite() {
            return 127;
        }
        if mag == 0.0 {
            return 0;
        }
        // exponent in [-64, 63] clamped into buckets [0, 127].
        (mag.log2().floor() as i64 + 64).clamp(0, 127) as usize
    }

    fn observe(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket_of(v)] += 1;
    }

    fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper bound of bucket i: 2^(i - 63).
                return (2.0f64).powi(i as i32 - 63);
            }
        }
        self.max
    }

    fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            mean: if self.count == 0 { f64::NAN } else { self.sum / self.count as f64 },
            p50: self.quantile(0.5),
            p99: self.quantile(0.99),
        }
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Named metrics, shared process-wide via [`registry`]. All methods are
/// no-ops while [`crate::enabled`] is false.
pub struct Registry {
    inner: Mutex<Inner>,
}

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(|| Registry { inner: Mutex::new(Inner::default()) })
}

impl Registry {
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Adds `by` to a counter, returning the new value.
    pub fn inc_by(&self, name: &str, by: u64) -> u64 {
        if !crate::enabled() {
            return 0;
        }
        let mut g = self.lock();
        let c = g.counters.entry(name.to_string()).or_insert(0);
        *c += by;
        *c
    }

    /// Adds 1 to a counter.
    pub fn inc(&self, name: &str) -> u64 {
        self.inc_by(name, 1)
    }

    /// Current counter value (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge to `v`.
    pub fn set_gauge(&self, name: &str, v: f64) {
        if !crate::enabled() {
            return;
        }
        self.lock().gauges.insert(name.to_string(), v);
    }

    /// Last gauge value, if any.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.lock().gauges.get(name).copied()
    }

    /// Records one observation into a histogram.
    pub fn observe(&self, name: &str, v: f64) {
        if !crate::enabled() {
            return;
        }
        self.lock().histograms.entry(name.to_string()).or_insert_with(Histogram::new).observe(v);
    }

    /// Summary of a histogram, if it has observations.
    pub fn histogram(&self, name: &str) -> Option<HistogramSummary> {
        self.lock().histograms.get(name).map(Histogram::summary)
    }

    /// Every metric as one JSON document (`counters` / `gauges` /
    /// `histograms` objects, keys in lexicographic order).
    pub fn snapshot(&self) -> Value {
        let g = self.lock();
        let mut counters = Value::object();
        for (k, v) in &g.counters {
            counters.insert(k, Value::from(*v));
        }
        let mut gauges = Value::object();
        for (k, v) in &g.gauges {
            gauges.insert(k, Value::from(*v));
        }
        let mut hists = Value::object();
        for (k, h) in &g.histograms {
            let s = h.summary();
            let mut doc = Value::object();
            doc.insert("count", Value::from(s.count));
            doc.insert("sum", Value::from(s.sum));
            doc.insert("min", Value::from(s.min));
            doc.insert("max", Value::from(s.max));
            doc.insert("mean", Value::from(s.mean));
            doc.insert("p50", Value::from(s.p50));
            doc.insert("p99", Value::from(s.p99));
            hists.insert(k, doc);
        }
        let mut out = Value::object();
        out.insert("counters", counters);
        out.insert("gauges", gauges);
        out.insert("histograms", hists);
        out
    }

    /// Clears everything (tests; fresh CLI runs).
    pub fn reset(&self) {
        let mut g = self.lock();
        g.counters.clear();
        g.gauges.clear();
        g.histograms.clear();
    }
}

/// Shorthand for `registry().inc(name)`.
pub fn inc(name: &str) -> u64 {
    registry().inc(name)
}

/// Shorthand for `registry().inc_by(name, by)`.
pub fn inc_by(name: &str, by: u64) -> u64 {
    registry().inc_by(name, by)
}

/// Shorthand for `registry().set_gauge(name, v)`.
pub fn set_gauge(name: &str, v: f64) {
    registry().set_gauge(name, v);
}

/// Shorthand for `registry().observe(name, v)`.
pub fn observe(name: &str, v: f64) {
    registry().observe(name, v);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn counters_gauges_histograms_roundtrip() {
        let _guard = test_lock::lock();
        registry().reset();
        assert_eq!(registry().counter("c"), 0);
        assert_eq!(registry().inc("c"), 1);
        assert_eq!(registry().inc_by("c", 4), 5);
        registry().set_gauge("g", -2.5);
        assert_eq!(registry().gauge("g"), Some(-2.5));
        assert_eq!(registry().gauge("missing"), None);
        for v in [1.0, 2.0, 4.0, 1000.0] {
            registry().observe("h", v);
        }
        let h = registry().histogram("h").unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 1000.0);
        assert!((h.mean - 251.75).abs() < 1e-9);
        assert!(h.p50 >= 1.0 && h.p50 <= 4.0, "p50 {}", h.p50);
        assert!(h.p99 >= 512.0, "p99 {}", h.p99);
        registry().reset();
        assert_eq!(registry().counter("c"), 0);
    }

    #[test]
    fn snapshot_is_valid_json() {
        let _guard = test_lock::lock();
        registry().reset();
        registry().inc("steps");
        registry().set_gauge("loss", 0.5);
        registry().observe("dur", 3.0);
        let text = registry().snapshot().to_string_pretty();
        let doc = retia_json::parse(&text).unwrap();
        assert_eq!(doc.get("counters").unwrap().get("steps").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("gauges").unwrap().get("loss").unwrap().as_f64(), Some(0.5));
        let h = doc.get("histograms").unwrap().get("dur").unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn disabled_registry_is_a_noop() {
        let _guard = test_lock::lock();
        registry().reset();
        crate::set_enabled(false);
        inc("nope");
        set_gauge("nope", 1.0);
        observe("nope", 1.0);
        crate::set_enabled(true);
        assert_eq!(registry().counter("nope"), 0);
        assert_eq!(registry().gauge("nope"), None);
        assert!(registry().histogram("nope").is_none());
    }

    #[test]
    fn extreme_magnitudes_land_in_end_buckets() {
        assert_eq!(Histogram::bucket_of(0.0), 0);
        assert_eq!(Histogram::bucket_of(f64::INFINITY), 127);
        assert_eq!(Histogram::bucket_of(1e-300), 0);
        assert_eq!(Histogram::bucket_of(1e300), 127);
        assert_eq!(Histogram::bucket_of(1.5), 64);
    }
}
