//! Drift signals for online continual learning (DESIGN.md §12).
//!
//! The serve-side drift monitor scores every candidate model against a
//! pinned baseline on the newest ingest window; this module is where those
//! readouts become metrics and events. Gauges carry the latest
//! candidate/baseline loss and MRR (`drift.*`), a counter tracks rollbacks,
//! and a sustained regression emits the same `recovery.rollback` event name
//! the training watchdog uses — one grep finds every rollback in a trace,
//! whether it happened in an offline fit or behind a live server.

use crate::metrics;
use crate::Level;

/// Records one drift evaluation: candidate-vs-baseline joint loss and
/// entity MRR on the newest window, plus the current breach streak.
pub fn record(
    candidate_loss: f64,
    baseline_loss: f64,
    candidate_mrr: f64,
    baseline_mrr: f64,
    breach_streak: u64,
) {
    metrics::inc("drift.evaluations");
    metrics::set_gauge("drift.loss.candidate", candidate_loss);
    metrics::set_gauge("drift.loss.baseline", baseline_loss);
    metrics::set_gauge("drift.mrr.candidate", candidate_mrr);
    metrics::set_gauge("drift.mrr.baseline", baseline_mrr);
    metrics::set_gauge("drift.breach_streak", breach_streak as f64);
}

/// A sustained regression rolled the served model back to the last-good
/// swap.
pub fn rollback(window_epoch: u64, rollbacks: u64) {
    metrics::inc("drift.rollbacks");
    crate::emit_event(
        Level::Warn,
        "recovery.rollback",
        &[("window_epoch", window_epoch as f64), ("rollbacks", rollbacks as f64)],
        Some(&format!(
            "drift monitor: sustained regression at ingest epoch {window_epoch}; served model \
             rolled back to last-good swap (rollback #{rollbacks})"
        )),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn record_sets_gauges_and_rollback_counts() {
        let _guard = test_lock::lock();
        metrics::registry().reset();
        record(1.5, 1.0, 0.2, 0.4, 2);
        assert_eq!(metrics::registry().gauge("drift.loss.candidate"), Some(1.5));
        assert_eq!(metrics::registry().gauge("drift.mrr.baseline"), Some(0.4));
        assert_eq!(metrics::registry().gauge("drift.breach_streak"), Some(2.0));
        rollback(7, 1);
        rollback(9, 2);
        assert_eq!(metrics::registry().counter("drift.rollbacks"), 2);
    }
}
