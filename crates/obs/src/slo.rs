//! Service-level-objective tracking: windowed compliance and multi-window
//! burn rates computed from registry histograms.
//!
//! An [`SloSpec`] declares "`objective` of the observations in `metric` must
//! be at or below `threshold_ms`, over a rolling `window_s`-second window".
//! [`tick`] (called opportunistically from the serving hot path, internally
//! rate-limited) samples the cumulative `(total, good)` pair from the
//! histogram via [`crate::metrics::Registry::histogram_count_below`] into a
//! pruned ring; [`report`] turns the ring into windowed compliance and burn
//! rates and exports them as `slo.*` gauges so they ride along in both the
//! JSON and Prometheus `/metrics` views.
//!
//! *Burn rate* is the classic SRE quantity: the fraction of events that blew
//! the threshold, divided by the error budget `1 - objective`. A burn of 1.0
//! consumes the budget exactly as fast as the window allows; above 1.0 the
//! SLO is burning. Two windows are reported — the full window and a short
//! window (1/12th, the usual fast-burn pairing) — so a sudden regression
//! shows up long before the long window drains.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// One service-level objective over a registry histogram.
#[derive(Clone, Debug)]
pub struct SloSpec {
    /// Short name used in gauge keys (`slo.<name>.burn_long`, ...).
    pub name: String,
    /// Histogram the objective reads (e.g. `serve.request_ms.query`).
    pub metric: String,
    /// Required fraction of good events, e.g. `0.99`.
    pub objective: f64,
    /// Latency threshold in the histogram's unit (milliseconds for the
    /// serve histograms).
    pub threshold_ms: f64,
    /// Rolling window length in seconds.
    pub window_s: f64,
}

/// Computed state of one objective.
#[derive(Clone, Debug)]
pub struct SloStatus {
    /// The spec's name.
    pub name: String,
    /// The spec's objective.
    pub objective: f64,
    /// The spec's threshold.
    pub threshold_ms: f64,
    /// Events observed inside the long window.
    pub total: u64,
    /// Fraction of those at or below the threshold (1.0 when idle).
    pub compliance: f64,
    /// Error-budget burn rate over the long window.
    pub burn_long: f64,
    /// Burn rate over the short (1/12) window.
    pub burn_short: f64,
    /// Whether both windows are burning (> 1.0) — the paging condition.
    pub burning: bool,
}

struct Tracker {
    spec: SloSpec,
    /// `(t_ns, cumulative total, cumulative good)` samples, oldest first.
    samples: VecDeque<(u64, u64, f64)>,
}

fn trackers() -> &'static Mutex<Vec<Tracker>> {
    static T: OnceLock<Mutex<Vec<Tracker>>> = OnceLock::new();
    T.get_or_init(|| Mutex::new(Vec::new()))
}

fn lock_trackers() -> std::sync::MutexGuard<'static, Vec<Tracker>> {
    trackers().lock().unwrap_or_else(|e| e.into_inner())
}

static LAST_TICK_NS: AtomicU64 = AtomicU64::new(0);

/// Minimum spacing between effective [`tick`]s.
const TICK_INTERVAL_NS: u64 = 250_000_000;

/// Installs the objectives to track (replacing any previous set).
pub fn configure(specs: Vec<SloSpec>) {
    let mut t = lock_trackers();
    *t = specs.into_iter().map(|spec| Tracker { spec, samples: VecDeque::new() }).collect();
    LAST_TICK_NS.store(0, Ordering::Relaxed);
}

/// Whether any objective is configured.
pub fn active() -> bool {
    !lock_trackers().is_empty()
}

/// Clears all objectives and samples (tests).
pub fn reset() {
    configure(Vec::new());
}

/// Opportunistic sampling hook for hot paths: a no-op unless objectives are
/// configured and at least [`TICK_INTERVAL_NS`] has passed since the last
/// effective tick (one atomic load on the fast path).
pub fn tick() {
    if !crate::enabled() {
        return;
    }
    let now = crate::now_ns();
    let last = LAST_TICK_NS.load(Ordering::Relaxed);
    if now.saturating_sub(last) < TICK_INTERVAL_NS {
        return;
    }
    if LAST_TICK_NS.compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed).is_err() {
        return;
    }
    sample_now(now);
}

/// Samples immediately, bypassing the rate limit (shutdown paths, tests).
pub fn force_tick() {
    if crate::enabled() {
        sample_now(crate::now_ns());
    }
}

fn sample_now(now_ns: u64) {
    let mut t = lock_trackers();
    if t.is_empty() {
        return;
    }
    for tr in t.iter_mut() {
        let (total, good) = crate::metrics::registry()
            .histogram_count_below(&tr.spec.metric, tr.spec.threshold_ms)
            .unwrap_or((0, 0.0));
        tr.samples.push_back((now_ns, total, good));
        // Keep one sample beyond the window so early deltas still have a
        // baseline.
        let window_ns = (tr.spec.window_s.max(1.0) * 1e9) as u64;
        let horizon = now_ns.saturating_sub(window_ns + window_ns / 4);
        while tr.samples.len() > 2 && tr.samples[1].0 < horizon {
            tr.samples.pop_front();
        }
    }
    let statuses: Vec<SloStatus> = t.iter().map(|tr| status_of(tr, now_ns)).collect();
    drop(t);
    for s in &statuses {
        let reg = crate::metrics::registry();
        reg.set_gauge(&format!("slo.{}.objective", s.name), s.objective);
        reg.set_gauge(&format!("slo.{}.compliance", s.name), s.compliance);
        reg.set_gauge(&format!("slo.{}.burn_long", s.name), s.burn_long);
        reg.set_gauge(&format!("slo.{}.burn_short", s.name), s.burn_short);
        reg.set_gauge(&format!("slo.{}.burning", s.name), if s.burning { 1.0 } else { 0.0 });
    }
}

/// `(events, bad fraction)` between the newest sample and the oldest sample
/// inside `window_ns`.
fn window_delta(samples: &VecDeque<(u64, u64, f64)>, now_ns: u64, window_ns: u64) -> (u64, f64) {
    let Some(&(_, new_total, new_good)) = samples.back() else { return (0, 0.0) };
    let floor = now_ns.saturating_sub(window_ns);
    // Baseline: the newest sample at or before the window floor. When every
    // sample is inside the window (tracker younger than the window), the
    // baseline is zero — everything observed so far counts.
    let base = samples.iter().rev().find(|(t, _, _)| *t <= floor).copied();
    let (_, old_total, old_good) = base.unwrap_or((0, 0, 0.0));
    let total = new_total.saturating_sub(old_total);
    if total == 0 {
        return (0, 0.0);
    }
    let good = (new_good - old_good).clamp(0.0, total as f64);
    (total, 1.0 - good / total as f64)
}

fn status_of(tr: &Tracker, now_ns: u64) -> SloStatus {
    let window_ns = (tr.spec.window_s.max(1.0) * 1e9) as u64;
    let short_ns = (window_ns / 12).max(1_000_000_000);
    let budget = (1.0 - tr.spec.objective).max(1e-9);
    let (total, bad_long) = window_delta(&tr.samples, now_ns, window_ns);
    let (_, bad_short) = window_delta(&tr.samples, now_ns, short_ns);
    let burn_long = bad_long / budget;
    let burn_short = bad_short / budget;
    SloStatus {
        name: tr.spec.name.clone(),
        objective: tr.spec.objective,
        threshold_ms: tr.spec.threshold_ms,
        total,
        compliance: 1.0 - bad_long,
        burn_long,
        burn_short,
        burning: burn_long > 1.0 && burn_short > 1.0,
    }
}

/// Current status of every configured objective.
pub fn report() -> Vec<SloStatus> {
    let now = crate::now_ns();
    lock_trackers().iter().map(|tr| status_of(tr, now)).collect()
}

/// Compliance/burn for a batch of latencies measured client-side (the
/// loadtest gate): no windowing — the run itself is the window.
pub fn burn_of_samples(latencies_ms: &[f64], objective: f64, threshold_ms: f64) -> (f64, f64) {
    if latencies_ms.is_empty() {
        return (1.0, 0.0);
    }
    let good = latencies_ms.iter().filter(|v| **v <= threshold_ms).count() as f64;
    let compliance = good / latencies_ms.len() as f64;
    let budget = (1.0 - objective).max(1e-9);
    (compliance, (1.0 - compliance) / budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    fn spec(window_s: f64) -> SloSpec {
        SloSpec {
            name: "query".to_string(),
            metric: "test.slo.request_ms".to_string(),
            objective: 0.9,
            threshold_ms: 100.0,
            window_s,
        }
    }

    #[test]
    fn compliant_traffic_does_not_burn() {
        let _guard = test_lock::lock();
        crate::metrics::registry().reset();
        reset();
        configure(vec![spec(60.0)]);
        for _ in 0..100 {
            crate::metrics::observe("test.slo.request_ms", 10.0);
        }
        force_tick();
        let r = report();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].total, 100);
        assert!(r[0].compliance > 0.99, "{:?}", r[0]);
        assert!(!r[0].burning);
        assert_eq!(crate::metrics::registry().gauge("slo.query.burning"), Some(0.0));
        reset();
        crate::metrics::registry().reset();
    }

    #[test]
    fn threshold_violations_burn_both_windows() {
        let _guard = test_lock::lock();
        crate::metrics::registry().reset();
        reset();
        configure(vec![spec(60.0)]);
        // 50% of requests over threshold against a 10% error budget → burn 5.
        for i in 0..100 {
            crate::metrics::observe("test.slo.request_ms", if i % 2 == 0 { 10.0 } else { 500.0 });
        }
        force_tick();
        let r = report();
        assert!(r[0].burn_long > 2.0, "{:?}", r[0]);
        assert!(r[0].burn_short > 2.0, "{:?}", r[0]);
        assert!(r[0].burning, "{:?}", r[0]);
        let burn = crate::metrics::registry().gauge("slo.query.burn_long").unwrap();
        assert!(burn > 2.0, "{burn}");
        reset();
        crate::metrics::registry().reset();
    }

    #[test]
    fn idle_objective_reports_full_compliance() {
        let _guard = test_lock::lock();
        crate::metrics::registry().reset();
        reset();
        configure(vec![spec(60.0)]);
        force_tick();
        let r = report();
        assert_eq!(r[0].total, 0);
        assert_eq!(r[0].compliance, 1.0);
        assert!(!r[0].burning);
        reset();
        crate::metrics::registry().reset();
    }

    #[test]
    fn client_side_burn_matches_expectation() {
        let lat: Vec<f64> = (0..100).map(|i| if i < 80 { 10.0 } else { 500.0 }).collect();
        let (compliance, burn) = burn_of_samples(&lat, 0.9, 100.0);
        assert!((compliance - 0.8).abs() < 1e-9);
        assert!((burn - 2.0).abs() < 1e-9, "{burn}");
        let (c_empty, b_empty) = burn_of_samples(&[], 0.99, 1.0);
        assert_eq!((c_empty, b_empty), (1.0, 0.0));
    }
}
