//! RAII timing spans, the per-module wall-clock aggregate and per-kernel
//! timers.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::{enabled, have_sinks, log_level, now_ns, Event, EventKind, Level};

// ---------------------------------------------------------------------------
// Activation
// ---------------------------------------------------------------------------

static TIMING: AtomicBool = AtomicBool::new(false);

/// Turns the in-process per-module wall-clock aggregate on or off. Spans are
/// live whenever this is on, a sink is installed, or the stderr level is at
/// least `debug`; otherwise [`SpanGuard::enter`] is an atomic-load no-op.
pub fn set_timing(on: bool) {
    TIMING.store(on, Ordering::Relaxed);
}

/// Whether the per-module aggregate is collecting.
pub fn timing_enabled() -> bool {
    TIMING.load(Ordering::Relaxed)
}

fn spans_active() -> bool {
    enabled() && (timing_enabled() || have_sinks() || log_level() >= Level::Debug)
}

// ---------------------------------------------------------------------------
// Thread-local span stack
// ---------------------------------------------------------------------------

thread_local! {
    /// Per-frame accumulator of completed child-span nanoseconds; the
    /// parent subtracts it on drop to get its exclusive time. One stack per
    /// thread makes spans opened inside parallel workers independent.
    static CHILD_NS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

pub(crate) fn current_depth() -> u32 {
    CHILD_NS.with(|s| s.borrow().len() as u32)
}

// ---------------------------------------------------------------------------
// Module tags
// ---------------------------------------------------------------------------

thread_local! {
    /// Stack of model-module tags (`eam.rgcn`, `decode.entity`, ...) pushed
    /// by layer forward passes via [`module_scope`]. Unlike spans, this is
    /// always on — it exists so low-level kernels can name the module that
    /// called them in diagnostics (e.g. gather bounds violations), and a
    /// `&'static str` push/pop costs nanoseconds.
    static MODULE_TAGS: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard that pops the module tag pushed by [`module_scope`].
pub struct ModuleTagGuard(());

impl Drop for ModuleTagGuard {
    fn drop(&mut self) {
        MODULE_TAGS.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Tags the current thread as executing inside `name` until the returned
/// guard drops. Kernels read it back with [`current_module`] to attribute
/// index/bounds diagnostics to the layer that issued the op.
pub fn module_scope(name: &'static str) -> ModuleTagGuard {
    MODULE_TAGS.with(|s| s.borrow_mut().push(name));
    ModuleTagGuard(())
}

/// Innermost module tag on this thread, or `"<untagged>"` when no layer is
/// on the stack (direct kernel calls, tests).
pub fn current_module() -> &'static str {
    MODULE_TAGS.with(|s| s.borrow().last().copied().unwrap_or("<untagged>"))
}

// ---------------------------------------------------------------------------
// Module aggregate
// ---------------------------------------------------------------------------

/// Aggregated wall-clock for one span name.
#[derive(Clone, Debug, PartialEq)]
pub struct ModuleTime {
    /// Dotted span name (e.g. `eam.rgcn`).
    pub name: String,
    /// Times the span ran.
    pub count: u64,
    /// Total (inclusive) nanoseconds.
    pub total_ns: u64,
    /// Exclusive nanoseconds: total minus time spent in child spans.
    pub exclusive_ns: u64,
}

#[derive(Clone, Copy, Default)]
struct Agg {
    count: u64,
    total_ns: u64,
    exclusive_ns: u64,
}

fn aggregate() -> &'static Mutex<HashMap<String, Agg>> {
    static AGG: OnceLock<Mutex<HashMap<String, Agg>>> = OnceLock::new();
    AGG.get_or_init(|| Mutex::new(HashMap::new()))
}

fn record_module(name: &str, total_ns: u64, exclusive_ns: u64) {
    let mut agg = aggregate().lock().unwrap_or_else(|e| e.into_inner());
    let e = agg.entry(name.to_string()).or_default();
    e.count += 1;
    e.total_ns += total_ns;
    e.exclusive_ns += exclusive_ns;
}

/// Snapshot of the per-module aggregate, sorted by exclusive time
/// descending.
pub fn timing_snapshot() -> Vec<ModuleTime> {
    let agg = aggregate().lock().unwrap_or_else(|e| e.into_inner());
    let mut out: Vec<ModuleTime> = agg
        .iter()
        .map(|(name, a)| ModuleTime {
            name: name.clone(),
            count: a.count,
            total_ns: a.total_ns,
            exclusive_ns: a.exclusive_ns,
        })
        .collect();
    out.sort_by(|a, b| b.exclusive_ns.cmp(&a.exclusive_ns).then(a.name.cmp(&b.name)));
    out
}

/// Clears the per-module aggregate (tests; fresh CLI runs).
pub fn reset_timing() {
    aggregate().lock().unwrap_or_else(|e| e.into_inner()).clear();
    kernel_aggregate().lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// Renders the flame-style summary: exclusive-time shares sum to 100%.
pub fn render_timing_table(rows: &[ModuleTime]) -> String {
    use std::fmt::Write as _;
    let grand: u64 = rows.iter().map(|m| m.exclusive_ns).sum();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} {:>8} {:>12} {:>12} {:>7}",
        "span", "count", "total", "exclusive", "share"
    );
    for m in rows {
        let share = if grand == 0 { 0.0 } else { 100.0 * m.exclusive_ns as f64 / grand as f64 };
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>10.3}ms {:>10.3}ms {:>6.2}%",
            m.name,
            m.count,
            m.total_ns as f64 / 1e6,
            m.exclusive_ns as f64 / 1e6,
            share
        );
    }
    out
}

// ---------------------------------------------------------------------------
// SpanGuard
// ---------------------------------------------------------------------------

struct ActiveSpan {
    name: String,
    fields: Vec<(String, f64)>,
    start: Instant,
    start_ns: u64,
    depth: u32,
    /// `(span_id, adopted frames)` when the thread is recording into live
    /// request traces (see [`crate::trace`]).
    trace: Option<(u64, Vec<crate::trace::TraceFrame>)>,
}

/// RAII guard for one timing span; created by the [`crate::span!`] macro.
/// Recording happens on drop, so a panicking region is still measured and
/// the thread-local stack unwinds correctly.
#[must_use = "a span ends when its guard drops — bind it to a variable"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// Opens a span (inert when tracing is inactive and no request trace is
    /// adopted on this thread).
    pub fn enter(name: &str, fields: &[(&str, f64)]) -> SpanGuard {
        let trace = crate::trace::span_enter();
        if !spans_active() && trace.is_none() {
            return SpanGuard { active: None };
        }
        let depth = CHILD_NS.with(|s| {
            let mut stack = s.borrow_mut();
            stack.push(0);
            stack.len() as u32 - 1
        });
        SpanGuard {
            active: Some(ActiveSpan {
                name: name.to_string(),
                fields: fields.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
                start: Instant::now(),
                start_ns: now_ns(),
                depth,
                trace,
            }),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(span) = self.active.take() else { return };
        let dur_ns = span.start.elapsed().as_nanos() as u64;
        let child_ns = CHILD_NS.with(|s| {
            let mut stack = s.borrow_mut();
            let own_children = stack.pop().unwrap_or(0);
            if let Some(parent) = stack.last_mut() {
                *parent += dur_ns;
            }
            own_children
        });
        record_module(&span.name, dur_ns, dur_ns.saturating_sub(child_ns));
        let mut trace_ctx = None;
        if let Some((span_id, frames)) = &span.trace {
            crate::trace::span_exit(frames, *span_id, &span.name, span.start_ns, dur_ns);
            trace_ctx = frames.first().map(|f| crate::trace::TraceCtx {
                trace_id: f.trace_id,
                span_id: *span_id,
                parent: f.parent,
            });
        }
        if have_sinks() || log_level() >= Level::Debug {
            crate::emit(Event {
                kind: EventKind::Span,
                level: Level::Debug,
                name: span.name,
                thread: crate::current_thread(),
                depth: span.depth,
                start_ns: span.start_ns,
                dur_ns: Some(dur_ns),
                fields: span.fields,
                message: None,
                trace: trace_ctx,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Kernel timers
// ---------------------------------------------------------------------------

static KERNEL: AtomicBool = AtomicBool::new(false);

/// Enables per-kernel timing ([`kernel_span`] call sites inside
/// `retia-tensor`). Off by default: kernels run orders of magnitude more
/// often than module spans, so this is a separate, opt-in knob (the CLI
/// turns it on at `--log-level trace`).
pub fn set_kernel_timing(on: bool) {
    KERNEL.store(on, Ordering::Relaxed);
}

/// Whether kernel timers are live.
pub fn kernel_timing_enabled() -> bool {
    KERNEL.load(Ordering::Relaxed) && enabled()
}

fn kernel_aggregate() -> &'static Mutex<HashMap<&'static str, Agg>> {
    static AGG: OnceLock<Mutex<HashMap<&'static str, Agg>>> = OnceLock::new();
    AGG.get_or_init(|| Mutex::new(HashMap::new()))
}

/// RAII timer for one tensor-kernel invocation. Aggregate-only: kernel
/// timings never produce per-call events (they would flood a trace), they
/// feed [`kernel_timing_snapshot`].
pub struct KernelGuard {
    name: &'static str,
    start: Instant,
}

/// Opens a kernel timer when kernel timing is enabled; `None` otherwise
/// (one atomic load on the fast path).
#[inline]
pub fn kernel_span(name: &'static str) -> Option<KernelGuard> {
    if !kernel_timing_enabled() {
        return None;
    }
    Some(KernelGuard { name, start: Instant::now() })
}

impl Drop for KernelGuard {
    fn drop(&mut self) {
        let dur = self.start.elapsed().as_nanos() as u64;
        let mut agg = kernel_aggregate().lock().unwrap_or_else(|e| e.into_inner());
        let e = agg.entry(self.name).or_default();
        e.count += 1;
        e.total_ns += dur;
        e.exclusive_ns += dur;
    }
}

/// Snapshot of per-kernel wall-clock, sorted by total time descending.
pub fn kernel_timing_snapshot() -> Vec<ModuleTime> {
    let agg = kernel_aggregate().lock().unwrap_or_else(|e| e.into_inner());
    let mut out: Vec<ModuleTime> = agg
        .iter()
        .map(|(name, a)| ModuleTime {
            name: format!("kernel.{name}"),
            count: a.count,
            total_ns: a.total_ns,
            exclusive_ns: a.exclusive_ns,
        })
        .collect();
    out.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    fn find<'a>(rows: &'a [ModuleTime], name: &str) -> &'a ModuleTime {
        rows.iter().find(|m| m.name == name).unwrap_or_else(|| panic!("no row `{name}`"))
    }

    #[test]
    fn nested_spans_split_inclusive_and_exclusive_time() {
        let _guard = test_lock::lock();
        reset_timing();
        set_timing(true);
        {
            let _outer = crate::span!("outer.total");
            std::thread::sleep(std::time::Duration::from_millis(4));
            {
                let _inner = crate::span!("outer.child", step = 1);
                std::thread::sleep(std::time::Duration::from_millis(4));
            }
        }
        set_timing(false);
        let rows = timing_snapshot();
        let outer = find(&rows, "outer.total");
        let child = find(&rows, "outer.child");
        assert_eq!(outer.count, 1);
        assert_eq!(child.count, 1);
        assert!(outer.total_ns >= child.total_ns + 3_000_000, "outer contains child");
        assert!(
            outer.exclusive_ns <= outer.total_ns - child.total_ns,
            "exclusive excludes the child: {outer:?} vs {child:?}"
        );
        assert_eq!(child.exclusive_ns, child.total_ns, "leaf span is all exclusive");
    }

    #[test]
    fn inert_spans_record_nothing() {
        let _guard = test_lock::lock();
        reset_timing();
        set_timing(false);
        {
            let _s = crate::span!("inert.nothing");
        }
        assert!(timing_snapshot().iter().all(|m| m.name != "inert.nothing"));
    }

    #[test]
    fn spans_survive_panics() {
        let _guard = test_lock::lock();
        reset_timing();
        set_timing(true);
        let r = std::panic::catch_unwind(|| {
            let _s = crate::span!("panicky.region");
            panic!("boom");
        });
        assert!(r.is_err());
        set_timing(false);
        let rows = timing_snapshot();
        assert_eq!(find(&rows, "panicky.region").count, 1);
        assert_eq!(current_depth(), 0, "stack unwound cleanly");
    }

    #[test]
    fn spans_on_worker_threads_are_independent() {
        let _guard = test_lock::lock();
        reset_timing();
        set_timing(true);
        let _outer = crate::span!("main.outer");
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let _w = crate::span!("worker.span");
                });
            }
        });
        drop(_outer);
        set_timing(false);
        let rows = timing_snapshot();
        let w = find(&rows, "worker.span");
        assert_eq!(w.count, 4);
        // Worker spans are roots of their own thread's stack, so they do not
        // subtract from the main thread's span.
        assert_eq!(w.exclusive_ns, w.total_ns);
    }

    #[test]
    fn kernel_timer_is_optin_and_aggregates() {
        let _guard = test_lock::lock();
        reset_timing();
        set_kernel_timing(false);
        assert!(kernel_span("matmul").is_none());
        set_kernel_timing(true);
        for _ in 0..3 {
            let _k = kernel_span("matmul");
        }
        set_kernel_timing(false);
        let rows = kernel_timing_snapshot();
        assert_eq!(find(&rows, "kernel.matmul").count, 3);
    }

    #[test]
    fn render_table_shares_sum_to_100() {
        let rows = vec![
            ModuleTime { name: "a".into(), count: 2, total_ns: 600, exclusive_ns: 600 },
            ModuleTime { name: "b".into(), count: 1, total_ns: 400, exclusive_ns: 400 },
        ];
        let table = render_timing_table(&rows);
        assert!(table.contains("60.00%"), "{table}");
        assert!(table.contains("40.00%"), "{table}");
    }
}
