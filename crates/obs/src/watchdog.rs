//! Non-finite-value watchdog.
//!
//! Recurrent TKG models diverge silently: a NaN born in one LSTM gate
//! propagates through ranking and only surfaces as a suspicious final MRR
//! (the PR-1 NaN-blind-ranking bug). The watchdog scans tensors the trainer
//! hands it and fires a **warn event on the first step** a tag goes
//! non-finite, plus counters for every occurrence:
//!
//! * counter `nonfinite.values` — total non-finite scalars seen;
//! * counter `nonfinite.<tag>` — per-tag occurrences;
//! * gauge `nonfinite.first_step.<tag>` — the step of first detection.

use std::collections::HashSet;
use std::sync::{Mutex, OnceLock};

use crate::{metrics, Level};

fn seen() -> &'static Mutex<HashSet<String>> {
    static SEEN: OnceLock<Mutex<HashSet<String>>> = OnceLock::new();
    SEEN.get_or_init(|| Mutex::new(HashSet::new()))
}

/// Number of NaN/±inf values in `xs` (plain scan; autovectorizes).
pub fn count_non_finite(xs: &[f32]) -> usize {
    xs.iter().filter(|x| !x.is_finite()).count()
}

/// Scans a tensor's data under `tag` at `step`. Returns the non-finite
/// count, firing the watchdog on the first hit for this tag.
pub fn check_slice(tag: &str, step: u64, xs: &[f32]) -> usize {
    if !crate::enabled() {
        return 0;
    }
    let n = count_non_finite(xs);
    if n > 0 {
        fire(tag, step, n as u64, xs.len() as u64);
    }
    n
}

/// Checks one scalar (a loss value) under `tag` at `step`. Returns true if
/// it was non-finite.
pub fn check_value(tag: &str, step: u64, v: f64) -> bool {
    if !crate::enabled() {
        return false;
    }
    let bad = !v.is_finite();
    if bad {
        fire(tag, step, 1, 1);
    }
    bad
}

fn fire(tag: &str, step: u64, count: u64, total: u64) {
    metrics::inc_by("nonfinite.values", count);
    metrics::inc_by(&format!("nonfinite.{tag}"), count);
    let first = {
        let mut s = seen().lock().unwrap_or_else(|e| e.into_inner());
        s.insert(tag.to_string())
    };
    if first {
        metrics::set_gauge(&format!("nonfinite.first_step.{tag}"), step as f64);
        crate::emit_event(
            Level::Warn,
            &format!("nonfinite.{tag}"),
            &[("step", step as f64), ("count", count as f64), ("total", total as f64)],
            Some(&format!(
                "`{tag}` first went non-finite at step {step} ({count}/{total} values); \
                 the run has likely diverged"
            )),
        );
    }
}

// ---- divergence-recovery events --------------------------------------------
//
// The trainer's RecoveryPolicy reports every decision through these helpers
// so tests (and trace consumers) can assert the exact skip → rollback →
// abort sequence. Unlike the first-fire warn above, recovery events fire on
// every occurrence — each one is a distinct decision.

/// The trainer skipped an optimizer step because loss/gradients were
/// non-finite. `streak` is the current consecutive-bad-step count.
pub fn recovery_skip(step: u64, streak: u64) {
    metrics::inc("recovery.skipped_steps");
    crate::emit_event(
        Level::Warn,
        "recovery.skip",
        &[("step", step as f64), ("streak", streak as f64)],
        Some(&format!(
            "step {step}: non-finite loss/gradients — optimizer step skipped \
             (bad-step streak {streak})"
        )),
    );
}

/// The trainer rolled parameters and optimizer state back to the last-good
/// snapshot and backed the learning rate off to `new_lr`.
pub fn recovery_rollback(step: u64, rollbacks: u64, new_lr: f64) {
    metrics::inc("recovery.rollbacks");
    metrics::set_gauge("recovery.lr", new_lr);
    crate::emit_event(
        Level::Warn,
        "recovery.rollback",
        &[("step", step as f64), ("rollbacks", rollbacks as f64), ("lr", new_lr)],
        Some(&format!(
            "step {step}: rolled back to last-good snapshot (rollback #{rollbacks}), \
             learning rate now {new_lr:.3e}"
        )),
    );
}

/// The retry budget is exhausted; the trainer is aborting the run.
pub fn recovery_abort(step: u64, rollbacks: u64) {
    metrics::inc("recovery.aborts");
    crate::emit_event(
        Level::Error,
        "recovery.abort",
        &[("step", step as f64), ("rollbacks", rollbacks as f64)],
        Some(&format!(
            "step {step}: divergence recovery budget exhausted after {rollbacks} \
             rollback(s) — aborting instead of training on garbage"
        )),
    );
}

/// Whether the watchdog has already fired for `tag` in this process.
pub fn fired(tag: &str) -> bool {
    seen().lock().unwrap_or_else(|e| e.into_inner()).contains(tag)
}

/// Forgets all first-fire state (tests).
pub fn reset() {
    seen().lock().unwrap_or_else(|e| e.into_inner()).clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn counts_non_finite_values() {
        assert_eq!(count_non_finite(&[1.0, 2.0, 3.0]), 0);
        assert_eq!(count_non_finite(&[f32::NAN, 1.0, f32::INFINITY, f32::NEG_INFINITY]), 3);
        assert_eq!(count_non_finite(&[]), 0);
    }

    #[test]
    fn fires_warn_event_once_per_tag() {
        let _guard = test_lock::lock();
        reset();
        crate::metrics::registry().reset();
        let (sink, handle) = crate::CaptureSink::new();
        let id = crate::add_sink(Box::new(sink));
        let me = crate::current_thread();

        assert_eq!(check_slice("grad.test_w", 3, &[1.0, f32::NAN, f32::NAN]), 2);
        assert_eq!(check_slice("grad.test_w", 4, &[f32::NAN]), 1);
        crate::remove_sink(id);

        let events: Vec<_> = handle
            .events()
            .into_iter()
            .filter(|e| e.thread == me && e.name == "nonfinite.grad.test_w")
            .collect();
        assert_eq!(events.len(), 1, "warn event fires only on first detection");
        assert_eq!(events[0].level, Level::Warn);
        assert!(events[0].fields.iter().any(|(k, v)| k == "step" && *v == 3.0));
        assert!(fired("grad.test_w"));
        assert_eq!(crate::metrics::registry().counter("nonfinite.grad.test_w"), 3);
        assert_eq!(crate::metrics::registry().gauge("nonfinite.first_step.grad.test_w"), Some(3.0));
    }

    #[test]
    fn healthy_values_never_fire() {
        let _guard = test_lock::lock();
        reset();
        assert_eq!(check_slice("grad.healthy", 1, &[0.5, -0.5, 1e30]), 0);
        assert!(!check_value("loss.healthy", 1, 0.25));
        assert!(!fired("grad.healthy"));
        assert!(!fired("loss.healthy"));
    }

    #[test]
    fn scalar_check_detects_nan_and_inf() {
        let _guard = test_lock::lock();
        reset();
        assert!(check_value("loss.test_scalar", 2, f64::NAN));
        assert!(check_value("loss.test_scalar", 3, f64::INFINITY));
        assert!(fired("loss.test_scalar"));
    }

    #[test]
    fn recovery_events_fire_every_time() {
        let _guard = test_lock::lock();
        crate::metrics::registry().reset();
        let (sink, handle) = crate::CaptureSink::new();
        let id = crate::add_sink(Box::new(sink));
        let me = crate::current_thread();

        recovery_skip(10, 1);
        recovery_skip(11, 2);
        recovery_rollback(12, 1, 5e-4);
        recovery_abort(20, 3);
        crate::remove_sink(id);

        let names: Vec<String> = handle
            .events()
            .into_iter()
            .filter(|e| e.thread == me && e.name.starts_with("recovery."))
            .map(|e| e.name)
            .collect();
        assert_eq!(
            names,
            ["recovery.skip", "recovery.skip", "recovery.rollback", "recovery.abort"]
        );
        assert_eq!(crate::metrics::registry().counter("recovery.skipped_steps"), 2);
        assert_eq!(crate::metrics::registry().counter("recovery.rollbacks"), 1);
        assert_eq!(crate::metrics::registry().counter("recovery.aborts"), 1);
        assert_eq!(crate::metrics::registry().gauge("recovery.lr"), Some(5e-4));
    }
}
