//! Log levels and the `RETIA_LOG` knob.

use std::sync::atomic::{AtomicU8, Ordering};

/// Verbosity of an event, ordered `Off < Error < Warn < Info < Debug <
/// Trace`. The stderr logger prints an event when `event.level <=
/// log_level()`; `Off` silences everything (no event carries level `Off`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Print nothing (only meaningful as a filter setting).
    Off = 0,
    /// Unrecoverable problems.
    Error = 1,
    /// Suspicious conditions — the NaN watchdog fires here.
    Warn = 2,
    /// Run progress: epochs, losses, checkpoints. The default.
    Info = 3,
    /// Per-step detail: spans, per-parameter gradient norms.
    Debug = 4,
    /// Everything, including per-kernel timing.
    Trace = 5,
}

impl Level {
    /// Parses the `RETIA_LOG` / `--log-level` spelling (case-insensitive).
    pub fn parse(s: &str) -> Result<Level, String> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "none" => Ok(Level::Off),
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!(
                "unknown log level `{other}` (expected off|error|warn|info|debug|trace)"
            )),
        }
    }

    /// Canonical lower-case name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Off,
            1 => Level::Error,
            2 => Level::Warn,
            4 => Level::Debug,
            5 => Level::Trace,
            _ => Level::Info,
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

const UNSET: u8 = u8::MAX;
static LEVEL: AtomicU8 = AtomicU8::new(UNSET);

/// The active stderr log level: the [`set_log_level`] override if any, else
/// `RETIA_LOG` (read once), else [`Level::Info`].
pub fn log_level() -> Level {
    let v = LEVEL.load(Ordering::Relaxed);
    if v != UNSET {
        return Level::from_u8(v);
    }
    let initial =
        std::env::var("RETIA_LOG").ok().and_then(|s| Level::parse(&s).ok()).unwrap_or(Level::Info);
    // First caller wins; a concurrent set_log_level simply overwrites.
    let _ = LEVEL.compare_exchange(UNSET, initial as u8, Ordering::Relaxed, Ordering::Relaxed);
    Level::from_u8(LEVEL.load(Ordering::Relaxed))
}

/// Programmatic override of the stderr log level (`--log-level`).
pub fn set_log_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_all_spellings() {
        assert_eq!(Level::parse("OFF").unwrap(), Level::Off);
        assert_eq!(Level::parse("Error").unwrap(), Level::Error);
        assert_eq!(Level::parse("warning").unwrap(), Level::Warn);
        assert_eq!(Level::parse("info").unwrap(), Level::Info);
        assert_eq!(Level::parse("debug").unwrap(), Level::Debug);
        assert_eq!(Level::parse("trace").unwrap(), Level::Trace);
        assert!(Level::parse("loud").is_err());
    }

    #[test]
    fn ordering_matches_verbosity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
        assert!(Level::Off < Level::Error);
    }

    #[test]
    fn as_str_roundtrips() {
        for l in [Level::Off, Level::Error, Level::Warn, Level::Info, Level::Debug, Level::Trace] {
            assert_eq!(Level::parse(l.as_str()).unwrap(), l);
        }
    }

    #[test]
    fn set_log_level_overrides() {
        let _guard = crate::test_lock::lock();
        let before = log_level();
        set_log_level(Level::Error);
        assert_eq!(log_level(), Level::Error);
        set_log_level(before);
    }
}
