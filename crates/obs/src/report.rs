//! Turning a JSON-lines trace into a per-module time breakdown.
//!
//! A trace file lists spans in *end order* per thread (guards drop children
//! before parents), which permits a one-pass exclusive-time computation:
//! per thread, keep an accumulator of completed child time per depth; a
//! span at depth `d` subtracts the accumulator at `d + 1` and adds its own
//! duration to the accumulator at `d`.

use std::collections::HashMap;

use crate::{Event, EventKind};

/// Aggregated time for one module (first dotted segment of span names).
#[derive(Clone, Debug, PartialEq)]
pub struct ModuleShare {
    /// Module name (`eam`, `ram`, `tim`, `decode`, `backward`, …).
    pub module: String,
    /// Spans aggregated into this module.
    pub count: u64,
    /// Inclusive nanoseconds.
    pub total_ns: u64,
    /// Exclusive nanoseconds (children subtracted).
    pub exclusive_ns: u64,
    /// Fraction of the trace's total exclusive time, in percent. Shares
    /// over all modules sum to ~100 by construction.
    pub share_pct: f64,
}

/// Parses a JSON-lines trace, keeping line order. Fails on the first
/// malformed line with its 1-based line number.
pub fn parse_trace(text: &str) -> Result<Vec<Event>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = retia_json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        out.push(Event::from_json(&doc).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

/// First dotted segment of a span name.
fn module_of(name: &str) -> &str {
    name.split('.').next().unwrap_or(name)
}

/// Groups the trace's spans by module and computes inclusive/exclusive time
/// and exclusive-time shares. Events must be in file order (see module
/// docs); point events are ignored.
pub fn module_breakdown(events: &[Event]) -> Vec<ModuleShare> {
    struct Acc {
        count: u64,
        total_ns: u64,
        exclusive_ns: u64,
    }
    let mut per_module: HashMap<String, Acc> = HashMap::new();
    // thread -> (depth -> completed child nanoseconds awaiting their parent)
    let mut pending_child: HashMap<u64, HashMap<u32, u64>> = HashMap::new();

    for ev in events {
        if ev.kind != EventKind::Span {
            continue;
        }
        let dur = ev.dur_ns.unwrap_or(0);
        let depths = pending_child.entry(ev.thread).or_default();
        let child_ns = depths.remove(&(ev.depth + 1)).unwrap_or(0);
        *depths.entry(ev.depth).or_insert(0) += dur;
        let acc = per_module.entry(module_of(&ev.name).to_string()).or_insert(Acc {
            count: 0,
            total_ns: 0,
            exclusive_ns: 0,
        });
        acc.count += 1;
        acc.total_ns += dur;
        acc.exclusive_ns += dur.saturating_sub(child_ns);
    }

    let grand: u64 = per_module.values().map(|a| a.exclusive_ns).sum();
    let mut out: Vec<ModuleShare> = per_module
        .into_iter()
        .map(|(module, a)| ModuleShare {
            module,
            count: a.count,
            total_ns: a.total_ns,
            exclusive_ns: a.exclusive_ns,
            share_pct: if grand == 0 { 0.0 } else { 100.0 * a.exclusive_ns as f64 / grand as f64 },
        })
        .collect();
    out.sort_by(|a, b| b.exclusive_ns.cmp(&a.exclusive_ns).then(a.module.cmp(&b.module)));
    out
}

/// Renders the breakdown as the table the CLI `report` subcommand prints.
pub fn render_breakdown(rows: &[ModuleShare]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>8} {:>12} {:>12} {:>7}",
        "module", "spans", "total", "exclusive", "share"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<12} {:>8} {:>10.3}ms {:>10.3}ms {:>6.2}%",
            r.module,
            r.count,
            r.total_ns as f64 / 1e6,
            r.exclusive_ns as f64 / 1e6,
            r.share_pct
        );
    }
    let total_share: f64 = rows.iter().map(|r| r.share_pct).sum();
    let _ = writeln!(out, "{:<12} {:>8} {:>12} {:>12} {:>6.2}%", "(sum)", "", "", "", total_share);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Level;

    fn span(name: &str, thread: u64, depth: u32, start_ns: u64, dur_ns: u64) -> Event {
        Event {
            kind: EventKind::Span,
            level: Level::Debug,
            name: name.to_string(),
            thread,
            depth,
            start_ns,
            dur_ns: Some(dur_ns),
            fields: Vec::new(),
            message: None,
        }
    }

    #[test]
    fn breakdown_subtracts_children_and_shares_sum_to_100() {
        // End-order trace: eam child (depth 1) ends before its train parent
        // (depth 0); a second thread contributes an independent ram span.
        let events = vec![
            span("eam.rgcn", 0, 1, 10, 300),
            span("decode.entity", 0, 1, 320, 200),
            span("train.step", 0, 0, 0, 1000),
            span("ram.rgcn", 1, 0, 0, 500),
        ];
        let rows = module_breakdown(&events);
        let get = |m: &str| rows.iter().find(|r| r.module == m).unwrap();
        assert_eq!(get("eam").exclusive_ns, 300);
        assert_eq!(get("decode").exclusive_ns, 200);
        assert_eq!(get("train").total_ns, 1000);
        assert_eq!(get("train").exclusive_ns, 500, "children subtracted");
        assert_eq!(get("ram").exclusive_ns, 500);
        let total: f64 = rows.iter().map(|r| r.share_pct).sum();
        assert!((total - 100.0).abs() < 1e-9, "shares sum to {total}");
    }

    #[test]
    fn point_events_are_ignored() {
        let mut ev = span("train.step", 0, 0, 0, 100);
        ev.kind = EventKind::Point;
        ev.dur_ns = None;
        assert!(module_breakdown(&[ev]).is_empty());
    }

    #[test]
    fn parse_trace_reports_line_numbers() {
        let good = span("a.b", 0, 0, 0, 5).to_json().to_string_compact();
        let text = format!("{good}\n\nnot json\n");
        let err = parse_trace(&text).unwrap_err();
        assert!(err.starts_with("line 3"), "{err}");
        assert_eq!(parse_trace(&good).unwrap().len(), 1);
    }

    #[test]
    fn render_includes_sum_row() {
        let events = vec![span("eam.rgcn", 0, 0, 0, 100)];
        let table = render_breakdown(&module_breakdown(&events));
        assert!(table.contains("eam"));
        assert!(table.contains("(sum)"));
        assert!(table.contains("100.00%"));
    }
}
