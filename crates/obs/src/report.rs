//! Turning a JSON-lines trace into a per-module time breakdown.
//!
//! A trace file lists spans in *end order* per thread (guards drop children
//! before parents), which permits a one-pass exclusive-time computation:
//! per thread, keep an accumulator of completed child time per depth; a
//! span at depth `d` subtracts the accumulator at `d + 1` and adds its own
//! duration to the accumulator at `d`.

use std::collections::HashMap;

use crate::{Event, EventKind};
use retia_json::Value;

/// Aggregated time for one module (first dotted segment of span names).
#[derive(Clone, Debug, PartialEq)]
pub struct ModuleShare {
    /// Module name (`eam`, `ram`, `tim`, `decode`, `backward`, …).
    pub module: String,
    /// Spans aggregated into this module.
    pub count: u64,
    /// Inclusive nanoseconds.
    pub total_ns: u64,
    /// Exclusive nanoseconds (children subtracted).
    pub exclusive_ns: u64,
    /// Fraction of the trace's total exclusive time, in percent. Shares
    /// over all modules sum to ~100 by construction.
    pub share_pct: f64,
}

/// Parses a JSON-lines trace, keeping line order. Fails on the first
/// malformed line with its 1-based line number.
pub fn parse_trace(text: &str) -> Result<Vec<Event>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = retia_json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        out.push(Event::from_json(&doc).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

/// First dotted segment of a span name.
fn module_of(name: &str) -> &str {
    name.split('.').next().unwrap_or(name)
}

/// Groups the trace's spans by module and computes inclusive/exclusive time
/// and exclusive-time shares. Events must be in file order (see module
/// docs); point events are ignored.
pub fn module_breakdown(events: &[Event]) -> Vec<ModuleShare> {
    struct Acc {
        count: u64,
        total_ns: u64,
        exclusive_ns: u64,
    }
    let mut per_module: HashMap<String, Acc> = HashMap::new();
    // thread -> (depth -> completed child nanoseconds awaiting their parent)
    let mut pending_child: HashMap<u64, HashMap<u32, u64>> = HashMap::new();

    for ev in events {
        if ev.kind != EventKind::Span {
            continue;
        }
        let dur = ev.dur_ns.unwrap_or(0);
        let depths = pending_child.entry(ev.thread).or_default();
        let child_ns = depths.remove(&(ev.depth + 1)).unwrap_or(0);
        *depths.entry(ev.depth).or_insert(0) += dur;
        let acc = per_module.entry(module_of(&ev.name).to_string()).or_insert(Acc {
            count: 0,
            total_ns: 0,
            exclusive_ns: 0,
        });
        acc.count += 1;
        acc.total_ns += dur;
        acc.exclusive_ns += dur.saturating_sub(child_ns);
    }

    let grand: u64 = per_module.values().map(|a| a.exclusive_ns).sum();
    let mut out: Vec<ModuleShare> = per_module
        .into_iter()
        .map(|(module, a)| ModuleShare {
            module,
            count: a.count,
            total_ns: a.total_ns,
            exclusive_ns: a.exclusive_ns,
            share_pct: if grand == 0 { 0.0 } else { 100.0 * a.exclusive_ns as f64 / grand as f64 },
        })
        .collect();
    out.sort_by(|a, b| b.exclusive_ns.cmp(&a.exclusive_ns).then(a.module.cmp(&b.module)));
    out
}

/// Renders the breakdown as the table the CLI `report` subcommand prints.
pub fn render_breakdown(rows: &[ModuleShare]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>8} {:>12} {:>12} {:>7}",
        "module", "spans", "total", "exclusive", "share"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<12} {:>8} {:>10.3}ms {:>10.3}ms {:>6.2}%",
            r.module,
            r.count,
            r.total_ns as f64 / 1e6,
            r.exclusive_ns as f64 / 1e6,
            r.share_pct
        );
    }
    let total_share: f64 = rows.iter().map(|r| r.share_pct).sum();
    let _ = writeln!(out, "{:<12} {:>8} {:>12} {:>12} {:>6.2}%", "(sum)", "", "", "", total_share);
    out
}

/// One stage row extracted from a `/v1/traces` document.
struct RequestStage {
    name: String,
    span_id: u64,
    parent: u64,
    thread: u64,
    offset_ms: f64,
    dur_ms: f64,
    exclusive_ms: f64,
}

/// Renders a `/v1/traces` document (the serve layer's tail-sampled request
/// trace store) as one tree per request: every stage indented under its
/// parent span, with its offset from the first received byte, inclusive
/// duration, and exclusive time (children subtracted). Traces arrive newest
/// first and are printed in that order.
pub fn render_requests(doc: &Value) -> Result<String, String> {
    use std::fmt::Write as _;
    let traces = doc
        .get("traces")
        .and_then(Value::as_array)
        .ok_or("not a /v1/traces document: missing `traces` array")?;
    let mut out = String::new();
    if traces.is_empty() {
        out.push_str("no traces stored (is the server idle, or the store freshly reset?)\n");
        return Ok(out);
    }
    for t in traces {
        let trace_id = t.get("trace_id").and_then(Value::as_u64).unwrap_or(0);
        let endpoint = t.get("endpoint").and_then(Value::as_str).unwrap_or("?");
        let status = t.get("status").and_then(Value::as_u64).unwrap_or(0);
        let total_ms = t.get("total_ms").and_then(Value::as_f64).unwrap_or(0.0);
        let kept = t.get("kept").and_then(Value::as_str).unwrap_or("?");
        let _ = writeln!(
            out,
            "trace {trace_id}  {endpoint}  status={status}  total={total_ms:.3}ms  kept={kept}"
        );
        let stages: Vec<RequestStage> = t
            .get("stages")
            .and_then(Value::as_array)
            .map(|arr| {
                arr.iter()
                    .map(|s| RequestStage {
                        name: s.get("name").and_then(Value::as_str).unwrap_or("?").to_string(),
                        span_id: s.get("span_id").and_then(Value::as_u64).unwrap_or(0),
                        parent: s.get("parent").and_then(Value::as_u64).unwrap_or(0),
                        thread: s.get("thread").and_then(Value::as_u64).unwrap_or(0),
                        offset_ms: s.get("offset_ms").and_then(Value::as_f64).unwrap_or(0.0),
                        dur_ms: s.get("dur_ms").and_then(Value::as_f64).unwrap_or(0.0),
                        exclusive_ms: s.get("exclusive_ms").and_then(Value::as_f64).unwrap_or(0.0),
                    })
                    .collect()
            })
            .unwrap_or_default();
        // Children grouped by parent span id, each group in start order.
        let mut children: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, s) in stages.iter().enumerate() {
            children.entry(s.parent).or_default().push(i);
        }
        for v in children.values_mut() {
            v.sort_by(|&a, &b| {
                stages[a]
                    .offset_ms
                    .total_cmp(&stages[b].offset_ms)
                    .then(stages[a].span_id.cmp(&stages[b].span_id))
            });
        }
        // Depth-first walk from the request root (parent 0); a stage whose
        // parent never appears (stray frame) is surfaced at the root rather
        // than dropped. A visited mask guards against malformed cycles.
        let span_ids: std::collections::HashSet<u64> = stages.iter().map(|s| s.span_id).collect();
        let mut roots: Vec<usize> = (0..stages.len())
            .filter(|&i| stages[i].parent == 0 || !span_ids.contains(&stages[i].parent))
            .collect();
        roots.sort_by(|&a, &b| {
            stages[a]
                .offset_ms
                .total_cmp(&stages[b].offset_ms)
                .then(stages[a].span_id.cmp(&stages[b].span_id))
        });
        let mut visited = vec![false; stages.len()];
        let mut stack: Vec<(usize, usize)> = roots.into_iter().rev().map(|i| (i, 0)).collect();
        while let Some((i, depth)) = stack.pop() {
            if std::mem::replace(&mut visited[i], true) {
                continue;
            }
            let s = &stages[i];
            let _ = writeln!(
                out,
                "  {:indent$}{:<w$} +{:>9.3}ms  dur {:>9.3}ms  excl {:>9.3}ms  [t{}]",
                "",
                s.name,
                s.offset_ms,
                s.dur_ms,
                s.exclusive_ms,
                s.thread,
                indent = depth * 2,
                w = 24usize.saturating_sub(depth * 2),
            );
            if let Some(kids) = children.get(&s.span_id) {
                // Self-parented stages would loop; the visited mask above
                // and this skip keep malformed input from recursing.
                for &k in kids.iter().rev().filter(|&&k| k != i) {
                    stack.push((k, depth + 1));
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Level;

    fn span(name: &str, thread: u64, depth: u32, start_ns: u64, dur_ns: u64) -> Event {
        Event {
            kind: EventKind::Span,
            level: Level::Debug,
            name: name.to_string(),
            thread,
            depth,
            start_ns,
            dur_ns: Some(dur_ns),
            fields: Vec::new(),
            message: None,
            trace: None,
        }
    }

    #[test]
    fn breakdown_subtracts_children_and_shares_sum_to_100() {
        // End-order trace: eam child (depth 1) ends before its train parent
        // (depth 0); a second thread contributes an independent ram span.
        let events = vec![
            span("eam.rgcn", 0, 1, 10, 300),
            span("decode.entity", 0, 1, 320, 200),
            span("train.step", 0, 0, 0, 1000),
            span("ram.rgcn", 1, 0, 0, 500),
        ];
        let rows = module_breakdown(&events);
        let get = |m: &str| rows.iter().find(|r| r.module == m).unwrap();
        assert_eq!(get("eam").exclusive_ns, 300);
        assert_eq!(get("decode").exclusive_ns, 200);
        assert_eq!(get("train").total_ns, 1000);
        assert_eq!(get("train").exclusive_ns, 500, "children subtracted");
        assert_eq!(get("ram").exclusive_ns, 500);
        let total: f64 = rows.iter().map(|r| r.share_pct).sum();
        assert!((total - 100.0).abs() < 1e-9, "shares sum to {total}");
    }

    #[test]
    fn point_events_are_ignored() {
        let mut ev = span("train.step", 0, 0, 0, 100);
        ev.kind = EventKind::Point;
        ev.dur_ns = None;
        assert!(module_breakdown(&[ev]).is_empty());
    }

    #[test]
    fn parse_trace_reports_line_numbers() {
        let good = span("a.b", 0, 0, 0, 5).to_json().to_string_compact();
        let text = format!("{good}\n\nnot json\n");
        let err = parse_trace(&text).unwrap_err();
        assert!(err.starts_with("line 3"), "{err}");
        assert_eq!(parse_trace(&good).unwrap().len(), 1);
    }

    #[test]
    fn render_requests_builds_an_indented_tree() {
        let doc = retia_json::parse(
            r#"{"traces":[{"trace_id":7,"endpoint":"/v1/query","status":200,
                "start_ms":0.0,"total_ms":12.5,"kept":"slow","stages":[
                {"name":"serve.recv","span_id":1,"parent":0,"thread":0,
                 "offset_ms":0.0,"dur_ms":0.1,"exclusive_ms":0.1},
                {"name":"serve.decode","span_id":2,"parent":0,"thread":1,
                 "offset_ms":1.0,"dur_ms":10.0,"exclusive_ms":4.0},
                {"name":"serve.cache","span_id":3,"parent":2,"thread":1,
                 "offset_ms":1.5,"dur_ms":6.0,"exclusive_ms":6.0}]}]}"#,
        )
        .expect("hand-written traces doc parses");
        let text = render_requests(&doc).expect("renders");
        assert!(text.contains("trace 7  /v1/query  status=200"), "{text}");
        let recv = text.find("serve.recv").expect("recv row");
        let decode = text.find("serve.decode").expect("decode row");
        let cache = text.find("  serve.cache").expect("cache row indented under decode");
        assert!(recv < decode && decode < cache, "{text}");
        // Not a traces document → typed error, not a panic.
        let bad = retia_json::parse(r#"{"other":1}"#).expect("parses");
        assert!(render_requests(&bad).is_err());
        // Empty store renders a hint instead of nothing.
        let empty = retia_json::parse(r#"{"traces":[]}"#).expect("parses");
        assert!(render_requests(&empty).expect("renders").contains("no traces"));
    }

    #[test]
    fn render_includes_sum_row() {
        let events = vec![span("eam.rgcn", 0, 0, 0, 100)];
        let table = render_breakdown(&module_breakdown(&events));
        assert!(table.contains("eam"));
        assert!(table.contains("(sum)"));
        assert!(table.contains("100.00%"));
    }
}
