//! Request-scoped tracing with a tail-sampled in-memory trace store.
//!
//! A *trace* is the lifecycle of one request: [`begin`] allocates a trace id
//! when the request's first bytes arrive, stages are recorded against it
//! while it is in flight, and [`finish`] closes it with a status code. The
//! store keeps every trace whose total latency exceeds the configured slow
//! threshold plus a deterministic 1-in-N sample of the rest (tail sampling),
//! in a bounded ring served out newest-first by [`traces_json`].
//!
//! Stages arrive two ways:
//!
//! * **Explicitly** via [`record_stage`], for segments measured by hand
//!   (socket read, queue wait, response write) where no RAII span wraps the
//!   work.
//! * **Implicitly** from [`crate::span!`] guards: a thread that has adopted
//!   trace frames ([`adopt`]) attaches every span it opens to all adopted
//!   traces — so one fused engine batch serving several requests records its
//!   shared decode span into each request's trace, and the existing
//!   instrumentation (`serve.evolve`, `serve.decode`, ...) becomes per-request
//!   attribution for free.
//!
//! Frames are `(trace_id, parent_span_id)` pairs. Nesting works because a
//! span guard pushes a derived scope whose parent is the new span's id;
//! threads hand frames across boundaries with [`current_frames`] + [`adopt`]
//! (the decode shard threads do exactly this).
//!
//! Cost when no request is in flight: one relaxed atomic load per
//! instrumentation point — the same budget as the rest of retia-obs.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use retia_json::Value;

use crate::now_ns;

/// An attachment point for stages: a live trace plus the span id new stages
/// should parent under (`0` = the request root).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceFrame {
    /// The trace being recorded into.
    pub trace_id: u64,
    /// Parent span id for stages recorded through this frame (0 = root).
    pub parent: u64,
}

/// Trace correlation ids carried by an emitted [`crate::Event`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceCtx {
    /// The trace the event belongs to.
    pub trace_id: u64,
    /// This event's own span id.
    pub span_id: u64,
    /// Parent span id (0 = the request root).
    pub parent: u64,
}

/// One recorded stage of a trace.
#[derive(Clone, Debug)]
pub struct StageRecord {
    /// Dotted stage name (`serve.decode`, `serve.queue_wait`, ...).
    pub name: String,
    /// Unique span id within the process.
    pub span_id: u64,
    /// Parent span id (0 = the request root).
    pub parent: u64,
    /// Dense id of the recording thread.
    pub thread: u64,
    /// Start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// A finished, sampled-in trace.
#[derive(Clone, Debug)]
pub struct FinishedTrace {
    /// The trace id.
    pub trace_id: u64,
    /// Request label (endpoint path).
    pub label: String,
    /// HTTP status the request finished with.
    pub status: u16,
    /// Request start, nanoseconds since the process trace epoch.
    pub started_ns: u64,
    /// Total request latency in nanoseconds.
    pub total_ns: u64,
    /// Why the trace was kept: `"slow"` (tail) or `"sampled"` (1-in-N).
    pub kept: &'static str,
    /// Recorded stages in completion order.
    pub stages: Vec<StageRecord>,
}

/// Tail-sampling policy for the trace store.
#[derive(Clone, Copy, Debug)]
pub struct TracePolicy {
    /// Every trace at least this slow (total latency, ms) is kept.
    pub slow_ms: f64,
    /// Of the fast traces, 1 in this many is kept (`trace_id % n == 0`);
    /// `0` keeps none of them.
    pub sample_every: u64,
    /// Bound on stored traces; the oldest is evicted beyond it.
    pub capacity: usize,
}

impl Default for TracePolicy {
    fn default() -> TracePolicy {
        TracePolicy { slow_ms: 250.0, sample_every: 16, capacity: 256 }
    }
}

/// Stages kept per in-flight trace; extras are dropped (a trace this wide is
/// a bug in the instrumentation, not something to buffer without bound).
const MAX_STAGES: usize = 1024;

struct InflightTrace {
    label: String,
    started_ns: u64,
    stages: Vec<StageRecord>,
}

#[derive(Default)]
struct Store {
    policy: Option<TracePolicy>,
    inflight: HashMap<u64, InflightTrace>,
    ring: VecDeque<FinishedTrace>,
}

fn store() -> &'static Mutex<Store> {
    static STORE: OnceLock<Mutex<Store>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(Store::default()))
}

fn lock_store() -> std::sync::MutexGuard<'static, Store> {
    store().lock().unwrap_or_else(|e| e.into_inner())
}

/// Fast-path gate: true while any trace is in flight anywhere in the
/// process. One relaxed load keeps un-traced paths (training) at the usual
/// instrumentation cost.
static LIVE: AtomicBool = AtomicBool::new(false);

static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Stack of adopted frame scopes. The top scope lists every trace the
    /// current thread's work should be attributed to.
    static SCOPES: RefCell<Vec<Vec<TraceFrame>>> = const { RefCell::new(Vec::new()) };
}

/// Sets the tail-sampling policy (serve startup, tests).
pub fn set_policy(policy: TracePolicy) {
    lock_store().policy = Some(policy);
}

fn effective_policy(store: &Store) -> TracePolicy {
    store.policy.unwrap_or_default()
}

/// Opaque handle for one in-flight trace. Close it with [`finish`]; an
/// unfinished trace is discarded by the next [`reset`].
#[derive(Debug)]
pub struct TraceHandle {
    trace_id: u64,
}

impl TraceHandle {
    /// The trace id (for logging / response headers).
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// The root frame of this trace, for [`adopt`].
    pub fn root_frame(&self) -> TraceFrame {
        TraceFrame { trace_id: self.trace_id, parent: 0 }
    }
}

/// Opens a trace for a request labeled `label` that started at `start_ns`
/// (pass an earlier timestamp when part of the request — the socket read —
/// was measured before the trace id was assigned).
pub fn begin(label: &str, start_ns: u64) -> TraceHandle {
    let trace_id = NEXT_TRACE.fetch_add(1, Ordering::Relaxed);
    let mut s = lock_store();
    s.inflight.insert(
        trace_id,
        InflightTrace { label: label.to_string(), started_ns: start_ns, stages: Vec::new() },
    );
    LIVE.store(true, Ordering::Relaxed);
    TraceHandle { trace_id }
}

/// Closes a trace: computes its total latency and keeps it when it is slow
/// (≥ the policy threshold) or falls in the deterministic 1-in-N sample.
pub fn finish(handle: TraceHandle, status: u16) {
    let end_ns = now_ns();
    let mut s = lock_store();
    let Some(t) = s.inflight.remove(&handle.trace_id) else { return };
    if s.inflight.is_empty() {
        LIVE.store(false, Ordering::Relaxed);
    }
    let policy = effective_policy(&s);
    let total_ns = end_ns.saturating_sub(t.started_ns);
    let kept = if total_ns as f64 / 1e6 >= policy.slow_ms {
        "slow"
    } else if policy.sample_every > 0 && handle.trace_id.is_multiple_of(policy.sample_every) {
        "sampled"
    } else {
        return;
    };
    s.ring.push_back(FinishedTrace {
        trace_id: handle.trace_id,
        label: t.label,
        status,
        started_ns: t.started_ns,
        total_ns,
        kept,
        stages: t.stages,
    });
    let cap = policy.capacity.max(1);
    while s.ring.len() > cap {
        s.ring.pop_front();
    }
}

/// Records one stage into every trace in `frames` under one shared span id
/// (returned; 0 when `frames` is empty). For hand-measured segments; RAII
/// spans under an adopted scope record themselves.
pub fn record_stage(frames: &[TraceFrame], name: &str, start_ns: u64, dur_ns: u64) -> u64 {
    if frames.is_empty() {
        return 0;
    }
    let span_id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
    let thread = crate::current_thread();
    let mut s = lock_store();
    for f in frames {
        if let Some(t) = s.inflight.get_mut(&f.trace_id) {
            if t.stages.len() < MAX_STAGES {
                t.stages.push(StageRecord {
                    name: name.to_string(),
                    span_id,
                    parent: f.parent,
                    thread,
                    start_ns,
                    dur_ns,
                });
            }
        }
    }
    span_id
}

/// RAII guard popping the frame scope pushed by [`adopt`].
pub struct ScopeGuard {
    pushed: bool,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if self.pushed {
            SCOPES.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}

/// Adopts `frames` as the current thread's trace scope until the guard
/// drops: every [`crate::span!`] opened meanwhile records a stage into each
/// of them. An empty `frames` is a no-op guard.
pub fn adopt(frames: Vec<TraceFrame>) -> ScopeGuard {
    if frames.is_empty() {
        return ScopeGuard { pushed: false };
    }
    SCOPES.with(|s| s.borrow_mut().push(frames));
    ScopeGuard { pushed: true }
}

/// The current thread's active trace frames (empty when none). Capture this
/// before handing work to another thread, then [`adopt`] it there.
pub fn current_frames() -> Vec<TraceFrame> {
    if !LIVE.load(Ordering::Relaxed) {
        return Vec::new();
    }
    SCOPES.with(|s| s.borrow().last().cloned().unwrap_or_default())
}

/// Span-guard hook: when frames are active, allocates a span id, pushes a
/// derived scope (children of the new span) and returns the id plus the
/// frames the span will record into on exit.
pub(crate) fn span_enter() -> Option<(u64, Vec<TraceFrame>)> {
    if !LIVE.load(Ordering::Relaxed) {
        return None;
    }
    SCOPES.with(|s| {
        let mut scopes = s.borrow_mut();
        let frames = scopes.last().cloned().unwrap_or_default();
        if frames.is_empty() {
            return None;
        }
        let span_id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
        let derived =
            frames.iter().map(|f| TraceFrame { trace_id: f.trace_id, parent: span_id }).collect();
        scopes.push(derived);
        Some((span_id, frames))
    })
}

/// Span-guard hook: pops the derived scope and records the finished span as
/// a stage of every adopted trace.
pub(crate) fn span_exit(
    frames: &[TraceFrame],
    span_id: u64,
    name: &str,
    start_ns: u64,
    dur_ns: u64,
) {
    SCOPES.with(|s| {
        s.borrow_mut().pop();
    });
    let thread = crate::current_thread();
    let mut st = lock_store();
    for f in frames {
        if let Some(t) = st.inflight.get_mut(&f.trace_id) {
            if t.stages.len() < MAX_STAGES {
                t.stages.push(StageRecord {
                    name: name.to_string(),
                    span_id,
                    parent: f.parent,
                    thread,
                    start_ns,
                    dur_ns,
                });
            }
        }
    }
}

/// Snapshot of the stored traces, newest first.
pub fn traces() -> Vec<FinishedTrace> {
    lock_store().ring.iter().rev().cloned().collect()
}

/// Clears the store and any in-flight traces (tests; fresh serve runs).
pub fn reset() {
    let mut s = lock_store();
    s.inflight.clear();
    s.ring.clear();
    LIVE.store(false, Ordering::Relaxed);
}

/// The stored traces as the `/v1/traces` JSON document: newest first, each
/// stage with its exclusive time (duration minus recorded children).
pub fn traces_json() -> Value {
    let ms = |ns: u64| ns as f64 / 1e6;
    let mut arr = Vec::new();
    for t in traces() {
        let mut child_ns: HashMap<u64, u64> = HashMap::new();
        for st in &t.stages {
            if st.parent != 0 {
                *child_ns.entry(st.parent).or_insert(0) += st.dur_ns;
            }
        }
        let mut stages = Vec::new();
        for st in &t.stages {
            let exclusive =
                st.dur_ns.saturating_sub(child_ns.get(&st.span_id).copied().unwrap_or(0));
            let mut doc = Value::object();
            doc.insert("name", Value::from(st.name.as_str()));
            doc.insert("span_id", Value::from(st.span_id));
            doc.insert("parent", Value::from(st.parent));
            doc.insert("thread", Value::from(st.thread));
            doc.insert("offset_ms", Value::from(ms(st.start_ns.saturating_sub(t.started_ns))));
            doc.insert("dur_ms", Value::from(ms(st.dur_ns)));
            doc.insert("exclusive_ms", Value::from(ms(exclusive)));
            stages.push(doc);
        }
        let mut doc = Value::object();
        doc.insert("trace_id", Value::from(t.trace_id));
        doc.insert("endpoint", Value::from(t.label.as_str()));
        doc.insert("status", Value::from(t.status as u64));
        doc.insert("start_ms", Value::from(ms(t.started_ns)));
        doc.insert("total_ms", Value::from(ms(t.total_ns)));
        doc.insert("kept", Value::from(t.kept));
        doc.insert("stages", Value::Array(stages));
        arr.push(doc);
    }
    let mut out = Value::object();
    out.insert("traces", Value::Array(arr));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    fn policy(slow_ms: f64, sample_every: u64, capacity: usize) -> TracePolicy {
        TracePolicy { slow_ms, sample_every, capacity }
    }

    #[test]
    fn tail_sampling_keeps_slow_and_one_in_n() {
        let _guard = test_lock::lock();
        reset();
        set_policy(policy(1e9, 4, 64)); // nothing is "slow" in-process
        let mut kept = 0usize;
        let mut ids = Vec::new();
        for _ in 0..16 {
            let h = begin("/v1/query", now_ns());
            ids.push(h.trace_id());
            finish(h, 200);
        }
        for t in traces() {
            assert_eq!(t.kept, "sampled");
            assert_eq!(t.trace_id % 4, 0);
            kept += 1;
        }
        let expected = ids.iter().filter(|id| *id % 4 == 0).count();
        assert_eq!(kept, expected);
        // A slow trace is always kept regardless of the modulus.
        set_policy(policy(0.0, 0, 64));
        let h = begin("/v1/query", now_ns().saturating_sub(5_000_000));
        let slow_id = h.trace_id();
        finish(h, 200);
        let newest = &traces()[0];
        assert_eq!(newest.trace_id, slow_id);
        assert_eq!(newest.kept, "slow");
        assert!(newest.total_ns >= 5_000_000);
        reset();
    }

    #[test]
    fn ring_is_bounded_and_newest_first() {
        let _guard = test_lock::lock();
        reset();
        set_policy(policy(0.0, 1, 3));
        let mut last = 0;
        for _ in 0..10 {
            let h = begin("/x", now_ns());
            last = h.trace_id();
            finish(h, 200);
        }
        let ts = traces();
        assert_eq!(ts.len(), 3);
        assert_eq!(ts[0].trace_id, last);
        assert!(ts[0].trace_id > ts[1].trace_id && ts[1].trace_id > ts[2].trace_id);
        reset();
    }

    #[test]
    fn spans_under_adopted_frames_record_parented_stages() {
        let _guard = test_lock::lock();
        reset();
        crate::reset_timing();
        set_policy(policy(0.0, 1, 16));
        let h = begin("/v1/query", now_ns());
        let root = h.root_frame();
        let wait_id = record_stage(&[root], "serve.queue_wait", now_ns(), 1000);
        assert_ne!(wait_id, 0);
        {
            let _scope = adopt(vec![root]);
            let _outer = crate::span!("serve.decode");
            // A nested span parents under the outer one, and a thread that
            // adopts the current frames keeps the same parenting.
            let frames = current_frames();
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _scope = adopt(frames.clone());
                    let _inner = crate::span!("serve.decode.shard");
                });
            });
        }
        finish(h, 200);
        let t = &traces()[0];
        assert_eq!(t.label, "/v1/query");
        let names: Vec<&str> = t.stages.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"serve.queue_wait"), "{names:?}");
        assert!(names.contains(&"serve.decode"), "{names:?}");
        assert!(names.contains(&"serve.decode.shard"), "{names:?}");
        let decode = t.stages.iter().find(|s| s.name == "serve.decode").unwrap();
        let shard = t.stages.iter().find(|s| s.name == "serve.decode.shard").unwrap();
        let wait = t.stages.iter().find(|s| s.name == "serve.queue_wait").unwrap();
        assert_eq!(wait.parent, 0);
        assert_eq!(decode.parent, 0);
        assert_eq!(shard.parent, decode.span_id, "shard span parents under decode");
        reset();
    }

    #[test]
    fn one_span_records_into_every_adopted_trace() {
        let _guard = test_lock::lock();
        reset();
        crate::reset_timing();
        set_policy(policy(0.0, 1, 16));
        let a = begin("/a", now_ns());
        let b = begin("/b", now_ns());
        {
            let _scope = adopt(vec![a.root_frame(), b.root_frame()]);
            let _batch = crate::span!("serve.decode");
        }
        finish(a, 200);
        finish(b, 200);
        let ts = traces();
        assert_eq!(ts.len(), 2);
        let sa = &ts[1].stages[0];
        let sb = &ts[0].stages[0];
        assert_eq!(sa.name, "serve.decode");
        assert_eq!(sb.name, "serve.decode");
        assert_eq!(sa.span_id, sb.span_id, "the shared batch span has one id");
        reset();
    }

    #[test]
    fn traces_json_reports_exclusive_times() {
        let _guard = test_lock::lock();
        reset();
        set_policy(policy(0.0, 1, 16));
        let h = begin("/v1/query", now_ns());
        let root = h.root_frame();
        let outer = record_stage(&[root], "serve.decode", 0, 10_000_000);
        record_stage(
            &[TraceFrame { trace_id: root.trace_id, parent: outer }],
            "serve.evolve",
            0,
            4_000_000,
        );
        finish(h, 200);
        let doc = traces_json();
        let t = &doc.get("traces").and_then(Value::as_array).unwrap()[0];
        let stages = t.get("stages").and_then(Value::as_array).unwrap();
        let decode =
            stages.iter().find(|s| s.get("name").unwrap().as_str() == Some("serve.decode"));
        let d = decode.unwrap();
        assert_eq!(d.get("dur_ms").unwrap().as_f64(), Some(10.0));
        assert_eq!(d.get("exclusive_ms").unwrap().as_f64(), Some(6.0));
        reset();
    }

    #[test]
    fn no_live_trace_means_no_frames_and_no_cost_path() {
        let _guard = test_lock::lock();
        reset();
        assert!(span_enter().is_none());
        assert!(current_frames().is_empty());
        assert_eq!(record_stage(&[], "x", 0, 0), 0);
        let _noop = adopt(Vec::new());
    }
}
