//! Event records and sinks.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use retia_json::Value;

use crate::trace::TraceCtx;
use crate::Level;

/// Whether an [`Event`] is a completed timing span or a point-in-time event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span; `dur_ns` is set.
    Span,
    /// A point event (log line, watchdog firing, epoch summary).
    Point,
}

impl EventKind {
    fn as_str(&self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Point => "event",
        }
    }
}

/// One observability record. Spans are emitted when their guard drops (so a
/// trace file lists children before their parent); point events are emitted
/// immediately.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Span or point.
    pub kind: EventKind,
    /// Stderr verbosity class.
    pub level: Level,
    /// Dotted name; the first segment is the module the report groups by.
    pub name: String,
    /// Dense id of the emitting thread ([`crate::current_thread`]).
    pub thread: u64,
    /// Span-nesting depth on the emitting thread at start time.
    pub depth: u32,
    /// Start time, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Span duration; `None` for point events.
    pub dur_ns: Option<u64>,
    /// Numeric key/value payload.
    pub fields: Vec<(String, f64)>,
    /// Optional free-text message.
    pub message: Option<String>,
    /// Request-trace correlation, when the emitting thread had adopted
    /// trace frames (see [`crate::trace`]).
    pub trace: Option<TraceCtx>,
}

impl Event {
    /// JSON-lines form (one compact object; see DESIGN.md §7 for the schema).
    pub fn to_json(&self) -> Value {
        let mut doc = Value::object();
        doc.insert("kind", Value::from(self.kind.as_str()));
        doc.insert("level", Value::from(self.level.as_str()));
        doc.insert("name", Value::from(self.name.as_str()));
        doc.insert("thread", Value::from(self.thread));
        doc.insert("depth", Value::from(self.depth as u64));
        doc.insert("start_ns", Value::from(self.start_ns));
        if let Some(d) = self.dur_ns {
            doc.insert("dur_ns", Value::from(d));
        }
        if !self.fields.is_empty() {
            let mut f = Value::object();
            for (k, v) in &self.fields {
                f.insert(k, Value::from(*v));
            }
            doc.insert("fields", f);
        }
        if let Some(m) = &self.message {
            doc.insert("msg", Value::from(m.as_str()));
        }
        if let Some(t) = &self.trace {
            doc.insert("trace_id", Value::from(t.trace_id));
            doc.insert("span_id", Value::from(t.span_id));
            doc.insert("parent_span", Value::from(t.parent));
        }
        doc
    }

    /// Inverse of [`Event::to_json`]; used by the trace report tool.
    pub fn from_json(doc: &Value) -> Result<Event, String> {
        let kind = match doc.get("kind").and_then(Value::as_str) {
            Some("span") => EventKind::Span,
            Some("event") => EventKind::Point,
            other => return Err(format!("bad event kind {other:?}")),
        };
        let level =
            Level::parse(doc.get("level").and_then(Value::as_str).ok_or("missing event level")?)?;
        let name = doc.get("name").and_then(Value::as_str).ok_or("missing event name")?.to_string();
        let need_u64 = |key: &str| {
            doc.get(key).and_then(Value::as_u64).ok_or_else(|| format!("missing field `{key}`"))
        };
        let fields = match doc.get("fields") {
            Some(Value::Object(entries)) => entries
                .iter()
                .map(|(k, v)| {
                    // Non-finite field values degrade to JSON null on write;
                    // read them back as NaN rather than failing the record.
                    Ok((k.clone(), v.as_f64().unwrap_or(f64::NAN)))
                })
                .collect::<Result<Vec<_>, String>>()?,
            None => Vec::new(),
            Some(_) => return Err("event `fields` must be an object".to_string()),
        };
        // Trace correlation is optional; all three ids travel together.
        let opt_u64 = |key: &str| doc.get(key).and_then(Value::as_u64);
        let trace = match (opt_u64("trace_id"), opt_u64("span_id"), opt_u64("parent_span")) {
            (Some(trace_id), Some(span_id), Some(parent)) => {
                Some(TraceCtx { trace_id, span_id, parent })
            }
            _ => None,
        };
        Ok(Event {
            kind,
            level,
            name,
            thread: need_u64("thread")?,
            depth: need_u64("depth")? as u32,
            start_ns: need_u64("start_ns")?,
            dur_ns: doc.get("dur_ns").and_then(Value::as_u64),
            fields,
            message: doc.get("msg").and_then(Value::as_str).map(str::to_string),
            trace,
        })
    }

    /// The stderr rendering: `[  1.234s WARN ] nonfinite.grad step=3 count=2 — msg`.
    pub fn format_human(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let secs = self.start_ns as f64 / 1e9;
        let _ = write!(out, "[{secs:>9.3}s {:<5}] ", self.level.as_str().to_ascii_uppercase());
        for _ in 0..self.depth {
            out.push_str("  ");
        }
        out.push_str(&self.name);
        if let Some(d) = self.dur_ns {
            let _ = write!(out, " [{:.3} ms]", d as f64 / 1e6);
        }
        for (k, v) in &self.fields {
            let _ = write!(out, " {k}={v:.6}");
        }
        if let Some(m) = &self.message {
            let _ = write!(out, " — {m}");
        }
        out
    }
}

/// Destination for events. Sinks receive *every* event regardless of the
/// stderr level — a trace file carries everything; filtering is a read-time
/// concern.
pub trait Sink: Send {
    /// Delivers one event.
    fn record(&mut self, ev: &Event);
    /// Flushes buffered output (called by [`crate::flush_sinks`] and on drop).
    fn flush(&mut self) {}
}

/// JSON-lines file sink: one compact `retia-json` object per event per line.
pub struct JsonlSink {
    w: BufWriter<File>,
}

impl JsonlSink {
    /// Creates (truncates) `path` and returns a sink writing to it.
    pub fn create(path: &Path) -> std::io::Result<JsonlSink> {
        Ok(JsonlSink { w: BufWriter::new(File::create(path)?) })
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, ev: &Event) {
        // Serialization errors on a best-effort trace must not kill training.
        let _ = writeln!(self.w, "{}", ev.to_json().to_string_compact());
    }

    fn flush(&mut self) {
        let _ = self.w.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        Sink::flush(self);
    }
}

/// In-memory sink for tests: clones every event into a shared buffer read
/// through the paired [`CaptureHandle`].
pub struct CaptureSink {
    events: Arc<Mutex<Vec<Event>>>,
}

/// Reader half of a [`CaptureSink`].
#[derive(Clone)]
pub struct CaptureHandle {
    events: Arc<Mutex<Vec<Event>>>,
}

impl CaptureSink {
    /// A fresh sink/handle pair.
    pub fn new() -> (CaptureSink, CaptureHandle) {
        let events = Arc::new(Mutex::new(Vec::new()));
        (CaptureSink { events: events.clone() }, CaptureHandle { events })
    }
}

impl Sink for CaptureSink {
    fn record(&mut self, ev: &Event) {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).push(ev.clone());
    }
}

impl CaptureHandle {
    /// Snapshot of everything captured so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(kind: EventKind, dur: Option<u64>) -> Event {
        Event {
            kind,
            level: Level::Debug,
            name: "eam.rgcn".to_string(),
            thread: 3,
            depth: 2,
            start_ns: 123_456_789,
            dur_ns: dur,
            fields: vec![("step".to_string(), 7.0), ("loss".to_string(), 0.25)],
            message: Some("hello \"world\"\n".to_string()),
            trace: None,
        }
    }

    #[test]
    fn json_roundtrip_preserves_every_field() {
        let mut traced = sample(EventKind::Span, Some(9_000));
        traced.trace = Some(TraceCtx { trace_id: 11, span_id: 12, parent: 3 });
        for ev in [sample(EventKind::Span, Some(42_000)), sample(EventKind::Point, None), traced] {
            let text = ev.to_json().to_string_compact();
            let back = Event::from_json(&retia_json::parse(&text).unwrap()).unwrap();
            assert_eq!(ev, back);
        }
    }

    #[test]
    fn from_json_rejects_malformed_records() {
        for bad in [
            r#"{"level":"info","name":"x","thread":0,"depth":0,"start_ns":0}"#,
            r#"{"kind":"span","name":"x","thread":0,"depth":0,"start_ns":0}"#,
            r#"{"kind":"span","level":"info","thread":0,"depth":0,"start_ns":0}"#,
            r#"{"kind":"span","level":"info","name":"x","depth":0,"start_ns":0}"#,
        ] {
            let doc = retia_json::parse(bad).unwrap();
            assert!(Event::from_json(&doc).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn human_format_contains_name_fields_and_message() {
        let line = sample(EventKind::Span, Some(1_500_000)).format_human();
        assert!(line.contains("eam.rgcn"));
        assert!(line.contains("step=7"));
        assert!(line.contains("DEBUG"));
        assert!(line.contains("1.500 ms"));
        assert!(line.contains("hello"));
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let dir = std::env::temp_dir().join("retia_obs_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            sink.record(&sample(EventKind::Span, Some(10)));
            sink.record(&sample(EventKind::Point, None));
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            Event::from_json(&retia_json::parse(line).unwrap()).unwrap();
        }
        std::fs::remove_file(&path).ok();
    }
}
