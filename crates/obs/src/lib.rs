#![warn(missing_docs)]

//! # retia-obs
//!
//! Observability substrate for the RETIA workspace (DESIGN.md §7). Three
//! cooperating facilities, all behind one global on/off switch so that an
//! un-observed process pays only an atomic load per instrumentation point:
//!
//! * **Tracing** ([`span!`], [`event!`], [`SpanGuard`]) — RAII spans with
//!   thread-aware nesting (each thread keeps its own span stack, so spans
//!   opened inside `retia_tensor::parallel` workers compose correctly) and
//!   point events carrying numeric fields. Everything is dispatched to
//!   * a human-readable **stderr logger** filtered by the `RETIA_LOG`
//!     level (`off|error|warn|info|debug|trace`, default `info`), and
//!   * pluggable [`Sink`]s — notably [`JsonlSink`], which serializes every
//!     event as one JSON line via `retia-json` (the `--trace-out` file the
//!     CLI's `report` subcommand consumes), and [`CaptureSink`] for tests.
//! * **Metrics** ([`metrics::registry`]) — named counters, gauges and
//!   log-bucketed histograms, exportable as a JSON snapshot.
//! * **Health** ([`watchdog`]) — non-finite-value detection that fires a
//!   warning event the *first* step a tensor goes NaN/±inf, before the
//!   divergence poisons downstream ranking.
//!
//! Span durations are additionally aggregated in-process into a per-module
//! wall-clock table ([`timing_snapshot`]) with *exclusive* times (child
//! spans subtracted), which is what the flame-style summary and the trace
//! [`report`] print.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

pub mod drift;
mod event;
mod level;
pub mod metrics;
pub mod report;
pub mod slo;
mod span;
pub mod trace;
pub mod watchdog;

pub use event::{CaptureHandle, CaptureSink, Event, EventKind, JsonlSink, Sink};
pub use level::{log_level, set_log_level, Level};
pub use span::{
    current_module, kernel_span, kernel_timing_enabled, kernel_timing_snapshot, module_scope,
    render_timing_table, reset_timing, set_kernel_timing, set_timing, timing_enabled,
    timing_snapshot, KernelGuard, ModuleTagGuard, ModuleTime, SpanGuard,
};

// ---------------------------------------------------------------------------
// Global enable switch
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Master switch. When `false`, spans are inert, events are dropped, metrics
/// are no-ops and the watchdog skips its scans — the baseline the
/// `obs_overhead` bench measures instrumentation cost against.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether observability is globally enabled (default: yes).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Clock and thread identity
// ---------------------------------------------------------------------------

fn trace_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process's trace epoch (first use of this crate).
pub fn now_ns() -> u64 {
    trace_epoch().elapsed().as_nanos() as u64
}

/// A small dense id for the current OS thread (stable `ThreadId` has no
/// public integer view). Ids are assigned in first-use order per process.
pub fn current_thread() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Handle returned by [`add_sink`], used to remove the sink again.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SinkId(u64);

struct SinkSlot {
    id: SinkId,
    sink: Box<dyn Sink>,
}

fn sinks() -> &'static Mutex<Vec<SinkSlot>> {
    static SINKS: OnceLock<Mutex<Vec<SinkSlot>>> = OnceLock::new();
    SINKS.get_or_init(|| Mutex::new(Vec::new()))
}

static HAVE_SINKS: AtomicBool = AtomicBool::new(false);
static NEXT_SINK_ID: AtomicU64 = AtomicU64::new(1);

/// Installs a sink; every subsequent event (any level) is delivered to it.
pub fn add_sink(sink: Box<dyn Sink>) -> SinkId {
    let id = SinkId(NEXT_SINK_ID.fetch_add(1, Ordering::Relaxed));
    let mut guard = sinks().lock().unwrap_or_else(|e| e.into_inner());
    guard.push(SinkSlot { id, sink });
    HAVE_SINKS.store(true, Ordering::Relaxed);
    id
}

/// Removes (and drops, hence flushes) a sink installed by [`add_sink`].
pub fn remove_sink(id: SinkId) {
    let mut guard = sinks().lock().unwrap_or_else(|e| e.into_inner());
    guard.retain(|s| s.id != id);
    HAVE_SINKS.store(!guard.is_empty(), Ordering::Relaxed);
}

/// Flushes every installed sink (JSONL sinks buffer their writes).
pub fn flush_sinks() {
    let mut guard = sinks().lock().unwrap_or_else(|e| e.into_inner());
    for s in guard.iter_mut() {
        s.sink.flush();
    }
}

pub(crate) fn have_sinks() -> bool {
    HAVE_SINKS.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Event dispatch
// ---------------------------------------------------------------------------

/// Dispatches an event: the stderr logger prints it when its level clears
/// `RETIA_LOG`; every installed sink receives it unconditionally (trace
/// files carry everything; filtering is the reader's job).
pub fn emit(ev: Event) {
    if !enabled() {
        return;
    }
    if ev.level <= log_level() {
        eprintln!("{}", ev.format_human());
    }
    if have_sinks() {
        let mut guard = sinks().lock().unwrap_or_else(|e| e.into_inner());
        for s in guard.iter_mut() {
            s.sink.record(&ev);
        }
    }
}

/// Convenience constructor + [`emit`] for a point event with numeric fields
/// and an optional message. Prefer the [`event!`] macro at call sites.
pub fn emit_event(level: Level, name: &str, fields: &[(&str, f64)], message: Option<&str>) {
    if !enabled() {
        return;
    }
    emit(Event {
        kind: EventKind::Point,
        level,
        name: name.to_string(),
        thread: current_thread(),
        depth: span::current_depth(),
        start_ns: now_ns(),
        dur_ns: None,
        fields: fields.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        message: message.map(str::to_string),
        trace: None,
    });
}

/// Emits a point event: `event!(Level::Info, "train.epoch", epoch = 3, joint = 0.5)`.
/// An optional trailing `; "message"` attaches free text.
#[macro_export]
macro_rules! event {
    ($lvl:expr, $name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        $crate::emit_event($lvl, $name, &[$((stringify!($k), $v as f64)),*], None)
    };
    ($lvl:expr, $name:expr $(, $k:ident = $v:expr)* ; $msg:expr) => {
        $crate::emit_event($lvl, $name, &[$((stringify!($k), $v as f64)),*], Some(&$msg))
    };
}

/// Opens an RAII timing span: `let _s = span!("eam.rgcn", step = t);`.
/// The span ends (and is recorded) when the guard drops — including during
/// a panic unwind. Dotted names form the module hierarchy the per-module
/// report groups by (`"eam.rgcn"` → module `eam`).
#[macro_export]
macro_rules! span {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        $crate::SpanGuard::enter($name, &[$((stringify!($k), $v as f64)),*])
    };
}

#[cfg(test)]
pub(crate) mod test_lock {
    use std::sync::{Mutex, MutexGuard};

    /// Tests mutating process-global observability state (level, sinks,
    /// timing aggregate, registry) serialize on this lock.
    pub fn lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_ids_are_distinct_and_stable() {
        let here = current_thread();
        assert_eq!(here, current_thread());
        let other = std::thread::spawn(current_thread).join().unwrap();
        assert_ne!(here, other);
    }

    #[test]
    fn disabled_drops_events() {
        let _guard = test_lock::lock();
        let (sink, handle) = CaptureSink::new();
        let id = add_sink(Box::new(sink));
        set_enabled(false);
        event!(Level::Error, "should.vanish", x = 1.0);
        set_enabled(true);
        event!(Level::Error, "should.arrive", x = 2.0);
        remove_sink(id);
        let events = handle.events();
        assert!(events.iter().all(|e| e.name != "should.vanish"));
        assert!(events.iter().any(|e| e.name == "should.arrive"));
    }

    #[test]
    fn sinks_receive_all_levels() {
        let _guard = test_lock::lock();
        let (sink, handle) = CaptureSink::new();
        let id = add_sink(Box::new(sink));
        // Trace-level events never reach stderr at the default level, but
        // sinks must still see them.
        event!(Level::Trace, "sink.sees.trace");
        remove_sink(id);
        assert!(handle.events().iter().any(|e| e.name == "sink.sees.trace"));
    }

    #[test]
    fn now_ns_is_monotone() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
