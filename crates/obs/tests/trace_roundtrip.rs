//! End-to-end trace test: spans and events written through a [`JsonlSink`]
//! round-trip through `retia-json` and feed the per-module report.

use retia_obs::{event, report, span, JsonlSink, Level};

#[test]
fn jsonl_trace_roundtrips_and_reports() {
    let dir = std::env::temp_dir().join(format!("retia_obs_rt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.jsonl");

    let id = retia_obs::add_sink(Box::new(JsonlSink::create(&path).unwrap()));
    {
        let _step = span!("train.step", step = 1);
        {
            let _eam = span!("eam.rgcn", t = 0);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        {
            let _dec = span!("decode.entity");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        event!(Level::Info, "train.epoch", epoch = 1, joint = 0.5; "epoch done");
    }
    retia_obs::flush_sinks();
    retia_obs::remove_sink(id);

    let text = std::fs::read_to_string(&path).unwrap();
    let me = retia_obs::current_thread();
    // Other tests in this binary may interleave events; keep only ours.
    let events: Vec<_> =
        report::parse_trace(&text).unwrap().into_iter().filter(|e| e.thread == me).collect();

    // Span guards drop children before parents, so the file is in end order.
    let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
    let pos = |n: &str| names.iter().position(|x| *x == n).unwrap_or_else(|| panic!("missing {n}"));
    assert!(pos("eam.rgcn") < pos("train.step"));
    assert!(pos("decode.entity") < pos("train.step"));

    let epoch = &events[pos("train.epoch")];
    assert_eq!(epoch.level, Level::Info);
    assert_eq!(epoch.message.as_deref(), Some("epoch done"));
    assert!(epoch.fields.iter().any(|(k, v)| k == "epoch" && *v == 1.0));

    let rows = report::module_breakdown(&events);
    let get = |m: &str| rows.iter().find(|r| r.module == m).unwrap_or_else(|| panic!("no {m}"));
    assert!(get("eam").exclusive_ns >= 1_000_000);
    assert!(get("decode").exclusive_ns >= 1_000_000);
    // train.step's exclusive time excludes both children.
    assert!(get("train").exclusive_ns < get("train").total_ns);
    let share_sum: f64 = rows.iter().map(|r| r.share_pct).sum();
    assert!((share_sum - 100.0).abs() < 1e-6, "shares sum to {share_sum}");

    std::fs::remove_dir_all(&dir).ok();
}
