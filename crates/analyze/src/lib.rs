//! Static analysis and fault injection for the RETIA stack.
//!
//! Three parts, all dependency-free:
//!
//! - [`shape`] — an abstract shape interpreter. [`ShapeCtx`] replays the
//!   model's op sequence over [`ShapeTensor`]s (shapes only, no allocation),
//!   so a full EAM→RAM→TIM→decode→loss→backward pass can be dry-run at
//!   startup and every dimension/index-space mismatch reported with the
//!   module and paper-equation name attached. NN layers expose `validate`
//!   methods built on this; `retia check` and the pre-`train`/`eval` guard
//!   in the CLI surface it.
//! - [`lint`] — the repo-specific source lint behind the `retia-lint` binary
//!   (`cargo run -p retia-analyze --bin retia-lint`), with an exact-count
//!   allowlist ratchet in `scripts/lint-allowlist.txt`.
//! - [`chaos`] — deterministic fault injection ([`ChaosPlan`]): NaN/inf
//!   gradient storms at scheduled steps, checkpoint bit-flips and
//!   truncation, crash-mid-write writers, and dataset-row corruption. The
//!   trainer consumes plans (via `RETIA_CHAOS` or the test API); the
//!   fault-tolerance integration suite uses the byte-level helpers.
//!
//! The parallel-plan race prover lives next to the kernels it checks, in
//! `retia_tensor::parallel`, because the plan type is private to that crate.

pub mod chaos;
pub mod lint;
pub mod shape;

pub use chaos::{ChaosPlan, GradFault};
pub use shape::{ShapeCtx, ShapeIssue, ShapeReport, ShapeTensor};
