//! Static analysis and fault injection for the RETIA stack.
//!
//! - [`shape`] — an abstract shape interpreter. [`ShapeCtx`] replays the
//!   model's op sequence over [`ShapeTensor`]s (shapes only, no allocation),
//!   so a full EAM→RAM→TIM→decode→loss→backward pass can be dry-run at
//!   startup and every dimension/index-space mismatch reported with the
//!   module and paper-equation name attached. NN layers expose `validate`
//!   methods built on this; `retia check` and the pre-`train`/`eval` guard
//!   in the CLI surface it.
//! - [`value`] + [`gradflow`] — a value-domain abstract interpreter over the
//!   same op vocabulary: an interval + finiteness domain ([`AuditCtx`])
//!   driven by the per-op transfer functions in `retia_tensor::transfer`,
//!   gradient-flow reachability from the loss (declared-frozen parameters
//!   and detach boundaries included), and reduction-order sensitivity
//!   declarations. NN layers expose `audit` twins of `validate`; the
//!   `retia audit` subcommand, the trainer pre-flight, and the serve boot
//!   check surface it.
//! - [`lint`] — the repo-specific source lint behind the `retia-lint` binary
//!   (`cargo run -p retia-analyze --bin retia-lint`), with an exact-count
//!   allowlist ratchet in `scripts/lint-allowlist.txt` and a drift check of
//!   the reduction-order map in `scripts/reduction-order.txt`.
//! - [`chaos`] — deterministic fault injection ([`ChaosPlan`]): NaN/inf
//!   gradient storms at scheduled steps, checkpoint bit-flips and
//!   truncation, crash-mid-write writers, and dataset-row corruption. The
//!   trainer consumes plans (via `RETIA_CHAOS` or the test API); the
//!   fault-tolerance integration suite uses the byte-level helpers.
//!
//! The parallel-plan race prover lives next to the kernels it checks, in
//! `retia_tensor::parallel`, because the plan type is private to that crate;
//! likewise the transfer functions and reduction-order map live in
//! `retia_tensor::transfer`, next to the op enum they describe.

pub mod chaos;
pub mod gradflow;
pub mod lint;
pub mod shape;
pub mod value;

pub use chaos::{ChaosPlan, GradFault};
pub use shape::{ShapeCtx, ShapeIssue, ShapeReport, ShapeTensor};
pub use value::{AuditCtx, AuditIssue, AuditKind, AuditReport, FrozenParam};
