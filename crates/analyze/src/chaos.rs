//! Deterministic fault injection for fault-tolerance testing.
//!
//! A [`ChaosPlan`] says *what goes wrong and when*: poison gradients with
//! NaN/inf at chosen training steps, flip or truncate checkpoint bytes,
//! fail a write partway through to simulate a crash, or corrupt dataset
//! rows. Plans are built in tests or parsed from the `RETIA_CHAOS`
//! environment variable:
//!
//! ```text
//! RETIA_CHAOS="grad-nan@3,7;grad-inf@10-12"
//! ```
//!
//! Grammar: `kind@steps` clauses joined by `;`, where `kind` is `grad-nan`
//! or `grad-inf` and `steps` is a comma list of zero-based step numbers or
//! inclusive `N-M` ranges.
//!
//! Everything here is pure and deterministic — no clocks, no RNG — so a
//! chaos run is exactly reproducible, which is what lets the integration
//! suite assert bit-identical recovery. The trainer asks
//! [`ChaosPlan::grad_fault`] at each step and applies the poison itself;
//! byte-level corruption helpers ([`bit_flipped`], [`truncated`],
//! [`partial_write`], [`corrupt_tsv_field`]) are free functions usable
//! against any file format.

use std::io::Write;

/// A gradient fault to inject at a training step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GradFault {
    /// Overwrite one gradient entry with NaN (models a numerical blow-up).
    Nan,
    /// Overwrite one gradient entry with +inf (models an overflow).
    Inf,
}

impl GradFault {
    /// The poison value this fault writes into a gradient.
    pub fn value(self) -> f32 {
        match self {
            GradFault::Nan => f32::NAN,
            GradFault::Inf => f32::INFINITY,
        }
    }
}

/// A deterministic fault schedule: which [`GradFault`] (if any) fires at
/// each zero-based training step, and which continual-training rounds the
/// online trainer should die in outright (`trainer-panic`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    faults: Vec<(GradFault, u64, u64)>, // (fault, first_step, last_step) inclusive
    panics: Vec<(u64, u64)>,            // (first_round, last_round) inclusive
}

impl ChaosPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        ChaosPlan::default()
    }

    /// True if the plan has no scheduled faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.panics.is_empty()
    }

    /// Adds a gradient fault at a single step (builder style).
    pub fn with_grad_fault(mut self, fault: GradFault, step: u64) -> Self {
        self.faults.push((fault, step, step));
        self
    }

    /// Adds a gradient fault over an inclusive step range (builder style).
    pub fn with_grad_fault_range(mut self, fault: GradFault, first: u64, last: u64) -> Self {
        self.faults.push((fault, first, last));
        self
    }

    /// The fault scheduled for `step`, if any (first matching clause wins).
    pub fn grad_fault(&self, step: u64) -> Option<GradFault> {
        self.faults.iter().find(|(_, lo, hi)| (*lo..=*hi).contains(&step)).map(|(f, _, _)| *f)
    }

    /// Schedules a trainer panic over an inclusive round range (builder
    /// style). Rounds count the online supervisor's training attempts, not
    /// gradient steps.
    pub fn with_trainer_panic_range(mut self, first: u64, last: u64) -> Self {
        self.panics.push((first, last));
        self
    }

    /// True if the online trainer should panic in continual-training round
    /// `round` (zero-based).
    pub fn trainer_panic(&self, round: u64) -> bool {
        self.panics.iter().any(|(lo, hi)| (*lo..=*hi).contains(&round))
    }

    /// Parses the `RETIA_CHAOS` grammar: `kind@steps[;kind@steps]` with
    /// `kind ∈ {grad-nan, grad-inf, trainer-panic}` and `steps` a comma
    /// list of `N` or `N-M` (inclusive). An empty string is the empty plan.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = ChaosPlan::none();
        for clause in spec.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            let (kind, steps) = clause
                .split_once('@')
                .ok_or_else(|| format!("chaos clause `{clause}`: expected `kind@steps`"))?;
            let fault = match kind.trim() {
                "grad-nan" => Some(GradFault::Nan),
                "grad-inf" => Some(GradFault::Inf),
                "trainer-panic" => None,
                other => {
                    return Err(format!(
                        "chaos clause `{clause}`: unknown fault kind `{other}` \
                         (expected grad-nan, grad-inf or trainer-panic)"
                    ));
                }
            };
            for part in steps.split(',').map(str::trim).filter(|p| !p.is_empty()) {
                let (lo, hi) = match part.split_once('-') {
                    Some((a, b)) => (parse_step(clause, a)?, parse_step(clause, b)?),
                    None => {
                        let s = parse_step(clause, part)?;
                        (s, s)
                    }
                };
                if lo > hi {
                    return Err(format!("chaos clause `{clause}`: empty range `{part}`"));
                }
                match fault {
                    Some(f) => plan.faults.push((f, lo, hi)),
                    None => plan.panics.push((lo, hi)),
                }
            }
        }
        Ok(plan)
    }

    /// Reads the plan from the `RETIA_CHAOS` environment variable; unset or
    /// empty means no chaos.
    pub fn from_env() -> Result<Self, String> {
        match std::env::var("RETIA_CHAOS") {
            Ok(spec) => Self::parse(&spec),
            Err(_) => Ok(ChaosPlan::none()),
        }
    }
}

fn parse_step(clause: &str, s: &str) -> Result<u64, String> {
    s.trim().parse().map_err(|_| format!("chaos clause `{clause}`: `{s}` is not a step number"))
}

/// A copy of `bytes` with the bit at `bit_offset` (counting from byte 0,
/// LSB first) flipped. Offsets past the end wrap — callers iterating
/// `0..bytes.len() * 8` hit every bit exactly once.
pub fn bit_flipped(bytes: &[u8], bit_offset: usize) -> Vec<u8> {
    let mut out = bytes.to_vec();
    if !out.is_empty() {
        let i = (bit_offset / 8) % out.len();
        out[i] ^= 1 << (bit_offset % 8);
    }
    out
}

/// A copy of `bytes` cut to the first `len` bytes (a torn read / partial
/// download).
pub fn truncated(bytes: &[u8], len: usize) -> Vec<u8> {
    bytes[..len.min(bytes.len())].to_vec()
}

/// A writer callback for `retia_tensor::serialize::atomic_write_with` that
/// writes only the first `budget` bytes and then fails — simulating the
/// process dying mid-checkpoint. The atomic-save protocol must leave the
/// previous checkpoint untouched when this fires.
pub fn partial_write(budget: usize) -> impl FnOnce(&mut dyn Write, &[u8]) -> std::io::Result<()> {
    move |w, bytes| {
        let n = budget.min(bytes.len());
        w.write_all(&bytes[..n])?;
        Err(std::io::Error::other(format!("chaos: crashed after {n} of {} bytes", bytes.len())))
    }
}

/// Corrupts one tab-separated field of one line (both zero-based) in a TSV
/// blob, replacing it with `garbage`. Lines or fields out of range leave
/// the text unchanged — the caller's corruption test should assert the
/// loader *rejects* the result, so silently missing the target would show
/// up as a test failure.
pub fn corrupt_tsv_field(text: &str, line: usize, field: usize, garbage: &str) -> String {
    text.lines()
        .enumerate()
        .map(|(i, l)| {
            if i != line {
                return l.to_string();
            }
            let mut fields: Vec<&str> = l.split('\t').collect();
            if field < fields.len() {
                fields[field] = garbage;
            }
            fields.join("\t")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_single_and_range() {
        let plan = ChaosPlan::parse("grad-nan@3,7;grad-inf@10-12").unwrap();
        assert_eq!(plan.grad_fault(3), Some(GradFault::Nan));
        assert_eq!(plan.grad_fault(7), Some(GradFault::Nan));
        assert_eq!(plan.grad_fault(10), Some(GradFault::Inf));
        assert_eq!(plan.grad_fault(11), Some(GradFault::Inf));
        assert_eq!(plan.grad_fault(12), Some(GradFault::Inf));
        assert_eq!(plan.grad_fault(13), None);
        assert_eq!(plan.grad_fault(0), None);
    }

    #[test]
    fn parse_trainer_panic_rounds() {
        let plan = ChaosPlan::parse("trainer-panic@1,4-5;grad-nan@0").unwrap();
        assert!(!plan.trainer_panic(0));
        assert!(plan.trainer_panic(1));
        assert!(plan.trainer_panic(4));
        assert!(plan.trainer_panic(5));
        assert!(!plan.trainer_panic(6));
        assert_eq!(plan.grad_fault(0), Some(GradFault::Nan));
        assert_eq!(
            plan,
            ChaosPlan::none()
                .with_trainer_panic_range(1, 1)
                .with_trainer_panic_range(4, 5)
                .with_grad_fault(GradFault::Nan, 0)
        );
        // A panic-only plan is not empty.
        assert!(!ChaosPlan::parse("trainer-panic@0").unwrap().is_empty());
    }

    #[test]
    fn parse_empty_is_no_chaos() {
        assert!(ChaosPlan::parse("").unwrap().is_empty());
        assert!(ChaosPlan::parse("  ;  ").unwrap().is_empty());
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["nan@1", "grad-nan", "grad-nan@x", "grad-nan@5-2", "grad-nan@"] {
            let r = ChaosPlan::parse(bad);
            if bad == "grad-nan@" {
                // No step parts at all: clause contributes nothing.
                assert!(r.unwrap().is_empty());
            } else {
                assert!(r.is_err(), "`{bad}` should be rejected");
            }
        }
    }

    #[test]
    fn builder_matches_parser() {
        let built = ChaosPlan::none().with_grad_fault(GradFault::Nan, 3).with_grad_fault_range(
            GradFault::Inf,
            5,
            6,
        );
        let parsed = ChaosPlan::parse("grad-nan@3;grad-inf@5-6").unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn fault_values_are_non_finite() {
        assert!(GradFault::Nan.value().is_nan());
        assert!(GradFault::Inf.value().is_infinite());
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let orig = vec![0u8; 4];
        for bit in 0..32 {
            let mutated = bit_flipped(&orig, bit);
            let diff: u32 = orig.iter().zip(&mutated).map(|(a, b)| (a ^ b).count_ones()).sum();
            assert_eq!(diff, 1, "bit {bit}");
        }
    }

    #[test]
    fn truncate_clamps() {
        assert_eq!(truncated(b"abcdef", 3), b"abc");
        assert_eq!(truncated(b"abc", 99), b"abc");
        assert!(truncated(b"abc", 0).is_empty());
    }

    #[test]
    fn partial_write_fails_after_budget() {
        let mut sink = Vec::new();
        let f = partial_write(4);
        let err = f(&mut sink, b"0123456789").unwrap_err();
        assert_eq!(sink, b"0123");
        assert!(err.to_string().contains("chaos"), "{err}");
    }

    #[test]
    fn corrupt_tsv_hits_the_right_cell() {
        let text = "a\tb\tc\nd\te\tf";
        assert_eq!(corrupt_tsv_field(text, 1, 1, "XX"), "a\tb\tc\nd\tXX\tf");
        // Out-of-range targets leave the text unchanged.
        assert_eq!(corrupt_tsv_field(text, 9, 0, "XX"), text);
        assert_eq!(corrupt_tsv_field(text, 0, 9, "XX"), text);
    }
}
