//! Repo-specific source lint (the `retia-lint` binary).
//!
//! Seven rules, scanned over `crates/*/src` (plus `crates/tensor/tests` as
//! the evidence corpus for the kernel rule):
//!
//! - **no-unwrap** — library crates must not call `.unwrap()`, `panic!`, or
//!   `.expect("")` (an `expect` with an actionable message is fine). The CLI
//!   and bench crates are exempt; so is test code.
//! - **no-println** — stdout belongs to the CLI. Library crates must route
//!   diagnostics through `retia-obs` (stderr via `eprintln!` is allowed —
//!   that is the obs sink itself).
//! - **no-process-exit** — library crates must not call
//!   `std::process::exit`: it skips destructors and steals the exit-code
//!   decision from the binary. Return an error and let `main` decide.
//! - **kernel-bit-identity** — every kernel registered with
//!   `retia_obs::kernel_span("name")` in `crates/tensor/src` must be named in
//!   a test under `crates/tensor/tests`, keeping the thread-count
//!   bit-identity sweep in lockstep with the kernel set.
//! - **stage-span** — every serve pipeline stage constant declared in
//!   `crates/serve/src/stages.rs` must have an emission site: a `span!` or
//!   `record_stage` call naming the constant (or its string literal, in
//!   crates that cannot depend on retia-serve) somewhere under
//!   `crates/*/src`, keeping the request-trace taxonomy from drifting.
//! - **layer-validate** — every public NN layer struct in `crates/nn/src`
//!   must expose a `validate` method replaying its shapes through
//!   [`crate::ShapeCtx`].
//! - **no-as-cast** — `crates/tensor/src` must not use bare `as` numeric
//!   casts: `as` silently truncates, wraps, and saturates, which is exactly
//!   the class of value bug the abstract interpreter exists to rule out.
//!   Use `From`/`TryFrom` (e.g. `f64::from(x)`, `u32::try_from(n)`) so the
//!   lossy conversions are explicit. Existing sites are grandfathered with
//!   exact per-file counts.
//!
//! Beyond the per-line rules, [`run`] also diffs the rendered
//! reduction-order sensitivity map
//! ([`retia_tensor::transfer::render_reduction_map`]) against the
//! checked-in `scripts/reduction-order.txt`, so a new accumulation loop (or
//! a reclassification of an existing one) cannot land without showing up in
//! review. Regenerate with `retia-lint --write-reduction-map`.
//!
//! Grandfathered sites live in `scripts/lint-allowlist.txt` as exact
//! `path rule count` entries. The ratchet is two-sided: more violations than
//! allowed fails, and *fewer* also fails (with instructions to lower the
//! entry), so the committed allowlist always matches reality and the count
//! can only go down.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Crates under `crates/` whose `src` is exempt from the in-library rules
/// (`no-unwrap`, `no-println`, `no-process-exit`): binaries talking to a
/// terminal.
const EXEMPT_CRATES: [&str; 2] = ["cli", "bench"];

/// One source file presented to the lint engine, path relative to the repo
/// root with forward slashes.
#[derive(Clone, Debug)]
pub struct SourceFile {
    pub path: String,
    pub content: String,
}

/// One rule violation at a specific line.
#[derive(Clone, Debug)]
pub struct Violation {
    pub path: String,
    pub line: usize,
    pub rule: &'static str,
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.detail)
    }
}

/// Result of a full lint run after the allowlist is applied.
#[derive(Debug, Default)]
pub struct LintOutcome {
    pub files_scanned: usize,
    pub violations_found: usize,
    pub violations_allowed: usize,
    /// Human-readable failure lines; empty means the lint passed.
    pub failures: Vec<String>,
}

impl LintOutcome {
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

// ---- code stripping --------------------------------------------------------

/// Returns `content` line by line with comments removed and string contents
/// replaced by a placeholder (empty strings stay empty, so `.expect("")`
/// remains detectable). Rule patterns match against these stripped lines,
/// never raw source, so a rule name inside a comment or string is not a hit.
fn strip_code(content: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut line = String::new();
    let mut chars = content.chars().peekable();
    let mut block_comment = 0usize;
    while let Some(c) = chars.next() {
        if c == '\n' {
            out.push(std::mem::take(&mut line));
            continue;
        }
        if block_comment > 0 {
            if c == '*' && chars.peek() == Some(&'/') {
                chars.next();
                block_comment -= 1;
            } else if c == '/' && chars.peek() == Some(&'*') {
                chars.next();
                block_comment += 1;
            }
            continue;
        }
        match c {
            '/' if chars.peek() == Some(&'/') => {
                // Line comment: drop the rest of the line.
                for d in chars.by_ref() {
                    if d == '\n' {
                        out.push(std::mem::take(&mut line));
                        break;
                    }
                }
            }
            '/' if chars.peek() == Some(&'*') => {
                chars.next();
                block_comment += 1;
            }
            '"' => {
                line.push('"');
                let mut empty = true;
                while let Some(d) = chars.next() {
                    match d {
                        '\\' => {
                            chars.next();
                            empty = false;
                        }
                        '"' => break,
                        _ => empty = false,
                    }
                }
                if !empty {
                    line.push('S');
                }
                line.push('"');
            }
            'r' if chars.peek() == Some(&'"') || chars.peek() == Some(&'#') => {
                // Raw string r"..." / r#"..."# (no escapes inside).
                let mut hashes = 0usize;
                while chars.peek() == Some(&'#') {
                    chars.next();
                    hashes += 1;
                }
                if chars.peek() == Some(&'"') {
                    chars.next();
                    line.push_str("\"S\"");
                    let closer: String =
                        std::iter::once('"').chain(std::iter::repeat_n('#', hashes)).collect();
                    let mut tail = String::new();
                    for d in chars.by_ref() {
                        tail.push(d);
                        if tail.ends_with(&closer) {
                            break;
                        }
                    }
                } else {
                    // `r#ident` raw identifier, not a string.
                    line.push('r');
                    for _ in 0..hashes {
                        line.push('#');
                    }
                }
            }
            '\'' => {
                // Char literal vs lifetime: 'x' / '\n' are literals; 'a in
                // `&'a str` is a lifetime (no closing quote right after).
                let mut ahead = chars.clone();
                match (ahead.next(), ahead.next()) {
                    (Some('\\'), _) => {
                        // Escaped char literal: consume through closing quote.
                        chars.next();
                        chars.next(); // the escaped char
                        for d in chars.by_ref() {
                            if d == '\'' {
                                break;
                            }
                        }
                        line.push_str("'C'");
                    }
                    (Some(_), Some('\'')) => {
                        chars.next();
                        chars.next();
                        line.push_str("'C'");
                    }
                    _ => line.push('\''), // lifetime marker
                }
            }
            _ => line.push(c),
        }
    }
    if !line.is_empty() {
        out.push(line);
    }
    out
}

/// Marks lines inside `#[cfg(test)]`-gated blocks. Returns one flag per
/// stripped line; `true` means "test code, skip in-library rules".
fn test_block_mask(stripped: &[String]) -> Vec<bool> {
    let mut mask = vec![false; stripped.len()];
    let mut i = 0usize;
    while i < stripped.len() {
        if stripped[i].contains("#[cfg(test)]") {
            // Skip until the block opened after the attribute closes. A `;`
            // before any `{` means the attribute gated a single item.
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = i;
            while j < stripped.len() {
                mask[j] = true;
                for c in stripped[j].chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        ';' if !opened => {
                            depth = -1; // single gated item, stop here
                        }
                        _ => {}
                    }
                    if opened && depth == 0 {
                        break;
                    }
                    if depth < 0 {
                        break;
                    }
                }
                if (opened && depth == 0) || depth < 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

// ---- rules -----------------------------------------------------------------

/// Crate name if `path` is a library source file (`crates/<name>/src/...`).
fn library_crate(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("crates/")?;
    let (krate, tail) = rest.split_once('/')?;
    if !tail.starts_with("src/") || EXEMPT_CRATES.contains(&krate) {
        return None;
    }
    Some(krate)
}

/// Occurrences of `pat` in `line` that start at a token boundary (not
/// preceded by an identifier character), so `eprintln!` is not a `println!`
/// hit and `reprint!` is not a `print!` hit.
fn token_hits(line: &str, pat: &str) -> usize {
    // Patterns starting with `.` carry their own boundary; identifier-led
    // patterns must not be preceded by an identifier character.
    let needs_boundary = pat.starts_with(|c: char| c.is_alphanumeric() || c == '_');
    line.match_indices(pat)
        .filter(|(pos, _)| {
            !needs_boundary || !line[..*pos].ends_with(|c: char| c.is_alphanumeric() || c == '_')
        })
        .count()
}

fn scan_in_library_rules(file: &SourceFile, violations: &mut Vec<Violation>) {
    if library_crate(&file.path).is_none() {
        return;
    }
    let stripped = strip_code(&file.content);
    let mask = test_block_mask(&stripped);
    let unwrap_patterns: [(&str, &str); 3] = [
        (
            ".unwrap()",
            "`.unwrap()` in library code: return a typed error or `expect` with an actionable \
             message",
        ),
        ("panic!", "`panic!` in library code: return a typed error instead"),
        (".expect(\"\")", "`.expect(\"\")` with an empty message: say what invariant failed"),
    ];
    for (idx, line) in stripped.iter().enumerate() {
        if mask[idx] {
            continue;
        }
        let lineno = idx + 1;
        for (pat, detail) in unwrap_patterns {
            for _ in 0..token_hits(line, pat) {
                violations.push(Violation {
                    path: file.path.clone(),
                    line: lineno,
                    rule: "no-unwrap",
                    detail: detail.to_string(),
                });
            }
        }
        for _ in 0..(token_hits(line, "println!") + token_hits(line, "print!(")) {
            violations.push(Violation {
                path: file.path.clone(),
                line: lineno,
                rule: "no-println",
                detail: "stdout printing in library code: route through retia-obs".to_string(),
            });
        }
        for _ in 0..token_hits(line, "process::exit") {
            violations.push(Violation {
                path: file.path.clone(),
                line: lineno,
                rule: "no-process-exit",
                detail: "`std::process::exit` in library code: it skips destructors and \
                         preempts the binary's exit-code policy — return an error instead"
                    .to_string(),
            });
        }
    }
}

/// Extracts kernel names registered via `kernel_span("...")`.
fn kernel_names(stripped: &[String]) -> Vec<(usize, String)> {
    let mut names = Vec::new();
    for (idx, line) in stripped.iter().enumerate() {
        let mut rest = line.as_str();
        while let Some(pos) = rest.find("kernel_span(\"") {
            rest = &rest[pos + "kernel_span(\"".len()..];
            if let Some(end) = rest.find('"') {
                names.push((idx + 1, rest[..end].to_string()));
                rest = &rest[end..];
            } else {
                break;
            }
        }
    }
    names
}

/// Rule `kernel-bit-identity`: every tensor kernel name must appear (quoted)
/// in `crates/tensor/tests`.
fn scan_kernel_rule(files: &[SourceFile], violations: &mut Vec<Violation>) {
    let test_corpus: String = files
        .iter()
        .filter(|f| f.path.starts_with("crates/tensor/tests/"))
        .map(|f| f.content.as_str())
        .collect();
    for file in files {
        if !file.path.starts_with("crates/tensor/src/") {
            continue;
        }
        // Placeholder-stripped lines still carry kernel_span("S") markers, so
        // extract names from the raw content but drop commented-out lines.
        let stripped = strip_code(&file.content);
        let raw_lines: Vec<&str> = file.content.lines().collect();
        for (lineno, _) in kernel_names(&stripped) {
            let raw = raw_lines.get(lineno - 1).copied().unwrap_or("");
            for (_, name) in kernel_names(&[raw.to_string()]) {
                if !test_corpus.contains(&format!("\"{name}\"")) {
                    violations.push(Violation {
                        path: file.path.clone(),
                        line: lineno,
                        rule: "kernel-bit-identity",
                        detail: format!(
                            "kernel `{name}` has no bit-identity test naming it in \
                             crates/tensor/tests"
                        ),
                    });
                }
            }
        }
    }
}

/// Path of the serve pipeline's canonical stage-name constants.
const STAGES_PATH: &str = "crates/serve/src/stages.rs";

/// How many lines after a `span!(`/`record_stage(` call head still count as
/// part of that call when looking for the stage argument (rustfmt wraps the
/// arguments of long calls onto following lines).
const STAGE_EVIDENCE_WINDOW: usize = 4;

/// Occurrences of `ident` in `line` bounded by non-identifier characters on
/// both sides (unlike [`token_hits`], which only checks the left side) — so
/// `DECODE` does not match inside `DECODE_SHARD`.
fn ident_hit(line: &str, ident: &str) -> bool {
    line.match_indices(ident).any(|(pos, _)| {
        let left_ok = !line[..pos].ends_with(|c: char| c.is_alphanumeric() || c == '_');
        let right_ok =
            !line[pos + ident.len()..].starts_with(|c: char| c.is_alphanumeric() || c == '_');
        left_ok && right_ok
    })
}

/// Rule `stage-span`: every stage constant declared in
/// `crates/serve/src/stages.rs` (`pub const NAME: &str = "serve...";`) must
/// have an emission site — a `span!(` or `record_stage(` call referencing
/// the constant, or (for crates that cannot depend on retia-serve) its
/// string literal — somewhere under `crates/*/src`. This keeps the span
/// taxonomy the docs and the trace store rely on in lockstep with the code:
/// a renamed or orphaned stage fails the lint instead of silently vanishing
/// from request traces.
fn scan_stage_span_rule(files: &[SourceFile], violations: &mut Vec<Violation>) {
    let Some(stage_file) = files.iter().find(|f| f.path == STAGES_PATH) else {
        return;
    };
    // Declarations: names from the stripped lines (comment-proof), literals
    // from the raw line (stripping blanks string contents).
    let stripped = strip_code(&stage_file.content);
    let raw_lines: Vec<&str> = stage_file.content.lines().collect();
    let mut stages: Vec<(usize, String, String)> = Vec::new();
    for (idx, line) in stripped.iter().enumerate() {
        let Some(pos) = line.find("const ") else { continue };
        let rest = &line[pos + "const ".len()..];
        if !rest.contains(": &str") {
            continue;
        }
        let ident: String = rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
        let Some(lit) = raw_lines.get(idx).and_then(|raw| raw.split('"').nth(1)) else {
            continue;
        };
        if !ident.is_empty() {
            stages.push((idx + 1, ident, lit.to_string()));
        }
    }
    // Evidence: for every span!/record_stage call head in library sources,
    // the stripped lines of the call window (for identifier references) and
    // the raw lines (for string literals — stripping blanked them).
    let mut ident_corpus: Vec<String> = Vec::new();
    let mut literal_corpus: Vec<String> = Vec::new();
    for file in files {
        if file.path == STAGES_PATH
            || !file.path.starts_with("crates/")
            || !file.path.contains("/src/")
        {
            continue;
        }
        let s = strip_code(&file.content);
        let raws: Vec<&str> = file.content.lines().collect();
        for (idx, line) in s.iter().enumerate() {
            if line.contains("span!(") || line.contains("record_stage(") {
                let end = (idx + STAGE_EVIDENCE_WINDOW).min(s.len());
                ident_corpus.push(s[idx..end].join(" "));
                literal_corpus.push(raws[idx..end.min(raws.len())].join(" "));
            }
        }
    }
    for (lineno, ident, lit) in stages {
        let quoted = format!("\"{lit}\"");
        let emitted = ident_corpus.iter().any(|w| ident_hit(w, &ident))
            || literal_corpus.iter().any(|w| w.contains(&quoted));
        if !emitted {
            violations.push(Violation {
                path: STAGES_PATH.to_string(),
                line: lineno,
                rule: "stage-span",
                detail: format!(
                    "stage constant `{ident}` (\"{lit}\") has no span!/record_stage emission \
                     site under crates/*/src — emit it or retire the stage"
                ),
            });
        }
    }
}

/// Rule `layer-validate`: every `pub struct` in `crates/nn/src` must have a
/// `validate` method in one of its `impl` blocks (same file).
fn scan_layer_validate_rule(files: &[SourceFile], violations: &mut Vec<Violation>) {
    for file in files {
        if !file.path.starts_with("crates/nn/src/") {
            continue;
        }
        let stripped = strip_code(&file.content);
        let mask = test_block_mask(&stripped);
        let mut structs: Vec<(usize, String)> = Vec::new();
        for (idx, line) in stripped.iter().enumerate() {
            if mask[idx] {
                continue;
            }
            if let Some(pos) = line.find("pub struct ") {
                let name: String = line[pos + "pub struct ".len()..]
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !name.is_empty() {
                    structs.push((idx + 1, name));
                }
            }
        }
        for (lineno, name) in structs {
            if !impl_blocks_contain(&stripped, &name, "fn validate") {
                violations.push(Violation {
                    path: file.path.clone(),
                    line: lineno,
                    rule: "layer-validate",
                    detail: format!(
                        "public layer `{name}` has no `validate` method replaying its shapes \
                         through retia_analyze::ShapeCtx"
                    ),
                });
            }
        }
    }
}

/// Numeric primitive types a bare `as` cast can target. `as` between these
/// silently truncates (`f64 as f32`), wraps (`usize as u32`), or saturates
/// (`f32 as i64`) — the exact value bugs the interval domain tracks.
const CAST_TARGETS: [&str; 12] =
    ["f32", "f64", "usize", "isize", "u8", "u16", "u32", "u64", "i8", "i16", "i32", "i64"];

/// Rule `no-as-cast`: no bare `as` numeric casts in `crates/tensor/src`.
/// The kernel crate is where a silently-lossy conversion does the most
/// damage (it feeds every downstream layer), so conversions there must go
/// through `From`/`TryFrom`, which name their failure mode.
fn scan_as_cast_rule(file: &SourceFile, violations: &mut Vec<Violation>) {
    if !file.path.starts_with("crates/tensor/src/") {
        return;
    }
    let stripped = strip_code(&file.content);
    let mask = test_block_mask(&stripped);
    for (idx, line) in stripped.iter().enumerate() {
        if mask[idx] {
            continue;
        }
        for (pos, _) in line.match_indices(" as ") {
            let target: String = line[pos + " as ".len()..]
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if CAST_TARGETS.contains(&target.as_str()) {
                violations.push(Violation {
                    path: file.path.clone(),
                    line: idx + 1,
                    rule: "no-as-cast",
                    detail: format!(
                        "bare `as {target}` cast in the kernel crate: use `From`/`TryFrom` so \
                         the lossy conversion is explicit"
                    ),
                });
            }
        }
    }
}

/// True if any `impl <name>` block in `stripped` contains `needle`.
fn impl_blocks_contain(stripped: &[String], name: &str, needle: &str) -> bool {
    let mut idx = 0usize;
    while idx < stripped.len() {
        let line = stripped[idx].trim_start();
        let is_impl_for_name = line.strip_prefix("impl ").is_some_and(|rest| {
            rest.strip_prefix(name)
                .is_some_and(|after| !after.starts_with(|c: char| c.is_alphanumeric() || c == '_'))
        });
        if !is_impl_for_name {
            idx += 1;
            continue;
        }
        // Walk the impl block by brace depth, searching for the needle.
        let mut depth = 0i64;
        let mut opened = false;
        while idx < stripped.len() {
            if stripped[idx].contains(needle) {
                return true;
            }
            for c in stripped[idx].chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            idx += 1;
            if opened && depth <= 0 {
                break;
            }
        }
    }
    false
}

/// Runs every rule over the given sources. Pure function of the inputs.
pub fn scan_sources(files: &[SourceFile]) -> Vec<Violation> {
    let mut violations = Vec::new();
    for file in files {
        scan_in_library_rules(file, &mut violations);
        scan_as_cast_rule(file, &mut violations);
    }
    scan_kernel_rule(files, &mut violations);
    scan_stage_span_rule(files, &mut violations);
    scan_layer_validate_rule(files, &mut violations);
    violations.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    violations
}

// ---- allowlist -------------------------------------------------------------

/// Parses `path rule count` lines (blank lines and `#` comments ignored).
pub fn parse_allowlist(text: &str) -> Result<BTreeMap<(String, String), usize>, String> {
    let mut allow = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (path, rule, count) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(p), Some(r), Some(c), None) => (p, r, c),
            _ => {
                return Err(format!(
                    "allowlist line {}: expected `path rule count`, got `{line}`",
                    lineno + 1
                ))
            }
        };
        let count: usize = count
            .parse()
            .map_err(|_| format!("allowlist line {}: bad count `{count}`", lineno + 1))?;
        if allow.insert((path.to_string(), rule.to_string()), count).is_some() {
            return Err(format!(
                "allowlist line {}: duplicate entry for {path} {rule}",
                lineno + 1
            ));
        }
    }
    Ok(allow)
}

/// Applies the exact-count ratchet: per `(path, rule)`, more violations than
/// allowed fails with the sites listed; fewer also fails, demanding the
/// allowlist entry be lowered. Returns failure lines (empty = pass).
pub fn apply_allowlist(
    violations: &[Violation],
    allow: &BTreeMap<(String, String), usize>,
) -> Vec<String> {
    let mut by_key: BTreeMap<(String, String), Vec<&Violation>> = BTreeMap::new();
    for v in violations {
        by_key.entry((v.path.clone(), v.rule.to_string())).or_default().push(v);
    }
    let mut failures = Vec::new();
    for (key, group) in &by_key {
        let allowed = allow.get(key).copied().unwrap_or(0);
        if group.len() > allowed {
            let mut msg =
                format!("{} {}: {} violation(s), {} allowed:", key.0, key.1, group.len(), allowed);
            for v in group {
                let _ = write!(msg, "\n    {v}");
            }
            failures.push(msg);
        } else if group.len() < allowed {
            failures.push(format!(
                "{} {}: allowlist grants {} but only {} found — lower the entry (the ratchet \
                 only goes down)",
                key.0,
                key.1,
                allowed,
                group.len()
            ));
        }
    }
    for (key, &allowed) in allow {
        if allowed > 0 && !by_key.contains_key(key) {
            failures.push(format!(
                "{} {}: allowlist grants {} but none found — remove the stale entry",
                key.0, key.1, allowed
            ));
        }
    }
    failures
}

// ---- reduction-order map ---------------------------------------------------

/// Path of the checked-in reduction-order sensitivity map, relative to the
/// workspace root.
pub const REDUCTION_MAP_PATH: &str = "scripts/reduction-order.txt";

/// Diffs the checked-in reduction-order map against the one rendered from
/// [`retia_tensor::transfer::REDUCTION_SITES`]. Returns failure lines
/// (empty = in sync). A missing file fails with regeneration instructions.
pub fn check_reduction_map(root: &Path) -> std::io::Result<Vec<String>> {
    let expected = retia_tensor::transfer::render_reduction_map();
    let path = root.join(REDUCTION_MAP_PATH);
    let actual = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(vec![format!(
                "{REDUCTION_MAP_PATH}: missing — generate it with \
                 `cargo run -p retia-analyze --bin retia-lint -- --write-reduction-map`"
            )])
        }
        Err(e) => return Err(e),
    };
    if actual == expected {
        return Ok(Vec::new());
    }
    let mut failures = vec![format!(
        "{REDUCTION_MAP_PATH}: out of sync with retia_tensor::transfer::REDUCTION_SITES — \
         regenerate with `retia-lint -- --write-reduction-map` and review the diff"
    )];
    let got: Vec<&str> = actual.lines().collect();
    let want: Vec<&str> = expected.lines().collect();
    for i in 0..got.len().max(want.len()) {
        let g = got.get(i).copied().unwrap_or("<missing>");
        let w = want.get(i).copied().unwrap_or("<missing>");
        if g != w {
            failures.push(format!("    line {}: checked in `{g}`, code renders `{w}`", i + 1));
            break;
        }
    }
    Ok(failures)
}

// ---- filesystem driver -----------------------------------------------------

fn push_rs_files(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            push_rs_files(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
            out.push(SourceFile { path: rel, content: std::fs::read_to_string(&path)? });
        }
    }
    Ok(())
}

/// Collects every `crates/*/src/**.rs` and `crates/*/tests/**.rs` file under
/// the workspace root.
pub fn collect_workspace_sources(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crates: Vec<_> = std::fs::read_dir(&crates_dir)?.collect::<Result<_, _>>()?;
    crates.sort_by_key(|e| e.path());
    for krate in crates {
        if krate.path().is_dir() {
            push_rs_files(&krate.path().join("src"), root, &mut files)?;
            push_rs_files(&krate.path().join("tests"), root, &mut files)?;
        }
    }
    Ok(files)
}

/// Full lint run: collect sources, scan, apply the allowlist at
/// `scripts/lint-allowlist.txt` (missing file = empty allowlist).
pub fn run(root: &Path) -> std::io::Result<LintOutcome> {
    let files = collect_workspace_sources(root)?;
    let violations = scan_sources(&files);
    let allow_path = root.join("scripts/lint-allowlist.txt");
    let allow_text = match std::fs::read_to_string(&allow_path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    let mut outcome = LintOutcome {
        files_scanned: files.len(),
        violations_found: violations.len(),
        ..LintOutcome::default()
    };
    match parse_allowlist(&allow_text) {
        Ok(allow) => {
            outcome.violations_allowed = allow.values().sum();
            outcome.failures = apply_allowlist(&violations, &allow);
        }
        Err(e) => outcome.failures.push(e),
    }
    outcome.failures.extend(check_reduction_map(root)?);
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_file(content: &str) -> SourceFile {
        SourceFile { path: "crates/tensor/src/x.rs".to_string(), content: content.to_string() }
    }

    #[test]
    fn unwrap_rule_fires_in_library_code() {
        let v = scan_sources(&[lib_file("fn f() { x.unwrap(); }\n")]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-unwrap");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn panic_and_empty_expect_fire() {
        let src = "fn f() { panic!(\"boom\"); }\nfn g() { y.expect(\"\"); }\n";
        let v = scan_sources(&[lib_file(src)]);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == "no-unwrap"));
    }

    #[test]
    fn expect_with_message_is_allowed() {
        let v = scan_sources(&[lib_file("fn f() { y.expect(\"index precomputed above\"); }\n")]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn comments_strings_and_test_mods_are_skipped() {
        let src = "\
// x.unwrap() in a comment\n\
/* panic!(\"no\") */\n\
fn f() { let s = \".unwrap()\"; }\n\
#[cfg(test)]\n\
mod tests {\n\
    fn g() { x.unwrap(); println!(\"ok\"); }\n\
}\n";
        let v = scan_sources(&[lib_file(src)]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn cli_and_bench_are_exempt() {
        for path in ["crates/cli/src/main.rs", "crates/bench/src/lib.rs"] {
            let f = SourceFile {
                path: path.to_string(),
                content: "fn f() { println!(\"hi\"); x.unwrap(); }\n".to_string(),
            };
            assert!(scan_sources(&[f]).is_empty());
        }
    }

    #[test]
    fn println_rule_allows_eprintln() {
        let src = "fn f() { eprintln!(\"diag\"); }\nfn g() { println!(\"out\"); }\n";
        let v = scan_sources(&[lib_file(src)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-println");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn process_exit_rule_fires_in_library_code() {
        let v = scan_sources(&[lib_file("fn f() { std::process::exit(1); }\n")]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-process-exit");
        // The CLI is a binary and may exit.
        let cli = SourceFile {
            path: "crates/cli/src/main.rs".to_string(),
            content: "fn f() { std::process::exit(1); }\n".to_string(),
        };
        assert!(scan_sources(&[cli]).is_empty());
        // `std::process::id()` and a comment mention are not hits.
        let ok = lib_file("fn f() -> u32 { std::process::id() } // process::exit\n");
        assert!(scan_sources(&[ok]).is_empty());
    }

    #[test]
    fn kernel_rule_requires_named_test() {
        let kernel = SourceFile {
            path: "crates/tensor/src/k.rs".to_string(),
            content: "fn m() { let _t = retia_obs::kernel_span(\"mystery_kernel\"); }\n"
                .to_string(),
        };
        let v = scan_sources(std::slice::from_ref(&kernel));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "kernel-bit-identity");
        let test = SourceFile {
            path: "crates/tensor/tests/sweep.rs".to_string(),
            content: "fn t() { sweep(\"mystery_kernel\"); }\n".to_string(),
        };
        assert!(scan_sources(&[kernel, test]).is_empty());
    }

    fn stages_file(content: &str) -> SourceFile {
        SourceFile { path: STAGES_PATH.to_string(), content: content.to_string() }
    }

    #[test]
    fn stage_span_rule_requires_an_emission_site() {
        let stages = stages_file("pub const RECV: &str = \"serve.recv\";\n");
        // No emission anywhere: one violation at the declaration line.
        let v = scan_sources(std::slice::from_ref(&stages));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!((v[0].rule, v[0].line), ("stage-span", 1));
        // A span! call naming the constant satisfies the rule, including
        // when rustfmt wraps the argument onto the next line.
        let emit = SourceFile {
            path: "crates/serve/src/server.rs".to_string(),
            content: "fn f() { let _t = retia_obs::span!(\n    stages::RECV,\n); }\n".to_string(),
        };
        assert!(scan_sources(&[stages.clone(), emit]).is_empty());
        // A record_stage call carrying the string literal (another crate
        // that cannot name the constant) also satisfies it.
        let literal = SourceFile {
            path: "crates/core/src/frozen.rs".to_string(),
            content: "fn g() { trace::record_stage(&fr, \"serve.recv\", 0, 1); }\n".to_string(),
        };
        assert!(scan_sources(&[stages.clone(), literal]).is_empty());
        // The constant mentioned outside any span!/record_stage call does
        // NOT count as an emission site.
        let mere_use = SourceFile {
            path: "crates/serve/src/server.rs".to_string(),
            content: "fn h() { let _ = stages::RECV; }\n".to_string(),
        };
        assert_eq!(scan_sources(&[stages, mere_use]).len(), 1);
    }

    #[test]
    fn stage_span_rule_idents_need_both_boundaries() {
        // Emitting only DECODE_SHARD must not satisfy a DECODE constant.
        let stages = stages_file(
            "pub const DECODE: &str = \"serve.decode\";\n\
             pub const DECODE_SHARD: &str = \"serve.decode.shard\";\n",
        );
        let emit = SourceFile {
            path: "crates/serve/src/engine.rs".to_string(),
            content: "fn f() { let _t = retia_obs::span!(stages::DECODE_SHARD); }\n".to_string(),
        };
        let v = scan_sources(&[stages, emit]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].detail.contains("`DECODE`"), "{v:?}");
    }

    #[test]
    fn layer_validate_rule() {
        let missing = SourceFile {
            path: "crates/nn/src/l.rs".to_string(),
            content: "pub struct Thing { x: usize }\nimpl Thing { pub fn forward(&self) {} }\n"
                .to_string(),
        };
        let v = scan_sources(&[missing]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "layer-validate");
        let present = SourceFile {
            path: "crates/nn/src/l.rs".to_string(),
            content: "pub struct Thing { x: usize }\n\
                      impl Thing {\n    pub fn validate(&self) {}\n}\n"
                .to_string(),
        };
        assert!(scan_sources(&[present]).is_empty());
    }

    #[test]
    fn as_cast_rule_fires_only_in_the_tensor_crate() {
        let v = scan_sources(&[lib_file("fn f(n: usize) -> f64 { n as f64 }\n")]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "no-as-cast");
        assert!(v[0].detail.contains("as f64"), "{v:?}");
        // Other crates may cast (their values never feed a kernel directly).
        let other = SourceFile {
            path: "crates/nn/src/x.rs".to_string(),
            content: "fn f(n: usize) -> f64 { n as f64 }\n".to_string(),
        };
        assert!(scan_sources(&[other]).is_empty());
        // `use ... as _` renames and casts in comments/tests are not hits.
        let ok = lib_file(
            "use std::fmt::Write as _;\n\
             // let x = n as f32;\n\
             #[cfg(test)]\n\
             mod tests {\n    fn g(n: usize) -> f32 { n as f32 }\n}\n",
        );
        let ok_hits = scan_sources(std::slice::from_ref(&ok));
        assert!(ok_hits.is_empty(), "{ok_hits:?}");
        // Non-numeric `as` (trait objects, pointer syntax in macros) is fine.
        let dyn_ok = lib_file("fn f(e: E) -> Box<dyn Err> { Box::new(e) as Box<dyn Err> }\n");
        assert!(scan_sources(&[dyn_ok]).is_empty());
    }

    #[test]
    fn reduction_map_check_catches_drift_and_missing_file() {
        let dir = std::env::temp_dir().join(format!("retia-lint-map-{}", std::process::id()));
        let scripts = dir.join("scripts");
        std::fs::create_dir_all(&scripts).expect("create temp scripts dir");
        // Missing file: fails with regeneration instructions.
        let missing = check_reduction_map(&dir).expect("io ok");
        assert_eq!(missing.len(), 1);
        assert!(missing[0].contains("--write-reduction-map"), "{missing:?}");
        // Exact render: clean.
        let map_path = scripts.join("reduction-order.txt");
        std::fs::write(&map_path, retia_tensor::transfer::render_reduction_map())
            .expect("write map");
        assert!(check_reduction_map(&dir).expect("io ok").is_empty());
        // One flipped classification: drift reported with the line.
        let tampered =
            retia_tensor::transfer::render_reduction_map().replacen("sensitive", "invariant", 1);
        std::fs::write(&map_path, tampered).expect("write tampered map");
        let drift = check_reduction_map(&dir).expect("io ok");
        assert_eq!(drift.len(), 2, "{drift:?}");
        assert!(drift[0].contains("out of sync"), "{drift:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn allowlist_exact_count_ratchet() {
        let v = scan_sources(&[lib_file("fn f() { x.unwrap(); y.unwrap(); }\n")]);
        assert_eq!(v.len(), 2);
        let exact =
            parse_allowlist("crates/tensor/src/x.rs no-unwrap 2\n").expect("well-formed allowlist");
        assert!(apply_allowlist(&v, &exact).is_empty());
        let low =
            parse_allowlist("crates/tensor/src/x.rs no-unwrap 1\n").expect("well-formed allowlist");
        assert_eq!(apply_allowlist(&v, &low).len(), 1);
        let high =
            parse_allowlist("crates/tensor/src/x.rs no-unwrap 3\n").expect("well-formed allowlist");
        let failures = apply_allowlist(&v, &high);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("ratchet"), "{failures:?}");
        let stale =
            parse_allowlist("crates/other/src/y.rs no-unwrap 1\n").expect("well-formed allowlist");
        assert!(apply_allowlist(&v, &stale).iter().any(|f| f.contains("stale")));
    }

    #[test]
    fn allowlist_rejects_malformed_lines() {
        assert!(parse_allowlist("just-a-path\n").is_err());
        assert!(parse_allowlist("p r not-a-number\n").is_err());
        assert!(parse_allowlist("p r 1\np r 2\n").is_err());
        assert!(parse_allowlist("# comment\n\np r 3\n").is_ok());
    }

    #[test]
    fn stripper_handles_lifetimes_chars_and_raw_strings() {
        let src = "fn f<'a>(x: &'a str) -> char { let c = 'x'; let n = '\\n'; \
                   let r = r\"panic!\"; let h = r#\"u.unwrap()\"#; c }\n";
        let stripped = strip_code(src);
        assert_eq!(stripped.len(), 1);
        assert!(!stripped[0].contains("panic!"), "{}", stripped[0]);
        assert!(!stripped[0].contains(".unwrap()"), "{}", stripped[0]);
        assert!(stripped[0].contains("fn f<'a>"), "{}", stripped[0]);
    }
}
