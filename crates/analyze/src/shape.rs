//! Abstract shape interpreter.
//!
//! A [`ShapeTensor`] is a tensor with its data erased: two dimensions and
//! nothing else. [`ShapeCtx`] replays the exact op vocabulary of the autodiff
//! graph (`matmul`/`matmul_nt`/`matmul_tn`, gather/scatter, `conv1d`,
//! softmax-CE, the RNN/R-GCN building blocks) over shapes only — no
//! allocation, no floating point — checking every dimension and index-space
//! precondition the real kernels would assert at runtime.
//!
//! Mismatches do not abort the replay. Each failed check records a
//! [`ShapeIssue`] tagged with the enclosing module/equation scope (see
//! [`ShapeCtx::scoped`]) and the op returns the shape it *would* have
//! produced, so one pass over a model collects every inconsistency rather
//! than the first. Callers drain the result with [`ShapeCtx::finish`].

use std::fmt;

/// A tensor reduced to its shape: `rows x cols`. Copy, 16 bytes, no data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShapeTensor {
    pub rows: usize,
    pub cols: usize,
}

impl ShapeTensor {
    /// Shape-only stand-in for a `rows x cols` tensor.
    pub fn new(rows: usize, cols: usize) -> Self {
        ShapeTensor { rows, cols }
    }

    /// `(rows, cols)`, mirroring `Tensor::shape`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }
}

impl fmt::Display for ShapeTensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.rows, self.cols)
    }
}

/// One failed shape/index-space check, tagged with where in the model it
/// happened (module scope path, e.g. `eam.rgcn [Eq. 4] / layer 0`).
#[derive(Clone, Debug)]
pub struct ShapeIssue {
    /// Module/equation scope path active when the check failed.
    pub path: String,
    /// The op whose precondition failed (`matmul`, `gather_rows`, ...).
    pub op: &'static str,
    /// Human-readable description with the concrete offending dimensions.
    pub detail: String,
}

impl fmt::Display for ShapeIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "{}: {}", self.op, self.detail)
        } else {
            write!(f, "[{}] {}: {}", self.path, self.op, self.detail)
        }
    }
}

/// Outcome of a completed shape replay: every issue found plus the number of
/// op checks performed (so "0 issues" can be distinguished from "0 checks").
#[derive(Clone, Debug, Default)]
pub struct ShapeReport {
    pub issues: Vec<ShapeIssue>,
    pub ops_checked: usize,
}

impl ShapeReport {
    /// True when the replay found no inconsistencies.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }
}

impl fmt::Display for ShapeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} shape issue(s) in {} checked op(s):", self.issues.len(), self.ops_checked)?;
        for issue in &self.issues {
            writeln!(f, "  - {issue}")?;
        }
        Ok(())
    }
}

impl std::error::Error for ShapeReport {}

/// The abstract interpreter: replays graph ops over [`ShapeTensor`]s,
/// collecting [`ShapeIssue`]s instead of panicking.
#[derive(Debug, Default)]
pub struct ShapeCtx {
    scope: Vec<String>,
    issues: Vec<ShapeIssue>,
    ops_checked: usize,
}

impl ShapeCtx {
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` with `module` (and optionally a paper-equation tag) pushed
    /// onto the scope path; issues recorded inside are attributed to it.
    pub fn scoped<R>(
        &mut self,
        module: &str,
        equation: Option<&str>,
        f: impl FnOnce(&mut Self) -> R,
    ) -> R {
        let frame = match equation {
            Some(eq) => format!("{module} [{eq}]"),
            None => module.to_string(),
        };
        self.scope.push(frame);
        let out = f(self);
        self.scope.pop();
        out
    }

    /// Number of op checks performed so far.
    pub fn ops_checked(&self) -> usize {
        self.ops_checked
    }

    /// Issues recorded so far (drained by [`ShapeCtx::finish`]).
    pub fn issues(&self) -> &[ShapeIssue] {
        &self.issues
    }

    /// Consumes the context into a [`ShapeReport`].
    pub fn finish(self) -> ShapeReport {
        ShapeReport { issues: self.issues, ops_checked: self.ops_checked }
    }

    /// Records a custom precondition failure unless `cond` holds. Used by
    /// layer validators for checks that are not a single graph op (e.g.
    /// "LSTM input width must equal `input_dim`").
    pub fn check(&mut self, op: &'static str, cond: bool, detail: impl FnOnce() -> String) {
        self.ops_checked += 1;
        if !cond {
            self.record(op, detail());
        }
    }

    fn record(&mut self, op: &'static str, detail: String) {
        self.issues.push(ShapeIssue { path: self.scope.join(" / "), op, detail });
    }

    fn op(
        &mut self,
        op: &'static str,
        cond: bool,
        detail: impl FnOnce() -> String,
        out: ShapeTensor,
    ) -> ShapeTensor {
        self.ops_checked += 1;
        if !cond {
            self.record(op, detail());
        }
        out
    }

    // ---- elementwise -------------------------------------------------------

    fn same_shape(&mut self, op: &'static str, a: ShapeTensor, b: ShapeTensor) -> ShapeTensor {
        self.op(op, a == b, || format!("operand shapes differ: {a} vs {b}"), a)
    }

    pub fn add(&mut self, a: ShapeTensor, b: ShapeTensor) -> ShapeTensor {
        self.same_shape("add", a, b)
    }

    pub fn sub(&mut self, a: ShapeTensor, b: ShapeTensor) -> ShapeTensor {
        self.same_shape("sub", a, b)
    }

    pub fn mul(&mut self, a: ShapeTensor, b: ShapeTensor) -> ShapeTensor {
        self.same_shape("mul", a, b)
    }

    /// Any shape-preserving unary op (`sigmoid`, `tanh`, `relu`, `rrelu`,
    /// `dropout`, `scale`, `softmax_rows`, `ln`, `normalize_rows`,
    /// `layer_norm_rows`, ...). Named so issues elsewhere can reference it.
    pub fn unary(&mut self, op: &'static str, x: ShapeTensor) -> ShapeTensor {
        self.op(op, true, String::new, x)
    }

    /// Row-broadcast add: `bias` must be `[1, x.cols]`.
    pub fn add_bias(&mut self, x: ShapeTensor, bias: ShapeTensor) -> ShapeTensor {
        self.op(
            "add_bias",
            bias.rows == 1 && bias.cols == x.cols,
            || format!("bias {bias} does not broadcast over {x}"),
            x,
        )
    }

    /// Row-broadcast multiply: `w` must be `[1, x.cols]`.
    pub fn mul_bias(&mut self, x: ShapeTensor, w: ShapeTensor) -> ShapeTensor {
        self.op(
            "mul_bias",
            w.rows == 1 && w.cols == x.cols,
            || format!("weight {w} does not broadcast over {x}"),
            x,
        )
    }

    /// Column-broadcast multiply: `c` must be `[x.rows, 1]`.
    pub fn mul_col(&mut self, x: ShapeTensor, c: ShapeTensor) -> ShapeTensor {
        self.op(
            "mul_col",
            c.cols == 1 && c.rows == x.rows,
            || format!("column {c} does not broadcast over {x}"),
            x,
        )
    }

    // ---- matmul family -----------------------------------------------------

    /// `a @ b`: inner dimensions must agree.
    pub fn matmul(&mut self, a: ShapeTensor, b: ShapeTensor) -> ShapeTensor {
        self.op(
            "matmul",
            a.cols == b.rows,
            || format!("inner dims differ: {a} x {b}"),
            ShapeTensor::new(a.rows, b.cols),
        )
    }

    /// `a @ b^T`: column counts must agree.
    pub fn matmul_nt(&mut self, a: ShapeTensor, b: ShapeTensor) -> ShapeTensor {
        self.op(
            "matmul_nt",
            a.cols == b.cols,
            || format!("column counts differ: {a} x {b}^T"),
            ShapeTensor::new(a.rows, b.rows),
        )
    }

    /// `a^T @ b`: row counts must agree.
    pub fn matmul_tn(&mut self, a: ShapeTensor, b: ShapeTensor) -> ShapeTensor {
        self.op(
            "matmul_tn",
            a.rows == b.rows,
            || format!("row counts differ: {a}^T x {b}"),
            ShapeTensor::new(a.cols, b.cols),
        )
    }

    // ---- structure ---------------------------------------------------------

    /// Row gather: every index must address a row of `x`.
    pub fn gather_rows(&mut self, x: ShapeTensor, indices: &[u32]) -> ShapeTensor {
        let bad = indices.iter().find(|&&i| (i as usize) >= x.rows);
        self.op(
            "gather_rows",
            bad.is_none(),
            || format!("index {} out of range for {} rows", bad.unwrap_or(&0), x.rows),
            ShapeTensor::new(indices.len(), x.cols),
        )
    }

    /// Scatter-add into `[out_rows, x.cols]`: one destination index per row
    /// of `x`, each addressing a row of the output.
    pub fn scatter_add_rows(
        &mut self,
        x: ShapeTensor,
        indices: &[u32],
        out_rows: usize,
    ) -> ShapeTensor {
        let bad = indices.iter().find(|&&i| (i as usize) >= out_rows);
        let count_ok = indices.len() == x.rows;
        self.op(
            "scatter_add_rows",
            count_ok && bad.is_none(),
            || {
                if !count_ok {
                    format!("{} destination indices for {} input rows", indices.len(), x.rows)
                } else {
                    format!(
                        "destination index {} out of range for {} output rows",
                        bad.unwrap_or(&0),
                        out_rows
                    )
                }
            },
            ShapeTensor::new(out_rows, x.cols),
        )
    }

    /// Per-row scaling: one weight per row of `x`.
    pub fn row_scale(&mut self, x: ShapeTensor, num_weights: usize) -> ShapeTensor {
        self.op(
            "row_scale",
            num_weights == x.rows,
            || format!("{num_weights} weights for {} rows", x.rows),
            x,
        )
    }

    /// Horizontal concatenation `[a | b]`.
    pub fn concat_cols(&mut self, a: ShapeTensor, b: ShapeTensor) -> ShapeTensor {
        self.op(
            "concat_cols",
            a.rows == b.rows,
            || format!("row counts differ: {a} vs {b}"),
            ShapeTensor::new(a.rows, a.cols + b.cols),
        )
    }

    /// Columns `start..end` of `x`.
    pub fn slice_cols(&mut self, x: ShapeTensor, start: usize, end: usize) -> ShapeTensor {
        self.op(
            "slice_cols",
            start <= end && end <= x.cols,
            || format!("slice {start}..{end} out of range for {} columns", x.cols),
            ShapeTensor::new(x.rows, end.saturating_sub(start)),
        )
    }

    /// `out[i, 0] = x[i, cols[i]]`: one column index per row, in range.
    pub fn gather_cols(&mut self, x: ShapeTensor, cols: &[u32]) -> ShapeTensor {
        let bad = cols.iter().find(|&&c| (c as usize) >= x.cols);
        let count_ok = cols.len() == x.rows;
        self.op(
            "gather_cols",
            count_ok && bad.is_none(),
            || {
                if !count_ok {
                    format!("{} column indices for {} rows", cols.len(), x.rows)
                } else {
                    format!(
                        "column index {} out of range for {} columns",
                        bad.unwrap_or(&0),
                        x.cols
                    )
                }
            },
            ShapeTensor::new(x.rows, 1),
        )
    }

    // ---- reductions --------------------------------------------------------

    /// Mean over all elements -> `[1, 1]`.
    pub fn mean_all(&mut self, x: ShapeTensor) -> ShapeTensor {
        self.op("mean_all", x.rows > 0 && x.cols > 0, || format!("mean of empty tensor {x}"), {
            ShapeTensor::new(1, 1)
        })
    }

    /// Sum over all elements -> `[1, 1]`.
    pub fn sum_all(&mut self, _x: ShapeTensor) -> ShapeTensor {
        self.op("sum_all", true, String::new, ShapeTensor::new(1, 1))
    }

    /// Row sums: `[n, d] -> [n, 1]`.
    pub fn sum_rows(&mut self, x: ShapeTensor) -> ShapeTensor {
        self.op("sum_rows", true, String::new, ShapeTensor::new(x.rows, 1))
    }

    /// Sum of several same-shape tensors.
    pub fn add_n(&mut self, xs: &[ShapeTensor]) -> ShapeTensor {
        let first = xs.first().copied().unwrap_or(ShapeTensor::new(0, 0));
        let bad = xs.iter().find(|&&x| x != first);
        self.op(
            "add_n",
            !xs.is_empty() && bad.is_none(),
            || match bad {
                Some(b) => format!("input shapes differ: {first} vs {b}"),
                None => "needs at least one input".to_string(),
            },
            first,
        )
    }

    // ---- fused / conv ------------------------------------------------------

    /// 1-D 'same' convolution over `[batch, in_ch * width]` rows with kernel
    /// `[out_ch, in_ch * ksize]` and bias `[1, out_ch]` ->
    /// `[batch, out_ch * width]`.
    pub fn conv1d(
        &mut self,
        x: ShapeTensor,
        w: ShapeTensor,
        b: ShapeTensor,
        in_ch: usize,
        out_ch: usize,
        ksize: usize,
    ) -> ShapeTensor {
        let width_ok = in_ch > 0 && x.cols.is_multiple_of(in_ch);
        let w_ok = w.shape() == (out_ch, in_ch * ksize);
        let b_ok = b.shape() == (1, out_ch);
        let width = if in_ch > 0 { x.cols / in_ch.max(1) } else { 0 };
        self.op(
            "conv1d",
            width_ok && w_ok && b_ok,
            || {
                if !width_ok {
                    format!("input width {} is not a multiple of in_ch={in_ch}", x.cols)
                } else if !w_ok {
                    format!(
                        "kernel is {w}, expected [{out_ch}, {}] for in_ch={in_ch}, ksize={ksize}",
                        in_ch * ksize
                    )
                } else {
                    format!("bias is {b}, expected [1, {out_ch}]")
                }
            },
            ShapeTensor::new(x.rows, out_ch * width),
        )
    }

    /// Fused softmax + cross-entropy: one target class per logit row ->
    /// scalar loss `[1, 1]`.
    pub fn softmax_xent(&mut self, logits: ShapeTensor, num_targets: usize) -> ShapeTensor {
        self.op(
            "softmax_xent",
            num_targets == logits.rows,
            || format!("{num_targets} targets for {} logit rows", logits.rows),
            ShapeTensor::new(1, 1),
        )
    }

    /// Backprop entry point: the loss must be a scalar.
    pub fn backward(&mut self, loss: ShapeTensor) {
        self.ops_checked += 1;
        if loss.shape() != (1, 1) {
            self.record("backward", format!("loss is {loss}, expected the scalar [1, 1]"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(r: usize, c: usize) -> ShapeTensor {
        ShapeTensor::new(r, c)
    }

    #[test]
    fn matmul_family_shapes() {
        let mut ctx = ShapeCtx::new();
        assert_eq!(ctx.matmul(st(2, 3), st(3, 5)), st(2, 5));
        assert_eq!(ctx.matmul_nt(st(2, 3), st(5, 3)), st(2, 5));
        assert_eq!(ctx.matmul_tn(st(3, 2), st(3, 5)), st(2, 5));
        assert!(ctx.issues().is_empty());
        assert_eq!(ctx.ops_checked(), 3);
    }

    #[test]
    fn mismatches_are_recorded_not_fatal() {
        let mut ctx = ShapeCtx::new();
        // Inner-dim mismatch: issue recorded, poison shape keeps the replay
        // alive so later mismatches are found too.
        let y = ctx.matmul(st(2, 3), st(4, 5));
        assert_eq!(y, st(2, 5));
        let z = ctx.add(y, st(9, 9));
        assert_eq!(z, st(2, 5));
        let report = ctx.finish();
        assert_eq!(report.issues.len(), 2);
        assert!(report.issues[0].detail.contains("[2, 3]"));
    }

    #[test]
    fn scope_path_is_attached_to_issues() {
        let mut ctx = ShapeCtx::new();
        ctx.scoped("eam.rgcn", Some("Eq. 4"), |ctx| {
            ctx.scoped("layer 0", None, |ctx| {
                ctx.matmul(st(2, 3), st(4, 5));
            });
        });
        let report = ctx.finish();
        assert_eq!(report.issues[0].path, "eam.rgcn [Eq. 4] / layer 0");
        let text = report.to_string();
        assert!(text.contains("eam.rgcn"), "{text}");
    }

    #[test]
    fn index_space_checks() {
        let mut ctx = ShapeCtx::new();
        assert_eq!(ctx.gather_rows(st(10, 4), &[0, 9]), st(2, 4));
        assert!(ctx.issues().is_empty());
        ctx.gather_rows(st(10, 4), &[10]);
        ctx.scatter_add_rows(st(2, 4), &[0, 7], 7);
        ctx.gather_cols(st(3, 5), &[0, 5, 1]);
        assert_eq!(ctx.issues().len(), 3);
        assert!(ctx.issues()[0].detail.contains("index 10"));
        assert!(ctx.issues()[1].detail.contains("index 7"));
    }

    #[test]
    fn conv1d_rules() {
        let mut ctx = ShapeCtx::new();
        // Conv-TransE shape: 2 channels over width 8, 16 output channels.
        let y = ctx.conv1d(st(5, 16), st(16, 6), st(1, 16), 2, 16, 3);
        assert_eq!(y, st(5, 128));
        assert!(ctx.issues().is_empty());
        ctx.conv1d(st(5, 15), st(16, 6), st(1, 16), 2, 16, 3);
        ctx.conv1d(st(5, 16), st(16, 7), st(1, 16), 2, 16, 3);
        ctx.conv1d(st(5, 16), st(16, 6), st(1, 15), 2, 16, 3);
        assert_eq!(ctx.issues().len(), 3);
    }

    #[test]
    fn broadcast_and_reduction_rules() {
        let mut ctx = ShapeCtx::new();
        assert_eq!(ctx.add_bias(st(4, 3), st(1, 3)), st(4, 3));
        assert_eq!(ctx.mul_col(st(4, 3), st(4, 1)), st(4, 3));
        assert_eq!(ctx.concat_cols(st(4, 3), st(4, 2)), st(4, 5));
        assert_eq!(ctx.slice_cols(st(4, 5), 1, 3), st(4, 2));
        assert_eq!(ctx.sum_rows(st(4, 5)), st(4, 1));
        assert_eq!(ctx.mean_all(st(4, 5)), st(1, 1));
        assert_eq!(ctx.softmax_xent(st(4, 9), 4), st(1, 1));
        assert_eq!(ctx.add_n(&[st(2, 2), st(2, 2)]), st(2, 2));
        assert!(ctx.issues().is_empty());
        ctx.add_bias(st(4, 3), st(1, 4));
        ctx.backward(st(2, 2));
        assert_eq!(ctx.issues().len(), 2);
    }
}
