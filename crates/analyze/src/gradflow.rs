//! Gradient-flow reachability over the abstract tape.
//!
//! [`crate::value::AuditCtx`] records, for every op, which nodes feed it —
//! the same edges `Graph::backward` walks to push gradients. Reachability
//! from the loss over those edges is therefore exactly "this parameter
//! receives a gradient": a parameter the backward walk cannot reach trains
//! to its initialization forever, the classic silent detach-boundary bug.
//!
//! Declared [`crate::value::FrozenParam`]s invert the check — an ablation
//! that intentionally severs a module must say so, and a "frozen" parameter
//! the walk *does* reach is reported just as loudly as a trainable one it
//! misses. `FrozenModel`'s detaches are declared via
//! [`crate::value::AuditCtx::detach`] and stop the walk by construction.

use std::collections::BTreeMap;

use crate::value::AbsNode;

/// Whether one distinct parameter is reached by the backward walk, with the
/// scope path of its (first) declaration for blame.
#[derive(Clone, Debug)]
pub struct ParamFlow {
    pub name: String,
    pub path: String,
    pub reached: bool,
}

/// Node indices reachable from `loss` by walking input edges backward.
/// Iterative DFS — model tapes are thousands of nodes deep in snapshots.
pub(crate) fn reachable(nodes: &[AbsNode], loss: usize) -> Vec<bool> {
    let mut seen = vec![false; nodes.len()];
    let mut stack = vec![loss];
    while let Some(i) = stack.pop() {
        if std::mem::replace(&mut seen[i], true) {
            continue;
        }
        stack.extend(nodes[i].inputs.iter().copied().filter(|&j| !seen[j]));
    }
    seen
}

/// Collapses per-site parameter declarations into one [`ParamFlow`] per
/// distinct name: a parameter declared at several sites (the per-snapshot
/// loops re-reference embeddings every step) is reached if *any* site is.
pub(crate) fn param_flows(nodes: &[AbsNode], reached: &[bool]) -> Vec<ParamFlow> {
    let mut by_name: BTreeMap<&str, ParamFlow> = BTreeMap::new();
    for (i, node) in nodes.iter().enumerate() {
        let Some(name) = node.param.as_deref() else { continue };
        let entry = by_name.entry(name).or_insert_with(|| ParamFlow {
            name: name.to_string(),
            path: node.path.clone(),
            reached: false,
        });
        entry.reached |= reached[i];
    }
    by_name.into_values().collect()
}

#[cfg(test)]
mod tests {
    use crate::value::{AuditCtx, FrozenParam};

    #[test]
    fn multi_site_declarations_collapse_by_name() {
        // The same embedding referenced in two snapshots: reaching either
        // site counts as reached.
        let mut ctx = AuditCtx::new();
        let p1 = ctx.param("rel0", 4, 2);
        let _p2 = ctx.param("rel0", 4, 2);
        let loss = ctx.mean_all(p1);
        ctx.check_gradient_flow(loss, &[]);
        let report = ctx.finish();
        assert_eq!(report.params_declared, 1);
        assert_eq!(report.params_reached, 1);
        assert!(report.is_clean());
    }

    #[test]
    fn deep_chains_are_walked_iteratively() {
        let mut ctx = AuditCtx::new();
        let p = ctx.param("ent0", 2, 2);
        let mut x = p;
        for _ in 0..20_000 {
            x = ctx.tanh(x);
        }
        let loss = ctx.mean_all(x);
        ctx.check_gradient_flow(loss, &[]);
        assert!(ctx.finish().is_clean());
    }

    #[test]
    fn detach_stops_the_walk_but_sources_do_not_report() {
        let mut ctx = AuditCtx::new();
        let p = ctx.param("ent0", 2, 2);
        let h = ctx.tanh(p);
        let frozen_state = ctx.detach(h, "serving snapshot");
        let loss = ctx.mean_all(frozen_state);
        ctx.check_gradient_flow(loss, &[FrozenParam::new("ent0", "behind a serving snapshot")]);
        let report = ctx.finish();
        assert_eq!(report.params_reached, 0);
        assert!(report.is_clean(), "{report}");
    }
}
