//! Value-domain abstract interpreter.
//!
//! Where [`crate::shape`] erases tensors down to dimensions, this module
//! erases them down to an [`Interval`] per tensor — `[lo, hi]` bounds in
//! f64 plus may-be-NaN / may-be-inf flags — and replays the model's op
//! vocabulary over that domain using the per-op transfer functions that
//! live next to the kernels in [`retia_tensor::transfer`]. Three coupled
//! analyses run over one abstract execution:
//!
//! 1. **Finiteness**: any op whose abstract output admits NaN/inf *when its
//!    inputs did not* records an [`AuditIssue`] blaming the enclosing
//!    module/equation scope (same poison-recovery discipline as the shape
//!    interpreter: the replay continues, downstream ops do not re-report
//!    inherited non-finiteness).
//! 2. **Gradient-flow reachability** ([`crate::gradflow`]): every op also
//!    records its input edges, building an abstract tape. After the loss is
//!    built, [`AuditCtx::check_gradient_flow`] walks it backward and
//!    reports trainable parameters the walk never reaches — unless they are
//!    declared frozen (with a reason) for the configuration under audit.
//!    Inference graphs use [`AuditCtx::check_no_trainable_params`] to prove
//!    the opposite: zero parameters on the tape at all.
//! 3. **Reduction-order sensitivity**: [`AuditCtx::reorder`] declares an
//!    intent to reorder a kernel loop (sharding, vectorization) and checks
//!    it against `retia_tensor::transfer::REDUCTION_SITES` — reordering an
//!    order-sensitive accumulation is a finding.

use std::fmt;

use retia_tensor::transfer::{self, Interval};

use crate::gradflow;

/// Assumed magnitude envelope for trained parameters (and the entity /
/// relation embeddings they initialize). Xavier init keeps weights well
/// under 1 and the optimizer clips gradients, so |w| <= 8 is generous; the
/// audit proves finiteness of the whole model step under this envelope.
pub const PARAM_BOUND: f64 = 8.0;

/// Handle to an abstract tensor inside an [`AuditCtx`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AbsId(usize);

/// One node of the abstract tape: shape + interval + backward edges.
#[derive(Clone, Debug)]
pub(crate) struct AbsNode {
    pub rows: usize,
    pub cols: usize,
    pub iv: Interval,
    pub inputs: Vec<usize>,
    /// `Some(store_name)` when this node is a trainable parameter input.
    pub param: Option<String>,
    /// Scope path active when the node was created (used to blame
    /// unreachable parameters at their declaration site).
    pub path: String,
}

/// Which analysis a finding belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AuditKind {
    /// The op's abstract output admits NaN or `±inf`.
    NonFinite,
    /// Gradient-flow reachability disagrees with the declared frozen set.
    GradFlow,
    /// An undeclared (or unsound) reduction reorder.
    Reorder,
}

impl AuditKind {
    pub fn as_str(self) -> &'static str {
        match self {
            AuditKind::NonFinite => "non-finite",
            AuditKind::GradFlow => "gradient-flow",
            AuditKind::Reorder => "reduction-order",
        }
    }
}

/// One audit finding, tagged like a [`crate::ShapeIssue`] with the
/// module/equation scope path.
#[derive(Clone, Debug)]
pub struct AuditIssue {
    /// Module/equation scope path active when the check failed.
    pub path: String,
    /// The op (or parameter) that failed.
    pub op: String,
    pub kind: AuditKind,
    /// Human-readable description with the offending abstract values.
    pub detail: String,
}

impl fmt::Display for AuditIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "{} {}: {}", self.kind.as_str(), self.op, self.detail)
        } else {
            write!(f, "[{}] {} {}: {}", self.path, self.kind.as_str(), self.op, self.detail)
        }
    }
}

/// A parameter expected to receive no gradient under the audited
/// configuration, with the ablation flag that freezes it.
#[derive(Clone, Debug)]
pub struct FrozenParam {
    pub name: String,
    pub reason: String,
}

impl FrozenParam {
    pub fn new(name: impl Into<String>, reason: impl Into<String>) -> Self {
        FrozenParam { name: name.into(), reason: reason.into() }
    }
}

/// A declared detach boundary (e.g. `FrozenModel` snapshotting evolved
/// states): the backward walk is *supposed* to stop here.
#[derive(Clone, Debug)]
pub struct DeclaredDetach {
    /// Scope path of the detach site.
    pub path: String,
    pub reason: String,
}

/// Outcome of a completed value-domain replay.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    pub issues: Vec<AuditIssue>,
    /// Number of op/flow checks performed (distinguishes "0 issues" from
    /// "0 checks").
    pub ops_checked: usize,
    /// Distinct trainable parameters declared on the abstract tape.
    pub params_declared: usize,
    /// Distinct parameters reached by the backward walk from the loss.
    pub params_reached: usize,
    /// Detach boundaries that were declared (not findings).
    pub detaches: Vec<DeclaredDetach>,
}

impl AuditReport {
    /// True when the replay found no findings.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} audit finding(s) in {} checked op(s) ({} param(s) declared, {} reached):",
            self.issues.len(),
            self.ops_checked,
            self.params_declared,
            self.params_reached
        )?;
        for issue in &self.issues {
            writeln!(f, "  - {issue}")?;
        }
        Ok(())
    }
}

impl std::error::Error for AuditReport {}

/// The value-domain interpreter. API mirrors [`crate::ShapeCtx`]: ops
/// record findings instead of panicking and return the abstract value they
/// would have produced, so one pass collects everything.
#[derive(Debug, Default)]
pub struct AuditCtx {
    scope: Vec<String>,
    issues: Vec<AuditIssue>,
    ops_checked: usize,
    nodes: Vec<AbsNode>,
    detaches: Vec<DeclaredDetach>,
    params_declared: usize,
    params_reached: usize,
}

impl AuditCtx {
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` with `module` (and optionally a paper-equation tag) pushed
    /// onto the scope path; findings recorded inside are attributed to it.
    pub fn scoped<R>(
        &mut self,
        module: &str,
        equation: Option<&str>,
        f: impl FnOnce(&mut Self) -> R,
    ) -> R {
        let frame = match equation {
            Some(eq) => format!("{module} [{eq}]"),
            None => module.to_string(),
        };
        self.scope.push(frame);
        let out = f(self);
        self.scope.pop();
        out
    }

    /// Number of op/flow checks performed so far.
    pub fn ops_checked(&self) -> usize {
        self.ops_checked
    }

    /// Findings recorded so far (drained by [`AuditCtx::finish`]).
    pub fn issues(&self) -> &[AuditIssue] {
        &self.issues
    }

    /// Consumes the context into an [`AuditReport`].
    pub fn finish(self) -> AuditReport {
        AuditReport {
            issues: self.issues,
            ops_checked: self.ops_checked,
            params_declared: self.params_declared,
            params_reached: self.params_reached,
            detaches: self.detaches,
        }
    }

    // ---- inputs -----------------------------------------------------------

    fn push(&mut self, rows: usize, cols: usize, iv: Interval, inputs: Vec<usize>) -> AbsId {
        self.nodes.push(AbsNode {
            rows,
            cols,
            iv,
            inputs,
            param: None,
            path: self.scope.join(" / "),
        });
        AbsId(self.nodes.len() - 1)
    }

    /// A non-trainable input (constants, data tensors, frozen states) with
    /// a declared value envelope.
    pub fn source(&mut self, rows: usize, cols: usize, iv: Interval) -> AbsId {
        self.push(rows, cols, iv, Vec::new())
    }

    /// A trainable parameter, by its `ParamStore` name, bounded by the
    /// [`PARAM_BOUND`] envelope. Declaring the same name at several sites
    /// (as the per-snapshot loops do) references one parameter.
    pub fn param(&mut self, name: &str, rows: usize, cols: usize) -> AbsId {
        let id = self.push(rows, cols, Interval::new(-PARAM_BOUND, PARAM_BOUND), Vec::new());
        self.nodes[id.0].param = Some(name.to_string());
        id
    }

    /// A *declared* detach boundary: the value flows forward but the
    /// backward walk stops here, and that is intentional (`reason` lands in
    /// the report's detach table, not in the findings).
    pub fn detach(&mut self, x: AbsId, reason: &str) -> AbsId {
        let (rows, cols, iv) = {
            let n = &self.nodes[x.0];
            (n.rows, n.cols, n.iv)
        };
        let id = self.push(rows, cols, iv, Vec::new());
        self.detaches
            .push(DeclaredDetach { path: self.nodes[id.0].path.clone(), reason: reason.into() });
        id
    }

    /// The abstract value of a node.
    pub fn interval(&self, x: AbsId) -> Interval {
        self.nodes[x.0].iv
    }

    /// `(rows, cols)` of a node.
    pub fn shape(&self, x: AbsId) -> (usize, usize) {
        (self.nodes[x.0].rows, self.nodes[x.0].cols)
    }

    // ---- finding machinery ------------------------------------------------

    fn record(&mut self, kind: AuditKind, op: impl Into<String>, detail: String) {
        self.issues.push(AuditIssue { path: self.scope.join(" / "), op: op.into(), kind, detail });
    }

    /// Registers the output of op `key` over `inputs`: flags a finiteness
    /// finding iff the op *introduces* non-finiteness (all inputs finite,
    /// output admits NaN/inf), then pushes the node so the replay continues.
    fn op(
        &mut self,
        key: &'static str,
        inputs: &[AbsId],
        rows: usize,
        cols: usize,
        iv: Interval,
    ) -> AbsId {
        self.ops_checked += 1;
        let inputs_finite = inputs.iter().all(|i| {
            let n = &self.nodes[i.0];
            !n.iv.nan && !n.iv.inf
        });
        if inputs_finite && (iv.nan || iv.inf) {
            let what = match (iv.nan, iv.inf) {
                (true, true) => "NaN and inf",
                (true, false) => "NaN",
                _ => "inf",
            };
            self.record(
                AuditKind::NonFinite,
                key,
                format!("abstract output {iv} admits {what} from finite inputs"),
            );
        }
        self.push(rows, cols, iv, inputs.iter().map(|i| i.0).collect())
    }

    fn iv(&self, x: AbsId) -> Interval {
        self.nodes[x.0].iv
    }

    // ---- elementwise ------------------------------------------------------

    pub fn add(&mut self, a: AbsId, b: AbsId) -> AbsId {
        let iv = transfer::add(self.iv(a), self.iv(b));
        let (r, c) = self.shape(a);
        self.op("add", &[a, b], r, c, iv)
    }

    pub fn sub(&mut self, a: AbsId, b: AbsId) -> AbsId {
        let iv = transfer::sub(self.iv(a), self.iv(b));
        let (r, c) = self.shape(a);
        self.op("sub", &[a, b], r, c, iv)
    }

    pub fn mul(&mut self, a: AbsId, b: AbsId) -> AbsId {
        let iv = transfer::mul(self.iv(a), self.iv(b));
        let (r, c) = self.shape(a);
        self.op("mul", &[a, b], r, c, iv)
    }

    /// Row-broadcast add (`x + bias`).
    pub fn add_bias(&mut self, x: AbsId, bias: AbsId) -> AbsId {
        let iv = transfer::add(self.iv(x), self.iv(bias));
        let (r, c) = self.shape(x);
        self.op("add_bias", &[x, bias], r, c, iv)
    }

    /// Row-broadcast multiply.
    pub fn mul_bias(&mut self, x: AbsId, w: AbsId) -> AbsId {
        let iv = transfer::mul(self.iv(x), self.iv(w));
        let (r, c) = self.shape(x);
        self.op("mul_bias", &[x, w], r, c, iv)
    }

    /// Column-broadcast multiply.
    pub fn mul_col(&mut self, x: AbsId, c: AbsId) -> AbsId {
        let iv = transfer::mul(self.iv(x), self.iv(c));
        let (r, cols) = self.shape(x);
        self.op("mul_col", &[x, c], r, cols, iv)
    }

    pub fn scale(&mut self, x: AbsId, s: f64) -> AbsId {
        let iv = transfer::scale(self.iv(x), s);
        let (r, c) = self.shape(x);
        self.op("scale", &[x], r, c, iv)
    }

    pub fn add_scalar(&mut self, x: AbsId, s: f64) -> AbsId {
        let iv = transfer::add_scalar(self.iv(x), s);
        let (r, c) = self.shape(x);
        self.op("add_scalar", &[x], r, c, iv)
    }

    /// Elementwise division — pole rule from [`transfer::div`].
    pub fn div(&mut self, a: AbsId, b: AbsId) -> AbsId {
        let iv = transfer::div(self.iv(a), self.iv(b));
        let (r, c) = self.shape(a);
        self.op("div", &[a, b], r, c, iv)
    }

    // ---- matmul family ----------------------------------------------------

    /// `a @ b`: inner accumulation over `a.cols` terms.
    pub fn matmul(&mut self, a: AbsId, b: AbsId) -> AbsId {
        let k = self.shape(a).1;
        let iv = transfer::dot(self.iv(a), self.iv(b), k);
        let (ar, _) = self.shape(a);
        let (_, bc) = self.shape(b);
        self.op("matmul", &[a, b], ar, bc, iv)
    }

    /// `a @ b^T`.
    pub fn matmul_nt(&mut self, a: AbsId, b: AbsId) -> AbsId {
        let k = self.shape(a).1;
        let iv = transfer::dot(self.iv(a), self.iv(b), k);
        let (ar, _) = self.shape(a);
        let (br, _) = self.shape(b);
        self.op("matmul_nt", &[a, b], ar, br, iv)
    }

    /// 1-D convolution (`'same'` padding): accumulation over
    /// `in_ch * ksize` taps plus the channel bias.
    pub fn conv1d(
        &mut self,
        x: AbsId,
        w: AbsId,
        b: AbsId,
        in_ch: usize,
        out_ch: usize,
        ksize: usize,
    ) -> AbsId {
        let acc = transfer::dot(self.iv(x), self.iv(w), in_ch * ksize);
        let iv = transfer::add(acc, self.iv(b));
        let (rows, cols) = self.shape(x);
        let width = cols.checked_div(in_ch).unwrap_or(0);
        self.op("conv1d", &[x, w, b], rows, out_ch * width, iv)
    }

    // ---- nonlinearities ---------------------------------------------------

    pub fn sigmoid(&mut self, x: AbsId) -> AbsId {
        let iv = transfer::sigmoid(self.iv(x));
        let (r, c) = self.shape(x);
        self.op("sigmoid", &[x], r, c, iv)
    }

    pub fn tanh(&mut self, x: AbsId) -> AbsId {
        let iv = transfer::tanh(self.iv(x));
        let (r, c) = self.shape(x);
        self.op("tanh", &[x], r, c, iv)
    }

    pub fn relu(&mut self, x: AbsId) -> AbsId {
        let iv = transfer::relu(self.iv(x));
        let (r, c) = self.shape(x);
        self.op("relu", &[x], r, c, iv)
    }

    /// Randomized leaky ReLU (negative slope in `[0, 1]`).
    pub fn rrelu(&mut self, x: AbsId) -> AbsId {
        let iv = transfer::rrelu(self.iv(x));
        let (r, c) = self.shape(x);
        self.op("rrelu", &[x], r, c, iv)
    }

    /// Unguarded exponential — the overflow rule flags any input that can
    /// exceed `ln(f32::MAX)`. The shipped model has no bare `exp`; this is
    /// the op the audit exists to veto in future kernels.
    pub fn exp(&mut self, x: AbsId) -> AbsId {
        let iv = transfer::exp(self.iv(x));
        let (r, c) = self.shape(x);
        self.op("exp", &[x], r, c, iv)
    }

    /// `ln(x + eps)` — pole rule from [`transfer::ln`].
    pub fn ln(&mut self, x: AbsId, eps: f64) -> AbsId {
        let iv = transfer::ln(self.iv(x), eps);
        let (r, c) = self.shape(x);
        self.op("ln", &[x], r, c, iv)
    }

    /// Inverted dropout at the given rate.
    pub fn dropout(&mut self, x: AbsId, rate: f64) -> AbsId {
        let iv = transfer::dropout(self.iv(x), rate);
        let (r, c) = self.shape(x);
        self.op("dropout", &[x], r, c, iv)
    }

    // ---- gathers / scatters / layout -------------------------------------

    /// Gather `count` rows: values are drawn from `x`.
    pub fn gather_rows(&mut self, x: AbsId, count: usize) -> AbsId {
        let iv = self.iv(x);
        let (_, c) = self.shape(x);
        self.op("gather_rows", &[x], count, c, iv)
    }

    /// Scatter-add `x`'s rows into a zeroed `[out_rows, cols]` output; in
    /// the worst case every source row collides on one output row.
    pub fn scatter_add_rows(&mut self, x: AbsId, out_rows: usize) -> AbsId {
        let (src_rows, c) = self.shape(x);
        let iv = transfer::scatter_add(self.iv(x), src_rows);
        self.op("scatter_add_rows", &[x], out_rows, c, iv)
    }

    /// Per-row scaling by data-dependent weights inside `weights`.
    pub fn row_scale(&mut self, x: AbsId, weights: Interval) -> AbsId {
        let iv = transfer::mul(self.iv(x), weights);
        let (r, c) = self.shape(x);
        self.op("row_scale", &[x], r, c, iv)
    }

    pub fn concat_cols(&mut self, a: AbsId, b: AbsId) -> AbsId {
        let iv = self.iv(a).hull(self.iv(b));
        let (r, ac) = self.shape(a);
        let (_, bc) = self.shape(b);
        self.op("concat_cols", &[a, b], r, ac + bc, iv)
    }

    pub fn slice_cols(&mut self, x: AbsId, start: usize, end: usize) -> AbsId {
        let iv = self.iv(x);
        let (r, _) = self.shape(x);
        self.op("slice_cols", &[x], r, end.saturating_sub(start), iv)
    }

    /// `out[i, 0] = x[i, cols[i]]`.
    pub fn gather_cols(&mut self, x: AbsId) -> AbsId {
        let iv = self.iv(x);
        let (r, _) = self.shape(x);
        self.op("gather_cols", &[x], r, 1, iv)
    }

    // ---- reductions / normalizers ----------------------------------------

    pub fn softmax_rows(&mut self, x: AbsId) -> AbsId {
        let iv = transfer::softmax(self.iv(x));
        let (r, c) = self.shape(x);
        self.op("softmax_rows", &[x], r, c, iv)
    }

    /// Fused softmax + cross-entropy.
    pub fn softmax_xent(&mut self, x: AbsId) -> AbsId {
        let iv = transfer::softmax_xent(self.iv(x));
        let (r, _) = self.shape(x);
        self.op("softmax_xent", &[x], r, 1, iv)
    }

    pub fn mean_all(&mut self, x: AbsId) -> AbsId {
        let iv = transfer::mean(self.iv(x));
        self.op("mean_all", &[x], 1, 1, iv)
    }

    pub fn sum_all(&mut self, x: AbsId) -> AbsId {
        let (r, c) = self.shape(x);
        let iv = transfer::sum(self.iv(x), r * c);
        self.op("sum_all", &[x], 1, 1, iv)
    }

    pub fn sum_rows(&mut self, x: AbsId) -> AbsId {
        let (r, c) = self.shape(x);
        let iv = transfer::sum(self.iv(x), c);
        self.op("sum_rows", &[x], r, 1, iv)
    }

    pub fn add_n(&mut self, xs: &[AbsId]) -> AbsId {
        let ivs: Vec<Interval> = xs.iter().map(|x| self.iv(*x)).collect();
        let iv = transfer::add_n(&ivs);
        let (r, c) = xs.first().map(|x| self.shape(*x)).unwrap_or((0, 0));
        self.op("add_n", xs, r, c, iv)
    }

    pub fn normalize_rows(&mut self, x: AbsId) -> AbsId {
        let iv = transfer::normalize_rows(self.iv(x));
        let (r, c) = self.shape(x);
        self.op("normalize_rows", &[x], r, c, iv)
    }

    pub fn layer_norm_rows(&mut self, x: AbsId) -> AbsId {
        let (r, c) = self.shape(x);
        let iv = transfer::layer_norm(self.iv(x), c);
        self.op("layer_norm_rows", &[x], r, c, iv)
    }

    // ---- reduction-order declarations ------------------------------------

    /// Declares an intent to reorder the `site` loop of op `op` (sharding /
    /// vectorization). Checked against the sensitivity map: reordering an
    /// order-sensitive accumulation, or a loop the map does not know,
    /// records a finding.
    pub fn reorder(&mut self, op: &str, site: &str) {
        self.ops_checked += 1;
        match transfer::reduction_site(op, site) {
            None => self.record(
                AuditKind::Reorder,
                format!("{op}/{site}"),
                "not a known reduction site — add it to \
                 retia_tensor::transfer::REDUCTION_SITES first"
                    .to_string(),
            ),
            Some(s) if s.order == transfer::ReductionOrder::Sensitive => self.record(
                AuditKind::Reorder,
                format!("{op}/{site}"),
                format!("reorders an order-sensitive accumulation ({})", s.note),
            ),
            Some(_) => {}
        }
    }

    // ---- gradient flow ----------------------------------------------------

    /// Walks the abstract tape backward from `loss` and reconciles the
    /// reached parameter set with the declared frozen set: an expected-
    /// trainable parameter the walk misses is a finding (blamed at its
    /// declaration scope), as is an expected-frozen parameter the walk
    /// reaches.
    pub fn check_gradient_flow(&mut self, loss: AbsId, frozen: &[FrozenParam]) {
        let reached = gradflow::reachable(&self.nodes, loss.0);
        let flows = gradflow::param_flows(&self.nodes, &reached);
        self.params_declared = flows.len();
        self.params_reached = flows.iter().filter(|p| p.reached).count();
        for p in &flows {
            self.ops_checked += 1;
            let frozen_reason = frozen.iter().find(|f| f.name == p.name).map(|f| &f.reason);
            match (p.reached, frozen_reason) {
                (false, None) => self.issues.push(AuditIssue {
                    path: p.path.clone(),
                    op: format!("param `{}`", p.name),
                    kind: AuditKind::GradFlow,
                    detail: "trainable parameter is never reached by the backward walk \
                             from the loss (detached or unused); declare it frozen for \
                             this configuration or fix the wiring"
                        .to_string(),
                }),
                (true, Some(reason)) => self.issues.push(AuditIssue {
                    path: p.path.clone(),
                    op: format!("param `{}`", p.name),
                    kind: AuditKind::GradFlow,
                    detail: format!("declared frozen ({reason}) but the backward walk reaches it"),
                }),
                _ => {}
            }
        }
    }

    /// Names of every distinct parameter declared on the abstract tape.
    pub fn declared_param_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.nodes.iter().filter_map(|n| n.param.clone()).collect();
        names.sort();
        names.dedup();
        names
    }

    /// Inference-graph proof: records a finding for every trainable
    /// parameter on the tape (there must be none — `Graph::inference`
    /// stores leaves only, so a parameter here means the serving path would
    /// allocate backward state).
    pub fn check_no_trainable_params(&mut self) {
        self.ops_checked += 1;
        for name in self.declared_param_names() {
            let path = self
                .nodes
                .iter()
                .find(|n| n.param.as_deref() == Some(name.as_str()))
                .map(|n| n.path.clone())
                .unwrap_or_default();
            self.issues.push(AuditIssue {
                path,
                op: format!("param `{name}`"),
                kind: AuditKind::GradFlow,
                detail: "inference graph must prove zero reachable parameters, but this \
                         parameter is on the abstract tape"
                    .to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finiteness_finding_blames_scope_once() {
        let mut ctx = AuditCtx::new();
        let x = ctx.source(2, 2, Interval::new(-1000.0, 1000.0));
        let e = ctx.scoped("decode.entity", Some("Eq. 11/13"), |ctx| ctx.exp(x));
        // Downstream ops inherit the poison without re-reporting.
        let _ = ctx.scale(e, 2.0);
        let report = ctx.finish();
        assert_eq!(report.issues.len(), 1);
        let issue = &report.issues[0];
        assert_eq!(issue.kind, AuditKind::NonFinite);
        assert_eq!(issue.op, "exp");
        assert!(issue.path.contains("decode.entity [Eq. 11/13]"));
    }

    #[test]
    fn guarded_ops_stay_finite() {
        let mut ctx = AuditCtx::new();
        let x = ctx.source(4, 8, Interval::new(-1e6, 1e6));
        let s = ctx.sigmoid(x);
        let t = ctx.tanh(x);
        let sm = ctx.softmax_rows(x);
        let prod = ctx.mul(s, t);
        let l = ctx.ln(sm, 1e-9);
        let m = ctx.mean_all(l);
        assert!(ctx.interval(prod).is_finite());
        assert!(ctx.interval(m).is_finite());
        assert!(ctx.finish().is_clean());
    }

    #[test]
    fn gradient_flow_reports_detached_param() {
        let mut ctx = AuditCtx::new();
        let w = ctx.scoped("tim.lstm", Some("Eq. 7-8"), |ctx| ctx.param("tim_lstm.w", 4, 4));
        let used = ctx.scoped("ram", Some("Eq. 1-2"), |ctx| ctx.param("ram.l0.wself", 4, 4));
        // `w` flows only into a detached value; `used` reaches the loss.
        let h = ctx.tanh(w);
        let _cut = ctx.detach(h, "test boundary");
        let loss = ctx.mean_all(used);
        ctx.check_gradient_flow(loss, &[]);
        let report = ctx.finish();
        assert_eq!(report.params_declared, 2);
        assert_eq!(report.params_reached, 1);
        assert_eq!(report.issues.len(), 1);
        let issue = &report.issues[0];
        assert_eq!(issue.kind, AuditKind::GradFlow);
        assert!(issue.op.contains("tim_lstm.w"));
        assert!(issue.path.contains("tim.lstm [Eq. 7-8]"));
        assert_eq!(report.detaches.len(), 1);
    }

    #[test]
    fn frozen_declarations_flip_both_ways() {
        // Declared frozen and indeed unreached: clean.
        let mut ctx = AuditCtx::new();
        let w = ctx.param("hyper0", 2, 2);
        let live = ctx.source(2, 2, Interval::new(-1.0, 1.0));
        let _ = ctx.tanh(w);
        let loss = ctx.mean_all(live);
        ctx.check_gradient_flow(loss, &[FrozenParam::new("hyper0", "ablated")]);
        assert!(ctx.finish().is_clean());

        // Declared frozen but reached: finding.
        let mut ctx = AuditCtx::new();
        let w = ctx.param("hyper0", 2, 2);
        let loss = ctx.mean_all(w);
        ctx.check_gradient_flow(loss, &[FrozenParam::new("hyper0", "ablated")]);
        let report = ctx.finish();
        assert_eq!(report.issues.len(), 1);
        assert!(report.issues[0].detail.contains("ablated"));
    }

    #[test]
    fn reorder_declarations_check_the_map() {
        let mut ctx = AuditCtx::new();
        ctx.reorder("matmul_nt", "output-lanes");
        assert!(ctx.issues().is_empty());
        ctx.scoped("decode.entity", Some("Eq. 11/13"), |ctx| {
            ctx.reorder("softmax_rows", "row-sum");
        });
        ctx.reorder("sigmoid", "no-such-loop");
        let report = ctx.finish();
        assert_eq!(report.issues.len(), 2);
        assert_eq!(report.issues[0].kind, AuditKind::Reorder);
        assert!(report.issues[0].path.contains("decode.entity"));
        assert!(report.issues[1].detail.contains("not a known reduction site"));
    }

    #[test]
    fn inference_proof_flags_any_param() {
        let mut ctx = AuditCtx::new();
        let s = ctx.source(2, 2, Interval::new(-1.0, 1.0));
        let _ = ctx.softmax_rows(s);
        ctx.check_no_trainable_params();
        assert!(ctx.issues().is_empty());
        let _ = ctx.param("dec_e.fc.w", 2, 2);
        ctx.check_no_trainable_params();
        let report = ctx.finish();
        assert_eq!(report.issues.len(), 1);
        assert!(report.issues[0].op.contains("dec_e.fc.w"));
    }
}
