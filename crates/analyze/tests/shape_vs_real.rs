//! Property tests: the abstract shape interpreter must agree with real
//! tensor execution on every op it models. Random valid op sequences are
//! replayed both ways — through [`retia_analyze::ShapeCtx`] and through a
//! real [`retia_tensor::Graph`] — and the predicted shape must equal the
//! concrete one at every step, with no issues recorded.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use retia_analyze::{ShapeCtx, ShapeTensor};
use retia_tensor::{Graph, NodeId, Tensor};

/// One live value tracked through both executions.
#[derive(Clone, Copy)]
struct Twin {
    real: NodeId,
    abst: ShapeTensor,
}

fn fresh(g: &mut Graph, rows: usize, cols: usize) -> Twin {
    Twin { real: g.constant(Tensor::ones(rows, cols)), abst: ShapeTensor::new(rows, cols) }
}

fn shape_of(g: &Graph, t: Twin) -> (usize, usize) {
    g.value(t.real).shape()
}

#[test]
fn random_op_sequences_agree_with_real_execution() {
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(0xABCD + seed);
        let mut g = Graph::new(false, 0);
        let mut ctx = ShapeCtx::new();
        let mut pool: Vec<Twin> = (0..3)
            .map(|_| fresh(&mut g, rng.gen_range(1..6usize), rng.gen_range(1..6usize)))
            .collect();

        for step in 0..25 {
            let t = pool[rng.gen_range(0..pool.len())];
            let (rows, cols) = shape_of(&g, t);
            let result = match rng.gen_range(0..12u32) {
                0 => {
                    let b = fresh(&mut g, cols, rng.gen_range(1..6usize));
                    Twin { real: g.matmul(t.real, b.real), abst: ctx.matmul(t.abst, b.abst) }
                }
                1 => {
                    let b = fresh(&mut g, rng.gen_range(1..6usize), cols);
                    Twin { real: g.matmul_nt(t.real, b.real), abst: ctx.matmul_nt(t.abst, b.abst) }
                }
                2 => {
                    let b = fresh(&mut g, rows, cols);
                    Twin { real: g.add(t.real, b.real), abst: ctx.add(t.abst, b.abst) }
                }
                3 => {
                    let b = fresh(&mut g, rows, cols);
                    Twin { real: g.mul(t.real, b.real), abst: ctx.mul(t.abst, b.abst) }
                }
                4 => {
                    let b = fresh(&mut g, 1, cols);
                    Twin { real: g.add_bias(t.real, b.real), abst: ctx.add_bias(t.abst, b.abst) }
                }
                5 => {
                    let b = fresh(&mut g, rows, rng.gen_range(1..5usize));
                    Twin {
                        real: g.concat_cols(t.real, b.real),
                        abst: ctx.concat_cols(t.abst, b.abst),
                    }
                }
                6 => {
                    let start = rng.gen_range(0..cols);
                    let end = rng.gen_range(start + 1..cols + 1);
                    Twin {
                        real: g.slice_cols(t.real, start, end),
                        abst: ctx.slice_cols(t.abst, start, end),
                    }
                }
                7 => {
                    let idx: Vec<u32> = (0..rng.gen_range(1..8usize))
                        .map(|_| rng.gen_range(0..rows) as u32)
                        .collect();
                    Twin {
                        real: g.gather_rows(t.real, Rc::new(idx.clone())),
                        abst: ctx.gather_rows(t.abst, &idx),
                    }
                }
                8 => {
                    let out_rows = rows + rng.gen_range(0..3usize);
                    let idx: Vec<u32> =
                        (0..rows).map(|_| rng.gen_range(0..out_rows) as u32).collect();
                    Twin {
                        real: g.scatter_add_rows(t.real, Rc::new(idx.clone()), out_rows),
                        abst: ctx.scatter_add_rows(t.abst, &idx, out_rows),
                    }
                }
                9 => {
                    let w: Vec<f32> = (0..rows).map(|_| 1.0).collect();
                    Twin {
                        real: g.row_scale(t.real, Rc::new(w.clone())),
                        abst: ctx.row_scale(t.abst, w.len()),
                    }
                }
                10 => Twin { real: g.relu(t.real), abst: ctx.unary("relu", t.abst) },
                _ => Twin { real: g.sum_rows(t.real), abst: ctx.sum_rows(t.abst) },
            };
            assert!(
                ctx.issues().is_empty(),
                "seed {seed} step {step}: interpreter flagged a valid op: {:?}",
                ctx.issues()
            );
            assert_eq!(
                shape_of(&g, result),
                result.abst.shape(),
                "seed {seed} step {step}: abstract shape diverged from real execution"
            );
            pool.push(result);
        }

        // Reductions at the end of each sequence.
        let t = pool[rng.gen_range(0..pool.len())];
        let real = g.mean_all(t.real);
        let abst = ctx.mean_all(t.abst);
        assert_eq!(g.value(real).shape(), abst.shape());
        assert!(ctx.finish().is_clean());
    }
}

#[test]
fn conv1d_agrees_with_real_execution() {
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..20 {
        let width = rng.gen_range(2..9usize);
        let in_ch = 2usize;
        let out_ch = rng.gen_range(1..6usize);
        let ksize = rng.gen_range(1..4usize);
        let n = rng.gen_range(1..5usize);
        let mut g = Graph::new(false, 0);
        let mut ctx = ShapeCtx::new();
        let x = fresh(&mut g, n, in_ch * width);
        let w = fresh(&mut g, out_ch, in_ch * ksize);
        let b = fresh(&mut g, 1, out_ch);
        let real = g.conv1d(x.real, w.real, b.real, in_ch, out_ch, ksize);
        let abst = ctx.conv1d(x.abst, w.abst, b.abst, in_ch, out_ch, ksize);
        assert_eq!(g.value(real).shape(), abst.shape());
        assert!(ctx.finish().is_clean());
    }
}

#[test]
fn softmax_xent_agrees_with_real_execution() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..20 {
        let n = rng.gen_range(1..6usize);
        let c = rng.gen_range(2..7usize);
        let mut g = Graph::new(false, 0);
        let mut ctx = ShapeCtx::new();
        let x = fresh(&mut g, n, c);
        let targets: Vec<u32> = (0..n).map(|_| rng.gen_range(0..c) as u32).collect();
        let real = g.softmax_xent(x.real, Rc::new(targets.clone()));
        let abst = ctx.softmax_xent(x.abst, targets.len());
        assert_eq!(g.value(real).shape(), abst.shape());
        assert!(ctx.finish().is_clean());
    }
}
