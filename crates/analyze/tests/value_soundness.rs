//! Property tests: the interval domain must be *sound* against real f32
//! execution. Random valid op sequences are replayed both ways — through
//! [`retia_analyze::AuditCtx`] (abstract) and through a real
//! [`retia_tensor::Graph`] in training mode (concrete, including the random
//! dropout masks and rrelu slopes) — and every concrete element must lie
//! inside the abstract interval at every step. Directed tests then pin the
//! non-finiteness edges the random walk is unlikely to reach: exponential
//! overflow, the log pole, division through zero, `inf - inf`, and softmax
//! saturation.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use retia_analyze::value::AbsId;
use retia_analyze::AuditCtx;
use retia_tensor::transfer::{Interval, F32_EXP_OVERFLOW};
use retia_tensor::{Graph, NodeId, Tensor};

/// One live value tracked through both executions.
#[derive(Clone, Copy)]
struct Twin {
    real: NodeId,
    abst: AbsId,
}

/// A fresh leaf: concrete values drawn uniformly from `[a, b]`, abstract
/// value the interval `[a, b]` itself.
fn fresh(g: &mut Graph, ctx: &mut AuditCtx, rng: &mut StdRng, rows: usize, cols: usize) -> Twin {
    let a = rng.gen_range(-4.0f32..-0.5);
    let b = rng.gen_range(0.5f32..4.0);
    let t = Tensor::from_fn(rows, cols, |_, _| rng.gen_range(a..b));
    Twin {
        real: g.constant(t),
        abst: ctx.source(rows, cols, Interval::new(f64::from(a), f64::from(b))),
    }
}

/// Every concrete element must be admitted by the abstract value, and the
/// abstract shape must match the concrete one.
fn assert_contained(g: &Graph, ctx: &AuditCtx, t: Twin, seed: u64, step: usize, op: &str) {
    let iv = ctx.interval(t.abst);
    let real = g.value(t.real);
    assert_eq!(real.shape(), ctx.shape(t.abst), "seed {seed} step {step} {op}: shape diverged");
    for (i, &v) in real.data().iter().enumerate() {
        assert!(
            iv.contains(v),
            "seed {seed} step {step} {op}: concrete element {i} = {v} escapes abstract {iv:?}"
        );
    }
}

#[test]
fn random_op_sequences_stay_inside_the_abstract_interval() {
    for seed in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0xF10A + seed);
        // Training mode: dropout masks and rrelu slopes are live, so the
        // abstract transfer functions must cover the stochastic kernels too.
        let mut g = Graph::new(true, seed);
        let mut ctx = AuditCtx::new();
        let mut pool: Vec<Twin> = (0..3)
            .map(|_| {
                let (r, c) = (rng.gen_range(1..6usize), rng.gen_range(1..6usize));
                fresh(&mut g, &mut ctx, &mut rng, r, c)
            })
            .collect();

        for step in 0..30 {
            let t = pool[rng.gen_range(0..pool.len())];
            let (rows, cols) = ctx.shape(t.abst);
            let (result, op) = match rng.gen_range(0..24u32) {
                0 => {
                    let b = fresh(&mut g, &mut ctx, &mut rng, rows, cols);
                    (Twin { real: g.add(t.real, b.real), abst: ctx.add(t.abst, b.abst) }, "add")
                }
                1 => {
                    let b = fresh(&mut g, &mut ctx, &mut rng, rows, cols);
                    (Twin { real: g.sub(t.real, b.real), abst: ctx.sub(t.abst, b.abst) }, "sub")
                }
                2 => {
                    let b = fresh(&mut g, &mut ctx, &mut rng, rows, cols);
                    (Twin { real: g.mul(t.real, b.real), abst: ctx.mul(t.abst, b.abst) }, "mul")
                }
                3 => {
                    let b = fresh(&mut g, &mut ctx, &mut rng, 1, cols);
                    (
                        Twin {
                            real: g.add_bias(t.real, b.real),
                            abst: ctx.add_bias(t.abst, b.abst),
                        },
                        "add_bias",
                    )
                }
                4 => {
                    let b = fresh(&mut g, &mut ctx, &mut rng, 1, cols);
                    (
                        Twin {
                            real: g.mul_bias(t.real, b.real),
                            abst: ctx.mul_bias(t.abst, b.abst),
                        },
                        "mul_bias",
                    )
                }
                5 => {
                    let c = fresh(&mut g, &mut ctx, &mut rng, rows, 1);
                    (
                        Twin { real: g.mul_col(t.real, c.real), abst: ctx.mul_col(t.abst, c.abst) },
                        "mul_col",
                    )
                }
                6 => {
                    let s = rng.gen_range(-2.0f32..2.0);
                    (
                        Twin { real: g.scale(t.real, s), abst: ctx.scale(t.abst, f64::from(s)) },
                        "scale",
                    )
                }
                7 => {
                    let s = rng.gen_range(-2.0f32..2.0);
                    (
                        Twin {
                            real: g.add_scalar(t.real, s),
                            abst: ctx.add_scalar(t.abst, f64::from(s)),
                        },
                        "add_scalar",
                    )
                }
                8 => {
                    let n = rng.gen_range(1..6usize);
                    let b = fresh(&mut g, &mut ctx, &mut rng, cols, n);
                    (
                        Twin { real: g.matmul(t.real, b.real), abst: ctx.matmul(t.abst, b.abst) },
                        "matmul",
                    )
                }
                9 => {
                    let n = rng.gen_range(1..6usize);
                    let b = fresh(&mut g, &mut ctx, &mut rng, n, cols);
                    (
                        Twin {
                            real: g.matmul_nt(t.real, b.real),
                            abst: ctx.matmul_nt(t.abst, b.abst),
                        },
                        "matmul_nt",
                    )
                }
                10 => (Twin { real: g.sigmoid(t.real), abst: ctx.sigmoid(t.abst) }, "sigmoid"),
                11 => (Twin { real: g.tanh(t.real), abst: ctx.tanh(t.abst) }, "tanh"),
                12 => (Twin { real: g.relu(t.real), abst: ctx.relu(t.abst) }, "relu"),
                13 => (Twin { real: g.rrelu(t.real), abst: ctx.rrelu(t.abst) }, "rrelu"),
                14 => {
                    let p = rng.gen_range(0.0f32..0.5);
                    (
                        Twin {
                            real: g.dropout(t.real, p),
                            abst: ctx.dropout(t.abst, f64::from(p)),
                        },
                        "dropout",
                    )
                }
                15 => {
                    let count = rng.gen_range(1..8usize);
                    let idx: Vec<u32> = (0..count)
                        .map(|_| u32::try_from(rng.gen_range(0..rows)).expect("small index"))
                        .collect();
                    (
                        Twin {
                            real: g.gather_rows(t.real, Rc::new(idx)),
                            abst: ctx.gather_rows(t.abst, count),
                        },
                        "gather_rows",
                    )
                }
                16 => {
                    let out_rows = rows + rng.gen_range(0..3usize);
                    let idx: Vec<u32> = (0..rows)
                        .map(|_| u32::try_from(rng.gen_range(0..out_rows)).expect("small index"))
                        .collect();
                    (
                        Twin {
                            real: g.scatter_add_rows(t.real, Rc::new(idx), out_rows),
                            abst: ctx.scatter_add_rows(t.abst, out_rows),
                        },
                        "scatter_add_rows",
                    )
                }
                17 => {
                    let w: Vec<f32> = (0..rows).map(|_| rng.gen_range(0.0f32..1.0)).collect();
                    (
                        Twin {
                            real: g.row_scale(t.real, Rc::new(w)),
                            abst: ctx.row_scale(t.abst, Interval::new(0.0, 1.0)),
                        },
                        "row_scale",
                    )
                }
                18 => {
                    let n = rng.gen_range(1..5usize);
                    let b = fresh(&mut g, &mut ctx, &mut rng, rows, n);
                    (
                        Twin {
                            real: g.concat_cols(t.real, b.real),
                            abst: ctx.concat_cols(t.abst, b.abst),
                        },
                        "concat_cols",
                    )
                }
                19 => {
                    let start = rng.gen_range(0..cols);
                    let end = rng.gen_range(start + 1..cols + 1);
                    (
                        Twin {
                            real: g.slice_cols(t.real, start, end),
                            abst: ctx.slice_cols(t.abst, start, end),
                        },
                        "slice_cols",
                    )
                }
                20 => (
                    Twin { real: g.softmax_rows(t.real), abst: ctx.softmax_rows(t.abst) },
                    "softmax_rows",
                ),
                21 => (Twin { real: g.sum_rows(t.real), abst: ctx.sum_rows(t.abst) }, "sum_rows"),
                22 => {
                    let b = fresh(&mut g, &mut ctx, &mut rng, rows, cols);
                    let c = fresh(&mut g, &mut ctx, &mut rng, rows, cols);
                    (
                        Twin {
                            real: g.add_n(&[t.real, b.real, c.real]),
                            abst: ctx.add_n(&[t.abst, b.abst, c.abst]),
                        },
                        "add_n",
                    )
                }
                _ => (
                    Twin { real: g.layer_norm_rows(t.real), abst: ctx.layer_norm_rows(t.abst) },
                    "layer_norm_rows",
                ),
            };
            assert_contained(&g, &ctx, result, seed, step, op);
            pool.push(result);
        }

        // Close each sequence with the reductions the loss path uses.
        let t = pool[rng.gen_range(0..pool.len())];
        for (result, op) in [
            (
                Twin { real: g.normalize_rows(t.real), abst: ctx.normalize_rows(t.abst) },
                "normalize",
            ),
            (Twin { real: g.sum_all(t.real), abst: ctx.sum_all(t.abst) }, "sum_all"),
            (Twin { real: g.mean_all(t.real), abst: ctx.mean_all(t.abst) }, "mean_all"),
        ] {
            assert_contained(&g, &ctx, result, seed, 99, op);
        }
    }
}

#[test]
fn gather_cols_ln_and_xent_stay_inside_the_abstract_interval() {
    // The loss path: softmax -> gather the target column -> ln(p + eps).
    let mut rng = StdRng::seed_from_u64(0x105E);
    for round in 0..20 {
        let n = rng.gen_range(1..6usize);
        let c = rng.gen_range(2..7usize);
        let mut g = Graph::new(true, round);
        let mut ctx = AuditCtx::new();
        let x = fresh(&mut g, &mut ctx, &mut rng, n, c);
        let probs = Twin { real: g.softmax_rows(x.real), abst: ctx.softmax_rows(x.abst) };
        let targets: Vec<u32> =
            (0..n).map(|_| u32::try_from(rng.gen_range(0..c)).expect("small index")).collect();
        let picked = Twin {
            real: g.gather_cols(probs.real, Rc::new(targets.clone())),
            abst: ctx.gather_cols(probs.abst),
        };
        assert_contained(&g, &ctx, picked, round, 0, "gather_cols");
        let nll = Twin { real: g.ln(picked.real, 1e-9), abst: ctx.ln(picked.abst, 1e-9) };
        assert_contained(&g, &ctx, nll, round, 1, "ln");
        // The fused kernel mean-reduces the per-row losses to a scalar.
        let per_row = ctx.softmax_xent(x.abst);
        let fused =
            Twin { real: g.softmax_xent(x.real, Rc::new(targets)), abst: ctx.mean_all(per_row) };
        assert_contained(&g, &ctx, fused, round, 2, "softmax_xent");
    }
}

#[test]
fn conv1d_stays_inside_the_abstract_interval() {
    let mut rng = StdRng::seed_from_u64(0xC0);
    for round in 0..20 {
        let width = rng.gen_range(2..9usize);
        let in_ch = 2usize;
        let out_ch = rng.gen_range(1..6usize);
        let ksize = rng.gen_range(1..4usize);
        let n = rng.gen_range(1..5usize);
        let mut g = Graph::new(true, round);
        let mut ctx = AuditCtx::new();
        let x = fresh(&mut g, &mut ctx, &mut rng, n, in_ch * width);
        let w = fresh(&mut g, &mut ctx, &mut rng, out_ch, in_ch * ksize);
        let b = fresh(&mut g, &mut ctx, &mut rng, 1, out_ch);
        let result = Twin {
            real: g.conv1d(x.real, w.real, b.real, in_ch, out_ch, ksize),
            abst: ctx.conv1d(x.abst, w.abst, b.abst, in_ch, out_ch, ksize),
        };
        assert_contained(&g, &ctx, result, round, 0, "conv1d");
    }
}

// ---- directed non-finiteness edges ----------------------------------------

#[test]
fn exp_overflow_is_admitted_and_flagged() {
    let mut ctx = AuditCtx::new();
    let x = ctx.source(1, 1, Interval::new(80.0, 90.0));
    let y = ctx.exp(x);
    let iv = ctx.interval(y);
    // 89 > ln(f32::MAX): the concrete kernel overflows to +inf.
    assert!(iv.contains(89.0f32.exp()), "exp(89) = {} escapes {iv:?}", 89.0f32.exp());
    assert!(89.0f32.exp().is_infinite());
    assert!(iv.inf, "interval crossing {F32_EXP_OVERFLOW} must admit +inf");
    // Finiteness introduction: finite inputs, non-finite output -> finding.
    let report = ctx.finish();
    assert!(report.issues.iter().any(|i| i.op == "exp"), "{report}");
    // Below the overflow threshold no finding is recorded.
    let mut ok = AuditCtx::new();
    let x = ok.source(1, 1, Interval::new(-5.0, 5.0));
    let y = ok.exp(x);
    assert!(ok.interval(y).contains(5.0f32.exp()));
    assert!(ok.finish().is_clean());
}

#[test]
fn log_pole_is_admitted_and_flagged() {
    // An unshifted log over an interval reaching zero admits -inf; going
    // negative admits NaN. The concrete kernel computes ln(x + eps).
    let mut ctx = AuditCtx::new();
    let x = ctx.source(1, 1, Interval::new(0.0, 1.0));
    let y = ctx.ln(x, 0.0);
    let iv = ctx.interval(y);
    assert!(iv.inf, "ln over [0,1] with eps=0 must admit -inf");
    assert!(iv.contains((0.0f32).ln()), "ln(0) = -inf escapes {iv:?}");
    assert!(!ctx.finish().is_clean());
    // The shipped eps guard removes the pole: ln(p + 1e-9) over [0,1] is
    // finite, and the concrete extremes stay inside.
    let mut ok = AuditCtx::new();
    let p = ok.source(1, 1, Interval::new(0.0, 1.0));
    let y = ok.ln(p, 1e-9);
    let iv = ok.interval(y);
    assert!(iv.contains((0.0f32 + 1e-9).ln()), "ln(eps) escapes {iv:?}");
    assert!(iv.contains((1.0f32 + 1e-9).ln()));
    assert!(ok.finish().is_clean());
}

#[test]
fn division_through_zero_is_admitted_and_flagged() {
    let mut ctx = AuditCtx::new();
    let a = ctx.source(1, 1, Interval::new(1.0, 2.0));
    let b = ctx.source(1, 1, Interval::new(-1.0, 1.0));
    let y = ctx.div(a, b);
    let iv = ctx.interval(y);
    // The numerator is bounded away from zero, so 1/0 = +-inf is the edge.
    assert!(iv.contains(1.0f32 / 0.0f32), "1/0 escapes {iv:?}");
    assert!(iv.inf, "division through zero must admit inf: {iv:?}");
    assert!(!ctx.finish().is_clean());
    // With zero over zero possible, NaN must be admitted too.
    let mut zz = AuditCtx::new();
    let a = zz.source(1, 1, Interval::new(-1.0, 1.0));
    let b = zz.source(1, 1, Interval::new(-1.0, 1.0));
    let y = zz.div(a, b);
    let iv = zz.interval(y);
    assert!(iv.contains(f32::NAN), "0/0 (NaN) escapes {iv:?}");
    assert!(iv.nan, "0/0 must admit NaN: {iv:?}");
    // A denominator bounded away from zero divides cleanly.
    let mut ok = AuditCtx::new();
    let a = ok.source(1, 1, Interval::new(1.0, 2.0));
    let b = ok.source(1, 1, Interval::new(0.5, 1.0));
    let y = ok.div(a, b);
    assert!(ok.interval(y).contains(2.0 / 0.5));
    assert!(ok.finish().is_clean());
}

#[test]
fn inf_minus_inf_is_admitted_as_nan() {
    let mut ctx = AuditCtx::new();
    // Bounds beyond f32::MAX: the concrete value would already be +-inf.
    let a = ctx.source(1, 1, Interval::new(0.0, 1e39));
    let b = ctx.source(1, 1, Interval::new(0.0, 1e39));
    assert!(ctx.interval(a).inf, "a bound beyond f32::MAX must set the inf flag");
    let y = ctx.sub(a, b);
    let iv = ctx.interval(y);
    assert!(iv.contains(f32::INFINITY - f32::INFINITY), "inf - inf (NaN) escapes {iv:?}");
    assert!(iv.nan, "inf - inf must admit NaN: {iv:?}");
}

#[test]
fn softmax_saturates_finite_inputs_and_poisons_infinite_ones() {
    // Finite logits, however large: the max-subtracting kernel lands in
    // [0, 1] and the abstract output is finite.
    let mut ctx = AuditCtx::new();
    let x = ctx.source(2, 4, Interval::new(-200.0, 200.0));
    let y = ctx.softmax_rows(x);
    let iv = ctx.interval(y);
    let mut g = Graph::new(false, 0);
    let big = g.constant(Tensor::from_fn(2, 4, |i, j| if i == j { 200.0 } else { -200.0 }));
    let sm = g.softmax_rows(big);
    for &v in g.value(sm).data() {
        assert!(iv.contains(v), "softmax({v}) escapes {iv:?}");
    }
    assert!(!iv.inf && !iv.nan, "finite logits softmax cleanly: {iv:?}");
    assert!(ctx.finish().is_clean());
    // Infinite logits poison the row: inf - inf inside the stabilization.
    let mut bad = AuditCtx::new();
    let x = bad.source(2, 4, Interval::new(-1e39, 1e39));
    let y = bad.softmax_rows(x);
    assert!(bad.interval(y).nan, "softmax of +-inf logits must admit NaN");
}
