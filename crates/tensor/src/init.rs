//! Weight initialization schemes.

use rand::Rng;

use crate::tensor::Tensor;

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. This is what the RETIA reference code
/// uses for embeddings and weight matrices.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Tensor {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    Tensor::from_fn(rows, cols, |_, _| rng.gen_range(-a..a))
}

/// Gaussian initialization with mean 0 and the given standard deviation
/// (Box–Muller; avoids pulling in `rand_distr`).
pub fn normal(rows: usize, cols: usize, std: f32, rng: &mut impl Rng) -> Tensor {
    Tensor::from_fn(rows, cols, |_, _| {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    })
}

/// Uniform initialization `U(lo, hi)`.
pub fn uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
    Tensor::from_fn(rows, cols, |_, _| rng.gen_range(lo..hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = xavier_uniform(10, 20, &mut rng);
        let a = (6.0f32 / 30.0).sqrt();
        assert!(t.data().iter().all(|&x| x > -a && x < a));
    }

    #[test]
    fn normal_has_roughly_right_moments() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = normal(100, 100, 2.0, &mut rng);
        let mean = t.mean();
        let var = t.data().iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / (t.len() as f32);
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn uniform_respects_range() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = uniform(10, 10, -0.5, 0.25, &mut rng);
        assert!(t.data().iter().all(|&x| (-0.5..0.25).contains(&x)));
    }
}
