//! Deterministic multi-threaded execution of row-chunked kernels.
//!
//! Every parallel kernel in this workspace is built from two primitives
//! here, and both obey one rule: **the execution plan is a pure function of
//! the operand shapes**. Rows are cut into fixed [`CHUNK_ROWS`]-row chunks,
//! the sequential/parallel decision ([`should_par`]) looks only at the work
//! size, and reductions combine per-chunk partials in ascending chunk
//! order. The configured thread count decides *which OS thread executes
//! which chunk* — never what is computed or in what order values are
//! combined — so results are bit-identical at `RETIA_NUM_THREADS=1`, `=2`,
//! `=8`, or any other setting.
//!
//! Workers are `std::thread::scope` threads spawned per call (the only
//! primitive available without external crates); [`should_par`]'s work
//! threshold keeps that spawn cost away from small operands.

use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Rows per chunk. Fixed — never derived from the thread count — so chunk
/// boundaries (and therefore reduction order) depend only on shape.
pub const CHUNK_ROWS: usize = 16;

/// Minimum estimated flops before scoped threads are worth spawning
/// (`thread::scope` costs tens of microseconds per call).
const MIN_PAR_WORK: usize = 1 << 17;

/// Hard cap on worker threads.
const MAX_THREADS: usize = 256;

static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Programmatic thread-count override; `0` returns control to the
/// `RETIA_NUM_THREADS` environment variable / auto detection. Typically
/// driven by `RetiaConfig::num_threads`.
pub fn set_num_threads(n: usize) {
    OVERRIDE.store(n, Ordering::Relaxed);
}

/// Worker threads used by parallel kernels: the [`set_num_threads`]
/// override if set, else `RETIA_NUM_THREADS`, else the machine's available
/// parallelism. Always at least 1. Changing this never changes results.
pub fn num_threads() -> usize {
    let forced = OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced.min(MAX_THREADS);
    }
    if let Ok(v) = std::env::var("RETIA_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n.min(MAX_THREADS);
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get().min(MAX_THREADS)).unwrap_or(1)
}

/// Whether a kernel of `rows` rows costing `cost_per_row` estimated flops
/// each should use worker threads. A function of shape only: thread count
/// does not enter, so the chunked code path (and thus the result) is the
/// same whether or not threads end up being spawned.
pub fn should_par(rows: usize, cost_per_row: usize) -> bool {
    rows > CHUNK_ROWS && rows.saturating_mul(cost_per_row) >= MIN_PAR_WORK
}

/// The fixed chunk decomposition of `rows`: `[0,16), [16,32), …` with a
/// short tail. Shared by every kernel and by the partial-reduction merge
/// order.
pub fn row_chunks(rows: usize) -> impl Iterator<Item = Range<usize>> {
    (0..rows.div_ceil(CHUNK_ROWS)).map(move |c| {
        let start = c * CHUNK_ROWS;
        start..((start + CHUNK_ROWS).min(rows))
    })
}

/// Why a chunk plan (or an observed write-set) fails verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// A chunk's end precedes its start.
    Inverted {
        /// The inverted row range.
        chunk: Range<usize>,
    },
    /// A chunk reaches past the output rows.
    OutOfBounds {
        /// The offending row range.
        chunk: Range<usize>,
        /// Total rows in the output.
        rows: usize,
    },
    /// Two chunks claim the same rows — a write-write race under threads.
    Overlap {
        /// The first (lower-starting) of the colliding chunks.
        a: Range<usize>,
        /// The chunk that re-claims rows already covered by `a`.
        b: Range<usize>,
    },
    /// Rows `from..to` are claimed by no chunk — output left unwritten.
    Gap {
        /// First uncovered row.
        from: usize,
        /// One past the last uncovered row.
        to: usize,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Inverted { chunk } => {
                write!(f, "inverted chunk {}..{}", chunk.start, chunk.end)
            }
            PlanError::OutOfBounds { chunk, rows } => {
                write!(f, "chunk {}..{} exceeds {rows} rows", chunk.start, chunk.end)
            }
            PlanError::Overlap { a, b } => write!(
                f,
                "chunks {}..{} and {}..{} overlap (write-write race)",
                a.start, a.end, b.start, b.end
            ),
            PlanError::Gap { from, to } => write!(f, "rows {from}..{to} covered by no chunk"),
        }
    }
}

/// Proves a chunk plan safe: every chunk in bounds, pairwise disjoint, and
/// together covering `0..rows` exactly. Interval arithmetic over row ranges
/// — the disjointness half is exactly the no-data-race argument for handing
/// the chunks to different threads, the coverage half guarantees no row of
/// the output is left unwritten. Chunk order does not matter; zero-length
/// chunks contribute nothing and are tolerated.
pub fn verify_row_plan(rows: usize, chunks: &[Range<usize>]) -> Result<(), PlanError> {
    verify_extent_plan(rows, chunks)
}

/// Column-range twin of [`verify_row_plan`], for plans that shard the
/// *columns* of an output — the sharded decode splits `matmul_nt` over
/// candidate-column ranges (one disjoint `lo..hi` slice of the logit matrix
/// per thread), and this is the interval-overlap proof that those writes
/// cannot race and no candidate column is left unscored. The `matmul_nt`
/// output-lane loop is order-invariant (see `transfer::REDUCTION_SITES`),
/// so a verified column plan also preserves bit-identity.
pub fn verify_col_plan(cols: usize, chunks: &[Range<usize>]) -> Result<(), PlanError> {
    verify_extent_plan(cols, chunks)
}

/// Shared interval sweep behind [`verify_row_plan`] / [`verify_col_plan`]:
/// the lane axis (rows or columns) is abstract here.
fn verify_extent_plan(extent: usize, chunks: &[Range<usize>]) -> Result<(), PlanError> {
    let mut sorted: Vec<Range<usize>> = Vec::with_capacity(chunks.len());
    for c in chunks {
        if c.end < c.start {
            return Err(PlanError::Inverted { chunk: c.clone() });
        }
        if c.end > extent {
            return Err(PlanError::OutOfBounds { chunk: c.clone(), rows: extent });
        }
        if !c.is_empty() {
            sorted.push(c.clone());
        }
    }
    sorted.sort_by_key(|c| c.start);
    let mut covered = 0usize;
    let mut prev: Range<usize> = 0..0;
    for c in sorted {
        if c.start < covered {
            return Err(PlanError::Overlap { a: prev, b: c });
        }
        if c.start > covered {
            return Err(PlanError::Gap { from: covered, to: c.start });
        }
        covered = c.end;
        prev = c;
    }
    if covered < extent {
        return Err(PlanError::Gap { from: covered, to: extent });
    }
    Ok(())
}

/// Debug-assertions write-set tracker: a deterministic race detector.
///
/// When tracking is on (debug builds with [`writeset::set_tracking`] or
/// `RETIA_WRITE_TRACK=1`), [`for_each_row_chunk`] records the row range each
/// chunk closure actually receives and, after the kernel completes, asserts
/// the observed write-set is pairwise disjoint and covers the output exactly
/// (via [`verify_row_plan`]). This checks the *executed* writes, not just
/// the plan, so a future refactor that hands two threads overlapping slices
/// fails loudly in the debug test pass instead of corrupting floats.
pub mod writeset {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::OnceLock;

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static VERIFIED: AtomicUsize = AtomicUsize::new(0);

    fn env_enabled() -> bool {
        static ENV: OnceLock<bool> = OnceLock::new();
        *ENV.get_or_init(|| std::env::var("RETIA_WRITE_TRACK").is_ok_and(|v| v == "1"))
    }

    /// Turns tracking on/off programmatically (tests). Debug builds only:
    /// release builds never track, whatever this says.
    pub fn set_tracking(on: bool) {
        ENABLED.store(on, Ordering::Relaxed);
    }

    /// Whether kernels should record and verify their write-sets.
    pub fn tracking() -> bool {
        cfg!(debug_assertions) && (ENABLED.load(Ordering::Relaxed) || env_enabled())
    }

    /// Number of kernel invocations whose write-set has been verified since
    /// process start. Tests assert this moves to prove the detector ran.
    pub fn verified_count() -> usize {
        VERIFIED.load(Ordering::Relaxed)
    }

    pub(super) fn record_verified() {
        VERIFIED.fetch_add(1, Ordering::Relaxed);
    }
}

/// Runs `f(first_row, chunk)` over `out` split into [`CHUNK_ROWS`]·`row_width`
/// element chunks, in parallel when [`should_par`] says the work justifies
/// it. Chunks are disjoint `&mut` slices, so any assignment of chunks to
/// threads writes the identical output; assignment is static round-robin.
///
/// Debug builds verify the chunk plan with [`verify_row_plan`]; with
/// [`writeset`] tracking on, the rows each closure actually received are
/// re-verified after the kernel completes.
pub fn for_each_row_chunk<F>(out: &mut [f32], row_width: usize, cost_per_row: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    let rows = out.len().checked_div(row_width).unwrap_or(0);
    debug_assert_eq!(rows * row_width, out.len(), "out is not a whole number of rows");
    debug_assert!(
        verify_row_plan(rows, &row_chunks(rows).collect::<Vec<_>>()).is_ok(),
        "row_chunks produced an unsafe plan for {rows} rows"
    );
    let track = writeset::tracking();
    let written: Mutex<Vec<Range<usize>>> = Mutex::new(Vec::new());
    let g = |first_row: usize, chunk: &mut [f32]| {
        if track {
            let chunk_rows = chunk.len().checked_div(row_width).unwrap_or(0);
            written
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(first_row..first_row + chunk_rows);
        }
        f(first_row, chunk);
    };
    let chunk_elems = (CHUNK_ROWS * row_width).max(1);
    let threads = effective_threads(rows, cost_per_row);
    if threads <= 1 {
        for (c, chunk) in out.chunks_mut(chunk_elems).enumerate() {
            g(c * CHUNK_ROWS, chunk);
        }
    } else {
        let mut groups: Vec<Vec<(usize, &mut [f32])>> = (0..threads).map(|_| Vec::new()).collect();
        for (c, chunk) in out.chunks_mut(chunk_elems).enumerate() {
            groups[c % threads].push((c * CHUNK_ROWS, chunk));
        }
        run_groups(groups, &|(first_row, chunk)| g(first_row, chunk));
    }
    if track && row_width > 0 {
        let writes = written.into_inner().unwrap_or_else(|e| e.into_inner());
        verify_row_plan(rows, &writes)
            .expect("write-set tracker: chunk writes must be disjoint and cover the output");
        writeset::record_verified();
    }
}

/// Maps the fixed chunk decomposition of `rows` to per-chunk values,
/// returned **in chunk order** regardless of which thread produced which
/// value. Reductions stay deterministic by folding this vector left to
/// right.
pub fn map_row_chunks<T, F>(rows: usize, cost_per_row: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let ranges: Vec<Range<usize>> = row_chunks(rows).collect();
    debug_assert!(
        verify_row_plan(rows, &ranges).is_ok(),
        "row_chunks produced an unsafe plan for {rows} rows"
    );
    let mut slots: Vec<Option<T>> = ranges.iter().map(|_| None).collect();
    let threads = effective_threads(rows, cost_per_row);
    if threads <= 1 {
        for (slot, range) in slots.iter_mut().zip(ranges) {
            *slot = Some(f(range));
        }
    } else {
        let mut groups: Vec<Vec<(&mut Option<T>, Range<usize>)>> =
            (0..threads).map(|_| Vec::new()).collect();
        for (c, (slot, range)) in slots.iter_mut().zip(ranges).enumerate() {
            groups[c % threads].push((slot, range));
        }
        run_groups(groups, &|(slot, range)| *slot = Some(f(range)));
    }
    slots.into_iter().map(|s| s.expect("every chunk visited")).collect()
}

fn effective_threads(rows: usize, cost_per_row: usize) -> usize {
    if !should_par(rows, cost_per_row) {
        if retia_obs::kernel_timing_enabled() {
            retia_obs::metrics::inc("parallel.dispatch.seq");
        }
        return 1;
    }
    // No point spawning more workers than there are chunks.
    let threads = num_threads().min(rows.div_ceil(CHUNK_ROWS)).max(1);
    if retia_obs::kernel_timing_enabled() {
        retia_obs::metrics::inc(if threads > 1 {
            "parallel.dispatch.par"
        } else {
            "parallel.dispatch.seq"
        });
    }
    threads
}

/// Executes each group of work items on its own scoped thread; the calling
/// thread takes group 0 instead of idling in `scope`'s join.
fn run_groups<I: Send, F: Fn(I) + Sync>(groups: Vec<Vec<I>>, f: &F) {
    std::thread::scope(|s| {
        let mut iter = groups.into_iter();
        let own = iter.next();
        for group in iter {
            if !group.is_empty() {
                s.spawn(move || {
                    for item in group {
                        f(item);
                    }
                });
            }
        }
        if let Some(group) = own {
            for item in group {
                f(item);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// The thread-count override and `RETIA_NUM_THREADS` are process
    /// globals; tests mutating them serialize on this lock and restore the
    /// override on drop (even across a panic).
    struct ThreadGuard(#[allow(dead_code)] MutexGuard<'static, ()>);
    impl ThreadGuard {
        fn lock() -> Self {
            static LOCK: Mutex<()> = Mutex::new(());
            Self(LOCK.lock().unwrap_or_else(|e| e.into_inner()))
        }
    }
    impl Drop for ThreadGuard {
        fn drop(&mut self) {
            set_num_threads(0);
        }
    }

    #[test]
    fn row_chunks_partition_rows() {
        for rows in [0usize, 1, 15, 16, 17, 160, 161] {
            let ranges: Vec<_> = row_chunks(rows).collect();
            let total: usize = ranges.iter().map(|r| r.len()).sum();
            assert_eq!(total, rows, "rows {rows}");
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            if let Some(last) = ranges.last() {
                assert_eq!(last.end, rows);
            }
        }
    }

    #[test]
    fn chunk_plan_ignores_thread_count() {
        let _guard = ThreadGuard::lock();
        // The partials vector must be identical (values *and* order) at any
        // thread count — this is the determinism contract itself.
        let run = |threads: usize| -> Vec<f64> {
            set_num_threads(threads);
            map_row_chunks(1000, 1 << 12, |r| r.map(|i| (i as f64).sqrt()).sum())
        };
        let one = run(1);
        for threads in [2usize, 3, 8, 64] {
            let many = run(threads);
            assert_eq!(one.len(), many.len());
            for (a, b) in one.iter().zip(many.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn for_each_row_chunk_writes_every_row() {
        let _guard = ThreadGuard::lock();
        for threads in [1usize, 4] {
            set_num_threads(threads);
            let (rows, width) = (100usize, 7usize);
            let mut out = vec![0.0f32; rows * width];
            for_each_row_chunk(&mut out, width, 1 << 12, |first_row, chunk| {
                for (d, row) in chunk.chunks_mut(width).enumerate() {
                    for (j, x) in row.iter_mut().enumerate() {
                        *x = ((first_row + d) * width + j) as f32;
                    }
                }
            });
            for (i, &x) in out.iter().enumerate() {
                assert_eq!(x, i as f32);
            }
        }
    }

    #[test]
    fn prover_accepts_generated_plans() {
        for rows in [0usize, 1, 15, 16, 17, 160, 161, 1000] {
            let plan: Vec<_> = row_chunks(rows).collect();
            assert_eq!(verify_row_plan(rows, &plan), Ok(()), "rows {rows}");
        }
        // Order must not matter: a shuffled plan is still safe.
        let mut plan: Vec<_> = row_chunks(100).collect();
        plan.reverse();
        assert_eq!(verify_row_plan(100, &plan), Ok(()));
    }

    #[test]
    fn prover_rejects_crafted_overlapping_plan() {
        // Two chunks both claim rows 8..16 — a write-write race.
        let racy = vec![0..16, 8..32];
        match verify_row_plan(32, &racy) {
            Err(PlanError::Overlap { a, b }) => {
                assert_eq!((a, b), (0..16, 8..32));
            }
            other => panic!("expected Overlap, got {other:?}"),
        }
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init, clippy::reversed_empty_ranges)]
    fn prover_rejects_gaps_and_out_of_bounds() {
        assert_eq!(verify_row_plan(32, &[0..16]), Err(PlanError::Gap { from: 16, to: 32 }));
        assert_eq!(verify_row_plan(32, &[0..8, 16..32]), Err(PlanError::Gap { from: 8, to: 16 }));
        assert_eq!(
            verify_row_plan(16, &[0..16, 16..24]),
            Err(PlanError::OutOfBounds { chunk: 16..24, rows: 16 })
        );
        let inverted = vec![8..4];
        assert_eq!(verify_row_plan(16, &inverted), Err(PlanError::Inverted { chunk: 8..4 }));
        // Empty plans only cover empty outputs.
        assert_eq!(verify_row_plan(0, &[]), Ok(()));
        assert_eq!(verify_row_plan(4, &[]), Err(PlanError::Gap { from: 0, to: 4 }));
    }

    #[test]
    fn col_plan_mirrors_row_plan_semantics() {
        // The decode sharding shape: near-equal contiguous column ranges.
        for (cols, shards) in [(1usize, 1usize), (7, 3), (64, 4), (100, 7), (23_033, 8)] {
            let base = cols / shards;
            let extra = cols % shards;
            let mut plan = Vec::new();
            let mut start = 0;
            for s in 0..shards {
                let len = base + usize::from(s < extra);
                plan.push(start..start + len);
                start += len;
            }
            assert_eq!(verify_col_plan(cols, &plan), Ok(()), "cols {cols} shards {shards}");
        }
        // Out-of-order shards still verify; racy/partial plans do not.
        assert_eq!(verify_col_plan(10, &[5..10, 0..5]), Ok(()));
        assert_eq!(
            verify_col_plan(10, &[0..6, 4..10]),
            Err(PlanError::Overlap { a: 0..6, b: 4..10 })
        );
        assert_eq!(verify_col_plan(10, &[0..4, 6..10]), Err(PlanError::Gap { from: 4, to: 6 }));
        assert_eq!(
            verify_col_plan(8, std::slice::from_ref(&(0..9))),
            Err(PlanError::OutOfBounds { chunk: 0..9, rows: 8 })
        );
    }

    #[cfg(debug_assertions)]
    #[test]
    fn write_set_tracker_verifies_kernel_writes() {
        let _guard = ThreadGuard::lock();
        writeset::set_tracking(true);
        let before = writeset::verified_count();
        for threads in [1usize, 4] {
            set_num_threads(threads);
            let (rows, width) = (200usize, 8usize);
            let mut out = vec![0.0f32; rows * width];
            for_each_row_chunk(&mut out, width, 1 << 12, |first_row, chunk| {
                for (d, row) in chunk.chunks_mut(width).enumerate() {
                    row.iter_mut().for_each(|x| *x = (first_row + d) as f32);
                }
            });
        }
        writeset::set_tracking(false);
        assert!(
            writeset::verified_count() >= before + 2,
            "tracker did not verify the kernel invocations"
        );
    }

    #[test]
    fn small_work_stays_sequential() {
        assert!(!should_par(8, 1_000_000), "few rows: not worth chunk-parallelism");
        assert!(!should_par(1_000_000, 0), "zero-cost rows: not worth spawning");
        assert!(should_par(1_000, 1_000));
    }

    #[test]
    fn env_and_override_resolution() {
        let _guard = ThreadGuard::lock();
        set_num_threads(3);
        assert_eq!(num_threads(), 3);
        set_num_threads(0);
        std::env::set_var("RETIA_NUM_THREADS", "5");
        assert_eq!(num_threads(), 5);
        std::env::set_var("RETIA_NUM_THREADS", "not-a-number");
        assert!(num_threads() >= 1);
        std::env::remove_var("RETIA_NUM_THREADS");
        assert!(num_threads() >= 1);
    }
}
