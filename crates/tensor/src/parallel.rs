//! Deterministic multi-threaded execution of row-chunked kernels.
//!
//! Every parallel kernel in this workspace is built from two primitives
//! here, and both obey one rule: **the execution plan is a pure function of
//! the operand shapes**. Rows are cut into fixed [`CHUNK_ROWS`]-row chunks,
//! the sequential/parallel decision ([`should_par`]) looks only at the work
//! size, and reductions combine per-chunk partials in ascending chunk
//! order. The configured thread count decides *which OS thread executes
//! which chunk* — never what is computed or in what order values are
//! combined — so results are bit-identical at `RETIA_NUM_THREADS=1`, `=2`,
//! `=8`, or any other setting.
//!
//! Workers are `std::thread::scope` threads spawned per call (the only
//! primitive available without external crates); [`should_par`]'s work
//! threshold keeps that spawn cost away from small operands.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Rows per chunk. Fixed — never derived from the thread count — so chunk
/// boundaries (and therefore reduction order) depend only on shape.
pub const CHUNK_ROWS: usize = 16;

/// Minimum estimated flops before scoped threads are worth spawning
/// (`thread::scope` costs tens of microseconds per call).
const MIN_PAR_WORK: usize = 1 << 17;

/// Hard cap on worker threads.
const MAX_THREADS: usize = 256;

static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Programmatic thread-count override; `0` returns control to the
/// `RETIA_NUM_THREADS` environment variable / auto detection. Typically
/// driven by `RetiaConfig::num_threads`.
pub fn set_num_threads(n: usize) {
    OVERRIDE.store(n, Ordering::Relaxed);
}

/// Worker threads used by parallel kernels: the [`set_num_threads`]
/// override if set, else `RETIA_NUM_THREADS`, else the machine's available
/// parallelism. Always at least 1. Changing this never changes results.
pub fn num_threads() -> usize {
    let forced = OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced.min(MAX_THREADS);
    }
    if let Ok(v) = std::env::var("RETIA_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n.min(MAX_THREADS);
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get().min(MAX_THREADS)).unwrap_or(1)
}

/// Whether a kernel of `rows` rows costing `cost_per_row` estimated flops
/// each should use worker threads. A function of shape only: thread count
/// does not enter, so the chunked code path (and thus the result) is the
/// same whether or not threads end up being spawned.
pub fn should_par(rows: usize, cost_per_row: usize) -> bool {
    rows > CHUNK_ROWS && rows.saturating_mul(cost_per_row) >= MIN_PAR_WORK
}

/// The fixed chunk decomposition of `rows`: `[0,16), [16,32), …` with a
/// short tail. Shared by every kernel and by the partial-reduction merge
/// order.
pub fn row_chunks(rows: usize) -> impl Iterator<Item = Range<usize>> {
    (0..rows.div_ceil(CHUNK_ROWS)).map(move |c| {
        let start = c * CHUNK_ROWS;
        start..((start + CHUNK_ROWS).min(rows))
    })
}

/// Runs `f(first_row, chunk)` over `out` split into [`CHUNK_ROWS`]·`row_width`
/// element chunks, in parallel when [`should_par`] says the work justifies
/// it. Chunks are disjoint `&mut` slices, so any assignment of chunks to
/// threads writes the identical output; assignment is static round-robin.
pub fn for_each_row_chunk<F>(out: &mut [f32], row_width: usize, cost_per_row: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    let rows = out.len().checked_div(row_width).unwrap_or(0);
    debug_assert_eq!(rows * row_width, out.len(), "out is not a whole number of rows");
    let chunk_elems = (CHUNK_ROWS * row_width).max(1);
    let threads = effective_threads(rows, cost_per_row);
    if threads <= 1 {
        for (c, chunk) in out.chunks_mut(chunk_elems).enumerate() {
            f(c * CHUNK_ROWS, chunk);
        }
        return;
    }
    let mut groups: Vec<Vec<(usize, &mut [f32])>> = (0..threads).map(|_| Vec::new()).collect();
    for (c, chunk) in out.chunks_mut(chunk_elems).enumerate() {
        groups[c % threads].push((c * CHUNK_ROWS, chunk));
    }
    run_groups(groups, &|(first_row, chunk)| f(first_row, chunk));
}

/// Maps the fixed chunk decomposition of `rows` to per-chunk values,
/// returned **in chunk order** regardless of which thread produced which
/// value. Reductions stay deterministic by folding this vector left to
/// right.
pub fn map_row_chunks<T, F>(rows: usize, cost_per_row: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let ranges: Vec<Range<usize>> = row_chunks(rows).collect();
    let mut slots: Vec<Option<T>> = ranges.iter().map(|_| None).collect();
    let threads = effective_threads(rows, cost_per_row);
    if threads <= 1 {
        for (slot, range) in slots.iter_mut().zip(ranges) {
            *slot = Some(f(range));
        }
    } else {
        let mut groups: Vec<Vec<(&mut Option<T>, Range<usize>)>> =
            (0..threads).map(|_| Vec::new()).collect();
        for (c, (slot, range)) in slots.iter_mut().zip(ranges).enumerate() {
            groups[c % threads].push((slot, range));
        }
        run_groups(groups, &|(slot, range)| *slot = Some(f(range)));
    }
    slots.into_iter().map(|s| s.expect("every chunk visited")).collect()
}

fn effective_threads(rows: usize, cost_per_row: usize) -> usize {
    if !should_par(rows, cost_per_row) {
        if retia_obs::kernel_timing_enabled() {
            retia_obs::metrics::inc("parallel.dispatch.seq");
        }
        return 1;
    }
    // No point spawning more workers than there are chunks.
    let threads = num_threads().min(rows.div_ceil(CHUNK_ROWS)).max(1);
    if retia_obs::kernel_timing_enabled() {
        retia_obs::metrics::inc(if threads > 1 {
            "parallel.dispatch.par"
        } else {
            "parallel.dispatch.seq"
        });
    }
    threads
}

/// Executes each group of work items on its own scoped thread; the calling
/// thread takes group 0 instead of idling in `scope`'s join.
fn run_groups<I: Send, F: Fn(I) + Sync>(groups: Vec<Vec<I>>, f: &F) {
    std::thread::scope(|s| {
        let mut iter = groups.into_iter();
        let own = iter.next();
        for group in iter {
            if !group.is_empty() {
                s.spawn(move || {
                    for item in group {
                        f(item);
                    }
                });
            }
        }
        if let Some(group) = own {
            for item in group {
                f(item);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// The thread-count override and `RETIA_NUM_THREADS` are process
    /// globals; tests mutating them serialize on this lock and restore the
    /// override on drop (even across a panic).
    struct ThreadGuard(#[allow(dead_code)] MutexGuard<'static, ()>);
    impl ThreadGuard {
        fn lock() -> Self {
            static LOCK: Mutex<()> = Mutex::new(());
            Self(LOCK.lock().unwrap_or_else(|e| e.into_inner()))
        }
    }
    impl Drop for ThreadGuard {
        fn drop(&mut self) {
            set_num_threads(0);
        }
    }

    #[test]
    fn row_chunks_partition_rows() {
        for rows in [0usize, 1, 15, 16, 17, 160, 161] {
            let ranges: Vec<_> = row_chunks(rows).collect();
            let total: usize = ranges.iter().map(|r| r.len()).sum();
            assert_eq!(total, rows, "rows {rows}");
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            if let Some(last) = ranges.last() {
                assert_eq!(last.end, rows);
            }
        }
    }

    #[test]
    fn chunk_plan_ignores_thread_count() {
        let _guard = ThreadGuard::lock();
        // The partials vector must be identical (values *and* order) at any
        // thread count — this is the determinism contract itself.
        let run = |threads: usize| -> Vec<f64> {
            set_num_threads(threads);
            map_row_chunks(1000, 1 << 12, |r| r.map(|i| (i as f64).sqrt()).sum())
        };
        let one = run(1);
        for threads in [2usize, 3, 8, 64] {
            let many = run(threads);
            assert_eq!(one.len(), many.len());
            for (a, b) in one.iter().zip(many.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn for_each_row_chunk_writes_every_row() {
        let _guard = ThreadGuard::lock();
        for threads in [1usize, 4] {
            set_num_threads(threads);
            let (rows, width) = (100usize, 7usize);
            let mut out = vec![0.0f32; rows * width];
            for_each_row_chunk(&mut out, width, 1 << 12, |first_row, chunk| {
                for (d, row) in chunk.chunks_mut(width).enumerate() {
                    for (j, x) in row.iter_mut().enumerate() {
                        *x = ((first_row + d) * width + j) as f32;
                    }
                }
            });
            for (i, &x) in out.iter().enumerate() {
                assert_eq!(x, i as f32);
            }
        }
    }

    #[test]
    fn small_work_stays_sequential() {
        assert!(!should_par(8, 1_000_000), "few rows: not worth chunk-parallelism");
        assert!(!should_par(1_000_000, 0), "zero-cost rows: not worth spawning");
        assert!(should_par(1_000, 1_000));
    }

    #[test]
    fn env_and_override_resolution() {
        let _guard = ThreadGuard::lock();
        set_num_threads(3);
        assert_eq!(num_threads(), 3);
        set_num_threads(0);
        std::env::set_var("RETIA_NUM_THREADS", "5");
        assert_eq!(num_threads(), 5);
        std::env::set_var("RETIA_NUM_THREADS", "not-a-number");
        assert!(num_threads() >= 1);
        std::env::remove_var("RETIA_NUM_THREADS");
        assert!(num_threads() >= 1);
    }
}
