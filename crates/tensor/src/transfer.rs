//! Value-domain transfer functions for the abstract interpreter.
//!
//! Each autodiff op (see `Op::transfer_key` in `autodiff.rs`) has a
//! transfer function here that maps abstract inputs — an [`Interval`]
//! `[lo, hi]` in f64 plus may-be-NaN / may-be-inf flags — to an abstract
//! output that *contains* every value the concrete f32 kernel can produce.
//! `retia-analyze` replays the model step over this domain to prove
//! finiteness before the kernels are vectorized (see DESIGN.md §8).
//!
//! The file also owns the **reduction-order sensitivity map**
//! ([`REDUCTION_SITES`]): for every kernel loop that accumulates, whether
//! reordering it preserves bit-identity. `retia-lint` diffs the rendered
//! map against `scripts/reduction-order.txt` so any new reduction site (or
//! reclassification) shows up in review.
//!
//! Soundness conventions:
//! - Bounds are tracked in f64 and padded by a small relative slack
//!   ([`Interval::widened`]) so f32 rounding in the concrete kernels cannot
//!   escape the abstract interval.
//! - Any bound whose magnitude exceeds `f32::MAX` sets the may-be-inf flag:
//!   the concrete kernel would have overflowed to `±inf` even though the
//!   f64 bound is still representable.
//! - Saturating ops (`sigmoid`, `tanh`) absorb infinite inputs — the shipped
//!   kernels compute them via guarded exponentials that return a value in
//!   the closed output range for every non-NaN input.

/// `ln(f32::MAX)`: `exp(x)` overflows f32 above this input.
pub const F32_EXP_OVERFLOW: f64 = 88.722_839;

/// `sqrt(f32::MAX)`: squaring overflows f32 above this magnitude (layer
/// norm and L2 norms square their inputs in f32).
pub const F32_SQUARE_OVERFLOW: f64 = 1.844_674_3e19;

const F32_MAX: f64 = 3.402_823_466_385_288_6e38;

/// Abstract value: a closed interval plus non-finiteness flags.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    /// Lower bound (inclusive, in f64).
    pub lo: f64,
    /// Upper bound (inclusive, in f64).
    pub hi: f64,
    /// Some concrete element may be NaN.
    pub nan: bool,
    /// Some concrete element may be `±inf`.
    pub inf: bool,
}

/// Converts a count to f64 without a bare `as` cast (counts above `u32`
/// range saturate to infinity, which is sound for upper bounds).
fn count_f64(n: usize) -> f64 {
    u32::try_from(n).map(f64::from).unwrap_or(f64::INFINITY)
}

impl Interval {
    /// A finite interval (bounds are sorted; f32 overflow sets the inf flag).
    pub fn new(a: f64, b: f64) -> Self {
        Interval { lo: a.min(b), hi: a.max(b), nan: false, inf: false }.normalized()
    }

    /// The single value `v`.
    pub fn point(v: f64) -> Self {
        Interval::new(v, v)
    }

    /// The unbounded domain: any value including NaN and `±inf`.
    pub fn top() -> Self {
        Interval { lo: f64::NEG_INFINITY, hi: f64::INFINITY, nan: true, inf: true }
    }

    /// Sorts bounds and raises the inf flag when a bound escapes f32 range.
    fn normalized(mut self) -> Self {
        if self.lo > self.hi {
            std::mem::swap(&mut self.lo, &mut self.hi);
        }
        if self.lo.is_nan() || self.hi.is_nan() {
            // A NaN bound means the arithmetic itself was undefined.
            return Interval::top();
        }
        if self.hi > F32_MAX || self.lo < -F32_MAX {
            self.inf = true;
        }
        self
    }

    /// Pads bounds with relative slack so f32 rounding in concrete kernels
    /// stays inside the abstract interval. Padding never crosses zero: f32
    /// rounding preserves sign, so an exact zero bound (softmax/relu/exp
    /// lower bounds) stays exact — crossing it would trip pole rules
    /// downstream (`ln(0 + eps)`).
    fn widened(mut self) -> Self {
        let pad = |v: f64| v.abs() * 1e-4 + 1e-6;
        self.lo =
            if self.lo >= 0.0 { (self.lo - pad(self.lo)).max(0.0) } else { self.lo - pad(self.lo) };
        self.hi =
            if self.hi <= 0.0 { (self.hi + pad(self.hi)).min(0.0) } else { self.hi + pad(self.hi) };
        self.normalized()
    }

    /// Whether every admitted value is a finite f32.
    pub fn is_finite(&self) -> bool {
        !self.nan && !self.inf && self.lo.is_finite() && self.hi.is_finite()
    }

    /// The smallest interval containing both operands.
    pub fn hull(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            nan: self.nan || other.nan,
            inf: self.inf || other.inf,
        }
        .normalized()
    }

    /// Soundness check used by the property tests: does the abstract value
    /// admit this concrete f32?
    pub fn contains(&self, v: f32) -> bool {
        if v.is_nan() {
            return self.nan;
        }
        if v.is_infinite() {
            return self.inf;
        }
        let v = f64::from(v);
        v >= self.lo && v <= self.hi
    }

    fn flags_from(a: Interval, b: Interval) -> (bool, bool) {
        (a.nan || b.nan, a.inf || b.inf)
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:.3e}, {:.3e}]", self.lo, self.hi)?;
        if self.nan {
            write!(f, " may-be-NaN")?;
        }
        if self.inf {
            write!(f, " may-be-inf")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Elementwise arithmetic
// ---------------------------------------------------------------------------

/// `a + b` elementwise (also `add_bias`; `inf + -inf` admits NaN).
pub fn add(a: Interval, b: Interval) -> Interval {
    let (nan, inf) = Interval::flags_from(a, b);
    let nan = nan || (a.inf && b.inf);
    Interval { lo: a.lo + b.lo, hi: a.hi + b.hi, nan, inf }.widened()
}

/// `a - b` elementwise.
pub fn sub(a: Interval, b: Interval) -> Interval {
    let (nan, inf) = Interval::flags_from(a, b);
    let nan = nan || (a.inf && b.inf);
    Interval { lo: a.lo - b.hi, hi: a.hi - b.lo, nan, inf }.widened()
}

/// `a * b` elementwise (also `mul_bias`, `mul_col`, `row_scale`;
/// `inf * 0` admits NaN).
pub fn mul(a: Interval, b: Interval) -> Interval {
    let (nan, inf) = Interval::flags_from(a, b);
    let spans_zero = |x: Interval| x.lo <= 0.0 && x.hi >= 0.0;
    let nan = nan || (a.inf && spans_zero(b)) || (b.inf && spans_zero(a));
    let ps = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi];
    let lo = ps.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = ps.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Interval { lo, hi, nan, inf }.widened()
}

/// `a * c` with a compile-time-known scalar.
pub fn scale(a: Interval, c: f64) -> Interval {
    mul(a, Interval::point(c))
}

/// `a + c` with a compile-time-known scalar.
pub fn add_scalar(a: Interval, c: f64) -> Interval {
    add(a, Interval::point(c))
}

/// `a / b` elementwise. Pole rule: a denominator interval spanning zero
/// admits `±inf` (`x/0`), and NaN too when the numerator also spans zero
/// (`0/0`).
pub fn div(a: Interval, b: Interval) -> Interval {
    let (mut nan, mut inf) = Interval::flags_from(a, b);
    if b.lo <= 0.0 && b.hi >= 0.0 {
        inf = true;
        if a.lo <= 0.0 && a.hi >= 0.0 {
            nan = true;
        }
        // Quotients are unbounded near the pole.
        return Interval { lo: f64::NEG_INFINITY, hi: f64::INFINITY, nan, inf };
    }
    let qs = [a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi];
    let lo = qs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = qs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Interval { lo, hi, nan, inf }.widened()
}

// ---------------------------------------------------------------------------
// Accumulating ops (matmul / conv / sums)
// ---------------------------------------------------------------------------

/// A `k`-term accumulated product: each output element of `matmul` /
/// `matmul_nt` / `conv1d` is a sum of `k` products of one element from each
/// operand.
pub fn dot(a: Interval, b: Interval, k: usize) -> Interval {
    let p = mul(a, b);
    let k = count_f64(k);
    Interval { lo: k * p.lo.min(0.0), hi: k * p.hi.max(0.0), nan: p.nan, inf: p.inf }.widened()
}

/// A sum of `n` elements each drawn from `a` (`sum_rows`, `sum_all`).
pub fn sum(a: Interval, n: usize) -> Interval {
    let n = count_f64(n);
    Interval { lo: n * a.lo.min(0.0), hi: n * a.hi.max(0.0), nan: a.nan, inf: a.inf }.widened()
}

/// The mean of elements drawn from `a` stays inside `a`.
pub fn mean(a: Interval) -> Interval {
    a.widened()
}

/// Elementwise sum of `n` same-shape tensors.
pub fn add_n(parts: &[Interval]) -> Interval {
    let mut lo = 0.0;
    let mut hi = 0.0;
    let mut nan = false;
    let mut inf = false;
    for p in parts {
        lo += p.lo;
        hi += p.hi;
        nan |= p.nan;
        inf |= p.inf;
    }
    Interval { lo, hi, nan, inf }.widened()
}

/// Scatter-add of up to `max_terms` rows into a zeroed output: untouched
/// elements stay 0, collisions accumulate.
pub fn scatter_add(a: Interval, max_terms: usize) -> Interval {
    sum(a, max_terms).hull(Interval::point(0.0))
}

// ---------------------------------------------------------------------------
// Nonlinearities
// ---------------------------------------------------------------------------

/// Logistic sigmoid: monotone into `[0, 1]`. Saturating — the kernel
/// computes `1 / (1 + exp(-v))`, which is finite for every non-NaN input
/// (the transient `exp` overflow divides away), so only NaN propagates.
pub fn sigmoid(x: Interval) -> Interval {
    let s = |v: f64| 1.0 / (1.0 + (-v).exp());
    Interval { lo: s(x.lo).max(0.0), hi: s(x.hi).min(1.0), nan: x.nan, inf: false }.widened()
}

/// Hyperbolic tangent: monotone into `[-1, 1]`, saturating like [`sigmoid`].
pub fn tanh(x: Interval) -> Interval {
    Interval { lo: x.lo.tanh().max(-1.0), hi: x.hi.tanh().min(1.0), nan: x.nan, inf: false }
        .widened()
}

/// `max(x, 0)` (propagates `+inf`).
pub fn relu(x: Interval) -> Interval {
    Interval { lo: x.lo.max(0.0), hi: x.hi.max(0.0), nan: x.nan, inf: x.inf }.widened()
}

/// Leaky/randomized ReLU with negative slope in `[0, 1]`.
pub fn rrelu(x: Interval) -> Interval {
    Interval { lo: x.lo.min(0.0), hi: x.hi.max(0.0), nan: x.nan, inf: x.inf }
        .hull(relu(x))
        .widened()
}

/// `|x|`.
pub fn abs(x: Interval) -> Interval {
    let lo = if x.lo <= 0.0 && x.hi >= 0.0 { 0.0 } else { x.lo.abs().min(x.hi.abs()) };
    Interval { lo, hi: x.lo.abs().max(x.hi.abs()), nan: x.nan, inf: x.inf }.widened()
}

/// `sin`/`cos` land in `[-1, 1]` but are NaN at `±inf`.
pub fn sin_cos(x: Interval) -> Interval {
    Interval { lo: -1.0, hi: 1.0, nan: x.nan || x.inf, inf: false }.widened()
}

/// `exp(x)`. Overflow rule: any input above [`F32_EXP_OVERFLOW`] admits
/// `+inf` in f32 — this is the unguarded-exponential finding the audit
/// exists to catch.
pub fn exp(x: Interval) -> Interval {
    let inf = x.inf || x.hi > F32_EXP_OVERFLOW;
    Interval { lo: x.lo.exp().max(0.0), hi: x.hi.exp(), nan: x.nan, inf }.widened()
}

/// `ln(x + eps)`. Pole rule: a shifted input that can reach zero admits
/// `-inf`, and one that can go negative admits NaN.
pub fn ln(x: Interval, eps: f64) -> Interval {
    let slo = x.lo + eps;
    let shi = x.hi + eps;
    let mut nan = x.nan;
    let mut inf = x.inf;
    if slo < 0.0 {
        nan = true;
    }
    if slo <= 0.0 {
        inf = true;
    }
    let lo = if slo > 0.0 { slo.ln() } else { f64::NEG_INFINITY };
    let hi = if shi > 0.0 { shi.ln() } else { f64::NEG_INFINITY };
    Interval { lo, hi, nan, inf }.widened()
}

/// Row-wise softmax. The kernel subtracts the row max before
/// exponentiating, so any finite input maps into `[0, 1]`; an infinite
/// input admits NaN (`inf - inf` inside the stabilization).
pub fn softmax(x: Interval) -> Interval {
    Interval { lo: 0.0, hi: 1.0, nan: x.nan || x.inf, inf: false }.widened()
}

/// Fused softmax + cross-entropy: `-ln(p + 1e-12)` with `p` in `[0, 1]`.
pub fn softmax_xent(x: Interval) -> Interval {
    let hi = -(1e-12f64.ln());
    Interval { lo: 0.0, hi, nan: x.nan || x.inf, inf: false }.widened()
}

/// Inverted dropout: elements are zeroed or scaled by `1/(1-rate)`.
pub fn dropout(x: Interval, rate: f64) -> Interval {
    let keep = (1.0 - rate).max(f64::MIN_POSITIVE);
    scale(x, 1.0 / keep).hull(Interval::point(0.0)).widened()
}

/// Row-wise L2 normalization: unit rows, with sub-`eps` rows passed through
/// unscaled (those elements are below `eps <= 1` in magnitude), so the
/// output is inside `[-1, 1]` clamped to the input's sign. Squaring the
/// input can overflow f32 above [`F32_SQUARE_OVERFLOW`].
pub fn normalize_rows(x: Interval) -> Interval {
    let lo = if x.lo >= 0.0 { 0.0 } else { -1.0 };
    let hi = if x.hi <= 0.0 { 0.0 } else { 1.0 };
    let overflow = x.lo.abs().max(x.hi.abs()) > F32_SQUARE_OVERFLOW;
    Interval { lo, hi, nan: x.nan || x.inf || overflow, inf: false }.widened()
}

/// Row-wise layer normalization over `cols` columns: standardized values
/// are bounded by `sqrt(cols)`. Squaring can overflow f32 above
/// [`F32_SQUARE_OVERFLOW`].
pub fn layer_norm(x: Interval, cols: usize) -> Interval {
    let b = count_f64(cols).sqrt();
    let overflow = x.lo.abs().max(x.hi.abs()) > F32_SQUARE_OVERFLOW;
    Interval { lo: -b, hi: b, nan: x.nan || x.inf || overflow, inf: false }.widened()
}

// ---------------------------------------------------------------------------
// Reduction-order sensitivity map
// ---------------------------------------------------------------------------

/// Whether reordering a kernel loop preserves bit-identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReductionOrder {
    /// Iterations are independent (no shared fp accumulator): shard or
    /// vectorize freely, results stay bit-identical.
    Invariant,
    /// Iterations fold into a shared fp accumulator: reordering changes
    /// rounding and breaks the bit-identity tests.
    Sensitive,
}

impl ReductionOrder {
    /// The lowercase label used in the rendered reduction-order map.
    pub fn as_str(self) -> &'static str {
        match self {
            ReductionOrder::Invariant => "invariant",
            ReductionOrder::Sensitive => "sensitive",
        }
    }
}

/// One loop inside a kernel that the SIMD/shard work might reorder.
#[derive(Clone, Copy, Debug)]
pub struct ReductionSite {
    /// The op's transfer key (`Op::transfer_key`).
    pub op: &'static str,
    /// Which loop inside the kernel.
    pub site: &'static str,
    /// Whether reordering this loop preserves bit-identity.
    pub order: ReductionOrder,
    /// Why — one line, rendered into the checked-in map.
    pub note: &'static str,
}

/// Every reduction site in the kernel set, the machine-checked list of
/// which loops may be reordered. `retia-lint` diffs the rendered map
/// against `scripts/reduction-order.txt`.
pub const REDUCTION_SITES: &[ReductionSite] = &[
    ReductionSite {
        op: "matmul",
        site: "output-lanes",
        order: ReductionOrder::Invariant,
        note: "each output element is an independent dot product",
    },
    ReductionSite {
        op: "matmul",
        site: "inner-accumulation",
        order: ReductionOrder::Sensitive,
        note: "sequential fp sum over the shared k dimension",
    },
    ReductionSite {
        op: "matmul_nt",
        site: "output-lanes",
        order: ReductionOrder::Invariant,
        note: "column shards concatenate bit-identically (decode sharding)",
    },
    ReductionSite {
        op: "matmul_nt",
        site: "inner-accumulation",
        order: ReductionOrder::Sensitive,
        note: "sequential fp sum over the shared k dimension",
    },
    ReductionSite {
        op: "conv1d",
        site: "output-lanes",
        order: ReductionOrder::Invariant,
        note: "each (row, channel, position) output is independent",
    },
    ReductionSite {
        op: "conv1d",
        site: "kernel-accumulation",
        order: ReductionOrder::Sensitive,
        note: "sequential fp sum over in_ch * ksize taps",
    },
    ReductionSite {
        op: "sum_rows",
        site: "row-accumulation",
        order: ReductionOrder::Sensitive,
        note: "sequential fp sum across each row",
    },
    ReductionSite {
        op: "sum_all",
        site: "global-accumulation",
        order: ReductionOrder::Sensitive,
        note: "single fp accumulator over every element",
    },
    ReductionSite {
        op: "mean_all",
        site: "global-accumulation",
        order: ReductionOrder::Sensitive,
        note: "single fp accumulator over every element",
    },
    ReductionSite {
        op: "add_n",
        site: "operand-order",
        order: ReductionOrder::Sensitive,
        note: "operands fold left-to-right into one fp accumulator",
    },
    ReductionSite {
        op: "scatter_add_rows",
        site: "index-accumulation",
        order: ReductionOrder::Sensitive,
        note: "colliding rows add in index order",
    },
    ReductionSite {
        op: "softmax_rows",
        site: "row-max",
        order: ReductionOrder::Invariant,
        note: "max is associative and commutative over floats without NaN",
    },
    ReductionSite {
        op: "softmax_rows",
        site: "row-sum",
        order: ReductionOrder::Sensitive,
        note: "normalizer is a sequential fp sum across the row",
    },
    ReductionSite {
        op: "softmax_xent",
        site: "row-sum",
        order: ReductionOrder::Sensitive,
        note: "normalizer is a sequential fp sum across the row",
    },
    ReductionSite {
        op: "layer_norm_rows",
        site: "moment-accumulation",
        order: ReductionOrder::Sensitive,
        note: "mean/variance are sequential fp sums across the row",
    },
    ReductionSite {
        op: "normalize_rows",
        site: "norm-accumulation",
        order: ReductionOrder::Sensitive,
        note: "squared-norm is a sequential fp sum across the row",
    },
];

/// Looks up a reduction site by op key and loop name.
pub fn reduction_site(op: &str, site: &str) -> Option<&'static ReductionSite> {
    REDUCTION_SITES.iter().find(|s| s.op == op && s.site == site)
}

/// Renders the sensitivity map in the checked-in format of
/// `scripts/reduction-order.txt`.
pub fn render_reduction_map() -> String {
    let mut out = String::from(
        "# Reduction-order sensitivity map — generated from\n\
         # retia_tensor::transfer::REDUCTION_SITES by\n\
         # `cargo run -p retia-analyze --bin retia-lint -- --write-reduction-map`.\n\
         # Do not edit by hand; retia-lint fails on any drift.\n",
    );
    for s in REDUCTION_SITES {
        out.push_str(&format!("{} {} {}  # {}\n", s.op, s.site, s.order.as_str(), s.note));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_basics() {
        let i = Interval::new(3.0, -1.0);
        assert_eq!((i.lo, i.hi), (-1.0, 3.0));
        assert!(i.is_finite());
        assert!(i.contains(0.0));
        assert!(!i.contains(4.0));
        assert!(!i.contains(f32::NAN));
        assert!(Interval::top().contains(f32::NAN));
        assert!(Interval::top().contains(f32::INFINITY));
    }

    #[test]
    fn f32_overflow_sets_inf_flag() {
        let big = Interval::point(1e39);
        assert!(big.inf);
        let product = mul(Interval::point(1e20), Interval::point(1e20));
        assert!(product.inf);
    }

    #[test]
    fn exp_overflow_rule() {
        assert!(exp(Interval::new(0.0, 100.0)).inf);
        assert!(!exp(Interval::new(-10.0, 10.0)).inf);
        assert!(exp(Interval::new(-1000.0, 0.0)).is_finite());
    }

    #[test]
    fn ln_pole_rule() {
        let pole = ln(Interval::new(0.0, 1.0), 0.0);
        assert!(pole.inf && !pole.nan);
        let neg = ln(Interval::new(-1.0, 1.0), 1e-9);
        assert!(neg.nan && neg.inf);
        let safe = ln(Interval::new(0.0, 1.0), 1e-9);
        assert!(safe.is_finite());
    }

    #[test]
    fn div_pole_rule() {
        let pole = div(Interval::new(1.0, 2.0), Interval::new(-1.0, 1.0));
        assert!(pole.inf && !pole.nan);
        let zero_over_zero = div(Interval::new(-1.0, 1.0), Interval::new(-1.0, 1.0));
        assert!(zero_over_zero.nan && zero_over_zero.inf);
        let safe = div(Interval::new(-4.0, 4.0), Interval::new(2.0, 8.0));
        assert!(safe.is_finite());
        assert!(safe.contains(-2.0) && safe.contains(2.0));
    }

    #[test]
    fn saturating_ops_absorb_inf() {
        let mut x = Interval::new(-1e6, 1e6);
        x.inf = true;
        assert!(sigmoid(x).is_finite());
        assert!(tanh(x).is_finite());
        // Softmax's stabilization subtracts a possibly-infinite max.
        assert!(softmax(x).nan);
    }

    #[test]
    fn reduction_map_lookup_and_render() {
        assert_eq!(
            reduction_site("matmul_nt", "output-lanes").unwrap().order,
            ReductionOrder::Invariant
        );
        assert_eq!(
            reduction_site("softmax_rows", "row-sum").unwrap().order,
            ReductionOrder::Sensitive
        );
        assert!(reduction_site("sigmoid", "anything").is_none());
        let map = render_reduction_map();
        assert!(map.contains("matmul inner-accumulation sensitive"));
        assert!(map.lines().count() > REDUCTION_SITES.len());
        // Site keys are unique.
        let mut keys: Vec<_> = REDUCTION_SITES.iter().map(|s| (s.op, s.site)).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), REDUCTION_SITES.len());
    }
}
