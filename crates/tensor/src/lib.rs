#![warn(missing_docs)]

//! # retia-tensor
//!
//! The deep-learning substrate of the RETIA reproduction: a dense, row-major
//! `f32` matrix type ([`Tensor`]), a reverse-mode automatic-differentiation
//! engine ([`Graph`]), a named parameter store ([`ParamStore`]) and
//! first-order optimizers ([`optim::Adam`], [`optim::Sgd`]).
//!
//! The original paper trains on PyTorch/CUDA; no comparable Rust stack is
//! available offline, so this crate reimplements exactly the operator set the
//! RETIA model and its baselines require:
//!
//! * dense matmul (plain / transposed-right / transposed-left),
//! * elementwise arithmetic, activations (sigmoid, tanh, ReLU, leaky ReLU,
//!   randomized leaky ReLU matching PyTorch `RReLU` semantics),
//! * gather / scatter-add row ops (the kernel of R-GCN message passing),
//! * row softmax, log, reductions, row L2-normalization, layer norm,
//! * 1-D convolution with channels (the kernel of Conv-TransE decoders),
//! * dropout and softmax cross-entropy.
//!
//! Every op's gradient is validated against central finite differences in the
//! test suite (see `autodiff::tests` and `tests/gradcheck.rs`).
//!
//! ## Example
//!
//! ```
//! use retia_tensor::{Graph, ParamStore, Tensor, optim::Adam};
//!
//! let mut store = ParamStore::new(7);
//! store.register("w", Tensor::from_vec(2, 1, vec![0.5, -0.5]));
//! let x = Tensor::from_vec(4, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 2.0, -1.0]);
//! let y = Tensor::from_vec(4, 1, vec![1.0, 2.0, 3.0, 0.0]); // y = x @ [1, 2]^T
//!
//! let mut adam = Adam::new(0.1);
//! for _ in 0..200 {
//!     let mut g = Graph::new(true, 0);
//!     let w = g.param(&store, "w");
//!     let xs = g.constant(x.clone());
//!     let ys = g.constant(y.clone());
//!     let pred = g.matmul(xs, w);
//!     let diff = g.sub(pred, ys);
//!     let sq = g.mul(diff, diff);
//!     let loss = g.mean_all(sq);
//!     g.backward(loss, &mut store);
//!     adam.step(&mut store);
//!     store.zero_grad();
//! }
//! let w = store.value("w");
//! assert!((w.get(0, 0) - 1.0).abs() < 0.05);
//! assert!((w.get(1, 0) - 2.0).abs() < 0.05);
//! ```

mod autodiff;
pub mod init;
pub mod optim;
pub mod parallel;
mod param;
pub mod serialize;
mod tensor;
pub mod transfer;

pub use autodiff::{Graph, NodeId};
pub use param::{ParamId, ParamStore};
pub use serialize::CheckpointError;
pub use tensor::Tensor;

/// Mean negative-slope used by the randomized leaky ReLU in evaluation mode,
/// matching PyTorch's `RReLU(1/8, 1/3)` (the activation RETIA uses).
pub const RRELU_EVAL_SLOPE: f32 = (1.0 / 8.0 + 1.0 / 3.0) / 2.0;
