//! First-order optimizers operating on a [`ParamStore`].

use crate::param::ParamStore;

/// Adam optimizer (Kingma & Ba, 2015) — the optimizer the RETIA paper uses
/// (`lr = 0.001` for both general and online continual training).
#[derive(Clone, Debug)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical stabilizer.
    pub eps: f32,
    /// Decoupled weight decay (AdamW-style); 0 disables.
    pub weight_decay: f32,
    t: u64,
}

impl Adam {
    /// Adam with the standard `(0.9, 0.999, 1e-8)` hyperparameters.
    pub fn new(lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0, t: 0 }
    }

    /// Sets decoupled weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Restores the step counter (bias-correction schedule) from a
    /// checkpoint so a resumed run continues the exact update sequence.
    pub fn set_steps(&mut self, t: u64) {
        self.t = t;
    }

    /// Applies one update using the gradients currently accumulated in the
    /// store. Does not zero the gradients.
    pub fn step(&mut self, store: &mut ParamStore) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for p in store.params_mut() {
            let n = p.value.len();
            for i in 0..n {
                let g = p.grad.data()[i];
                let m = self.beta1 * p.m.data()[i] + (1.0 - self.beta1) * g;
                let v = self.beta2 * p.v.data()[i] + (1.0 - self.beta2) * g * g;
                p.m.data_mut()[i] = m;
                p.v.data_mut()[i] = v;
                let m_hat = m / bc1;
                let v_hat = v / bc2;
                let mut val = p.value.data()[i];
                if self.weight_decay > 0.0 {
                    val -= self.lr * self.weight_decay * val;
                }
                val -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
                p.value.data_mut()[i] = val;
            }
        }
    }
}

/// Plain SGD with optional momentum; used by ablation benches to isolate the
/// optimizer's contribution.
#[derive(Clone, Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 = vanilla SGD).
    pub momentum: f32,
}

impl Sgd {
    /// Vanilla SGD.
    pub fn new(lr: f32) -> Self {
        Sgd { lr, momentum: 0.0 }
    }

    /// SGD with classical momentum, reusing the store's `m` buffers.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd { lr, momentum }
    }

    /// Applies one update. Does not zero the gradients.
    pub fn step(&mut self, store: &mut ParamStore) {
        for p in store.params_mut() {
            let n = p.value.len();
            for i in 0..n {
                let g = p.grad.data()[i];
                let update = if self.momentum > 0.0 {
                    let m = self.momentum * p.m.data()[i] + g;
                    p.m.data_mut()[i] = m;
                    m
                } else {
                    g
                };
                p.value.data_mut()[i] -= self.lr * update;
            }
        }
    }
}

/// Rescales all gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm. This is the standard recurrent-network
/// stabilizer (RETIA's reference implementation clips at 1.0).
pub fn clip_grad_norm(store: &mut ParamStore, max_norm: f32) -> f32 {
    let norm = store.grad_norm();
    if norm > max_norm && norm > 0.0 {
        store.scale_grads(max_norm / norm);
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Graph, Tensor};

    fn quadratic_loss(store: &mut ParamStore) -> f32 {
        // loss = sum((w - 3)^2)
        let mut g = Graph::new(false, 0);
        let w = g.param(store, "w");
        let t = g.add_scalar(w, -3.0);
        let sq = g.mul(t, t);
        let loss = g.sum_all(sq);
        let v = g.value(loss).item();
        g.backward(loss, store);
        v
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut store = ParamStore::new(0);
        store.register("w", Tensor::from_vec(1, 3, vec![10.0, -5.0, 0.0]));
        let mut adam = Adam::new(0.3);
        let mut last = f32::INFINITY;
        for _ in 0..300 {
            last = quadratic_loss(&mut store);
            adam.step(&mut store);
            store.zero_grad();
        }
        assert!(last < 1e-3, "loss {last}");
        for &w in store.value("w").data() {
            assert!((w - 3.0).abs() < 0.05);
        }
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut store = ParamStore::new(0);
        store.register("w", Tensor::from_vec(1, 2, vec![8.0, -2.0]));
        let mut sgd = Sgd::with_momentum(0.05, 0.5);
        for _ in 0..200 {
            quadratic_loss(&mut store);
            sgd.step(&mut store);
            store.zero_grad();
        }
        for &w in store.value("w").data() {
            assert!((w - 3.0).abs() < 0.05);
        }
    }

    #[test]
    fn clip_grad_norm_rescales() {
        let mut store = ParamStore::new(0);
        let id = store.register("w", Tensor::zeros(1, 2));
        store.accumulate_grad(id, &Tensor::from_vec(1, 2, vec![3.0, 4.0]));
        let pre = clip_grad_norm(&mut store, 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((store.grad_norm() - 1.0).abs() < 1e-5);
        // Clipping below the threshold is a no-op.
        let pre2 = clip_grad_norm(&mut store, 10.0);
        assert!((pre2 - 1.0).abs() < 1e-5);
        assert!((store.grad_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut store = ParamStore::new(0);
        store.register("w", Tensor::from_vec(1, 1, vec![1.0]));
        // Zero gradient, pure decay.
        let mut adam = Adam::new(0.1).with_weight_decay(0.5);
        adam.step(&mut store);
        let w = store.value("w").item();
        assert!(w < 1.0 && w > 0.9, "w {w}");
    }
}
