//! Dense, row-major `f32` matrix.
//!
//! Everything in the RETIA stack is rank-2: embedding tables are
//! `[num_items, dim]`, batches of queries are `[batch, dim]`, scalars are
//! `[1, 1]`. Convolutional activations are stored channels-major inside the
//! row (`[batch, channels * width]`); the convolution op carries the channel
//! count out-of-band.

/// A dense `rows x cols` matrix of `f32` in row-major order.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// A `rows x cols` tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// A `rows x cols` tensor filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// A `rows x cols` tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor { rows, cols, data: vec![value; rows * cols] }
    }

    /// Builds a tensor from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Tensor { rows, cols, data }
    }

    /// Builds a tensor by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Tensor { rows, cols, data }
    }

    /// The identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        Self::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 })
    }

    /// A `1 x 1` tensor holding `value`.
    pub fn scalar(value: f32) -> Self {
        Tensor { rows: 1, cols: 1, data: vec![value] }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Sets the element at `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f32) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = value;
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        let c = self.cols;
        &self.data[i * c..(i + 1) * c]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        let c = self.cols;
        &mut self.data[i * c..(i + 1) * c]
    }

    /// The value of a `1 x 1` tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not `1 x 1`.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() requires a 1x1 tensor");
        self.data[0]
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise addition. Shapes must match.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise subtraction. Shapes must match.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product. Shapes must match.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Elementwise combination with `f`. Shapes must match.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in elementwise op");
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// `self += other`. Shapes must match.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in add_assign");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// `self += scale * other`. Shapes must match.
    pub fn add_scaled_assign(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in add_scaled_assign");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += scale * b;
        }
    }

    /// Multiplies every element by `s`, returning a new tensor.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Sets every element to zero.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Matrix product `self @ other` (`[m,k] @ [k,n] -> [m,n]`).
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul shape mismatch: {:?} @ {:?}",
            self.shape(),
            other.shape()
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let _t = retia_obs::kernel_span("matmul");
        let mut out = vec![0.0f32; m * n];
        // i-k-j loop order keeps the inner loop streaming over contiguous rows
        // of `other` and `out`. Output rows are independent, so row-chunked
        // execution computes each element with the same kk-ascending
        // accumulation as the sequential loop.
        crate::parallel::for_each_row_chunk(&mut out, n, 2 * k * n, |first_row, chunk| {
            for (d, o_row) in chunk.chunks_mut(n).enumerate() {
                let i = first_row + d;
                let a_row = &self.data[i * k..(i + 1) * k];
                for (kk, &a) in a_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let b_row = &other.data[kk * n..(kk + 1) * n];
                    for (o, &b) in o_row.iter_mut().zip(b_row.iter()) {
                        *o += a * b;
                    }
                }
            }
        });
        Tensor { rows: m, cols: n, data: out }
    }

    /// Matrix product with the right operand transposed:
    /// `self @ other^T` (`[m,k] @ [n,k]^T -> [m,n]`).
    ///
    /// This is the decoder-scoring kernel (`query @ embeddings^T`); keeping it
    /// fused avoids materializing large transposed embedding tables.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols,
            other.cols,
            "matmul_nt shape mismatch: {:?} @ {:?}^T",
            self.shape(),
            other.shape()
        );
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let _t = retia_obs::kernel_span("matmul_nt");
        let mut out = vec![0.0f32; m * n];
        // Each output element is an independent dot product; chunking rows
        // changes nothing about its accumulation order.
        crate::parallel::for_each_row_chunk(&mut out, n, 2 * k * n, |first_row, chunk| {
            for (d, o_row) in chunk.chunks_mut(n).enumerate() {
                let i = first_row + d;
                let a_row = &self.data[i * k..(i + 1) * k];
                for (j, o) in o_row.iter_mut().enumerate() {
                    let b_row = &other.data[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                        acc += a * b;
                    }
                    *o = acc;
                }
            }
        });
        Tensor { rows: m, cols: n, data: out }
    }

    /// The row-range slice of [`Tensor::matmul_nt`]:
    /// `self @ other[lo..hi]^T` (`[m,k] @ [hi-lo,k]^T -> [m,hi-lo]`).
    ///
    /// This is the entity-sharded decode kernel: each shard scores its
    /// candidate range with this call and the results are concatenated
    /// column-wise. Every output element is the same independent sequential
    /// dot product `matmul_nt` computes, so the concatenation is bitwise
    /// identical to the unsharded product — asserted by the bit-identity
    /// sweep. Runs sequentially (callers parallelize across shards).
    pub fn matmul_nt_range(&self, other: &Tensor, lo: usize, hi: usize) -> Tensor {
        assert_eq!(
            self.cols,
            other.cols,
            "matmul_nt_range shape mismatch: {:?} @ {:?}^T",
            self.shape(),
            other.shape()
        );
        assert!(lo <= hi && hi <= other.rows, "row range {lo}..{hi} out of 0..{}", other.rows);
        let (m, k, n) = (self.rows, self.cols, hi - lo);
        let _t = retia_obs::kernel_span("matmul_nt_range");
        let mut out = vec![0.0f32; m * n];
        for (i, o_row) in out.chunks_mut(n.max(1)).enumerate().take(m) {
            let a_row = &self.data[i * k..(i + 1) * k];
            for (j, o) in o_row.iter_mut().enumerate() {
                let b_row = &other.data[(lo + j) * k..(lo + j + 1) * k];
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        Tensor { rows: m, cols: n, data: out }
    }

    /// Matrix product with the left operand transposed:
    /// `self^T @ other` (`[k,m]^T @ [k,n] -> [m,n]`).
    ///
    /// This is the weight-gradient kernel (`x^T @ dy`).
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows,
            other.rows,
            "matmul_tn shape mismatch: {:?}^T @ {:?}",
            self.shape(),
            other.shape()
        );
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let _t = retia_obs::kernel_span("matmul_tn");
        let mut out = vec![0.0f32; m * n];
        // Restructured from the kk-outer scatter loop to an output-row loop
        // so rows can be chunked. Per element the accumulation is still
        // kk-ascending with the same `a == 0.0` skip, so every value is
        // bit-identical to the sequential kernel's.
        crate::parallel::for_each_row_chunk(&mut out, n, 2 * k * n, |first_row, chunk| {
            for (d, o_row) in chunk.chunks_mut(n).enumerate() {
                let i = first_row + d;
                for kk in 0..k {
                    let a = self.data[kk * m + i];
                    if a == 0.0 {
                        continue;
                    }
                    let b_row = &other.data[kk * n..(kk + 1) * n];
                    for (o, &b) in o_row.iter_mut().zip(b_row.iter()) {
                        *o += a * b;
                    }
                }
            }
        });
        Tensor { rows: m, cols: n, data: out }
    }

    /// The transpose as a new tensor.
    pub fn transpose(&self) -> Tensor {
        Tensor::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Squared Frobenius norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>()
    }

    /// Index of the maximum element in row `i` (first on ties).
    pub fn argmax_row(&self, i: usize) -> usize {
        let row = self.row(i);
        let mut best = 0usize;
        let mut best_v = f32::NEG_INFINITY;
        for (j, &v) in row.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = j;
            }
        }
        best
    }

    /// Horizontal concatenation `[self | other]`. Row counts must match.
    pub fn concat_cols(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "concat_cols row mismatch");
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for i in 0..self.rows {
            data.extend_from_slice(self.row(i));
            data.extend_from_slice(other.row(i));
        }
        Tensor { rows: self.rows, cols, data }
    }

    /// Vertical concatenation. Column counts must match.
    pub fn concat_rows(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.cols, "concat_rows col mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Tensor { rows: self.rows + other.rows, cols: self.cols, data }
    }

    /// Columns `start..end` as a new tensor.
    pub fn slice_cols(&self, start: usize, end: usize) -> Tensor {
        assert!(start <= end && end <= self.cols, "slice_cols out of range");
        let cols = end - start;
        let mut data = Vec::with_capacity(self.rows * cols);
        for i in 0..self.rows {
            data.extend_from_slice(&self.row(i)[start..end]);
        }
        Tensor { rows: self.rows, cols, data }
    }

    /// Rows selected by `indices` (with repetition allowed), as a new tensor.
    ///
    /// Debug builds check every index up front and name the offending index,
    /// the row count, and the calling module; release builds rely on the raw
    /// slice bounds check.
    pub fn gather_rows(&self, indices: &[u32]) -> Tensor {
        let cols = self.cols;
        #[cfg(debug_assertions)]
        for (pos, &ix) in indices.iter().enumerate() {
            assert!(
                (ix as usize) < self.rows,
                "gather_rows: index {ix} (position {pos} of {}) out of range for {} rows \
                 (called from {})",
                indices.len(),
                self.rows,
                retia_obs::current_module(),
            );
        }
        let _t = retia_obs::kernel_span("gather_rows");
        let mut data = vec![0.0f32; indices.len() * cols];
        // Pure per-row copies; the cost estimate is the row width (a copy,
        // not flops), so only very large gathers spawn threads.
        crate::parallel::for_each_row_chunk(&mut data, cols, cols, |first_row, chunk| {
            for (d, dst) in chunk.chunks_mut(cols).enumerate() {
                dst.copy_from_slice(self.row(indices[first_row + d] as usize));
            }
        });
        Tensor { rows: indices.len(), cols, data }
    }

    /// Scatter-add of rows: `out[indices[i]] += self[i]` into an
    /// `out_rows x cols` zero tensor.
    ///
    /// Debug builds check every destination index up front and name the
    /// offending index, the output row count, and the calling module.
    pub fn scatter_add_rows(&self, indices: &[u32], out_rows: usize) -> Tensor {
        assert_eq!(indices.len(), self.rows, "scatter_add_rows index count mismatch");
        #[cfg(debug_assertions)]
        for (pos, &ix) in indices.iter().enumerate() {
            assert!(
                (ix as usize) < out_rows,
                "scatter_add_rows: destination index {ix} (position {pos} of {}) out of range \
                 for {out_rows} output rows (called from {})",
                indices.len(),
                retia_obs::current_module(),
            );
        }
        let _t = retia_obs::kernel_span("scatter_add_rows");
        let mut out = Tensor::zeros(out_rows, self.cols);
        for (i, &dst) in indices.iter().enumerate() {
            let src = self.row(i);
            let dst_row = out.row_mut(dst as usize);
            for (d, &s) in dst_row.iter_mut().zip(src.iter()) {
                *d += s;
            }
        }
        out
    }

    /// L2-normalizes each row (rows with norm below `eps` are left unscaled).
    pub fn l2_normalize_rows(&self, eps: f32) -> Tensor {
        let mut out = self.clone();
        for i in 0..out.rows {
            let row = out.row_mut(i);
            let n = row.iter().map(|&x| x * x).sum::<f32>().sqrt();
            if n > eps {
                row.iter_mut().for_each(|x| *x /= n);
            }
        }
        out
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&self) -> Tensor {
        let _t = retia_obs::kernel_span("softmax_rows");
        let mut out = self.clone();
        let cols = self.cols;
        // Rows are independent; ~4 passes over each row.
        crate::parallel::for_each_row_chunk(&mut out.data, cols, 4 * cols, |_, chunk| {
            for row in chunk.chunks_mut(cols) {
                Tensor::softmax_row_in_place(row);
            }
        });
        out
    }

    /// True when all elements are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Stabilized softmax of one row, shared by the sequential and
    /// chunked-parallel paths (and by `softmax_xent`'s backward, which must
    /// reproduce the forward probabilities bit-for-bit).
    pub(crate) fn softmax_row_in_place(row: &mut [f32]) {
        softmax_row_in_place(row)
    }

    /// Maximum absolute elementwise difference between two same-shape tensors.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in max_abs_diff");
        self.data.iter().zip(other.data.iter()).map(|(&a, &b)| (a - b).abs()).fold(0.0, f32::max)
    }
}

/// Max-stabilized softmax over one row. A row whose every entry is `-inf`
/// (a fully masked row) becomes a zero row: the naive stabilization would
/// compute `exp(-inf - -inf) = exp(NaN)` and poison downstream sums.
fn softmax_row_in_place(row: &mut [f32]) {
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        row.iter_mut().for_each(|x| *x = 0.0);
        return;
    }
    let mut sum = 0.0f32;
    for x in row.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        row.iter_mut().for_each(|x| *x /= sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.get(0, 2), 3.0);
        assert_eq!(t.get(1, 0), 4.0);
        assert_eq!(t.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_rejects_bad_length() {
        let _ = Tensor::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn zeros_ones_full_eye() {
        assert_eq!(Tensor::zeros(2, 2).sum(), 0.0);
        assert_eq!(Tensor::ones(2, 3).sum(), 6.0);
        assert_eq!(Tensor::full(2, 2, 0.5).sum(), 2.0);
        let e = Tensor::eye(3);
        assert_eq!(e.get(1, 1), 1.0);
        assert_eq!(e.get(0, 1), 0.0);
        assert_eq!(e.sum(), 3.0);
    }

    #[test]
    fn matmul_basic() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let c = a.matmul(&Tensor::eye(2));
        assert_eq!(c, a);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Tensor::from_vec(2, 3, vec![1.0, -2.0, 3.0, 0.5, 5.0, -6.0]);
        let b = Tensor::from_vec(4, 3, vec![1.0; 12]);
        let via_nt = a.matmul_nt(&b);
        let via_t = a.matmul(&b.transpose());
        assert!(via_nt.max_abs_diff(&via_t) < 1e-6);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Tensor::from_vec(3, 2, vec![1.0, -2.0, 3.0, 0.5, 5.0, -6.0]);
        let b = Tensor::from_vec(3, 4, (0..12).map(|x| x as f32).collect());
        let via_tn = a.matmul_tn(&b);
        let via_t = a.transpose().matmul(&b);
        assert!(via_tn.max_abs_diff(&via_t) < 1e-6);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn concat_and_slice() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(2, 1, vec![9.0, 8.0]);
        let c = a.concat_cols(&b);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1.0, 2.0, 9.0]);
        assert_eq!(c.row(1), &[3.0, 4.0, 8.0]);
        let s = c.slice_cols(1, 3);
        assert_eq!(s.row(0), &[2.0, 9.0]);
        let v = a.concat_rows(&a);
        assert_eq!(v.shape(), (4, 2));
        assert_eq!(v.row(3), &[3.0, 4.0]);
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let a = Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g.row(0), &[5.0, 6.0]);
        assert_eq!(g.row(2), &[5.0, 6.0]);
        let s = g.scatter_add_rows(&[2, 0, 2], 3);
        assert_eq!(s.row(0), &[1.0, 2.0]);
        assert_eq!(s.row(1), &[0.0, 0.0]);
        assert_eq!(s.row(2), &[10.0, 12.0]);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let p = t.softmax_rows();
        for i in 0..2 {
            let s: f32 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Softmax is monotone: larger logits, larger probs.
        assert!(p.get(0, 2) > p.get(0, 1));
    }

    #[test]
    fn softmax_handles_large_logits() {
        let t = Tensor::from_vec(1, 2, vec![1000.0, 999.0]);
        let p = t.softmax_rows();
        assert!(p.all_finite());
        assert!(p.get(0, 0) > p.get(0, 1));
    }

    #[test]
    fn softmax_fully_masked_row_is_zero_not_nan() {
        // `-inf` logits are how callers mask candidates; a row with *every*
        // candidate masked used to produce `exp(-inf - -inf) = NaN` across
        // the whole row. The contract is now: fully masked row → zero row.
        let t = Tensor::from_vec(
            2,
            3,
            vec![f32::NEG_INFINITY, f32::NEG_INFINITY, f32::NEG_INFINITY, 1.0, 2.0, 3.0],
        );
        let p = t.softmax_rows();
        assert!(p.all_finite());
        assert_eq!(p.row(0), &[0.0, 0.0, 0.0]);
        let s: f32 = p.row(1).iter().sum();
        assert!((s - 1.0).abs() < 1e-6, "unmasked rows are unaffected");
    }

    #[test]
    fn softmax_partially_masked_row_renormalizes() {
        let t = Tensor::from_vec(1, 3, vec![f32::NEG_INFINITY, 0.0, 0.0]);
        let p = t.softmax_rows();
        assert_eq!(p.get(0, 0), 0.0);
        assert!((p.get(0, 1) - 0.5).abs() < 1e-6);
        assert!((p.get(0, 2) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn l2_normalize_rows_unit_norm() {
        let t = Tensor::from_vec(2, 2, vec![3.0, 4.0, 0.0, 0.0]);
        let n = t.l2_normalize_rows(1e-12);
        assert!((n.row(0)[0] - 0.6).abs() < 1e-6);
        assert!((n.row(0)[1] - 0.8).abs() < 1e-6);
        // Zero row stays zero rather than dividing by ~0.
        assert_eq!(n.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn argmax_row_first_on_ties() {
        let t = Tensor::from_vec(1, 4, vec![1.0, 3.0, 3.0, 2.0]);
        assert_eq!(t.argmax_row(0), 1);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
        assert!((t.norm() - 30.0f32.sqrt()).abs() < 1e-6);
    }
}
