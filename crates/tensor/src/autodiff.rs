//! Reverse-mode automatic differentiation.
//!
//! A [`Graph`] is an append-only arena of nodes; node ids are therefore a
//! topological order, and backpropagation is a single reverse sweep. Each
//! training step builds a fresh graph (the RETIA recurrence unrolls `k`
//! snapshots inside one graph), calls [`Graph::backward`], and lets the
//! optimizer consume the gradients accumulated in the [`ParamStore`].
//!
//! Ops store the context their backward pass needs (saved masks, index lists,
//! activation outputs) inside the op enum itself, so backward is a plain
//! `match` with no dynamic dispatch.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::param::{ParamId, ParamStore};
use crate::tensor::Tensor;
use crate::RRELU_EVAL_SLOPE;

/// Handle to a node in a [`Graph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

enum Op {
    /// Constant input; no gradient flows past it.
    Leaf,
    /// Learnable parameter; gradients are pushed into the [`ParamStore`].
    Param(ParamId),
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    Mul(NodeId, NodeId),
    /// `x + b` with `b` a `[1, d]` row broadcast over the rows of `x`.
    AddBias(NodeId, NodeId),
    /// `x * w` with `w` a `[1, d]` row broadcast over the rows of `x`.
    MulBias(NodeId, NodeId),
    /// `x * c` with `c` a `[n, 1]` column broadcast over the columns of `x`.
    MulCol(NodeId, NodeId),
    Scale(NodeId, f32),
    AddScalar(NodeId),
    MatMul(NodeId, NodeId),
    /// `a @ b^T`.
    MatMulNT(NodeId, NodeId),
    /// Saved value = sigmoid(x).
    Sigmoid(NodeId),
    /// Saved value = tanh(x).
    Tanh(NodeId),
    Relu(NodeId),
    /// Elementwise sine (RotatE phase rotations).
    Sin(NodeId),
    /// Elementwise cosine.
    Cos(NodeId),
    /// Leaky ReLU with a per-element negative slope (implements RReLU).
    LeakyRelu(NodeId, Tensor),
    Abs(NodeId),
    /// Dropout with the saved (already inverse-scaled) mask.
    Dropout(NodeId, Tensor),
    GatherRows(NodeId, Rc<Vec<u32>>),
    /// Scatter rows of `x` into a zero `[out_rows, d]` tensor, adding on
    /// collision. Field order: (src, indices, out_rows).
    ScatterAddRows(NodeId, Rc<Vec<u32>>),
    /// Multiplies row `i` by `weights[i]` (degree normalization in R-GCN).
    RowScale(NodeId, Rc<Vec<f32>>),
    ConcatCols(NodeId, NodeId),
    SliceCols(NodeId, usize, usize),
    /// Row-wise softmax; saved value = probabilities.
    SoftmaxRows(NodeId),
    /// `out[i, 0] = x[i, cols[i]]`.
    GatherCols(NodeId, Rc<Vec<u32>>),
    /// `ln(x + eps)` elementwise.
    Ln(NodeId, f32),
    MeanAll(NodeId),
    SumAll(NodeId),
    /// `out[i, 0] = sum_j x[i, j]`.
    SumRows(NodeId),
    /// Sum of several same-shape tensors.
    AddN(Vec<NodeId>),
    /// Row-wise L2 normalization; saved value = normalized rows.
    NormalizeRows(NodeId, f32),
    /// Row-wise layer normalization (no affine); saved stats (mean, inv_std)
    /// per row.
    LayerNormRows(NodeId, Rc<Vec<(f32, f32)>>),
    /// 1-D convolution: x `[batch, in_ch*width]`, w `[out_ch, in_ch*ksize]`,
    /// b `[1, out_ch]`, 'same' zero padding. Output `[batch, out_ch*width]`.
    Conv1d {
        x: NodeId,
        w: NodeId,
        b: NodeId,
        in_ch: usize,
        out_ch: usize,
        ksize: usize,
    },
    /// Fused softmax + cross-entropy against integer targets; saved probs.
    SoftmaxXent(NodeId, Rc<Vec<u32>>),
}

impl Op {
    /// Stable key tying each recorded op to its value-domain transfer
    /// function and reduction-order entries in [`crate::transfer`].
    /// `Leaf`/`Param` are inputs, not computations, and have no key. The
    /// lockstep test below keeps this match and the transfer tables from
    /// drifting apart.
    fn transfer_key(&self) -> Option<&'static str> {
        Some(match self {
            Op::Leaf | Op::Param(_) => return None,
            Op::Add(..) => "add",
            Op::Sub(..) => "sub",
            Op::Mul(..) => "mul",
            Op::AddBias(..) => "add_bias",
            Op::MulBias(..) => "mul_bias",
            Op::MulCol(..) => "mul_col",
            Op::Scale(..) => "scale",
            Op::AddScalar(..) => "add_scalar",
            Op::MatMul(..) => "matmul",
            Op::MatMulNT(..) => "matmul_nt",
            Op::Sigmoid(..) => "sigmoid",
            Op::Tanh(..) => "tanh",
            Op::Relu(..) => "relu",
            Op::Sin(..) => "sin",
            Op::Cos(..) => "cos",
            Op::LeakyRelu(..) => "rrelu",
            Op::Abs(..) => "abs",
            Op::Dropout(..) => "dropout",
            Op::GatherRows(..) => "gather_rows",
            Op::ScatterAddRows(..) => "scatter_add_rows",
            Op::RowScale(..) => "row_scale",
            Op::ConcatCols(..) => "concat_cols",
            Op::SliceCols(..) => "slice_cols",
            Op::SoftmaxRows(..) => "softmax_rows",
            Op::GatherCols(..) => "gather_cols",
            Op::Ln(..) => "ln",
            Op::MeanAll(..) => "mean_all",
            Op::SumAll(..) => "sum_all",
            Op::SumRows(..) => "sum_rows",
            Op::AddN(..) => "add_n",
            Op::NormalizeRows(..) => "normalize_rows",
            Op::LayerNormRows(..) => "layer_norm_rows",
            Op::Conv1d { .. } => "conv1d",
            Op::SoftmaxXent(..) => "softmax_xent",
        })
    }
}

struct Node {
    value: Tensor,
    op: Op,
}

/// A single forward computation with reverse-mode gradients.
///
/// `training` toggles stochastic ops (dropout masks, RReLU slope sampling);
/// `seed` makes them reproducible. A graph built with [`Graph::inference`]
/// additionally skips the tape: every node is stored as [`Op::Leaf`], so no
/// backward contexts (index lists, dropout masks, saved softmax outputs) are
/// allocated and [`Graph::backward`] is unavailable.
pub struct Graph {
    nodes: Vec<Node>,
    training: bool,
    record: bool,
    rng: StdRng,
}

impl Graph {
    /// Creates an empty graph. `training=false` turns dropout into identity
    /// and RReLU into a fixed-slope leaky ReLU.
    pub fn new(training: bool, seed: u64) -> Self {
        Graph { nodes: Vec::new(), training, record: true, rng: StdRng::seed_from_u64(seed) }
    }

    /// Creates an inference-only graph: eval mode (`training=false`) and no
    /// autodiff tape. Forward values are bitwise identical to a recording
    /// eval graph — ops compute values before the tape entry is stored, so
    /// dropping the entry cannot perturb them — but backward contexts are
    /// never allocated and [`Graph::backward`] panics.
    pub fn inference() -> Self {
        Graph { nodes: Vec::new(), training: false, record: false, rng: StdRng::seed_from_u64(0) }
    }

    /// Whether stochastic ops are active.
    pub fn is_training(&self) -> bool {
        self.training
    }

    /// Whether this graph records an autodiff tape (`false` for
    /// [`Graph::inference`] graphs).
    pub fn is_recording(&self) -> bool {
        self.record
    }

    /// Number of nodes currently in the graph.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of nodes carrying backward context (anything other than
    /// [`Op::Leaf`]). Always `0` for an inference graph — the assertion the
    /// no-grad tests and the serve engine rely on.
    pub fn tape_ops(&self) -> usize {
        self.nodes.iter().filter(|n| !matches!(n.op, Op::Leaf)).count()
    }

    /// Transfer keys of every recorded op on the tape, in execution order.
    /// Lets the abstract interpreter (and its tests) check that each op a
    /// real forward pass records has a transfer function in
    /// [`crate::transfer`].
    pub fn tape_transfer_keys(&self) -> Vec<&'static str> {
        self.nodes.iter().filter_map(|n| n.op.transfer_key()).collect()
    }

    fn push(&mut self, value: Tensor, op: Op) -> NodeId {
        let op = if self.record { op } else { Op::Leaf };
        self.nodes.push(Node { value, op });
        NodeId(self.nodes.len() - 1)
    }

    /// The forward value of a node.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id.0].value
    }

    /// A detached copy of a node's value (no gradient connection).
    pub fn detach(&self, id: NodeId) -> Tensor {
        self.nodes[id.0].value.clone()
    }

    // ---- inputs -----------------------------------------------------------

    /// Inserts a constant (non-differentiable) input.
    pub fn constant(&mut self, t: Tensor) -> NodeId {
        self.push(t, Op::Leaf)
    }

    /// Inserts a learnable parameter by name; its current value is copied out
    /// of the store and gradients flow back into the store on
    /// [`Graph::backward`].
    pub fn param(&mut self, store: &ParamStore, name: &str) -> NodeId {
        let pid = store.id(name);
        self.push(store.value(name).clone(), Op::Param(pid))
    }

    // ---- arithmetic -------------------------------------------------------

    /// Elementwise `a + b` (same shape).
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).add(self.value(b));
        self.push(v, Op::Add(a, b))
    }

    /// Elementwise `a - b` (same shape).
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).sub(self.value(b));
        self.push(v, Op::Sub(a, b))
    }

    /// Elementwise `a * b` (same shape).
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).mul(self.value(b));
        self.push(v, Op::Mul(a, b))
    }

    /// `x + bias` where `bias` is `[1, d]`, broadcast over rows.
    pub fn add_bias(&mut self, x: NodeId, bias: NodeId) -> NodeId {
        let xb = self.value(bias);
        assert_eq!(xb.rows(), 1, "bias must be a single row");
        assert_eq!(xb.cols(), self.value(x).cols(), "bias width mismatch");
        let b = xb.clone();
        let mut v = self.value(x).clone();
        for i in 0..v.rows() {
            let row = v.row_mut(i);
            for (r, &bb) in row.iter_mut().zip(b.row(0).iter()) {
                *r += bb;
            }
        }
        self.push(v, Op::AddBias(x, bias))
    }

    /// `x * w` where `w` is `[1, d]`, broadcast over rows.
    pub fn mul_bias(&mut self, x: NodeId, w: NodeId) -> NodeId {
        let xw = self.value(w);
        assert_eq!(xw.rows(), 1, "broadcast weight must be a single row");
        assert_eq!(xw.cols(), self.value(x).cols(), "broadcast width mismatch");
        let wt = xw.clone();
        let mut v = self.value(x).clone();
        for i in 0..v.rows() {
            let row = v.row_mut(i);
            for (r, &ww) in row.iter_mut().zip(wt.row(0).iter()) {
                *r *= ww;
            }
        }
        self.push(v, Op::MulBias(x, w))
    }

    /// `x * c` where `c` is `[n, 1]`, broadcast over columns (per-row learned
    /// scaling; the basis-coefficient kernel of R-GCN basis decomposition).
    pub fn mul_col(&mut self, x: NodeId, c: NodeId) -> NodeId {
        let cv = self.value(c);
        assert_eq!(cv.cols(), 1, "column broadcast must be a single column");
        assert_eq!(cv.rows(), self.value(x).rows(), "column broadcast height mismatch");
        let ct = cv.clone();
        let mut v = self.value(x).clone();
        for i in 0..v.rows() {
            let s = ct.get(i, 0);
            v.row_mut(i).iter_mut().for_each(|val| *val *= s);
        }
        self.push(v, Op::MulCol(x, c))
    }

    /// `x * s` for a constant scalar.
    pub fn scale(&mut self, x: NodeId, s: f32) -> NodeId {
        let v = self.value(x).scale(s);
        self.push(v, Op::Scale(x, s))
    }

    /// `x + s` for a constant scalar.
    pub fn add_scalar(&mut self, x: NodeId, s: f32) -> NodeId {
        let v = self.value(x).map(|v| v + s);
        self.push(v, Op::AddScalar(x))
    }

    /// Matrix product `a @ b`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::MatMul(a, b))
    }

    /// Matrix product `a @ b^T` (decoder scoring kernel).
    pub fn matmul_nt(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).matmul_nt(self.value(b));
        self.push(v, Op::MatMulNT(a, b))
    }

    // ---- activations ------------------------------------------------------

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).map(|v| 1.0 / (1.0 + (-v).exp()));
        self.push(v, Op::Sigmoid(x))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).map(f32::tanh);
        self.push(v, Op::Tanh(x))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).map(|v| v.max(0.0));
        self.push(v, Op::Relu(x))
    }

    /// Elementwise sine.
    pub fn sin(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).map(f32::sin);
        self.push(v, Op::Sin(x))
    }

    /// Elementwise cosine.
    pub fn cos(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).map(f32::cos);
        self.push(v, Op::Cos(x))
    }

    /// Leaky ReLU with a fixed negative slope.
    pub fn leaky_relu(&mut self, x: NodeId, slope: f32) -> NodeId {
        let (r, c) = self.value(x).shape();
        let slopes = Tensor::full(r, c, slope);
        self.leaky_relu_with(x, slopes)
    }

    /// Randomized leaky ReLU: slopes ~ U(1/8, 1/3) per element in training,
    /// the mean slope in evaluation — PyTorch `RReLU` semantics, the
    /// activation used throughout RETIA's R-GCNs.
    pub fn rrelu(&mut self, x: NodeId) -> NodeId {
        let (r, c) = self.value(x).shape();
        let slopes = if self.training {
            let rng = &mut self.rng;
            Tensor::from_fn(r, c, |_, _| rng.gen_range(0.125f32..(1.0 / 3.0)))
        } else {
            Tensor::full(r, c, RRELU_EVAL_SLOPE)
        };
        self.leaky_relu_with(x, slopes)
    }

    fn leaky_relu_with(&mut self, x: NodeId, slopes: Tensor) -> NodeId {
        let xv = self.value(x);
        assert_eq!(xv.shape(), slopes.shape());
        let v = Tensor::from_fn(xv.rows(), xv.cols(), |i, j| {
            let val = xv.get(i, j);
            if val >= 0.0 {
                val
            } else {
                val * slopes.get(i, j)
            }
        });
        self.push(v, Op::LeakyRelu(x, slopes))
    }

    /// Elementwise absolute value.
    pub fn abs(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).map(f32::abs);
        self.push(v, Op::Abs(x))
    }

    /// Inverted dropout with keep-prob `1 - p`. Identity in evaluation mode
    /// or when `p == 0`.
    pub fn dropout(&mut self, x: NodeId, p: f32) -> NodeId {
        if !self.training || p <= 0.0 {
            return x;
        }
        assert!(p < 1.0, "dropout probability must be < 1");
        let (r, c) = self.value(x).shape();
        let keep = 1.0 - p;
        let rng = &mut self.rng;
        let mask =
            Tensor::from_fn(r, c, |_, _| if rng.gen::<f32>() < keep { 1.0 / keep } else { 0.0 });
        let v = self.value(x).mul(&mask);
        self.push(v, Op::Dropout(x, mask))
    }

    // ---- structure --------------------------------------------------------

    /// Gathers rows of `x` by index (embedding lookup / edge endpoint fetch).
    pub fn gather_rows(&mut self, x: NodeId, indices: Rc<Vec<u32>>) -> NodeId {
        let v = self.value(x).gather_rows(&indices);
        self.push(v, Op::GatherRows(x, indices))
    }

    /// Scatter-adds the rows of `x` into a fresh `[out_rows, d]` tensor
    /// (message aggregation in R-GCN).
    pub fn scatter_add_rows(
        &mut self,
        x: NodeId,
        indices: Rc<Vec<u32>>,
        out_rows: usize,
    ) -> NodeId {
        let v = self.value(x).scatter_add_rows(&indices, out_rows);
        self.push(v, Op::ScatterAddRows(x, indices))
    }

    /// Multiplies each row `i` by `weights[i]` (degree normalization).
    pub fn row_scale(&mut self, x: NodeId, weights: Rc<Vec<f32>>) -> NodeId {
        let xv = self.value(x);
        assert_eq!(xv.rows(), weights.len(), "row_scale weight count mismatch");
        let mut v = xv.clone();
        for i in 0..v.rows() {
            let w = weights[i];
            v.row_mut(i).iter_mut().for_each(|val| *val *= w);
        }
        self.push(v, Op::RowScale(x, weights))
    }

    /// Horizontal concatenation `[a | b]`.
    pub fn concat_cols(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).concat_cols(self.value(b));
        self.push(v, Op::ConcatCols(a, b))
    }

    /// Columns `start..end` of `x`.
    pub fn slice_cols(&mut self, x: NodeId, start: usize, end: usize) -> NodeId {
        let v = self.value(x).slice_cols(start, end);
        self.push(v, Op::SliceCols(x, start, end))
    }

    // ---- probabilistic / reductions ----------------------------------------

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).softmax_rows();
        self.push(v, Op::SoftmaxRows(x))
    }

    /// `out[i, 0] = x[i, cols[i]]` — picks one entry per row (ground-truth
    /// probability extraction in the time-variability loss).
    pub fn gather_cols(&mut self, x: NodeId, cols: Rc<Vec<u32>>) -> NodeId {
        let xv = self.value(x);
        assert_eq!(xv.rows(), cols.len(), "gather_cols index count mismatch");
        #[cfg(debug_assertions)]
        for (pos, &c) in cols.iter().enumerate() {
            assert!(
                (c as usize) < xv.cols(),
                "gather_cols: column index {c} (row {pos}) out of range for {} columns \
                 (called from {})",
                xv.cols(),
                retia_obs::current_module(),
            );
        }
        let v = Tensor::from_fn(xv.rows(), 1, |i, _| xv.get(i, cols[i] as usize));
        self.push(v, Op::GatherCols(x, cols))
    }

    /// `ln(x + eps)` elementwise.
    pub fn ln(&mut self, x: NodeId, eps: f32) -> NodeId {
        let v = self.value(x).map(|v| (v + eps).ln());
        self.push(v, Op::Ln(x, eps))
    }

    /// Mean over all elements, as a `1 x 1` tensor.
    pub fn mean_all(&mut self, x: NodeId) -> NodeId {
        let v = Tensor::scalar(self.value(x).mean());
        self.push(v, Op::MeanAll(x))
    }

    /// Sum over all elements, as a `1 x 1` tensor.
    pub fn sum_all(&mut self, x: NodeId) -> NodeId {
        let v = Tensor::scalar(self.value(x).sum());
        self.push(v, Op::SumAll(x))
    }

    /// Row sums: `[n, d] -> [n, 1]`.
    pub fn sum_rows(&mut self, x: NodeId) -> NodeId {
        let xv = self.value(x);
        let v = Tensor::from_fn(xv.rows(), 1, |i, _| xv.row(i).iter().sum());
        self.push(v, Op::SumRows(x))
    }

    /// Sum of several same-shape tensors.
    pub fn add_n(&mut self, xs: &[NodeId]) -> NodeId {
        assert!(!xs.is_empty(), "add_n needs at least one input");
        let mut v = self.value(xs[0]).clone();
        for &x in &xs[1..] {
            v.add_assign(self.value(x));
        }
        self.push(v, Op::AddN(xs.to_vec()))
    }

    /// Row-wise L2 normalization (RE-GCN-style embedding normalization).
    pub fn normalize_rows(&mut self, x: NodeId) -> NodeId {
        let eps = 1e-12f32;
        let v = self.value(x).l2_normalize_rows(eps);
        self.push(v, Op::NormalizeRows(x, eps))
    }

    /// Row-wise layer normalization without affine parameters; compose with
    /// [`Graph::mul_bias`] and [`Graph::add_bias`] for the affine form.
    pub fn layer_norm_rows(&mut self, x: NodeId) -> NodeId {
        let eps = 1e-5f32;
        let xv = self.value(x);
        let mut stats = Vec::with_capacity(xv.rows());
        let mut v = xv.clone();
        let d = xv.cols() as f32;
        for i in 0..v.rows() {
            let row = v.row_mut(i);
            let mean = row.iter().sum::<f32>() / d;
            let var = row.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / d;
            let inv_std = 1.0 / (var + eps).sqrt();
            row.iter_mut().for_each(|x| *x = (*x - mean) * inv_std);
            stats.push((mean, inv_std));
        }
        self.push(v, Op::LayerNormRows(x, Rc::new(stats)))
    }

    /// 1-D convolution with 'same' zero padding.
    ///
    /// `x` is `[batch, in_ch * width]` (channels-major rows), `w` is
    /// `[out_ch, in_ch * ksize]`, `b` is `[1, out_ch]`. Output is
    /// `[batch, out_ch * width]`. This is the Conv-TransE kernel: the decoder
    /// stacks 2 embeddings as 2 input channels over width `d`.
    pub fn conv1d(
        &mut self,
        x: NodeId,
        w: NodeId,
        b: NodeId,
        in_ch: usize,
        out_ch: usize,
        ksize: usize,
    ) -> NodeId {
        let xv = self.value(x);
        let wv = self.value(w);
        let bv = self.value(b);
        assert_eq!(xv.cols() % in_ch, 0, "conv1d: width not divisible by in_ch");
        assert_eq!(wv.shape(), (out_ch, in_ch * ksize), "conv1d: bad kernel shape");
        assert_eq!(bv.shape(), (1, out_ch), "conv1d: bad bias shape");
        let width = xv.cols() / in_ch;
        let pad = ksize / 2;
        let batch = xv.rows();
        let _t = retia_obs::kernel_span("conv1d");
        let mut out = Tensor::zeros(batch, out_ch * width);
        let ow = out_ch * width;
        // Batch rows are independent, so the batch dimension chunks cleanly;
        // each output value keeps its sequential (ic, kk) accumulation order.
        let cost = 2 * ow * in_ch * ksize;
        crate::parallel::for_each_row_chunk(out.data_mut(), ow, cost, |first_row, chunk| {
            for (d, orow) in chunk.chunks_mut(ow).enumerate() {
                let xr = xv.row(first_row + d);
                for oc in 0..out_ch {
                    let wrow = wv.row(oc);
                    let bias = bv.get(0, oc);
                    for pos in 0..width {
                        let mut acc = bias;
                        for ic in 0..in_ch {
                            for kk in 0..ksize {
                                let src = pos as isize + kk as isize - pad as isize;
                                if src < 0 || src >= width as isize {
                                    continue;
                                }
                                acc += xr[ic * width + src as usize] * wrow[ic * ksize + kk];
                            }
                        }
                        orow[oc * width + pos] = acc;
                    }
                }
            }
        });
        self.push(out, Op::Conv1d { x, w, b, in_ch, out_ch, ksize })
    }

    /// Fused softmax cross-entropy against integer class targets; returns the
    /// mean loss as a `1 x 1` tensor.
    pub fn softmax_xent(&mut self, logits: NodeId, targets: Rc<Vec<u32>>) -> NodeId {
        let probs = self.value(logits).softmax_rows();
        assert_eq!(probs.rows(), targets.len(), "softmax_xent target count mismatch");
        let mut loss = 0.0f32;
        for (i, &t) in targets.iter().enumerate() {
            loss -= (probs.get(i, t as usize) + 1e-12).ln();
        }
        loss /= targets.len().max(1) as f32;
        // Save probs as the node "context" by re-deriving in backward; cheaper
        // to store them in the op? We store targets only and recompute probs
        // from the saved logits value during backward.
        self.push(Tensor::scalar(loss), Op::SoftmaxXent(logits, targets))
    }

    // ---- backward ---------------------------------------------------------

    /// Backpropagates from `loss` (must be `1 x 1`), accumulating parameter
    /// gradients into `store`.
    pub fn backward(&mut self, loss: NodeId, store: &mut ParamStore) {
        assert!(self.record, "backward() on an inference graph: no tape was recorded");
        assert_eq!(self.value(loss).shape(), (1, 1), "backward() expects a scalar loss node");
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss.0] = Some(Tensor::scalar(1.0));

        for id in (0..=loss.0).rev() {
            let g = match grads[id].take() {
                Some(g) => g,
                None => continue,
            };
            match &self.nodes[id].op {
                Op::Leaf => {}
                Op::Param(pid) => store.accumulate_grad(*pid, &g),
                Op::Add(a, b) => {
                    let (a, b) = (*a, *b);
                    Self::acc(&mut grads, a, g.clone());
                    Self::acc(&mut grads, b, g);
                }
                Op::Sub(a, b) => {
                    let (a, b) = (*a, *b);
                    Self::acc(&mut grads, a, g.clone());
                    Self::acc(&mut grads, b, g.scale(-1.0));
                }
                Op::Mul(a, b) => {
                    let (a, b) = (*a, *b);
                    let ga = g.mul(&self.nodes[b.0].value);
                    let gb = g.mul(&self.nodes[a.0].value);
                    Self::acc(&mut grads, a, ga);
                    Self::acc(&mut grads, b, gb);
                }
                Op::AddBias(x, bias) => {
                    let (x, bias) = (*x, *bias);
                    let mut gb = Tensor::zeros(1, g.cols());
                    for i in 0..g.rows() {
                        let row = g.row(i);
                        let dst = gb.row_mut(0);
                        for (d, &s) in dst.iter_mut().zip(row.iter()) {
                            *d += s;
                        }
                    }
                    Self::acc(&mut grads, x, g);
                    Self::acc(&mut grads, bias, gb);
                }
                Op::MulBias(x, w) => {
                    let (x, w) = (*x, *w);
                    let wt = self.nodes[w.0].value.clone();
                    let xv = self.nodes[x.0].value.clone();
                    let mut gx = g.clone();
                    for i in 0..gx.rows() {
                        let row = gx.row_mut(i);
                        for (r, &ww) in row.iter_mut().zip(wt.row(0).iter()) {
                            *r *= ww;
                        }
                    }
                    let mut gw = Tensor::zeros(1, g.cols());
                    for i in 0..g.rows() {
                        for j in 0..g.cols() {
                            let v = gw.get(0, j) + g.get(i, j) * xv.get(i, j);
                            gw.set(0, j, v);
                        }
                    }
                    Self::acc(&mut grads, x, gx);
                    Self::acc(&mut grads, w, gw);
                }
                Op::MulCol(x, c) => {
                    let (x, c) = (*x, *c);
                    let cv = self.nodes[c.0].value.clone();
                    let xv = self.nodes[x.0].value.clone();
                    let mut gx = g.clone();
                    for i in 0..gx.rows() {
                        let s = cv.get(i, 0);
                        gx.row_mut(i).iter_mut().for_each(|v| *v *= s);
                    }
                    let mut gc = Tensor::zeros(cv.rows(), 1);
                    for i in 0..g.rows() {
                        let dot: f32 =
                            g.row(i).iter().zip(xv.row(i).iter()).map(|(&a, &b)| a * b).sum();
                        gc.set(i, 0, dot);
                    }
                    Self::acc(&mut grads, x, gx);
                    Self::acc(&mut grads, c, gc);
                }
                Op::Scale(x, s) => {
                    let (x, s) = (*x, *s);
                    Self::acc(&mut grads, x, g.scale(s));
                }
                Op::AddScalar(x) => {
                    let x = *x;
                    Self::acc(&mut grads, x, g);
                }
                Op::MatMul(a, b) => {
                    let (a, b) = (*a, *b);
                    // y = a @ b: da = g @ b^T, db = a^T @ g.
                    let ga = g.matmul_nt(&self.nodes[b.0].value);
                    let gb = self.nodes[a.0].value.matmul_tn(&g);
                    Self::acc(&mut grads, a, ga);
                    Self::acc(&mut grads, b, gb);
                }
                Op::MatMulNT(a, b) => {
                    let (a, b) = (*a, *b);
                    // y = a @ b^T: da = g @ b, db = g^T @ a.
                    let ga = g.matmul(&self.nodes[b.0].value);
                    let gb = g.matmul_tn(&self.nodes[a.0].value);
                    Self::acc(&mut grads, a, ga);
                    Self::acc(&mut grads, b, gb);
                }
                Op::Sigmoid(x) => {
                    let x = *x;
                    let y = &self.nodes[id].value;
                    let gx = g.zip(y, |g, y| g * y * (1.0 - y));
                    Self::acc(&mut grads, x, gx);
                }
                Op::Tanh(x) => {
                    let x = *x;
                    let y = &self.nodes[id].value;
                    let gx = g.zip(y, |g, y| g * (1.0 - y * y));
                    Self::acc(&mut grads, x, gx);
                }
                Op::Relu(x) => {
                    let x = *x;
                    let xv = &self.nodes[x.0].value;
                    let gx = g.zip(xv, |g, x| if x > 0.0 { g } else { 0.0 });
                    Self::acc(&mut grads, x, gx);
                }
                Op::Sin(x) => {
                    let x = *x;
                    let xv = &self.nodes[x.0].value;
                    let gx = g.zip(xv, |g, x| g * x.cos());
                    Self::acc(&mut grads, x, gx);
                }
                Op::Cos(x) => {
                    let x = *x;
                    let xv = &self.nodes[x.0].value;
                    let gx = g.zip(xv, |g, x| -g * x.sin());
                    Self::acc(&mut grads, x, gx);
                }
                Op::LeakyRelu(x, slopes) => {
                    let xid = *x;
                    let xv = &self.nodes[xid.0].value;
                    let gx = Tensor::from_fn(g.rows(), g.cols(), |i, j| {
                        if xv.get(i, j) >= 0.0 {
                            g.get(i, j)
                        } else {
                            g.get(i, j) * slopes.get(i, j)
                        }
                    });
                    Self::acc(&mut grads, xid, gx);
                }
                Op::Abs(x) => {
                    let x = *x;
                    let xv = &self.nodes[x.0].value;
                    let gx = g.zip(xv, |g, x| if x >= 0.0 { g } else { -g });
                    Self::acc(&mut grads, x, gx);
                }
                Op::Dropout(x, mask) => {
                    let xid = *x;
                    let gx = g.mul(mask);
                    Self::acc(&mut grads, xid, gx);
                }
                Op::GatherRows(x, idx) => {
                    let xid = *x;
                    let n = self.nodes[xid.0].value.rows();
                    let gx = g.scatter_add_rows(idx, n);
                    Self::acc(&mut grads, xid, gx);
                }
                Op::ScatterAddRows(x, idx) => {
                    let xid = *x;
                    let gx = g.gather_rows(idx);
                    Self::acc(&mut grads, xid, gx);
                }
                Op::RowScale(x, weights) => {
                    let xid = *x;
                    let mut gx = g.clone();
                    for i in 0..gx.rows() {
                        let w = weights[i];
                        gx.row_mut(i).iter_mut().for_each(|v| *v *= w);
                    }
                    Self::acc(&mut grads, xid, gx);
                }
                Op::ConcatCols(a, b) => {
                    let (a, b) = (*a, *b);
                    let ca = self.nodes[a.0].value.cols();
                    let cb = self.nodes[b.0].value.cols();
                    let ga = g.slice_cols(0, ca);
                    let gb = g.slice_cols(ca, ca + cb);
                    Self::acc(&mut grads, a, ga);
                    Self::acc(&mut grads, b, gb);
                }
                Op::SliceCols(x, start, _end) => {
                    let (xid, start) = (*x, *start);
                    let xv = &self.nodes[xid.0].value;
                    let mut gx = Tensor::zeros(xv.rows(), xv.cols());
                    for i in 0..g.rows() {
                        for j in 0..g.cols() {
                            gx.set(i, start + j, g.get(i, j));
                        }
                    }
                    Self::acc(&mut grads, xid, gx);
                }
                Op::SoftmaxRows(x) => {
                    let xid = *x;
                    let p = &self.nodes[id].value;
                    // dx = p * (g - sum_j g_j p_j) per row.
                    let mut gx = Tensor::zeros(g.rows(), g.cols());
                    for i in 0..g.rows() {
                        let dot: f32 =
                            g.row(i).iter().zip(p.row(i).iter()).map(|(&a, &b)| a * b).sum();
                        let dst = gx.row_mut(i);
                        for (j, d) in dst.iter_mut().enumerate() {
                            *d = p.get(i, j) * (g.get(i, j) - dot);
                        }
                    }
                    Self::acc(&mut grads, xid, gx);
                }
                Op::GatherCols(x, cols) => {
                    let xid = *x;
                    let xv = &self.nodes[xid.0].value;
                    let mut gx = Tensor::zeros(xv.rows(), xv.cols());
                    for (i, &c) in cols.iter().enumerate() {
                        gx.set(i, c as usize, g.get(i, 0));
                    }
                    Self::acc(&mut grads, xid, gx);
                }
                Op::Ln(x, eps) => {
                    let (xid, eps) = (*x, *eps);
                    let xv = &self.nodes[xid.0].value;
                    let gx = g.zip(xv, |g, x| g / (x + eps));
                    Self::acc(&mut grads, xid, gx);
                }
                Op::MeanAll(x) => {
                    let xid = *x;
                    let xv = &self.nodes[xid.0].value;
                    let scale = g.item() / xv.len().max(1) as f32;
                    let gx = Tensor::full(xv.rows(), xv.cols(), scale);
                    Self::acc(&mut grads, xid, gx);
                }
                Op::SumAll(x) => {
                    let xid = *x;
                    let xv = &self.nodes[xid.0].value;
                    let gx = Tensor::full(xv.rows(), xv.cols(), g.item());
                    Self::acc(&mut grads, xid, gx);
                }
                Op::SumRows(x) => {
                    let xid = *x;
                    let xv = &self.nodes[xid.0].value;
                    let mut gx = Tensor::zeros(xv.rows(), xv.cols());
                    for i in 0..xv.rows() {
                        let gi = g.get(i, 0);
                        gx.row_mut(i).iter_mut().for_each(|v| *v = gi);
                    }
                    Self::acc(&mut grads, xid, gx);
                }
                Op::AddN(xs) => {
                    let xs = xs.clone();
                    for x in xs {
                        Self::acc(&mut grads, x, g.clone());
                    }
                }
                Op::NormalizeRows(x, eps) => {
                    let (xid, eps) = (*x, *eps);
                    let xv = &self.nodes[xid.0].value;
                    let y = &self.nodes[id].value;
                    let mut gx = Tensor::zeros(g.rows(), g.cols());
                    for i in 0..g.rows() {
                        let n = xv.row(i).iter().map(|&v| v * v).sum::<f32>().sqrt();
                        if n <= eps {
                            // Forward was identity on this row.
                            gx.row_mut(i).copy_from_slice(g.row(i));
                            continue;
                        }
                        let dot: f32 =
                            g.row(i).iter().zip(y.row(i).iter()).map(|(&a, &b)| a * b).sum();
                        for j in 0..g.cols() {
                            gx.set(i, j, (g.get(i, j) - dot * y.get(i, j)) / n);
                        }
                    }
                    Self::acc(&mut grads, xid, gx);
                }
                Op::LayerNormRows(x, stats) => {
                    let xid = *x;
                    let stats = stats.clone();
                    let y = &self.nodes[id].value;
                    let d = y.cols() as f32;
                    let mut gx = Tensor::zeros(g.rows(), g.cols());
                    for i in 0..g.rows() {
                        let (_, inv_std) = stats[i];
                        let gsum: f32 = g.row(i).iter().sum();
                        let gydot: f32 =
                            g.row(i).iter().zip(y.row(i).iter()).map(|(&a, &b)| a * b).sum();
                        for j in 0..g.cols() {
                            let v = inv_std * (g.get(i, j) - gsum / d - y.get(i, j) * gydot / d);
                            gx.set(i, j, v);
                        }
                    }
                    Self::acc(&mut grads, xid, gx);
                }
                Op::Conv1d { x, w, b, in_ch, out_ch, ksize } => {
                    let (x, w, b) = (*x, *w, *b);
                    let (in_ch, out_ch, ksize) = (*in_ch, *out_ch, *ksize);
                    let xv = self.nodes[x.0].value.clone();
                    let wv = self.nodes[w.0].value.clone();
                    let width = xv.cols() / in_ch;
                    let pad = ksize / 2;
                    let batch = xv.rows();
                    let iw = in_ch * width;
                    let cost = 2 * out_ch * width * in_ch * ksize;
                    // gx rows depend only on the matching batch row: chunk the
                    // batch, disjoint writes, same per-element order.
                    let mut gx = Tensor::zeros(batch, iw);
                    crate::parallel::for_each_row_chunk(
                        gx.data_mut(),
                        iw,
                        cost,
                        |first_row, chunk| {
                            for (d, gxr) in chunk.chunks_mut(iw).enumerate() {
                                let grow = g.row(first_row + d);
                                for oc in 0..out_ch {
                                    let wrow = wv.row(oc);
                                    for pos in 0..width {
                                        let go = grow[oc * width + pos];
                                        if go == 0.0 {
                                            continue;
                                        }
                                        for ic in 0..in_ch {
                                            for kk in 0..ksize {
                                                let src = pos as isize + kk as isize - pad as isize;
                                                if src < 0 || src >= width as isize {
                                                    continue;
                                                }
                                                gxr[ic * width + src as usize] +=
                                                    go * wrow[ic * ksize + kk];
                                            }
                                        }
                                    }
                                }
                            }
                        },
                    );
                    // gw/gb reduce over the batch: per-chunk partials (each
                    // accumulated in the sequential order within its chunk)
                    // merged in ascending chunk order — a fixed function of
                    // the batch size, independent of thread count.
                    let partials = crate::parallel::map_row_chunks(batch, cost, |range| {
                        let mut gw = Tensor::zeros(out_ch, in_ch * ksize);
                        let mut gb = Tensor::zeros(1, out_ch);
                        for bi in range {
                            let xr = xv.row(bi);
                            let grow = g.row(bi);
                            for oc in 0..out_ch {
                                for pos in 0..width {
                                    let go = grow[oc * width + pos];
                                    if go == 0.0 {
                                        continue;
                                    }
                                    let gbv = gb.get(0, oc) + go;
                                    gb.set(0, oc, gbv);
                                    for ic in 0..in_ch {
                                        for kk in 0..ksize {
                                            let src = pos as isize + kk as isize - pad as isize;
                                            if src < 0 || src >= width as isize {
                                                continue;
                                            }
                                            let src = src as usize;
                                            let gwv = gw.get(oc, ic * ksize + kk)
                                                + go * xr[ic * width + src];
                                            gw.set(oc, ic * ksize + kk, gwv);
                                        }
                                    }
                                }
                            }
                        }
                        (gw, gb)
                    });
                    let mut gw = Tensor::zeros(out_ch, in_ch * ksize);
                    let mut gb = Tensor::zeros(1, out_ch);
                    for (pw, pb) in partials {
                        gw.add_assign(&pw);
                        gb.add_assign(&pb);
                    }
                    Self::acc(&mut grads, x, gx);
                    Self::acc(&mut grads, w, gw);
                    Self::acc(&mut grads, b, gb);
                }
                Op::SoftmaxXent(logits, targets) => {
                    let lid = *logits;
                    let targets = targets.clone();
                    let probs = self.nodes[lid.0].value.softmax_rows();
                    let n = targets.len().max(1) as f32;
                    let mut gx = probs;
                    for (i, &t) in targets.iter().enumerate() {
                        let v = gx.get(i, t as usize) - 1.0;
                        gx.set(i, t as usize, v);
                    }
                    let s = g.item() / n;
                    gx.map_inplace(|v| v * s);
                    Self::acc(&mut grads, lid, gx);
                }
            }
        }
    }

    fn acc(grads: &mut [Option<Tensor>], id: NodeId, g: Tensor) {
        match &mut grads[id.0] {
            Some(existing) => existing.add_assign(&g),
            slot @ None => *slot = Some(g),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParamStore;

    /// Central finite-difference gradient check for a scalar-valued function
    /// of a single parameter tensor named "x".
    fn grad_check(x0: Tensor, build: impl Fn(&mut Graph, NodeId) -> NodeId, tol: f32) {
        let mut store = ParamStore::new(0);
        store.register("x", x0.clone());

        // Analytic gradient.
        let mut g = Graph::new(false, 0);
        let x = g.param(&store, "x");
        let loss = build(&mut g, x);
        g.backward(loss, &mut store);
        let analytic = store.grad("x").clone();

        // Numeric gradient.
        let h = 1e-3f32;
        let mut numeric = Tensor::zeros(x0.rows(), x0.cols());
        for i in 0..x0.rows() {
            for j in 0..x0.cols() {
                for (sign, slot) in [(1.0f32, 0), (-1.0f32, 1)] {
                    let mut xp = x0.clone();
                    xp.set(i, j, x0.get(i, j) + sign * h);
                    let mut g = Graph::new(false, 0);
                    let xn = g.constant(xp);
                    let l = build(&mut g, xn);
                    let v = g.value(l).item();
                    if slot == 0 {
                        numeric.set(i, j, v);
                    } else {
                        let fwd = numeric.get(i, j);
                        numeric.set(i, j, (fwd - v) / (2.0 * h));
                    }
                }
            }
        }
        let diff = analytic.max_abs_diff(&numeric);
        assert!(
            diff < tol,
            "gradient mismatch {diff} > {tol}\nanalytic: {analytic:?}\nnumeric: {numeric:?}"
        );
    }

    fn sample(r: usize, c: usize, seed: u64) -> Tensor {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Tensor::from_fn(r, c, |_, _| rng.gen_range(-1.0f32..1.0))
    }

    #[test]
    fn grad_matmul() {
        let w = sample(3, 2, 1);
        grad_check(
            sample(2, 3, 0),
            move |g, x| {
                let w = g.constant(w.clone());
                let y = g.matmul(x, w);
                let sq = g.mul(y, y);
                g.mean_all(sq)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_matmul_nt() {
        let w = sample(4, 3, 2);
        grad_check(
            sample(2, 3, 0),
            move |g, x| {
                let w = g.constant(w.clone());
                let y = g.matmul_nt(x, w);
                let sq = g.mul(y, y);
                g.mean_all(sq)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_sigmoid_tanh_relu() {
        grad_check(
            sample(3, 3, 0),
            |g, x| {
                let s = g.sigmoid(x);
                let t = g.tanh(s);
                let r = g.leaky_relu(t, 0.1);
                g.sum_all(r)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_add_sub_mul_scale() {
        let b = sample(2, 2, 5);
        grad_check(
            sample(2, 2, 0),
            move |g, x| {
                let b = g.constant(b.clone());
                let a = g.add(x, b);
                let s = g.sub(a, x);
                let m = g.mul(s, x);
                let sc = g.scale(m, 0.7);
                let sh = g.add_scalar(sc, 0.3);
                g.mean_all(sh)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_bias_broadcast() {
        grad_check(
            sample(1, 3, 0),
            |g, x| {
                let base = g.constant(sample(4, 3, 9));
                let y = g.add_bias(base, x);
                let z = g.mul_bias(y, x);
                let sq = g.mul(z, z);
                g.sum_all(sq)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_mul_col() {
        grad_check(
            sample(3, 1, 0),
            |g, c| {
                let x = g.constant(sample(3, 4, 17));
                let y = g.mul_col(x, c);
                let sq = g.mul(y, y);
                g.sum_all(sq)
            },
            2e-2,
        );
        grad_check(
            sample(3, 4, 0),
            |g, x| {
                let c = g.constant(sample(3, 1, 18));
                let y = g.mul_col(x, c);
                let sq = g.mul(y, y);
                g.sum_all(sq)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_gather_scatter() {
        grad_check(
            sample(4, 2, 0),
            |g, x| {
                let idx = Rc::new(vec![3u32, 0, 3, 1]);
                let gathered = g.gather_rows(x, idx);
                let back = g.scatter_add_rows(gathered, Rc::new(vec![0u32, 1, 0, 2]), 3);
                let sq = g.mul(back, back);
                g.sum_all(sq)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_row_scale() {
        grad_check(
            sample(3, 2, 0),
            |g, x| {
                let w = Rc::new(vec![0.5f32, -1.0, 2.0]);
                let y = g.row_scale(x, w);
                let sq = g.mul(y, y);
                g.sum_all(sq)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_concat_slice() {
        grad_check(
            sample(2, 3, 0),
            |g, x| {
                let y = g.concat_cols(x, x);
                let s = g.slice_cols(y, 1, 5);
                let sq = g.mul(s, s);
                g.sum_all(sq)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_softmax_ln_gather() {
        grad_check(
            sample(3, 4, 0),
            |g, x| {
                let p = g.softmax_rows(x);
                let picked = g.gather_cols(p, Rc::new(vec![1u32, 0, 3]));
                let lp = g.ln(picked, 1e-9);
                let m = g.mean_all(lp);
                g.scale(m, -1.0)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_softmax_xent_matches_composed() {
        // The fused op must produce the same loss and gradient as the
        // composed softmax -> gather -> ln -> mean pipeline.
        let x0 = sample(5, 7, 0);
        let targets = vec![2u32, 0, 6, 3, 3];

        let mut store = ParamStore::new(0);
        store.register("x", x0.clone());
        let mut g = Graph::new(false, 0);
        let x = g.param(&store, "x");
        let loss = g.softmax_xent(x, Rc::new(targets.clone()));
        let fused_loss = g.value(loss).item();
        g.backward(loss, &mut store);
        let fused_grad = store.grad("x").clone();

        let mut store2 = ParamStore::new(0);
        store2.register("x", x0);
        let mut g2 = Graph::new(false, 0);
        let x = g2.param(&store2, "x");
        let p = g2.softmax_rows(x);
        let picked = g2.gather_cols(p, Rc::new(targets));
        let lp = g2.ln(picked, 1e-12);
        let m = g2.mean_all(lp);
        let loss2 = g2.scale(m, -1.0);
        let composed_loss = g2.value(loss2).item();
        g2.backward(loss2, &mut store2);
        let composed_grad = store2.grad("x").clone();

        assert!((fused_loss - composed_loss).abs() < 1e-5);
        assert!(fused_grad.max_abs_diff(&composed_grad) < 1e-5);
    }

    #[test]
    fn softmax_xent_survives_fully_masked_row() {
        // Forward and backward both re-derive probabilities through
        // `softmax_rows`, so the masked-row stabilization must hold in both
        // directions: finite loss, finite gradients, no NaN poisoning of
        // the unmasked rows.
        let x0 = Tensor::from_vec(
            2,
            3,
            vec![f32::NEG_INFINITY, f32::NEG_INFINITY, f32::NEG_INFINITY, 0.5, -0.5, 0.25],
        );
        let mut store = ParamStore::new(0);
        store.register("x", x0);
        let mut g = Graph::new(false, 0);
        let x = g.param(&store, "x");
        let loss = g.softmax_xent(x, Rc::new(vec![1u32, 2]));
        let v = g.value(loss).item();
        assert!(v.is_finite(), "loss {v}");
        g.backward(loss, &mut store);
        let grad = store.grad("x");
        assert!(grad.all_finite(), "{grad:?}");
        // Masked row's probabilities are all zero → gradient is exactly
        // (p - onehot)/n on the target and p/n = 0 elsewhere.
        assert_eq!(grad.get(0, 0), 0.0);
        assert_eq!(grad.get(0, 2), 0.0);
        assert!((grad.get(0, 1) - (-0.5)).abs() < 1e-6);
    }

    #[test]
    fn grad_normalize_rows() {
        grad_check(
            sample(3, 4, 0),
            |g, x| {
                let y = g.normalize_rows(x);
                let c = g.constant(sample(3, 4, 11));
                let m = g.mul(y, c);
                g.sum_all(m)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_layer_norm() {
        grad_check(
            sample(3, 5, 0),
            |g, x| {
                let y = g.layer_norm_rows(x);
                let c = g.constant(sample(3, 5, 13));
                let m = g.mul(y, c);
                g.sum_all(m)
            },
            5e-2,
        );
    }

    #[test]
    fn grad_conv1d() {
        let w0 = sample(3, 2 * 3, 21);
        let b0 = sample(1, 3, 22);
        grad_check(
            sample(2, 2 * 5, 0),
            move |g, x| {
                let w = g.constant(w0.clone());
                let b = g.constant(b0.clone());
                let y = g.conv1d(x, w, b, 2, 3, 3);
                let sq = g.mul(y, y);
                g.sum_all(sq)
            },
            3e-2,
        );
    }

    #[test]
    fn grad_conv1d_weights() {
        let x0 = sample(2, 2 * 5, 31);
        let b0 = sample(1, 3, 32);
        grad_check(
            sample(3, 2 * 3, 0),
            move |g, w| {
                let x = g.constant(x0.clone());
                let b = g.constant(b0.clone());
                let y = g.conv1d(x, w, b, 2, 3, 3);
                let sq = g.mul(y, y);
                g.sum_all(sq)
            },
            3e-2,
        );
    }

    #[test]
    fn grad_sin_cos() {
        grad_check(
            sample(3, 3, 0),
            |g, x| {
                let s = g.sin(x);
                let c = g.cos(x);
                let m = g.mul(s, c);
                g.sum_all(m)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_abs_sum_rows() {
        grad_check(
            sample(3, 4, 0),
            |g, x| {
                let a = g.abs(x);
                let s = g.sum_rows(a);
                let sq = g.mul(s, s);
                g.mean_all(sq)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_add_n() {
        grad_check(
            sample(2, 2, 0),
            |g, x| {
                let y = g.scale(x, 2.0);
                let z = g.add_n(&[x, y, x]);
                let sq = g.mul(z, z);
                g.sum_all(sq)
            },
            1e-2,
        );
    }

    #[test]
    fn dropout_identity_in_eval() {
        let mut g = Graph::new(false, 0);
        let x = g.constant(sample(3, 3, 0));
        let y = g.dropout(x, 0.5);
        assert_eq!(x, y, "eval-mode dropout must be the identity node");
    }

    #[test]
    fn dropout_scales_in_train() {
        let mut g = Graph::new(true, 42);
        let x = g.constant(Tensor::ones(100, 100));
        let y = g.dropout(x, 0.5);
        let v = g.value(y);
        // Kept elements are scaled to 1/keep = 2.
        let kept: usize = v.data().iter().filter(|&&x| x > 0.0).count();
        assert!(v.data().iter().all(|&x| x == 0.0 || (x - 2.0).abs() < 1e-6));
        let frac = kept as f32 / v.len() as f32;
        assert!((frac - 0.5).abs() < 0.05, "kept fraction {frac}");
    }

    #[test]
    fn rrelu_eval_uses_mean_slope() {
        let mut g = Graph::new(false, 0);
        let x = g.constant(Tensor::from_vec(1, 2, vec![-1.0, 2.0]));
        let y = g.rrelu(x);
        let v = g.value(y);
        assert!((v.get(0, 0) + crate::RRELU_EVAL_SLOPE).abs() < 1e-6);
        assert_eq!(v.get(0, 1), 2.0);
    }

    #[test]
    fn rrelu_train_slopes_in_range() {
        let mut g = Graph::new(true, 7);
        let x = g.constant(Tensor::full(10, 10, -1.0));
        let y = g.rrelu(x);
        let v = g.value(y);
        assert!(v.data().iter().all(|&x| (-1.0 / 3.0 - 1e-6..=-0.125 + 1e-6).contains(&x)));
    }

    #[test]
    fn param_grads_accumulate_into_store() {
        let mut store = ParamStore::new(0);
        store.register("w", Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        let mut g = Graph::new(false, 0);
        let w = g.param(&store, "w");
        let sq = g.mul(w, w);
        let loss = g.sum_all(sq);
        g.backward(loss, &mut store);
        // d/dw sum(w^2) = 2w.
        assert_eq!(store.grad("w").data(), &[2.0, 4.0]);
    }

    #[test]
    fn shared_node_grads_sum_over_uses() {
        let mut store = ParamStore::new(0);
        store.register("w", Tensor::scalar(3.0));
        let mut g = Graph::new(false, 0);
        let w = g.param(&store, "w");
        // loss = w*w + w => dloss/dw = 2w + 1 = 7.
        let sq = g.mul(w, w);
        let s = g.add(sq, w);
        let loss = g.sum_all(s);
        g.backward(loss, &mut store);
        assert_eq!(store.grad("w").item(), 7.0);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_rejects_non_scalar() {
        let mut store = ParamStore::new(0);
        let mut g = Graph::new(false, 0);
        let x = g.constant(Tensor::ones(2, 2));
        g.backward(x, &mut store);
    }

    /// A small op mix covering the serve-relevant forward surface: gather,
    /// matmul, bias, nonlinearity, softmax.
    fn forward_mix(g: &mut Graph, store: &ParamStore) -> Tensor {
        let w = g.param(store, "w");
        let rows = g.gather_rows(w, std::rc::Rc::new(vec![2u32, 0, 1]));
        let prod = g.matmul_nt(rows, w);
        let b = g.constant(sample(1, 4, 9));
        let biased = g.add_bias(prod, b);
        let act = g.tanh(biased);
        let p = g.softmax_rows(act);
        g.detach(p)
    }

    #[test]
    fn inference_matches_recording_eval_bitwise() {
        let mut store = ParamStore::new(0);
        store.register("w", sample(4, 3, 7));

        let mut rec = Graph::new(false, 0);
        let expected = forward_mix(&mut rec, &store);
        assert!(rec.tape_ops() > 0, "recording graph should carry a tape");

        let mut inf = Graph::inference();
        let got = forward_mix(&mut inf, &store);
        assert_eq!(expected.data(), got.data(), "inference forward must be bit-identical");
    }

    #[test]
    fn inference_allocates_no_tape() {
        let mut store = ParamStore::new(0);
        store.register("w", sample(4, 3, 7));
        let mut g = Graph::inference();
        let _ = forward_mix(&mut g, &store);
        assert!(!g.is_recording());
        assert!(!g.is_training());
        assert!(g.num_nodes() > 0);
        assert_eq!(g.tape_ops(), 0, "inference graph must store Leaf ops only");
    }

    #[test]
    #[should_panic(expected = "inference graph")]
    fn backward_rejects_inference_graph() {
        let mut store = ParamStore::new(0);
        store.register("w", Tensor::scalar(2.0));
        let mut g = Graph::inference();
        let w = g.param(&store, "w");
        let loss = g.sum_all(w);
        g.backward(loss, &mut store);
    }

    /// Lockstep between the op vocabulary and the transfer tables: exercise
    /// every computing op once and check (a) each records a transfer key,
    /// (b) every reduction-site op in `crate::transfer` is a real key.
    #[test]
    fn every_op_has_a_transfer_key_and_reduction_sites_match() {
        let mut store = ParamStore::new(0);
        store.register("w", sample(3, 3, 1));
        let mut g = Graph::new(true, 7);
        let a = g.param(&store, "w");
        let b = g.constant(sample(3, 3, 2));
        let bias = g.constant(sample(1, 3, 3));
        let col = g.constant(sample(3, 1, 4));
        let s = g.add(a, b);
        let s = g.sub(s, b);
        let s = g.mul(s, b);
        let s = g.add_bias(s, bias);
        let s = g.mul_bias(s, bias);
        let s = g.mul_col(s, col);
        let s = g.scale(s, 0.5);
        let s = g.add_scalar(s, 1.0);
        let s = g.matmul(s, b);
        let s = g.matmul_nt(s, b);
        let sig = g.sigmoid(s);
        let th = g.tanh(s);
        let re = g.relu(s);
        let sn = g.sin(s);
        let co = g.cos(s);
        let rr = g.rrelu(s);
        let ab = g.abs(s);
        let dr = g.dropout(s, 0.5);
        let mix = g.add_n(&[sig, th, re, sn, co, rr, ab, dr]);
        let gr = g.gather_rows(mix, Rc::new(vec![0, 2, 1]));
        let sc = g.scatter_add_rows(gr, Rc::new(vec![1, 1, 0]), 3);
        let rs = g.row_scale(sc, Rc::new(vec![0.5, 1.0, 2.0]));
        let cc = g.concat_cols(rs, b);
        let sl = g.slice_cols(cc, 0, 3);
        let sm = g.softmax_rows(sl);
        let gc = g.gather_cols(sm, Rc::new(vec![0, 1, 2]));
        let ln = g.ln(gc, 1e-6);
        let nr = g.normalize_rows(sl);
        let lnorm = g.layer_norm_rows(nr);
        let cw = g.constant(sample(2, 3, 5));
        let cb = g.constant(sample(1, 2, 6));
        let cv = g.conv1d(lnorm, cw, cb, 1, 2, 3);
        let xe = g.softmax_xent(cv, Rc::new(vec![0, 1, 2]));
        let srows = g.sum_rows(xe);
        let sall = g.sum_all(srows);
        let mall = g.mean_all(sall);
        let _ = (mall, ln);

        let keys = g.tape_transfer_keys();
        // Every non-input node recorded a key (the one `Param` node is on
        // the tape but is an input, not a computation).
        assert_eq!(keys.len() + 1, g.tape_ops());
        let expected = [
            "add",
            "sub",
            "mul",
            "add_bias",
            "mul_bias",
            "mul_col",
            "scale",
            "add_scalar",
            "matmul",
            "matmul_nt",
            "sigmoid",
            "tanh",
            "relu",
            "sin",
            "cos",
            "rrelu",
            "abs",
            "dropout",
            "add_n",
            "gather_rows",
            "scatter_add_rows",
            "row_scale",
            "concat_cols",
            "slice_cols",
            "softmax_rows",
            "gather_cols",
            "ln",
            "normalize_rows",
            "layer_norm_rows",
            "conv1d",
            "softmax_xent",
            "sum_rows",
            "sum_all",
            "mean_all",
        ];
        for k in expected {
            assert!(keys.contains(&k), "op `{k}` missing from the recorded tape keys");
        }
        // The reduction-order map only names ops that exist.
        for site in crate::transfer::REDUCTION_SITES {
            assert!(
                expected.contains(&site.op),
                "reduction site `{} {}` names an unknown op",
                site.op,
                site.site
            );
        }
    }
}
