//! Checkpointing: a small self-describing binary format for parameter
//! stores (magic, version, per-parameter name/shape/values). Optimizer state
//! is intentionally not persisted — checkpoints are for inference and
//! fine-tuning from fresh optimizer state.

use std::path::Path;

use crate::param::ParamStore;
use crate::tensor::Tensor;

const MAGIC: &[u8; 8] = b"RETIAPS\0";
const VERSION: u32 = 1;

/// Bounds-checked little-endian reader over a checkpoint byte slice. Every
/// accessor names what it was reading, so a truncated file fails with a
/// [`CheckpointError::Corrupt`] describing the missing field instead of a
/// panic.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CheckpointError> {
        if self.buf.len() < n {
            return Err(CheckpointError::Corrupt(format!(
                "truncated {what}: need {n} byte(s), {} left",
                self.buf.len()
            )));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn get_u32_le(&mut self, what: &str) -> Result<u32, CheckpointError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

/// Serialization failures.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// The bytes are not a valid checkpoint (with a description).
    Corrupt(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Corrupt(s) => write!(f, "corrupt checkpoint: {s}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl ParamStore {
    /// Serializes all parameter values (not gradients / optimizer moments).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        let params: Vec<(&str, &Tensor)> = self.iter().collect();
        buf.extend_from_slice(&(params.len() as u32).to_le_bytes());
        for (name, value) in params {
            let nb = name.as_bytes();
            buf.extend_from_slice(&(nb.len() as u32).to_le_bytes());
            buf.extend_from_slice(nb);
            buf.extend_from_slice(&(value.rows() as u32).to_le_bytes());
            buf.extend_from_slice(&(value.cols() as u32).to_le_bytes());
            for &x in value.data() {
                buf.extend_from_slice(&x.to_le_bytes());
            }
        }
        buf
    }

    /// Restores parameter *values* from bytes produced by
    /// [`ParamStore::to_bytes`]. The store must already contain parameters
    /// with matching names and shapes (i.e. build the model first, then load).
    pub fn load_bytes(&mut self, bytes: &[u8]) -> Result<(), CheckpointError> {
        let mut buf = Reader { buf: bytes };
        let magic = buf.take(MAGIC.len(), "magic")?;
        if magic != MAGIC {
            return Err(CheckpointError::Corrupt("bad magic".into()));
        }
        let version = buf.get_u32_le("version")?;
        if version != VERSION {
            return Err(CheckpointError::Corrupt(format!("unsupported version {version}")));
        }
        let count = buf.get_u32_le("parameter count")? as usize;
        if count != self.num_tensors() {
            return Err(CheckpointError::Corrupt(format!(
                "parameter count mismatch: checkpoint {count}, model {}",
                self.num_tensors()
            )));
        }
        for _ in 0..count {
            let nlen = buf.get_u32_le("name length")? as usize;
            let name = String::from_utf8(buf.take(nlen, "name")?.to_vec())
                .map_err(|_| CheckpointError::Corrupt("non-utf8 name".into()))?;
            let rows = buf.get_u32_le("rows")? as usize;
            let cols = buf.get_u32_le("cols")? as usize;
            if !self.contains(&name) {
                return Err(CheckpointError::Corrupt(format!("unknown parameter `{name}`")));
            }
            if self.value(&name).shape() != (rows, cols) {
                return Err(CheckpointError::Corrupt(format!(
                    "shape mismatch for `{name}`: checkpoint {rows}x{cols}, model {:?}",
                    self.value(&name).shape()
                )));
            }
            let data = buf.take(rows * cols * 4, &format!("data for `{name}`"))?;
            let mut t = Tensor::zeros(rows, cols);
            for (x, b) in t.data_mut().iter_mut().zip(data.chunks_exact(4)) {
                *x = f32::from_le_bytes([b[0], b[1], b[2], b[3]]);
            }
            *self.value_mut(&name) = t;
        }
        Ok(())
    }

    /// Writes a checkpoint file.
    pub fn save_file(&self, path: &Path) -> Result<(), CheckpointError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Loads a checkpoint file into an already-built store.
    pub fn load_file(&mut self, path: &Path) -> Result<(), CheckpointError> {
        let bytes = std::fs::read(path)?;
        self.load_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ParamStore {
        let mut s = ParamStore::new(5);
        s.register_xavier("a", 3, 4);
        s.register_xavier("b.w", 2, 2);
        s
    }

    #[test]
    fn roundtrip_preserves_values() {
        let src = store();
        let bytes = src.to_bytes();
        let mut dst = store();
        // Perturb, then restore.
        dst.value_mut("a").set(0, 0, 99.0);
        dst.load_bytes(&bytes).unwrap();
        assert_eq!(dst.value("a"), src.value("a"));
        assert_eq!(dst.value("b.w"), src.value("b.w"));
    }

    #[test]
    fn file_roundtrip() {
        let src = store();
        let path = std::env::temp_dir().join(format!("retia_ckpt_{}.bin", std::process::id()));
        src.save_file(&path).unwrap();
        let mut dst = store();
        dst.value_mut("a").fill_zero();
        dst.load_file(&path).unwrap();
        assert_eq!(dst.value("a"), src.value("a"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let mut dst = store();
        let err = dst.load_bytes(b"NOTMAGIC________").unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt(_)));
    }

    #[test]
    fn rejects_truncated() {
        let src = store();
        let bytes = src.to_bytes();
        let mut dst = store();
        let err = dst.load_bytes(&bytes[..bytes.len() - 5]).unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt(_)), "{err}");
    }

    #[test]
    fn rejects_shape_mismatch() {
        let src = store();
        let bytes = src.to_bytes();
        let mut other = ParamStore::new(5);
        other.register_xavier("a", 3, 4);
        other.register_xavier("b.w", 2, 3); // different shape
        let err = other.load_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("shape mismatch"), "{err}");
    }

    #[test]
    fn rejects_unknown_parameter() {
        let src = store();
        let bytes = src.to_bytes();
        let mut other = ParamStore::new(5);
        other.register_xavier("a", 3, 4);
        other.register_xavier("c.w", 2, 2); // different name
        let err = other.load_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("unknown parameter"), "{err}");
    }
}
