//! Checkpointing: a crash-consistent, self-describing binary container
//! (format v2).
//!
//! A checkpoint file is a **sectioned container**:
//!
//! ```text
//! magic    8 B   "RETIAPS\0"
//! version  u32   2
//! file CRC u32   CRC-32 (IEEE) of every byte after this field
//! count    u32   number of sections
//! section: name_len u32 | name | payload CRC u32 | payload_len u64 | payload
//! ```
//!
//! Two integrity layers: the **file CRC** makes any single corrupted bit
//! anywhere in the body a deterministic load failure (no reliance on length
//! fields happening to misparse), and the **per-section CRCs** localize the
//! damage by name when a file is partially written or bit-rotted. Loading is
//! fully bounds-checked — any truncation offset yields a typed
//! [`CheckpointError`], never a panic or silently zeroed tensors.
//!
//! Saves are **atomic**: bytes go to a temp file in the same directory,
//! the file is fsynced, then renamed over the target (and the directory
//! fsynced). A crash mid-write leaves the previous checkpoint untouched;
//! [`atomic_write_with`] exposes the write path so fault-injection harnesses
//! can simulate exactly that crash.
//!
//! [`ParamStore`] persists parameter *values* in a `"params"` section; the
//! optimizer-moment payloads used by the trainer's full `TrainState`
//! checkpoint (see `retia::Trainer`) reuse the same named-tensor codec.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use crate::param::ParamStore;
use crate::tensor::Tensor;

const MAGIC: &[u8; 8] = b"RETIAPS\0";

/// Container format version written by this build.
pub const FORMAT_VERSION: u32 = 2;

// ---------------------------------------------------------------------------
// CRC-32
// ---------------------------------------------------------------------------

fn crc_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        table
    })
}

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Serialization failures. Every variant names what was being read so a
/// damaged file produces an actionable diagnostic instead of a panic.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// The bytes are not a valid checkpoint (with a description).
    Corrupt(String),
    /// The container is a checkpoint, but of a version this build cannot read.
    UnsupportedVersion {
        /// Version stamped in the file.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// A CRC check failed — the file was truncated, bit-flipped or
    /// half-written.
    CrcMismatch {
        /// `"file"` for the whole-body CRC, otherwise the section name.
        section: String,
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum computed over the bytes actually present.
        computed: u32,
    },
    /// A section the loader requires is absent from the container.
    MissingSection {
        /// Name of the absent section.
        section: String,
    },
    /// A stored tensor's shape disagrees with the model being loaded into.
    ShapeMismatch {
        /// Parameter name as stored in the checkpoint.
        param: String,
        /// Shape the live model expects, `(rows, cols)`.
        expected: (usize, usize),
        /// Shape found in the checkpoint, `(rows, cols)`.
        found: (usize, usize),
    },
    /// The checkpoint names a parameter the live model does not have.
    UnknownParam {
        /// The offending parameter name.
        param: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Corrupt(s) => write!(f, "corrupt checkpoint: {s}"),
            CheckpointError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported checkpoint version {found} (this build reads version {supported})"
            ),
            CheckpointError::CrcMismatch { section, stored, computed } => write!(
                f,
                "corrupt checkpoint: CRC mismatch in `{section}` \
                 (stored {stored:#010x}, computed {computed:#010x}) — \
                 the file was truncated or bit-flipped"
            ),
            CheckpointError::MissingSection { section } => {
                write!(f, "corrupt checkpoint: required section `{section}` is missing")
            }
            CheckpointError::ShapeMismatch { param, expected, found } => write!(
                f,
                "shape mismatch for parameter `{param}`: model expects \
                 {}x{}, checkpoint holds {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
            CheckpointError::UnknownParam { param } => {
                write!(f, "checkpoint names unknown parameter `{param}` (architecture mismatch?)")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Bounds-checked reader
// ---------------------------------------------------------------------------

/// Bounds-checked little-endian reader over checkpoint bytes. Every accessor
/// names what it was reading, so a truncated file fails with a
/// [`CheckpointError::Corrupt`] describing the missing field instead of a
/// panic.
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Takes `n` raw bytes, or fails naming `what` was truncated.
    pub fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CheckpointError> {
        if self.buf.len() < n {
            return Err(CheckpointError::Corrupt(format!(
                "truncated {what}: need {n} byte(s), {} left",
                self.buf.len()
            )));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32_le(&mut self, what: &str) -> Result<u32, CheckpointError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64_le(&mut self, what: &str) -> Result<u64, CheckpointError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a little-endian `f32` (bit pattern preserved).
    pub fn get_f32_le(&mut self, what: &str) -> Result<f32, CheckpointError> {
        let b = self.take(4, what)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `f64` (bit pattern preserved).
    pub fn get_f64_le(&mut self, what: &str) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.get_u64_le(what)?))
    }

    /// Reads one byte.
    pub fn get_u8(&mut self, what: &str) -> Result<u8, CheckpointError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn get_string(&mut self, what: &str) -> Result<String, CheckpointError> {
        let len = self.get_u32_le(&format!("{what} length"))? as usize;
        String::from_utf8(self.take(len, what)?.to_vec())
            .map_err(|_| CheckpointError::Corrupt(format!("non-utf8 {what}")))
    }

    /// Fails with a "trailing bytes" diagnostic unless everything was
    /// consumed — a container with extra bytes is as corrupt as a short one.
    pub fn finish(&self, what: &str) -> Result<(), CheckpointError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(CheckpointError::Corrupt(format!(
                "{} trailing byte(s) after {what}",
                self.buf.len()
            )))
        }
    }
}

fn push_string(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------------
// Sectioned container
// ---------------------------------------------------------------------------

/// Serializes named sections into a v2 container with a whole-body CRC plus
/// one CRC per section payload.
pub fn write_container(sections: &[(&str, Vec<u8>)]) -> Vec<u8> {
    let mut body = Vec::new();
    body.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for (name, payload) in sections {
        push_string(&mut body, name);
        body.extend_from_slice(&crc32(payload).to_le_bytes());
        body.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        body.extend_from_slice(payload);
    }
    let mut out = Vec::with_capacity(MAGIC.len() + 8 + body.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Parses a v2 container, verifying the file CRC and every section CRC.
/// Returns `(name, payload)` pairs in file order.
pub fn read_container(bytes: &[u8]) -> Result<Vec<(String, Vec<u8>)>, CheckpointError> {
    let mut r = Reader::new(bytes);
    let magic = r.take(MAGIC.len(), "magic")?;
    if magic != MAGIC {
        return Err(CheckpointError::Corrupt("bad magic (not a RETIA checkpoint)".into()));
    }
    let version = r.get_u32_le("version")?;
    if version != FORMAT_VERSION {
        return Err(CheckpointError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let stored = r.get_u32_le("file CRC")?;
    let body = r.take(r.remaining(), "file body")?;
    let computed = crc32(body);
    if stored != computed {
        return Err(CheckpointError::CrcMismatch { section: "file".into(), stored, computed });
    }
    let mut r = Reader::new(body);
    let count = r.get_u32_le("section count")? as usize;
    let mut sections = Vec::with_capacity(count.min(64));
    for _ in 0..count {
        let name = r.get_string("section name")?;
        let stored = r.get_u32_le(&format!("CRC of section `{name}`"))?;
        let len = r.get_u64_le(&format!("length of section `{name}`"))? as usize;
        let payload = r.take(len, &format!("payload of section `{name}`"))?;
        let computed = crc32(payload);
        if stored != computed {
            return Err(CheckpointError::CrcMismatch { section: name, stored, computed });
        }
        sections.push((name, payload.to_vec()));
    }
    r.finish("last section")?;
    Ok(sections)
}

/// Looks up a required section by name.
pub fn require_section<'a>(
    sections: &'a [(String, Vec<u8>)],
    name: &str,
) -> Result<&'a [u8], CheckpointError> {
    sections
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, p)| p.as_slice())
        .ok_or_else(|| CheckpointError::MissingSection { section: name.to_string() })
}

// ---------------------------------------------------------------------------
// Named-tensor codec
// ---------------------------------------------------------------------------

/// Encodes `(name, tensor)` pairs as a section payload.
pub fn encode_tensors<'a>(items: impl Iterator<Item = (&'a str, &'a Tensor)>) -> Vec<u8> {
    let items: Vec<(&str, &Tensor)> = items.collect();
    let mut buf = Vec::new();
    buf.extend_from_slice(&(items.len() as u32).to_le_bytes());
    for (name, value) in items {
        push_string(&mut buf, name);
        buf.extend_from_slice(&(value.rows() as u32).to_le_bytes());
        buf.extend_from_slice(&(value.cols() as u32).to_le_bytes());
        for &x in value.data() {
            buf.extend_from_slice(&x.to_le_bytes());
        }
    }
    buf
}

/// Decodes a payload produced by [`encode_tensors`].
pub fn decode_tensors(payload: &[u8]) -> Result<Vec<(String, Tensor)>, CheckpointError> {
    let mut r = Reader::new(payload);
    let count = r.get_u32_le("tensor count")? as usize;
    let mut out = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let name = r.get_string("tensor name")?;
        let rows = r.get_u32_le("rows")? as usize;
        let cols = r.get_u32_le("cols")? as usize;
        let data = r.take(rows * cols * 4, &format!("data for `{name}`"))?;
        let mut t = Tensor::zeros(rows, cols);
        for (x, b) in t.data_mut().iter_mut().zip(data.chunks_exact(4)) {
            *x = f32::from_le_bytes([b[0], b[1], b[2], b[3]]);
        }
        out.push((name, t));
    }
    r.finish("tensor list")?;
    Ok(out)
}

// ---------------------------------------------------------------------------
// Atomic writes
// ---------------------------------------------------------------------------

fn temp_sibling(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map(|f| f.to_string_lossy().into_owned())
        .unwrap_or_else(|| "checkpoint".to_string());
    path.with_file_name(format!("{name}.tmp.{}", std::process::id()))
}

/// Crash-consistent file replacement: write `bytes` to a temp sibling,
/// fsync it, rename over `path`, fsync the directory. Either the old file
/// or the complete new file exists at `path` — never a torn mix.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    atomic_write_with(path, bytes, |w, b| w.write_all(b))
}

/// [`atomic_write`] with an injectable write path. `write_fn` receives the
/// open temp file and the bytes; if it errors (as a chaos harness's failing
/// writer does to simulate a crash mid-write), the temp file is removed and
/// the target is left exactly as it was.
pub fn atomic_write_with<F>(path: &Path, bytes: &[u8], write_fn: F) -> Result<(), CheckpointError>
where
    F: FnOnce(&mut dyn Write, &[u8]) -> std::io::Result<()>,
{
    let tmp = temp_sibling(path);
    let mut file = std::fs::File::create(&tmp)?;
    if let Err(e) = write_fn(&mut file, bytes).and_then(|()| file.sync_all()) {
        drop(file);
        let _ = std::fs::remove_file(&tmp);
        return Err(CheckpointError::Io(e));
    }
    drop(file);
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(CheckpointError::Io(e));
    }
    // Persist the rename itself. Directory fsync is a unix-ism; best effort.
    if let Some(dir) = path.parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// ParamStore persistence
// ---------------------------------------------------------------------------

impl ParamStore {
    /// Encodes all parameter *values* as a named-tensor payload (the
    /// `"params"` section body; no container framing).
    pub fn values_payload(&self) -> Vec<u8> {
        encode_tensors(self.iter())
    }

    /// Restores parameter values from a payload produced by
    /// [`ParamStore::values_payload`]. The store must already contain
    /// parameters with matching names and shapes (build the model first,
    /// then load); mismatches name the parameter and both shapes.
    pub fn load_values_payload(&mut self, payload: &[u8]) -> Result<(), CheckpointError> {
        let tensors = decode_tensors(payload)?;
        if tensors.len() != self.num_tensors() {
            return Err(CheckpointError::Corrupt(format!(
                "parameter count mismatch: checkpoint {}, model {}",
                tensors.len(),
                self.num_tensors()
            )));
        }
        // Validate everything before mutating anything, so a bad checkpoint
        // cannot leave the store half-loaded.
        for (name, t) in &tensors {
            self.check_shape(name, t.shape())?;
        }
        for (name, t) in tensors {
            *self.value_mut(&name) = t;
        }
        Ok(())
    }

    /// Encodes the Adam moment estimates as two named-tensor payloads
    /// `(m, v)` — the `"opt.m"` / `"opt.v"` sections of a train-state
    /// checkpoint.
    pub fn moments_payloads(&self) -> (Vec<u8>, Vec<u8>) {
        let m = encode_tensors(self.iter_moments().map(|(n, m, _)| (n, m)));
        let v = encode_tensors(self.iter_moments().map(|(n, _, v)| (n, v)));
        (m, v)
    }

    /// Restores Adam moment estimates from payloads produced by
    /// [`ParamStore::moments_payloads`].
    pub fn load_moments_payloads(&mut self, m: &[u8], v: &[u8]) -> Result<(), CheckpointError> {
        for (payload, which) in [(m, true), (v, false)] {
            let tensors = decode_tensors(payload)?;
            if tensors.len() != self.num_tensors() {
                return Err(CheckpointError::Corrupt(format!(
                    "optimizer moment count mismatch: checkpoint {}, model {}",
                    tensors.len(),
                    self.num_tensors()
                )));
            }
            for (name, t) in &tensors {
                self.check_shape(name, t.shape())?;
            }
            for (name, t) in tensors {
                self.set_moment(&name, which, t);
            }
        }
        Ok(())
    }

    /// Typed shape/name validation against the live store.
    fn check_shape(&self, name: &str, found: (usize, usize)) -> Result<(), CheckpointError> {
        if !self.contains(name) {
            return Err(CheckpointError::UnknownParam { param: name.to_string() });
        }
        let expected = self.value(name).shape();
        if expected != found {
            return Err(CheckpointError::ShapeMismatch {
                param: name.to_string(),
                expected,
                found,
            });
        }
        Ok(())
    }

    /// Serializes all parameter values as a single-section v2 container
    /// (not gradients / optimizer moments).
    pub fn to_bytes(&self) -> Vec<u8> {
        write_container(&[("params", self.values_payload())])
    }

    /// Restores parameter *values* from bytes produced by
    /// [`ParamStore::to_bytes`] (or any container with a `"params"`
    /// section, such as a full train-state checkpoint).
    pub fn load_bytes(&mut self, bytes: &[u8]) -> Result<(), CheckpointError> {
        let sections = read_container(bytes)?;
        self.load_values_payload(require_section(&sections, "params")?)
    }

    /// Writes a checkpoint file atomically (temp + fsync + rename).
    pub fn save_file(&self, path: &Path) -> Result<(), CheckpointError> {
        atomic_write(path, &self.to_bytes())
    }

    /// Loads a checkpoint file into an already-built store.
    pub fn load_file(&mut self, path: &Path) -> Result<(), CheckpointError> {
        let bytes = std::fs::read(path)?;
        self.load_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ParamStore {
        let mut s = ParamStore::new(5);
        s.register_xavier("a", 3, 4);
        s.register_xavier("b.w", 2, 2);
        s
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn roundtrip_preserves_values() {
        let src = store();
        let bytes = src.to_bytes();
        let mut dst = store();
        // Perturb, then restore.
        dst.value_mut("a").set(0, 0, 99.0);
        dst.load_bytes(&bytes).unwrap();
        assert_eq!(dst.value("a"), src.value("a"));
        assert_eq!(dst.value("b.w"), src.value("b.w"));
    }

    #[test]
    fn save_load_save_is_byte_identical() {
        let src = store();
        let bytes = src.to_bytes();
        let mut dst = store();
        dst.value_mut("a").fill_zero();
        dst.load_bytes(&bytes).unwrap();
        assert_eq!(dst.to_bytes(), bytes, "save -> load -> save must be byte-identical");
    }

    #[test]
    fn file_roundtrip() {
        let src = store();
        let path = std::env::temp_dir().join(format!("retia_ckpt_{}.bin", std::process::id()));
        src.save_file(&path).unwrap();
        let mut dst = store();
        dst.value_mut("a").fill_zero();
        dst.load_file(&path).unwrap();
        assert_eq!(dst.value("a"), src.value("a"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn atomic_write_failure_preserves_previous_file() {
        let path = std::env::temp_dir().join(format!("retia_atomic_{}.bin", std::process::id()));
        std::fs::write(&path, b"previous checkpoint").unwrap();
        let err = atomic_write_with(&path, b"new bytes", |w, b| {
            w.write_all(&b[..4])?;
            Err(std::io::Error::other("injected crash"))
        })
        .unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)), "{err}");
        assert_eq!(std::fs::read(&path).unwrap(), b"previous checkpoint");
        // The temp sibling must not linger.
        let dir = path.parent().unwrap();
        let stray: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("retia_atomic_") && n.contains(".tmp."))
            .collect();
        assert!(stray.is_empty(), "leftover temp files: {stray:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let mut dst = store();
        let err = dst.load_bytes(b"NOTMAGIC________").unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt(_)));
    }

    #[test]
    fn rejects_old_version() {
        let mut bytes = store().to_bytes();
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        let err = store().load_bytes(&bytes).unwrap_err();
        assert!(
            matches!(err, CheckpointError::UnsupportedVersion { found: 1, supported: 2 }),
            "{err}"
        );
    }

    #[test]
    fn rejects_truncated() {
        let src = store();
        let bytes = src.to_bytes();
        let mut dst = store();
        let err = dst.load_bytes(&bytes[..bytes.len() - 5]).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Corrupt(_) | CheckpointError::CrcMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn rejects_single_bit_flip_with_crc_diagnostic() {
        let bytes = store().to_bytes();
        // Flip one bit in the middle of the tensor data.
        let mut flipped = bytes.clone();
        let off = bytes.len() - 10;
        flipped[off] ^= 0x10;
        let err = store().load_bytes(&flipped).unwrap_err();
        assert!(matches!(err, CheckpointError::CrcMismatch { .. }), "{err}");
    }

    #[test]
    fn shape_mismatch_names_param_and_both_shapes() {
        let src = store();
        let bytes = src.to_bytes();
        let mut other = ParamStore::new(5);
        other.register_xavier("a", 3, 4);
        other.register_xavier("b.w", 2, 3); // different shape
        let err = other.load_bytes(&bytes).unwrap_err();
        match &err {
            CheckpointError::ShapeMismatch { param, expected, found } => {
                assert_eq!(param, "b.w");
                assert_eq!(*expected, (2, 3));
                assert_eq!(*found, (2, 2));
            }
            other => panic!("expected ShapeMismatch, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("b.w") && msg.contains("2x3") && msg.contains("2x2"), "{msg}");
        // Validation happens before mutation: the store must be untouched.
        assert_eq!(other.value("a").shape(), (3, 4));
    }

    #[test]
    fn rejects_unknown_parameter() {
        let src = store();
        let bytes = src.to_bytes();
        let mut other = ParamStore::new(5);
        other.register_xavier("a", 3, 4);
        other.register_xavier("c.w", 2, 2); // different name
        let err = other.load_bytes(&bytes).unwrap_err();
        assert!(matches!(err, CheckpointError::UnknownParam { .. }), "{err}");
        assert!(err.to_string().contains("b.w"), "{err}");
    }

    #[test]
    fn missing_section_is_typed() {
        let bytes = write_container(&[("not-params", vec![1, 2, 3])]);
        let err = store().load_bytes(&bytes).unwrap_err();
        assert!(
            matches!(err, CheckpointError::MissingSection { ref section } if section == "params"),
            "{err}"
        );
    }

    #[test]
    fn container_roundtrips_multiple_sections() {
        let sections = [("alpha", vec![1u8, 2, 3]), ("beta", Vec::new()), ("gamma", vec![255u8])];
        let bytes = write_container(&sections);
        let back = read_container(&bytes).unwrap();
        assert_eq!(back.len(), 3);
        for ((n0, p0), (n1, p1)) in sections.iter().zip(back.iter()) {
            assert_eq!(n0, n1);
            assert_eq!(p0, p1);
        }
        assert_eq!(require_section(&back, "beta").unwrap(), &[] as &[u8]);
        assert!(require_section(&back, "delta").is_err());
    }

    #[test]
    fn moments_roundtrip() {
        let mut src = store();
        // Give the moments non-trivial values via a fake gradient step.
        let id = src.id("a");
        src.accumulate_grad(id, &Tensor::ones(3, 4));
        let mut adam = crate::optim::Adam::new(0.1);
        adam.step(&mut src);
        let (m, v) = src.moments_payloads();
        let mut dst = store();
        dst.load_moments_payloads(&m, &v).unwrap();
        let (m2, v2) = dst.moments_payloads();
        assert_eq!(m, m2);
        assert_eq!(v, v2);
    }
}
