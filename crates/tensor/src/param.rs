//! Named parameter store.
//!
//! Models register their learnable tensors here once; every training step the
//! autodiff [`crate::Graph`] pulls current values out by name and pushes
//! gradients back in, and the optimizer updates values (and its per-parameter
//! moment estimates) in place.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::init;
use crate::tensor::Tensor;

/// Opaque handle to a parameter inside a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

#[derive(Clone, Debug)]
pub(crate) struct Param {
    pub(crate) name: String,
    pub(crate) value: Tensor,
    pub(crate) grad: Tensor,
    /// First-moment estimate (Adam).
    pub(crate) m: Tensor,
    /// Second-moment estimate (Adam).
    pub(crate) v: Tensor,
}

/// Collection of named learnable tensors with their gradients and optimizer
/// state. All registration happens up front; training only reads and writes.
#[derive(Clone, Debug)]
pub struct ParamStore {
    by_name: HashMap<String, ParamId>,
    params: Vec<Param>,
    seed: u64,
    next_init: u64,
}

impl ParamStore {
    /// Creates an empty store whose initializers derive from `seed`.
    pub fn new(seed: u64) -> Self {
        ParamStore { by_name: HashMap::new(), params: Vec::new(), seed, next_init: 0 }
    }

    /// Registers a parameter with an explicit initial value.
    ///
    /// # Panics
    /// Panics if a parameter with the same name already exists.
    pub fn register(&mut self, name: &str, value: Tensor) -> ParamId {
        assert!(!self.by_name.contains_key(name), "parameter `{name}` registered twice");
        let (r, c) = value.shape();
        let id = ParamId(self.params.len());
        self.params.push(Param {
            name: name.to_string(),
            value,
            grad: Tensor::zeros(r, c),
            m: Tensor::zeros(r, c),
            v: Tensor::zeros(r, c),
        });
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Registers a parameter initialized with Xavier/Glorot uniform values.
    pub fn register_xavier(&mut self, name: &str, rows: usize, cols: usize) -> ParamId {
        let mut rng = self.next_rng();
        let t = init::xavier_uniform(rows, cols, &mut rng);
        self.register(name, t)
    }

    /// Registers a parameter initialized to zeros (typical for biases).
    pub fn register_zeros(&mut self, name: &str, rows: usize, cols: usize) -> ParamId {
        self.register(name, Tensor::zeros(rows, cols))
    }

    /// Registers a parameter with normal(0, std) values.
    pub fn register_normal(&mut self, name: &str, rows: usize, cols: usize, std: f32) -> ParamId {
        let mut rng = self.next_rng();
        let t = init::normal(rows, cols, std, &mut rng);
        self.register(name, t)
    }

    fn next_rng(&mut self) -> StdRng {
        let s = self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(self.next_init);
        self.next_init += 1;
        StdRng::seed_from_u64(s)
    }

    /// Looks up a parameter id by name.
    ///
    /// # Panics
    /// Panics if no such parameter exists.
    pub fn id(&self, name: &str) -> ParamId {
        assert!(self.by_name.contains_key(name), "unknown parameter `{name}`");
        self.by_name[name]
    }

    /// True if a parameter with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// Current value of a parameter by name.
    pub fn value(&self, name: &str) -> &Tensor {
        &self.params[self.id(name).0].value
    }

    /// Current value by id.
    pub fn value_by_id(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    /// Mutable value by name (used by tests and manual tweaks).
    pub fn value_mut(&mut self, name: &str) -> &mut Tensor {
        let id = self.id(name);
        &mut self.params[id.0].value
    }

    /// Accumulated gradient of a parameter by name.
    pub fn grad(&self, name: &str) -> &Tensor {
        &self.params[self.id(name).0].grad
    }

    /// Adds `g` into the gradient accumulator of `id`.
    pub fn accumulate_grad(&mut self, id: ParamId, g: &Tensor) {
        self.params[id.0].grad.add_assign(g);
    }

    /// Zeroes all gradient accumulators.
    pub fn zero_grad(&mut self) {
        for p in &mut self.params {
            p.grad.fill_zero();
        }
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn num_tensors(&self) -> usize {
        self.params.len()
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Iterates over `(name, value)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.params.iter().map(|p| (p.name.as_str(), &p.value))
    }

    /// Iterates over `(name, gradient)` pairs in registration order. Used by
    /// training-health instrumentation (per-parameter norms, NaN scans).
    pub fn iter_grads(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.params.iter().map(|p| (p.name.as_str(), &p.grad))
    }

    /// Mutable access to every gradient accumulator in registration order.
    /// Exists for fault injection (the chaos harness poisons gradients
    /// in-place between backward and the optimizer step).
    pub fn iter_grads_mut(&mut self) -> impl Iterator<Item = (&str, &mut Tensor)> {
        self.params.iter_mut().map(|p| (p.name.as_str(), &mut p.grad))
    }

    /// Iterates over `(name, m, v)` Adam moment estimates in registration
    /// order. Used by full train-state checkpoints.
    pub fn iter_moments(&self) -> impl Iterator<Item = (&str, &Tensor, &Tensor)> {
        self.params.iter().map(|p| (p.name.as_str(), &p.m, &p.v))
    }

    /// Overwrites one Adam moment estimate (`first == true` selects `m`,
    /// otherwise `v`). Used when restoring a train-state checkpoint.
    ///
    /// # Panics
    /// Panics if the parameter does not exist (checkpoint loaders validate
    /// names first and report a typed error).
    pub fn set_moment(&mut self, name: &str, first: bool, t: Tensor) {
        let id = self.id(name);
        let p = &mut self.params[id.0];
        if first {
            p.m = t;
        } else {
            p.v = t;
        }
    }

    /// Global gradient L2 norm over all parameters.
    pub fn grad_norm(&self) -> f32 {
        self.params.iter().map(|p| p.grad.norm_sq()).sum::<f32>().sqrt()
    }

    /// Scales all gradients by `s` (used by gradient clipping).
    pub fn scale_grads(&mut self, s: f32) {
        for p in &mut self.params {
            p.grad.map_inplace(|x| x * s);
        }
    }

    pub(crate) fn params_mut(&mut self) -> &mut [Param] {
        &mut self.params
    }

    /// Copies all parameter values from `other` (shapes and names must match;
    /// optimizer state is not copied). Used by online-training checkpoints.
    pub fn copy_values_from(&mut self, other: &ParamStore) {
        assert_eq!(self.params.len(), other.params.len(), "param count mismatch");
        for (dst, src) in self.params.iter_mut().zip(other.params.iter()) {
            assert_eq!(dst.name, src.name, "param name mismatch");
            dst.value = src.value.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut s = ParamStore::new(1);
        let id = s.register("w", Tensor::ones(2, 3));
        assert_eq!(s.id("w"), id);
        assert_eq!(s.value("w").shape(), (2, 3));
        assert_eq!(s.num_tensors(), 1);
        assert_eq!(s.num_scalars(), 6);
        assert!(s.contains("w"));
        assert!(!s.contains("nope"));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_name_panics() {
        let mut s = ParamStore::new(1);
        s.register("w", Tensor::ones(1, 1));
        s.register("w", Tensor::ones(1, 1));
    }

    #[test]
    #[should_panic(expected = "unknown parameter")]
    fn unknown_name_panics() {
        let s = ParamStore::new(1);
        s.id("missing");
    }

    #[test]
    fn grad_accumulation_and_zero() {
        let mut s = ParamStore::new(1);
        let id = s.register("w", Tensor::zeros(1, 2));
        s.accumulate_grad(id, &Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        s.accumulate_grad(id, &Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        assert_eq!(s.grad("w").data(), &[2.0, 4.0]);
        assert!((s.grad_norm() - 20.0f32.sqrt()).abs() < 1e-6);
        s.zero_grad();
        assert_eq!(s.grad("w").data(), &[0.0, 0.0]);
    }

    #[test]
    fn xavier_init_is_deterministic_per_seed() {
        let mut a = ParamStore::new(42);
        let mut b = ParamStore::new(42);
        a.register_xavier("w", 4, 4);
        b.register_xavier("w", 4, 4);
        assert_eq!(a.value("w"), b.value("w"));

        let mut c = ParamStore::new(43);
        c.register_xavier("w", 4, 4);
        assert_ne!(a.value("w"), c.value("w"));
    }

    #[test]
    fn same_store_distinct_params_differ() {
        let mut s = ParamStore::new(7);
        s.register_xavier("a", 4, 4);
        s.register_xavier("b", 4, 4);
        assert_ne!(s.value("a"), s.value("b"));
    }

    #[test]
    fn copy_values_from_other_store() {
        let mut a = ParamStore::new(1);
        a.register("w", Tensor::ones(2, 2));
        let mut b = ParamStore::new(2);
        b.register("w", Tensor::zeros(2, 2));
        b.copy_values_from(&a);
        assert_eq!(b.value("w"), a.value("w"));
    }
}
