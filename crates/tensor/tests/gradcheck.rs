//! Property-based gradient checks: random chains of differentiable ops are
//! validated against central finite differences. This complements the
//! per-op checks in `autodiff::tests` by exercising op *compositions* the
//! model actually builds.

use proptest::prelude::*;
use retia_tensor::{Graph, NodeId, ParamStore, Tensor};
use std::rc::Rc;

/// The smooth unary ops eligible for random chaining (ReLU-family excluded:
/// finite differences are unreliable at kinks).
#[derive(Clone, Copy, Debug)]
enum UnaryOp {
    Sigmoid,
    Tanh,
    Sin,
    Cos,
    Scale,
    AddScalar,
    SoftmaxRows,
    NormalizeRows,
}

fn apply(op: UnaryOp, g: &mut Graph, x: NodeId) -> NodeId {
    match op {
        UnaryOp::Sigmoid => g.sigmoid(x),
        UnaryOp::Tanh => g.tanh(x),
        UnaryOp::Sin => g.sin(x),
        UnaryOp::Cos => g.cos(x),
        UnaryOp::Scale => g.scale(x, 0.7),
        UnaryOp::AddScalar => g.add_scalar(x, -0.3),
        UnaryOp::SoftmaxRows => g.softmax_rows(x),
        UnaryOp::NormalizeRows => g.normalize_rows(x),
    }
}

fn arb_op() -> impl Strategy<Value = UnaryOp> {
    prop_oneof![
        Just(UnaryOp::Sigmoid),
        Just(UnaryOp::Tanh),
        Just(UnaryOp::Sin),
        Just(UnaryOp::Cos),
        Just(UnaryOp::Scale),
        Just(UnaryOp::AddScalar),
        Just(UnaryOp::SoftmaxRows),
        Just(UnaryOp::NormalizeRows),
    ]
}

fn run_chain(ops: &[UnaryOp], x0: &Tensor, weights: &Tensor) -> (f32, Tensor) {
    let mut store = ParamStore::new(0);
    store.register("x", x0.clone());
    let mut g = Graph::new(false, 0);
    let mut node = g.param(&store, "x");
    for &op in ops {
        node = apply(op, &mut g, node);
    }
    // Mix with fixed weights so every coordinate matters, then reduce.
    let w = g.constant(weights.clone());
    let mixed = g.mul(node, w);
    let loss = g.sum_all(mixed);
    let v = g.value(loss).item();
    g.backward(loss, &mut store);
    (v, store.grad("x").clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_op_chains_gradcheck(
        ops in prop::collection::vec(arb_op(), 1..5),
        data in prop::collection::vec(0.2f32..1.5, 6),
        wdata in prop::collection::vec(0.5f32..1.0, 6),
    ) {
        let x0 = Tensor::from_vec(2, 3, data);
        let weights = Tensor::from_vec(2, 3, wdata);
        let (_, analytic) = run_chain(&ops, &x0, &weights);

        let h = 1e-3f32;
        for i in 0..2 {
            for j in 0..3 {
                let mut xp = x0.clone();
                xp.set(i, j, x0.get(i, j) + h);
                let (fp, _) = run_chain(&ops, &xp, &weights);
                let mut xm = x0.clone();
                xm.set(i, j, x0.get(i, j) - h);
                let (fm, _) = run_chain(&ops, &xm, &weights);
                let numeric = (fp - fm) / (2.0 * h);
                let a = analytic.get(i, j);
                let scale = a.abs().max(numeric.abs()).max(0.1);
                prop_assert!(
                    (a - numeric).abs() / scale < 0.05,
                    "ops {:?} at ({},{}): analytic {} vs numeric {}",
                    ops, i, j, a, numeric
                );
            }
        }
    }

    #[test]
    fn gather_matmul_chain_gradcheck(
        data in prop::collection::vec(-1.0f32..1.0, 12),
        idx in prop::collection::vec(0u32..4, 5),
    ) {
        let x0 = Tensor::from_vec(4, 3, data);
        let w = Tensor::from_fn(3, 2, |i, j| 0.3 * (i as f32 - j as f32));
        let idx = Rc::new(idx);

        let run = |x0: &Tensor| -> (f32, Tensor) {
            let mut store = ParamStore::new(0);
            store.register("x", x0.clone());
            let mut g = Graph::new(false, 0);
            let x = g.param(&store, "x");
            let gathered = g.gather_rows(x, idx.clone());
            let wn = g.constant(w.clone());
            let y = g.matmul(gathered, wn);
            let t = g.tanh(y);
            let loss = g.sum_all(t);
            let v = g.value(loss).item();
            g.backward(loss, &mut store);
            (v, store.grad("x").clone())
        };
        let (_, analytic) = run(&x0);
        let h = 1e-3f32;
        for i in 0..4 {
            for j in 0..3 {
                let mut xp = x0.clone();
                xp.set(i, j, x0.get(i, j) + h);
                let mut xm = x0.clone();
                xm.set(i, j, x0.get(i, j) - h);
                let numeric = (run(&xp).0 - run(&xm).0) / (2.0 * h);
                let a = analytic.get(i, j);
                prop_assert!(
                    (a - numeric).abs() < 0.02,
                    "({},{}) analytic {} numeric {}", i, j, a, numeric
                );
            }
        }
    }
}
