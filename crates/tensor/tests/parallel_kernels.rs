//! Bit-identity of the chunked-parallel kernels across thread counts.
//!
//! The parallel layer's contract is that the execution plan is a function of
//! shape only, so every kernel must produce bit-for-bit the same output at
//! any `RETIA_NUM_THREADS`. Shapes here are chosen large enough to clear the
//! `should_par` work threshold, so the multi-thread runs genuinely spawn
//! workers.

use retia_tensor::{parallel, Graph, ParamStore, Tensor};
use std::sync::{Mutex, MutexGuard};

/// The thread-count override is process-global; serialize tests that sweep it.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Deterministic pseudo-random tensor (SplitMix64, fixed seed per call site).
fn rand_tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut state = seed;
    Tensor::from_fn(rows, cols, |_, _| {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        ((z >> 40) as f32) / (1u64 << 24) as f32 - 0.5
    })
}

fn assert_bits_eq(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape");
    for (x, y) in a.data().iter().zip(b.data().iter()) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: value differs across thread counts");
    }
}

/// Runs `f` once per thread count and asserts all results are bit-identical.
fn sweep_threads(what: &str, f: impl Fn() -> Tensor) {
    let _guard = lock();
    parallel::set_num_threads(1);
    let reference = f();
    for threads in [2usize, 3, 8] {
        parallel::set_num_threads(threads);
        let got = f();
        assert_bits_eq(&reference, &got, what);
    }
    parallel::set_num_threads(0);
}

#[test]
fn matmul_bit_identical_across_threads() {
    let a = rand_tensor(200, 64, 1);
    let b = rand_tensor(64, 80, 2);
    assert!(parallel::should_par(200, 2 * 64 * 80), "shape must exercise the parallel path");
    sweep_threads("matmul", || a.matmul(&b));
}

#[test]
fn matmul_nt_bit_identical_across_threads() {
    let a = rand_tensor(200, 64, 3);
    let b = rand_tensor(80, 64, 4);
    sweep_threads("matmul_nt", || a.matmul_nt(&b));
}

#[test]
fn matmul_nt_range_shards_concatenate_bit_identical() {
    // The entity-sharded decode contract: scoring candidate row ranges with
    // "matmul_nt_range" and concatenating the columns must reproduce the
    // unsharded matmul_nt bit for bit, at any thread count and any shard
    // split (each output element is the same sequential dot product).
    let a = rand_tensor(50, 64, 30);
    let b = rand_tensor(80, 64, 31);
    let reference = {
        let _guard = lock();
        parallel::set_num_threads(1);
        let r = a.matmul_nt(&b);
        parallel::set_num_threads(0);
        r
    };
    for shards in [1usize, 2, 3, 7, 80] {
        let bounds: Vec<usize> = (0..=shards).map(|s| s * b.rows() / shards).collect();
        let parts: Vec<Tensor> =
            bounds.windows(2).map(|w| a.matmul_nt_range(&b, w[0], w[1])).collect();
        let mut stitched = Tensor::zeros(a.rows(), b.rows());
        for i in 0..a.rows() {
            let mut col = 0usize;
            for part in &parts {
                let dst = i * b.rows() + col;
                stitched.data_mut()[dst..dst + part.cols()].copy_from_slice(part.row(i));
                col += part.cols();
            }
        }
        assert_bits_eq(&reference, &stitched, &format!("matmul_nt_range at {shards} shards"));
    }
}

#[test]
fn matmul_tn_bit_identical_across_threads() {
    let a = rand_tensor(64, 200, 5);
    let b = rand_tensor(64, 80, 6);
    assert!(parallel::should_par(200, 2 * 64 * 80));
    sweep_threads("matmul_tn", || a.matmul_tn(&b));
}

#[test]
fn matmul_tn_matches_explicit_transpose() {
    // The tn kernel was restructured for row-chunking; pin its values to the
    // unambiguous reference `transpose().matmul()` computed the plain way.
    let a = rand_tensor(64, 200, 7);
    let b = rand_tensor(64, 80, 8);
    let got = a.matmul_tn(&b);
    let want = a.transpose().matmul(&b);
    assert_eq!(got.shape(), want.shape());
    for (x, y) in got.data().iter().zip(want.data().iter()) {
        // Same multiply-add sequence per element in both kernels.
        assert_eq!(x.to_bits(), y.to_bits(), "tn kernel drifted from reference");
    }
}

#[test]
fn gather_softmax_bit_identical_across_threads() {
    let table = rand_tensor(300, 48, 9);
    let indices: Vec<u32> = (0..4096u32).map(|i| (i * 37) % 300).collect();
    sweep_threads("gather_rows", || table.gather_rows(&indices));

    let logits = rand_tensor(400, 96, 10);
    sweep_threads("softmax_rows", || logits.softmax_rows());
}

#[test]
fn scatter_add_rows_bit_identical_across_threads() {
    // scatter_add_rows executes sequentially by design (destination rows
    // collide), but it sits in the same kernel family and its output must
    // still be invariant to the configured thread count.
    let msgs = rand_tensor(4096, 48, 14);
    let indices: Vec<u32> = (0..4096u32).map(|i| (i * 131) % 300).collect();
    sweep_threads("scatter_add_rows", || msgs.scatter_add_rows(&indices, 300));
}

#[test]
fn kernels_pass_write_set_tracking() {
    // Debug-assertions race detector: run the row-chunked kernels with
    // write-set recording on and assert each invocation verified disjoint,
    // exactly-covering chunk writes (release builds: tracking is a no-op).
    let _guard = lock();
    parallel::writeset::set_tracking(true);
    let before = parallel::writeset::verified_count();
    parallel::set_num_threads(4);
    let a = rand_tensor(200, 64, 15);
    let b = rand_tensor(64, 80, 16);
    let _ = a.matmul(&b);
    let table = rand_tensor(300, 48, 17);
    let indices: Vec<u32> = (0..4096u32).map(|i| (i * 37) % 300).collect();
    let _ = table.gather_rows(&indices);
    parallel::set_num_threads(0);
    parallel::writeset::set_tracking(false);
    if cfg!(debug_assertions) {
        assert!(
            parallel::writeset::verified_count() > before,
            "write-set tracker verified nothing in a debug build"
        );
    }
}

#[test]
fn conv1d_forward_and_backward_bit_identical_across_threads() {
    let (batch, in_ch, out_ch, width, ksize) = (128usize, 2usize, 3usize, 64usize, 3usize);
    assert!(parallel::should_par(batch, 2 * out_ch * width * in_ch * ksize));
    let x0 = rand_tensor(batch, in_ch * width, 11);
    let w0 = rand_tensor(out_ch, in_ch * ksize, 12);
    let b0 = rand_tensor(1, out_ch, 13);
    let targets = std::rc::Rc::new(
        (0..batch as u32).map(|i| i % (out_ch as u32 * width as u32)).collect::<Vec<u32>>(),
    );

    let run = || -> (Tensor, Tensor, Tensor, Tensor) {
        let mut store = ParamStore::new(0);
        store.register("x", x0.clone());
        store.register("w", w0.clone());
        store.register("b", b0.clone());
        let mut g = Graph::new(true, 0);
        let x = g.param(&store, "x");
        let w = g.param(&store, "w");
        let b = g.param(&store, "b");
        let y = g.conv1d(x, w, b, in_ch, out_ch, ksize);
        let loss = g.softmax_xent(y, targets.clone());
        let out = g.value(y).clone();
        g.backward(loss, &mut store);
        (out, store.grad("x").clone(), store.grad("w").clone(), store.grad("b").clone())
    };

    let _guard = lock();
    parallel::set_num_threads(1);
    let (y1, gx1, gw1, gb1) = run();
    for threads in [2usize, 8] {
        parallel::set_num_threads(threads);
        let (y, gx, gw, gb) = run();
        assert_bits_eq(&y1, &y, "conv1d forward");
        assert_bits_eq(&gx1, &gx, "conv1d grad x");
        assert_bits_eq(&gw1, &gw, "conv1d grad w");
        assert_bits_eq(&gb1, &gb, "conv1d grad b");
    }
    parallel::set_num_threads(0);
}
