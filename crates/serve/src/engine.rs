//! The query engine: a single thread owning the frozen model, the history
//! window and the embedding cache, fed through a job queue.
//!
//! Concurrency model: HTTP workers parse requests and enqueue jobs; the
//! engine thread drains the whole queue each time it wakes, so every burst
//! of concurrent query jobs is coalesced into **one** decode batch — the
//! micro-batcher falls out of the queue discipline rather than a timer.
//! Jobs are processed in arrival order (an ingest between two queries
//! re-scores the later one against the advanced window), with consecutive
//! query jobs fused into a single `[Q, N]` / `[Q, M]` scoring matmul.
//!
//! The cache holds the detached last-`k` embedding matrices per window
//! *epoch* (bumped on every ingest), keyed by `(window_end, epoch)`. A query
//! against a cached epoch is a decode plus a bounded top-k heap; the first
//! query after an ingest pays one recurrence over the window.
//!
//! Two scale-out levers sit on top of that model:
//!
//! - **Admission control**: the job queue is bounded ([`EngineOptions::queue_cap`]).
//!   A full queue bounces the submission with [`EngineError::Overloaded`]
//!   (HTTP `429` + `Retry-After`) instead of letting latency and memory grow
//!   without limit. Control jobs (stop/pause) are exempt.
//! - **Sharded entity decode** ([`EngineOptions::decode_shards`]): candidate
//!   scoring — the O(|E|) hot loop — splits across scoped threads by entity
//!   range and merges with the same deterministic total order the
//!   single-thread path uses, so ranks stay bit-identical at any shard count.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use retia::{FrozenModel, FrozenStates};
use retia_eval::{top_k, top_k_sharded};
use retia_graph::{group_by_timestamp, HyperSnapshot, Quad, Snapshot};
use retia_obs::trace::{self, TraceFrame};

use crate::online::IngestLog;
use crate::stages;

/// What a single query predicts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryKind {
    /// Object (or subject, via inverse relation ids) prediction
    /// `(s, r, ?)` over `N` entity candidates.
    Entity,
    /// Relation prediction `(s, ?, o)` over the `M` original relations.
    Relation,
}

/// One prediction query. For [`QueryKind::Entity`], `b` is a relation id
/// (possibly an inverse id `r + M`); for [`QueryKind::Relation`], `b` is the
/// object entity id.
#[derive(Clone, Copy, Debug)]
pub struct Query {
    /// What is predicted.
    pub kind: QueryKind,
    /// Subject entity id.
    pub subject: u32,
    /// Relation id (entity queries) or object entity id (relation queries).
    pub b: u32,
    /// How many candidates to return.
    pub k: usize,
}

/// Ranked candidates for one query, best first. Scores are the summed
/// per-timestamp softmax probabilities of Eq. 13/14 — bit-identical to what
/// offline evaluation ranks.
#[derive(Clone, Debug)]
pub struct TopK {
    /// `(candidate id, score)`, descending score, index-ascending ties.
    pub candidates: Vec<(u32, f32)>,
}

/// Answer to a batch of queries submitted together.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// Timestamp of the newest snapshot in the window scores decode from.
    pub window_end: u32,
    /// Window epoch the scores were computed against.
    pub epoch: u64,
    /// One [`TopK`] per submitted query, in order.
    pub results: Vec<TopK>,
    /// Nanoseconds this job waited in the engine queue before service began
    /// (includes jobs ahead of it in the same drained batch).
    pub queue_wait_ns: u64,
    /// Nanoseconds of engine service time; shared by every job of a fused
    /// decode batch (the batch is one unit of work).
    pub service_ns: u64,
}

/// Summary of an accepted ingest.
#[derive(Clone, Debug)]
pub struct IngestResponse {
    /// Facts added to the window.
    pub accepted: usize,
    /// Oldest timestamp still inside the window.
    pub window_start: u32,
    /// Newest timestamp in the window.
    pub window_end: u32,
    /// Snapshots in the window (≤ the config's `k`).
    pub window_len: usize,
    /// Epoch after the ingest.
    pub epoch: u64,
    /// Nanoseconds this job waited in the engine queue before service began.
    pub queue_wait_ns: u64,
    /// Nanoseconds the ingest itself took (validation through cache warm).
    pub service_ns: u64,
}

/// Typed engine failures, mapped to HTTP statuses by the server layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// A query referenced an out-of-range entity/relation id.
    InvalidQuery(String),
    /// An ingest payload was empty, out of range, or out of order.
    InvalidIngest(String),
    /// A model swap offered a model whose shape does not match the one
    /// being served (different entity/relation counts or window size).
    InvalidSwap(String),
    /// The engine has shut down; no further jobs are served.
    Stopped,
    /// The bounded job queue is full: admission control sheds the job
    /// instead of queueing unboundedly. Mapped to `429` + `Retry-After`.
    Overloaded,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::InvalidQuery(m) => write!(f, "invalid query: {m}"),
            EngineError::InvalidIngest(m) => write!(f, "invalid ingest: {m}"),
            EngineError::InvalidSwap(m) => write!(f, "invalid swap: {m}"),
            EngineError::Stopped => f.write_str("engine stopped"),
            EngineError::Overloaded => f.write_str("engine job queue full; retry later"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Engine tuning knobs, surfaced as serve/CLI configuration.
#[derive(Clone, Debug)]
pub struct EngineOptions {
    /// Bound on queued jobs (admission control). Submissions beyond it get
    /// [`EngineError::Overloaded`] instead of queueing without limit.
    pub queue_cap: usize,
    /// Threads the entity decode shards candidate scoring across
    /// (`1` = the fused single-thread path). Any value produces bit-identical
    /// ranks; see `FrozenModel::decode_entity_sharded`.
    pub decode_shards: usize,
    /// Durability log: accepted ingest facts are appended here as
    /// CRC-stamped JSONL **before** the epoch bump, so a crashed server
    /// rebuilds the same window on restart (see [`crate::online::IngestLog`]).
    pub ingest_log: Option<PathBuf>,
    /// Durable store directory: accepted ingest facts are appended to the
    /// store's binary fact log **before** the epoch bump (the successor of
    /// `ingest_log`; see `retia_store::Appender`). The store must already
    /// exist — the CLI creates it at boot.
    pub store: Option<PathBuf>,
}

impl Default for EngineOptions {
    fn default() -> EngineOptions {
        EngineOptions { queue_cap: 256, decode_shards: 1, ingest_log: None, store: None }
    }
}

/// Lock-free counters shared between the engine thread, the online
/// supervisor and `/healthz` — liveness checks must answer without queueing
/// an engine job behind decode work.
#[derive(Debug, Default)]
pub struct EngineStats {
    ingest_epoch: AtomicU64,
    model_epoch: AtomicU64,
    trained_epoch: AtomicU64,
}

impl EngineStats {
    /// Window epoch: bumped by every accepted `/v1/ingest`.
    pub fn ingest_epoch(&self) -> u64 {
        self.ingest_epoch.load(Ordering::Acquire)
    }

    /// Served-model version: bumped by every atomic swap (0 = boot model).
    pub fn model_epoch(&self) -> u64 {
        self.model_epoch.load(Ordering::Acquire)
    }

    /// Ingest epoch the served model was trained through.
    pub fn trained_epoch(&self) -> u64 {
        self.trained_epoch.load(Ordering::Acquire)
    }

    /// Ingest epochs the served model lags behind the window — the bounded
    /// staleness number `/healthz` and the `--max-staleness` breach use.
    pub fn staleness(&self) -> u64 {
        self.ingest_epoch().saturating_sub(self.trained_epoch())
    }
}

/// A candidate model offered to the engine for an atomic swap.
pub struct SwapRequest {
    /// The replacement model; must match the served shape exactly.
    pub model: FrozenModel,
    /// Ingest epoch whose window the candidate was trained on. Becomes the
    /// new [`EngineStats::trained_epoch`].
    pub trained_epoch: u64,
    /// States pre-evolved over the `trained_epoch` window, so the swap
    /// avoids paying the recurrence on the engine thread when no ingest
    /// raced the trainer. Ignored (and recomputed) if stale.
    pub states: Option<FrozenStates>,
}

/// Outcome of an accepted [`SwapRequest`].
#[derive(Clone, Copy, Debug)]
pub struct SwapResponse {
    /// Served-model version after the swap.
    pub model_epoch: u64,
    /// Whether the pre-evolved states were installed as-is (`false`: an
    /// ingest raced the trainer and the engine re-evolved the new window).
    pub states_reused: bool,
}

/// Snapshot of the engine's current history window, handed to the online
/// trainer as its training slice.
#[derive(Clone)]
pub struct WindowView {
    /// Window snapshots, oldest first (≤ the config's `k`).
    pub snaps: Vec<Snapshot>,
    /// Twin hyperrelation subgraphs, parallel with `snaps`.
    pub hypers: Vec<HyperSnapshot>,
    /// Ingest epoch this view was captured at.
    pub epoch: u64,
    /// Newest timestamp in the window.
    pub window_end: u32,
}

/// Reply channel for a job of response type `T`.
type Reply<T> = mpsc::Sender<Result<T, EngineError>>;

/// Request-scoped context captured at submission time: when the job entered
/// the queue (so the engine can attribute queue wait) and which trace frames
/// the submitting request carries (so engine-side spans land in its trace).
struct JobMeta {
    enqueued: Instant,
    enqueue_ns: u64,
    frames: Vec<TraceFrame>,
}

impl JobMeta {
    fn capture() -> JobMeta {
        JobMeta {
            enqueued: Instant::now(),
            enqueue_ns: retia_obs::now_ns(),
            frames: trace::current_frames(),
        }
    }

    /// Records the queue-wait segment (enqueue → `service_start`) into the
    /// submitting request's trace and returns it in nanoseconds.
    fn queue_wait(&self, service_start: Instant) -> u64 {
        let wait_ns = service_start.saturating_duration_since(self.enqueued).as_nanos() as u64;
        trace::record_stage(&self.frames, stages::QUEUE_WAIT, self.enqueue_ns, wait_ns);
        wait_ns
    }
}

enum Job {
    Query(Vec<Query>, Reply<QueryResponse>, JobMeta),
    Ingest(Vec<Quad>, Reply<IngestResponse>, JobMeta),
    /// Atomic model swap from the online trainer (boxed: a full model is
    /// orders of magnitude bigger than the other variants).
    Swap(Box<SwapRequest>, Reply<SwapResponse>),
    /// Window snapshot for the online trainer.
    Window(Reply<WindowView>),
    /// Test/ops hook: ack on the sender, then block until the receiver's
    /// sender side drops. Exempt from the queue cap (like `Stop`), so a
    /// paused engine can still be stopped.
    Pause(mpsc::Sender<()>, mpsc::Receiver<()>),
    Stop,
}

impl Job {
    /// Control jobs bypass admission control: shedding them would wedge
    /// shutdown, and they do no decode work. Trainer traffic (swap/window)
    /// is control too — one job at a time by construction, and shedding a
    /// swap under query load would starve adaptation exactly when the
    /// stream is busiest.
    fn is_control(&self) -> bool {
        matches!(self, Job::Stop | Job::Pause(..) | Job::Swap(..) | Job::Window(..))
    }
}

/// Outcome of a submission attempt against the bounded queue.
enum Admission {
    Accepted,
    Overloaded,
    Stopped,
}

#[derive(Default)]
struct QueueState {
    stopped: bool,
    jobs: VecDeque<Job>,
}

struct Shared {
    queue: Mutex<QueueState>,
    ready: Condvar,
    /// Admission-control bound on `QueueState::jobs` (control jobs exempt).
    cap: usize,
}

impl Shared {
    fn new(cap: usize) -> Shared {
        Shared { queue: Mutex::new(QueueState::default()), ready: Condvar::new(), cap: cap.max(1) }
    }

    /// Enqueues a job. [`Admission::Stopped`] once the engine has stopped
    /// (the job is dropped so submitters never block on a reply that cannot
    /// come); [`Admission::Overloaded`] when the bounded queue is full.
    fn push(&self, job: Job) -> Admission {
        let mut state = self.queue.lock().expect("engine queue poisoned");
        if state.stopped {
            return Admission::Stopped;
        }
        if !job.is_control() && state.jobs.len() >= self.cap {
            retia_obs::metrics::inc("serve.queue_rejected");
            return Admission::Overloaded;
        }
        state.jobs.push_back(job);
        retia_obs::metrics::set_gauge("serve.queue_depth", state.jobs.len() as f64);
        self.ready.notify_one();
        Admission::Accepted
    }

    /// Blocks until at least one job is queued, then drains everything —
    /// the natural micro-batch.
    fn drain(&self) -> Vec<Job> {
        let mut state = self.queue.lock().expect("engine queue poisoned");
        while state.jobs.is_empty() {
            state = self.ready.wait(state).expect("engine queue poisoned");
        }
        retia_obs::metrics::set_gauge("serve.queue_depth", 0.0);
        state.jobs.drain(..).collect()
    }

    /// Current queue length (for tests and gauges).
    fn depth(&self) -> usize {
        self.queue.lock().expect("engine queue poisoned").jobs.len()
    }

    /// Marks the queue stopped and discards anything still queued (their
    /// reply channels drop, surfacing [`EngineError::Stopped`]).
    fn mark_stopped(&self) {
        let mut state = self.queue.lock().expect("engine queue poisoned");
        state.stopped = true;
        state.jobs.clear();
        retia_obs::metrics::set_gauge("serve.queue_depth", 0.0);
    }
}

/// RAII handle returned by [`EngineHandle::pause`]: the engine thread stays
/// blocked (after finishing jobs queued ahead of the pause) until this guard
/// drops. Submissions keep queueing — and start bouncing with
/// [`EngineError::Overloaded`] once the bounded queue fills — which is
/// exactly the deterministic setup the admission-control tests need.
pub struct PauseGuard {
    // Dropping the sender unblocks the engine's `recv`.
    _release: mpsc::Sender<()>,
}

/// Cheap, cloneable submission handle used by the HTTP workers.
#[derive(Clone)]
pub struct EngineHandle {
    shared: Arc<Shared>,
    stats: Arc<EngineStats>,
}

impl EngineHandle {
    /// Scores `queries` against the current window; blocks until the engine
    /// thread answers.
    pub fn query(&self, queries: Vec<Query>) -> Result<QueryResponse, EngineError> {
        let (tx, rx) = mpsc::channel();
        match self.shared.push(Job::Query(queries, tx, JobMeta::capture())) {
            Admission::Stopped => Err(EngineError::Stopped),
            Admission::Overloaded => Err(EngineError::Overloaded),
            Admission::Accepted => rx.recv().unwrap_or(Err(EngineError::Stopped)),
        }
    }

    /// Appends `facts` to the stream, advancing the window and recomputing
    /// the embedding cache; blocks until done.
    pub fn ingest(&self, facts: Vec<Quad>) -> Result<IngestResponse, EngineError> {
        let (tx, rx) = mpsc::channel();
        match self.shared.push(Job::Ingest(facts, tx, JobMeta::capture())) {
            Admission::Stopped => Err(EngineError::Stopped),
            Admission::Overloaded => Err(EngineError::Overloaded),
            Admission::Accepted => rx.recv().unwrap_or(Err(EngineError::Stopped)),
        }
    }

    /// Atomically replaces the served model (and, when still fresh, its
    /// pre-evolved states); blocks until the engine thread has installed
    /// it. Queries drained in the same batch before the swap job see the
    /// old model; everything after sees the new one — there is no torn
    /// in-between state to observe.
    pub fn swap(&self, req: SwapRequest) -> Result<SwapResponse, EngineError> {
        let (tx, rx) = mpsc::channel();
        match self.shared.push(Job::Swap(Box::new(req), tx)) {
            Admission::Stopped => Err(EngineError::Stopped),
            Admission::Overloaded => Err(EngineError::Overloaded),
            Admission::Accepted => rx.recv().unwrap_or(Err(EngineError::Stopped)),
        }
    }

    /// Snapshot of the current history window (the online trainer's
    /// training slice); blocks until the engine thread answers.
    pub fn window(&self) -> Result<WindowView, EngineError> {
        let (tx, rx) = mpsc::channel();
        match self.shared.push(Job::Window(tx)) {
            Admission::Stopped => Err(EngineError::Stopped),
            Admission::Overloaded => Err(EngineError::Overloaded),
            Admission::Accepted => rx.recv().unwrap_or(Err(EngineError::Stopped)),
        }
    }

    /// The shared lock-free epoch/staleness counters.
    pub fn stats(&self) -> Arc<EngineStats> {
        Arc::clone(&self.stats)
    }

    /// Blocks the engine thread until the returned guard drops (jobs queued
    /// ahead of the pause finish first; the call returns once the engine has
    /// actually parked). `None` if the engine has stopped. Test/ops hook for
    /// exercising queue buildup deterministically.
    pub fn pause(&self) -> Option<PauseGuard> {
        let (ack_tx, ack_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel();
        match self.shared.push(Job::Pause(ack_tx, release_rx)) {
            Admission::Accepted => ack_rx.recv().ok().map(|()| PauseGuard { _release: release_tx }),
            _ => None,
        }
    }

    /// Number of jobs currently queued (tests and introspection).
    pub fn queue_depth(&self) -> usize {
        self.shared.depth()
    }

    /// Asks the engine thread to exit after the jobs already queued. Jobs
    /// enqueued after the stop marker get [`EngineError::Stopped`].
    pub fn stop(&self) {
        // A second stop after the engine exited is a no-op.
        let _ = self.shared.push(Job::Stop);
    }
}

/// The running engine: the handle plus the thread to join on shutdown.
pub struct Engine {
    handle: EngineHandle,
    thread: Option<JoinHandle<()>>,
}

impl Engine {
    /// Spawns the engine thread around a frozen model and the initial
    /// history window (the last `k` snapshots of the training stream;
    /// possibly empty), with default [`EngineOptions`].
    pub fn start(model: FrozenModel, window: Vec<Snapshot>) -> std::io::Result<Engine> {
        Engine::start_with(model, window, EngineOptions::default())
    }

    /// [`Engine::start`] with explicit queue bound and decode sharding.
    pub fn start_with(
        model: FrozenModel,
        window: Vec<Snapshot>,
        opts: EngineOptions,
    ) -> std::io::Result<Engine> {
        let shared = Arc::new(Shared::new(opts.queue_cap));
        let stats = Arc::new(EngineStats::default());
        let handle = EngineHandle { shared: Arc::clone(&shared), stats: Arc::clone(&stats) };
        let ingest_log = match &opts.ingest_log {
            Some(path) => Some(IngestLog::open_append(path)?),
            None => None,
        };
        let store = match &opts.store {
            Some(dir) => Some(retia_store::Appender::open(dir).map_err(std::io::Error::other)?),
            None => None,
        };
        let mut state =
            EngineState::new(model, window, opts.decode_shards, stats, ingest_log, store);
        let thread = std::thread::Builder::new()
            .name("retia-serve-engine".to_string())
            .spawn(move || state.run(&shared))?;
        Ok(Engine { handle, thread: Some(thread) })
    }

    /// The submission handle.
    pub fn handle(&self) -> EngineHandle {
        self.handle.clone()
    }

    /// Stops the engine after all queued jobs and joins its thread.
    pub fn shutdown(mut self) {
        self.handle.stop();
        if let Some(t) = self.thread.take() {
            // A panicked engine already aborted the process's usefulness;
            // surface it to the joining thread.
            t.join().expect("engine thread panicked");
        }
    }
}

/// Everything the engine thread owns exclusively.
struct EngineState {
    model: FrozenModel,
    /// `(timestamp, facts)` per window snapshot, oldest first, ≤ `k` long.
    window: Vec<(u32, Vec<Quad>)>,
    snaps: Vec<Snapshot>,
    hypers: Vec<HyperSnapshot>,
    /// `(epoch, window_end, states)`, most recent last.
    cache: VecDeque<(u64, u32, FrozenStates)>,
    cache_cap: usize,
    epoch: u64,
    /// Served-model version; bumped on every swap.
    model_epoch: u64,
    /// Entity-decode sharding degree (`1` = fused single-thread path).
    decode_shards: usize,
    stats: Arc<EngineStats>,
    ingest_log: Option<IngestLog>,
    store: Option<retia_store::Appender>,
}

impl EngineState {
    fn new(
        model: FrozenModel,
        window: Vec<Snapshot>,
        decode_shards: usize,
        stats: Arc<EngineStats>,
        ingest_log: Option<IngestLog>,
        store: Option<retia_store::Appender>,
    ) -> EngineState {
        let k = model.cfg().k.max(1);
        let tail = window.len().saturating_sub(k);
        let window: Vec<(u32, Vec<Quad>)> =
            window[tail..].iter().map(|s| (s.t, s.facts.clone())).collect();
        let mut state = EngineState {
            model,
            window,
            snaps: Vec::new(),
            hypers: Vec::new(),
            cache: VecDeque::new(),
            cache_cap: 4,
            epoch: 0,
            model_epoch: 0,
            decode_shards: decode_shards.max(1),
            stats,
            ingest_log,
            store,
        };
        state.rebuild_graphs();
        state
    }

    fn window_end(&self) -> u32 {
        self.window.last().map(|(t, _)| *t).unwrap_or(0)
    }

    fn window_start(&self) -> u32 {
        self.window.first().map(|(t, _)| *t).unwrap_or(0)
    }

    /// Recomputes `Snapshot`/`HyperSnapshot` structures from the window's
    /// raw facts (after construction and after every ingest).
    fn rebuild_graphs(&mut self) {
        let n = self.model.num_entities();
        let m = self.model.num_relations();
        self.snaps = self
            .window
            .iter()
            .map(|(t, facts)| {
                let mut snap = Snapshot::from_quads(facts, n, m);
                snap.t = *t;
                snap
            })
            .collect();
        self.hypers = self.snaps.iter().map(HyperSnapshot::from_snapshot).collect();
        retia_obs::metrics::set_gauge("serve.window_end", self.window_end() as f64);
        retia_obs::metrics::set_gauge("serve.window_len", self.window.len() as f64);
    }

    /// Makes sure the current epoch's evolved states are cached, recording
    /// hit/miss counters. The whole consultation is one `serve.cache` stage
    /// in request traces; on a miss the `serve.evolve` span nests under it.
    fn ensure_states(&mut self) {
        let hit = self.cache.iter().any(|(e, _, _)| *e == self.epoch);
        let _t = retia_obs::span!(stages::CACHE, hit = u8::from(hit));
        if hit {
            retia_obs::metrics::inc("serve.cache_hit");
            return;
        }
        retia_obs::metrics::inc("serve.cache_miss");
        let states = self.model.evolve_window(&self.snaps, &self.hypers);
        self.cache.push_back((self.epoch, self.window_end(), states));
        while self.cache.len() > self.cache_cap {
            self.cache.pop_front();
        }
        retia_obs::metrics::set_gauge("serve.cache_entries", self.cache.len() as f64);
    }

    fn run(&mut self, shared: &Shared) {
        loop {
            let mut batch = shared.drain();
            let mut i = 0;
            while i < batch.len() {
                match &batch[i] {
                    Job::Stop => {
                        // Anything after the stop marker is discarded; the
                        // dropped reply channels surface `Stopped`.
                        shared.mark_stopped();
                        return;
                    }
                    Job::Ingest(facts, reply, meta) => {
                        let service_start = Instant::now();
                        let queue_wait_ns = meta.queue_wait(service_start);
                        let _scope = trace::adopt(meta.frames.clone());
                        let mut outcome = self.ingest(facts);
                        if let Ok(resp) = &mut outcome {
                            resp.queue_wait_ns = queue_wait_ns;
                            resp.service_ns = service_start.elapsed().as_nanos() as u64;
                        }
                        let _ = reply.send(outcome);
                        i += 1;
                    }
                    Job::Swap(..) => {
                        // Move the request out (it owns a whole model; the
                        // inert `Stop` left behind is never revisited — `i`
                        // only advances).
                        let swap = std::mem::replace(&mut batch[i], Job::Stop);
                        if let Job::Swap(req, reply) = swap {
                            let _ = reply.send(self.swap(*req));
                        }
                        i += 1;
                    }
                    Job::Window(reply) => {
                        let _ = reply.send(Ok(WindowView {
                            snaps: self.snaps.clone(),
                            hypers: self.hypers.clone(),
                            epoch: self.epoch,
                            window_end: self.window_end(),
                        }));
                        i += 1;
                    }
                    Job::Pause(ack, release) => {
                        let _ = ack.send(());
                        // Parked until the PauseGuard drops (recv errors out
                        // when the sender side goes away).
                        let _ = release.recv();
                        i += 1;
                    }
                    Job::Query(..) => {
                        // Fuse the maximal run of consecutive query jobs.
                        let start = i;
                        while i < batch.len() && matches!(batch[i], Job::Query(..)) {
                            i += 1;
                        }
                        self.answer_queries(&batch[start..i]);
                    }
                }
            }
        }
    }

    fn ingest(&mut self, facts: &[Quad]) -> Result<IngestResponse, EngineError> {
        let _t = retia_obs::span!(stages::INGEST, facts = facts.len());
        if facts.is_empty() {
            return Err(EngineError::InvalidIngest("no facts in payload".to_string()));
        }
        let n = self.model.num_entities() as u32;
        let m = self.model.num_relations() as u32;
        let end = self.window_end();
        for q in facts {
            if q.s >= n || q.o >= n {
                return Err(EngineError::InvalidIngest(format!(
                    "entity id out of range in ({}, {}, {}, {}): have {n} entities",
                    q.s, q.r, q.o, q.t
                )));
            }
            if q.r >= m {
                return Err(EngineError::InvalidIngest(format!(
                    "relation id {} out of range: have {m} relations",
                    q.r
                )));
            }
            if !self.window.is_empty() && q.t < end {
                return Err(EngineError::InvalidIngest(format!(
                    "timestamp {} precedes the window end {end}; extrapolation ingests \
                     forward only",
                    q.t
                )));
            }
        }
        // Durability first: the log must hold the facts before any epoch
        // observable to clients reflects them. A failed append degrades
        // durability, not availability — warn and keep serving.
        if let Some(log) = &mut self.ingest_log {
            if let Err(e) = log.append(facts) {
                retia_obs::metrics::inc("serve.ingest_log.write_errors");
                retia_obs::event!(
                    retia_obs::Level::Warn,
                    "serve.ingest_log.write_error";
                    format!("ingest log append failed ({e}); facts accepted without durability")
                );
            }
        }
        if let Some(store) = &mut self.store {
            if let Err(e) = store.append_quads(facts) {
                retia_obs::metrics::inc("store.append_errors");
                retia_obs::event!(
                    retia_obs::Level::Warn,
                    "store.append_error";
                    format!("store append failed ({e}); facts accepted without durability")
                );
            }
        }
        for (t, group) in group_by_timestamp(facts) {
            match self.window.last_mut() {
                Some((last_t, last_facts)) if *last_t == t => last_facts.extend(group),
                _ => self.window.push((t, group)),
            }
        }
        let k = self.model.cfg().k.max(1);
        let overflow = self.window.len().saturating_sub(k);
        self.window.drain(..overflow);
        self.epoch += 1;
        self.stats.ingest_epoch.store(self.epoch, Ordering::Release);
        self.rebuild_graphs();
        // Warm the cache eagerly: the recurrence cost lands on the ingest
        // call instead of the next query.
        self.ensure_states();
        retia_obs::metrics::inc_by("serve.ingest_facts", facts.len() as u64);
        Ok(IngestResponse {
            accepted: facts.len(),
            window_start: self.window_start(),
            window_end: self.window_end(),
            window_len: self.window.len(),
            epoch: self.epoch,
            // Filled by the run loop, which owns the queue-wait measurement.
            queue_wait_ns: 0,
            service_ns: 0,
        })
    }

    /// Atomically installs a replacement model. The engine thread owns the
    /// model exclusively, so "atomic" is structural: a query is either
    /// drained before this job (old model, old cache) or after it (new
    /// model, fresh states) — never against a half-written mix.
    fn swap(&mut self, req: SwapRequest) -> Result<SwapResponse, EngineError> {
        let trained_epoch = req.trained_epoch;
        let _t = retia_obs::span!(stages::SWAP, trained_epoch = trained_epoch);
        let (n, m) = (self.model.num_entities(), self.model.num_relations());
        let (rn, rm) = (req.model.num_entities(), req.model.num_relations());
        if (rn, rm) != (n, m) {
            return Err(EngineError::InvalidSwap(format!(
                "candidate model has {rn} entities / {rm} relations; serving {n} / {m}"
            )));
        }
        if req.model.cfg().k != self.model.cfg().k {
            return Err(EngineError::InvalidSwap(format!(
                "candidate window size k={} does not match serving k={}",
                req.model.cfg().k,
                self.model.cfg().k
            )));
        }
        self.model = req.model;
        // Cached states encode the *old* weights; every entry is now stale
        // regardless of epoch key.
        self.cache.clear();
        let states_reused = match req.states {
            Some(states) if trained_epoch == self.epoch => {
                self.cache.push_back((self.epoch, self.window_end(), states));
                true
            }
            _ => false,
        };
        if !states_reused {
            // An ingest raced the trainer: pay the recurrence here on the
            // swap job rather than on the next query.
            self.ensure_states();
        }
        self.model_epoch += 1;
        self.stats.model_epoch.store(self.model_epoch, Ordering::Release);
        self.stats.trained_epoch.store(trained_epoch, Ordering::Release);
        retia_obs::metrics::inc("serve.swaps");
        retia_obs::metrics::set_gauge("serve.model_epoch", self.model_epoch as f64);
        retia_obs::metrics::set_gauge("serve.cache_entries", self.cache.len() as f64);
        Ok(SwapResponse { model_epoch: self.model_epoch, states_reused })
    }

    /// Validates, batches, decodes and answers a fused run of query jobs.
    fn answer_queries(&mut self, jobs: &[Job]) {
        let service_start = Instant::now();
        let n = self.model.num_entities() as u32;
        let m = self.model.num_relations() as u32;

        // Validate each job; invalid ones are answered immediately and
        // excluded from the decode batch. Queue wait is recorded for every
        // job — an invalid request waited too.
        let mut live: Vec<(&Vec<Query>, &Reply<QueryResponse>, u64)> = Vec::new();
        let mut batch_frames: Vec<TraceFrame> = Vec::new();
        for job in jobs {
            let Job::Query(queries, reply, meta) = job else { continue };
            let queue_wait_ns = meta.queue_wait(service_start);
            match validate_queries(queries, n, m) {
                Err(e) => {
                    let _ = reply.send(Err(e));
                }
                Ok(()) => {
                    batch_frames.extend(meta.frames.iter().copied());
                    live.push((queries, reply, queue_wait_ns));
                }
            }
        }
        if live.is_empty() {
            return;
        }

        let (window_end, epoch) = (self.window_end(), self.epoch);
        // Answers are buffered and sent only after the decode spans close:
        // a reply unblocks its worker, which may finish the request's trace
        // immediately — stages recorded after that would be lost.
        let mut answered: Vec<(&Reply<QueryResponse>, QueryResponse)> =
            Vec::with_capacity(live.len());
        {
            // The fused batch serves every live request at once: adopt all
            // their trace frames so the shared decode spans land in each
            // trace.
            let _scope = trace::adopt(batch_frames);

            let total: usize = live.iter().map(|(qs, _, _)| qs.len()).sum();
            retia_obs::metrics::observe("serve.batch_queries", total as f64);
            retia_obs::metrics::observe("serve.batch_jobs", live.len() as f64);
            let _t = retia_obs::span!(stages::DECODE, queries = total, jobs = live.len());

            // One scoring matmul per query kind across all fused jobs.
            let mut ent_args: (Vec<u32>, Vec<u32>) = (Vec::new(), Vec::new());
            let mut rel_args: (Vec<u32>, Vec<u32>) = (Vec::new(), Vec::new());
            for (queries, _, _) in &live {
                for q in *queries {
                    match q.kind {
                        QueryKind::Entity => {
                            ent_args.0.push(q.subject);
                            ent_args.1.push(q.b);
                        }
                        QueryKind::Relation => {
                            rel_args.0.push(q.subject);
                            rel_args.1.push(q.b);
                        }
                    }
                }
            }
            self.ensure_states();
            let states = self
                .cache
                .iter()
                .find(|(e, _, _)| *e == self.epoch)
                .map(|(_, _, s)| s)
                .expect("states cached by ensure_states above");
            let model = &self.model;
            let shards = self.decode_shards;
            // Entity scoring is the O(|E|) hot loop; it shards across
            // threads by candidate range, bit-identical to the fused path.
            // Relation decode scores only M candidates and stays fused.
            let ent_probs = (!ent_args.0.is_empty())
                .then(|| model.decode_entity_sharded(states, ent_args.0, ent_args.1, shards));
            let rel_probs = (!rel_args.0.is_empty())
                .then(|| model.decode_relation(states, rel_args.0, rel_args.1));

            let (mut ent_row, mut rel_row) = (0usize, 0usize);
            let _topk = retia_obs::span!(stages::TOPK, queries = total);
            for (queries, reply, queue_wait_ns) in live {
                let mut results = Vec::with_capacity(queries.len());
                for q in queries {
                    let row = match q.kind {
                        QueryKind::Entity => {
                            ent_row += 1;
                            ent_probs.as_ref().map(|p| p.row(ent_row - 1))
                        }
                        QueryKind::Relation => {
                            rel_row += 1;
                            rel_probs.as_ref().map(|p| p.row(rel_row - 1))
                        }
                    };
                    let scores = row.expect("probs computed for every query kind present");
                    // The sharded merge reduction is bit-identical to the
                    // plain scan (same total order); route entity queries
                    // through it so the whole sharded path is exercised end
                    // to end.
                    let candidates = match q.kind {
                        QueryKind::Entity if shards > 1 => top_k_sharded(scores, q.k, shards),
                        _ => top_k(scores, q.k),
                    };
                    results.push(TopK { candidates });
                }
                answered.push((
                    reply,
                    QueryResponse { window_end, epoch, results, queue_wait_ns, service_ns: 0 },
                ));
            }
        }
        let service_ns = service_start.elapsed().as_nanos() as u64;
        for (reply, mut resp) in answered {
            resp.service_ns = service_ns;
            let _ = reply.send(Ok(resp));
        }
    }
}

fn validate_queries(queries: &[Query], n: u32, m: u32) -> Result<(), EngineError> {
    if queries.is_empty() {
        return Err(EngineError::InvalidQuery("no queries in payload".to_string()));
    }
    for q in queries {
        if q.subject >= n {
            return Err(EngineError::InvalidQuery(format!(
                "subject id {} out of range: have {n} entities",
                q.subject
            )));
        }
        match q.kind {
            QueryKind::Entity => {
                if q.b >= 2 * m {
                    return Err(EngineError::InvalidQuery(format!(
                        "relation id {} out of range: have {m} relations ({} with inverses)",
                        q.b,
                        2 * m
                    )));
                }
            }
            QueryKind::Relation => {
                if q.b >= n {
                    return Err(EngineError::InvalidQuery(format!(
                        "object id {} out of range: have {n} entities",
                        q.b
                    )));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use retia::{FrozenModel, Retia, RetiaConfig, TkgContext};
    use retia_data::SyntheticConfig;

    fn setup() -> (Engine, TkgContext, RetiaConfig) {
        let ds = SyntheticConfig::tiny(5).generate();
        let ctx = TkgContext::new(&ds);
        let cfg = RetiaConfig { dim: 8, channels: 4, k: 2, ..Default::default() };
        let model = Retia::new(&cfg, &ds);
        let window = ctx.snapshots.clone();
        let engine = Engine::start(FrozenModel::new(model), window).expect("engine thread spawns");
        (engine, ctx, cfg)
    }

    #[test]
    fn query_answers_match_direct_predict() {
        let (engine, ctx, cfg) = setup();
        let h = engine.handle();
        let got = h
            .query(vec![Query { kind: QueryKind::Entity, subject: 0, b: 1, k: 3 }])
            .expect("valid query");
        assert_eq!(got.results.len(), 1);
        assert_eq!(got.results[0].candidates.len(), 3);

        // Reference: the eval-path forward over the same window.
        let ds = SyntheticConfig::tiny(5).generate();
        let model = Retia::new(&cfg, &ds);
        let last = ctx.snapshots.len() - cfg.k..ctx.snapshots.len();
        let probs =
            model.predict_entity(&ctx.snapshots[last.clone()], &ctx.hypers[last], vec![0], vec![1]);
        let reference = retia_eval::top_k(probs.row(0), 3);
        assert_eq!(got.results[0].candidates, reference, "serve must match eval bitwise");
        engine.shutdown();
    }

    #[test]
    fn invalid_ids_are_typed_errors() {
        let (engine, ctx, _) = setup();
        let h = engine.handle();
        let bad_subject = h.query(vec![Query {
            kind: QueryKind::Entity,
            subject: ctx.num_entities as u32,
            b: 0,
            k: 1,
        }]);
        assert!(matches!(bad_subject, Err(EngineError::InvalidQuery(_))));
        let bad_rel = h.query(vec![Query {
            kind: QueryKind::Entity,
            subject: 0,
            b: 2 * ctx.num_relations as u32,
            k: 1,
        }]);
        assert!(matches!(bad_rel, Err(EngineError::InvalidQuery(_))));
        assert!(matches!(h.query(vec![]), Err(EngineError::InvalidQuery(_))));
        assert!(matches!(h.ingest(vec![]), Err(EngineError::InvalidIngest(_))));
        engine.shutdown();
    }

    #[test]
    fn ingest_advances_window_and_epoch() {
        let (engine, ctx, cfg) = setup();
        let h = engine.handle();
        let before = h
            .query(vec![Query { kind: QueryKind::Entity, subject: 0, b: 0, k: 2 }])
            .expect("valid");
        let t_next = ctx.snapshots.last().expect("nonempty").t + 1;
        let summary = h.ingest(vec![Quad::new(0, 0, 1, t_next)]).expect("valid ingest");
        assert_eq!(summary.accepted, 1);
        assert_eq!(summary.window_end, t_next);
        assert_eq!(summary.window_len, cfg.k);
        assert_eq!(summary.epoch, before.epoch + 1);

        let after = h
            .query(vec![Query { kind: QueryKind::Entity, subject: 0, b: 0, k: 2 }])
            .expect("valid");
        assert_eq!(after.epoch, summary.epoch);
        assert_eq!(after.window_end, t_next);

        // Out-of-order facts are rejected.
        let stale = h.ingest(vec![Quad::new(0, 0, 1, 0)]);
        assert!(matches!(stale, Err(EngineError::InvalidIngest(_))));
        engine.shutdown();
    }

    #[test]
    fn swap_installs_candidate_and_window_exposes_state() {
        let (engine, _, cfg) = setup();
        let h = engine.handle();
        let stats = h.stats();
        let q = Query { kind: QueryKind::Entity, subject: 0, b: 0, k: 3 };
        let before = h.query(vec![q]).expect("valid query");
        assert_eq!(stats.model_epoch(), 0);

        // The engine's current window, as the online trainer sees it.
        let view = h.window().expect("window view");
        assert_eq!(view.epoch, before.epoch);
        assert_eq!(view.snaps.len(), cfg.k);
        assert_eq!(view.window_end, before.window_end);

        // Swap in a clone with identical weights, pre-evolved for this
        // window: answers stay bit-identical and the states are reused.
        let ds = SyntheticConfig::tiny(5).generate();
        let clone = FrozenModel::new(Retia::new(&cfg, &ds));
        let states = clone.evolve_window(&view.snaps, &view.hypers);
        let resp = h
            .swap(SwapRequest { model: clone, trained_epoch: view.epoch, states: Some(states) })
            .expect("same-shape swap succeeds");
        assert_eq!(resp.model_epoch, 1);
        assert!(resp.states_reused);
        assert_eq!(stats.model_epoch(), 1);
        assert_eq!(stats.trained_epoch(), view.epoch);
        let after = h.query(vec![q]).expect("valid query");
        for (a, b) in before.results[0].candidates.iter().zip(after.results[0].candidates.iter()) {
            assert_eq!(a.0, b.0, "rank order changed across an identical-weights swap");
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "score bits changed across swap");
        }

        // A shape-incompatible candidate is a typed error; nothing installs.
        let wrong_cfg = RetiaConfig { dim: 8, channels: 4, k: 3, ..Default::default() };
        let wrong = FrozenModel::new(Retia::new(&wrong_cfg, &ds));
        let bad = h.swap(SwapRequest { model: wrong, trained_epoch: view.epoch, states: None });
        assert!(matches!(bad, Err(EngineError::InvalidSwap(_))));
        assert_eq!(stats.model_epoch(), 1);
        engine.shutdown();
    }

    #[test]
    fn stats_track_ingest_epoch_and_staleness() {
        let (engine, ctx, _) = setup();
        let h = engine.handle();
        let stats = h.stats();
        assert_eq!(stats.ingest_epoch(), 0);
        assert_eq!(stats.staleness(), 0);
        let t_next = ctx.snapshots.last().expect("nonempty").t + 1;
        h.ingest(vec![Quad::new(0, 0, 1, t_next)]).expect("valid ingest");
        assert_eq!(stats.ingest_epoch(), 1);
        assert_eq!(stats.staleness(), 1, "no training yet: one un-trained ingest epoch");
        // A swap carrying trained_epoch = the current window epoch clears it.
        let view = h.window().expect("window view");
        let ds = SyntheticConfig::tiny(5).generate();
        let cfg = RetiaConfig { dim: 8, channels: 4, k: 2, ..Default::default() };
        let clone = FrozenModel::new(Retia::new(&cfg, &ds));
        h.swap(SwapRequest { model: clone, trained_epoch: view.epoch, states: None })
            .expect("swap succeeds");
        assert_eq!(stats.staleness(), 0);
        engine.shutdown();
    }

    #[test]
    fn stopped_engine_reports_stopped() {
        let (engine, _, _) = setup();
        let h = engine.handle();
        engine.shutdown();
        let r = h.query(vec![Query { kind: QueryKind::Entity, subject: 0, b: 0, k: 1 }]);
        assert!(matches!(r, Err(EngineError::Stopped)));
    }

    #[test]
    fn sharded_engine_answers_bit_identical_to_fused() {
        let ds = SyntheticConfig::tiny(5).generate();
        let ctx = TkgContext::new(&ds);
        let cfg = RetiaConfig { dim: 8, channels: 4, k: 2, ..Default::default() };
        let queries: Vec<Query> = (0..6)
            .map(|i| Query {
                kind: QueryKind::Entity,
                subject: i % ctx.num_entities as u32,
                b: i % (2 * ctx.num_relations as u32),
                k: 5,
            })
            .collect();
        let mut answers = Vec::new();
        // ≥2 shard counts beyond the fused baseline, per the acceptance
        // criterion; 7 does not divide the entity count evenly.
        for shards in [1usize, 2, 3, 7] {
            let model = Retia::new(&cfg, &ds);
            let opts = EngineOptions { decode_shards: shards, ..Default::default() };
            let engine = Engine::start_with(FrozenModel::new(model), ctx.snapshots.clone(), opts)
                .expect("engine thread spawns");
            let got = engine.handle().query(queries.clone()).expect("valid queries");
            engine.shutdown();
            answers.push((shards, got));
        }
        let (_, reference) = &answers[0];
        for (shards, got) in &answers[1..] {
            assert_eq!(reference.results.len(), got.results.len());
            for (a, b) in reference.results.iter().zip(got.results.iter()) {
                assert_eq!(a.candidates.len(), b.candidates.len(), "{shards} shards");
                for (x, y) in a.candidates.iter().zip(b.candidates.iter()) {
                    assert_eq!(x.0, y.0, "rank order diverged at {shards} shards");
                    assert_eq!(
                        x.1.to_bits(),
                        y.1.to_bits(),
                        "score bits diverged at {shards} shards"
                    );
                }
            }
        }
    }

    #[test]
    fn bounded_queue_sheds_with_overloaded() {
        let ds = SyntheticConfig::tiny(5).generate();
        let ctx = TkgContext::new(&ds);
        let cfg = RetiaConfig { dim: 8, channels: 4, k: 2, ..Default::default() };
        let model = Retia::new(&cfg, &ds);
        let cap = 3usize;
        let opts = EngineOptions { queue_cap: cap, decode_shards: 1, ..Default::default() };
        let engine = Engine::start_with(FrozenModel::new(model), ctx.snapshots.clone(), opts)
            .expect("engine thread spawns");
        let h = engine.handle();

        // Park the engine so submissions accumulate instead of draining.
        let guard = h.pause().expect("engine is running");
        let mut waiters = Vec::new();
        for _ in 0..cap {
            let h = h.clone();
            waiters.push(std::thread::spawn(move || {
                h.query(vec![Query { kind: QueryKind::Entity, subject: 0, b: 0, k: 1 }])
            }));
        }
        // Wait (bounded) for all cap jobs to be queued.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while h.queue_depth() < cap {
            assert!(std::time::Instant::now() < deadline, "queue never filled");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        // The queue is full: the next submission is shed immediately.
        let shed = h.query(vec![Query { kind: QueryKind::Entity, subject: 0, b: 0, k: 1 }]);
        assert!(matches!(shed, Err(EngineError::Overloaded)), "got {shed:?}");
        // Stop is a control job and must bypass the full queue (verified
        // implicitly: shutdown below would hang forever otherwise).

        // Releasing the engine drains the queued jobs successfully.
        drop(guard);
        for w in waiters {
            let got = w.join().expect("waiter thread");
            assert!(got.is_ok(), "queued job must still be answered: {got:?}");
        }
        engine.shutdown();
    }
}
