//! JSON request/response schemas for the serving endpoints, built on
//! `retia-json`. Parsing is strict: unknown kinds, missing fields and
//! non-integer ids are typed 4xx errors, never panics.

use retia_graph::Quad;
use retia_json::Value;

use crate::engine::{IngestResponse, Query, QueryKind, QueryResponse};
use crate::online::DriftReport;

/// Default `k` when a query request does not pick one.
pub const DEFAULT_TOP_K: usize = 10;

/// Upper bound on `k`, queries per request and facts per ingest — one
/// request can never force an unbounded amount of decode work.
pub const MAX_ITEMS_PER_REQUEST: usize = 1024;

/// A schema violation: the body was valid JSON but not a valid request.
/// Maps to `422 Unprocessable Entity`.
#[derive(Debug, PartialEq, Eq)]
pub struct SchemaError(pub String);

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

fn field_u32(item: &Value, key: &str, what: &str) -> Result<u32, SchemaError> {
    let v = item.get(key).ok_or_else(|| SchemaError(format!("{what}: missing field `{key}`")))?;
    let n = v.as_u64().ok_or_else(|| {
        SchemaError(format!("{what}: field `{key}` must be a non-negative integer"))
    })?;
    u32::try_from(n)
        .map_err(|_| SchemaError(format!("{what}: field `{key}` value {n} exceeds u32 range")))
}

/// Parses `POST /v1/query`:
///
/// ```json
/// {"kind": "entity", "k": 10,
///  "queries": [{"subject": 3, "relation": 2}, ...]}
/// ```
///
/// `kind` is `"entity"` (fields `subject`, `relation`; inverse relation ids
/// `r + M` ask for subjects) or `"relation"` (fields `subject`, `object`).
pub fn parse_query_request(body: &Value) -> Result<Vec<Query>, SchemaError> {
    let kind = match body.get("kind").and_then(Value::as_str) {
        Some("entity") | None => QueryKind::Entity,
        Some("relation") => QueryKind::Relation,
        Some(other) => {
            return Err(SchemaError(format!(
                "unknown query kind {other:?}: expected \"entity\" or \"relation\""
            )))
        }
    };
    let k = match body.get("k") {
        None => DEFAULT_TOP_K,
        Some(v) => v
            .as_usize()
            .ok_or_else(|| SchemaError("field `k` must be a non-negative integer".to_string()))?,
    };
    if k > MAX_ITEMS_PER_REQUEST {
        return Err(SchemaError(format!("k of {k} exceeds the cap of {MAX_ITEMS_PER_REQUEST}")));
    }
    let queries = body
        .get("queries")
        .and_then(Value::as_array)
        .ok_or_else(|| SchemaError("missing `queries` array".to_string()))?;
    if queries.len() > MAX_ITEMS_PER_REQUEST {
        return Err(SchemaError(format!(
            "{} queries exceed the cap of {MAX_ITEMS_PER_REQUEST} per request",
            queries.len()
        )));
    }
    queries
        .iter()
        .enumerate()
        .map(|(i, item)| {
            let what = format!("query #{i}");
            let subject = field_u32(item, "subject", &what)?;
            let b = match kind {
                QueryKind::Entity => field_u32(item, "relation", &what)?,
                QueryKind::Relation => field_u32(item, "object", &what)?,
            };
            Ok(Query { kind, subject, b, k })
        })
        .collect()
}

/// Parses `POST /v1/ingest`:
///
/// ```json
/// {"facts": [{"subject": 3, "relation": 2, "object": 7, "timestamp": 31}]}
/// ```
pub fn parse_ingest_request(body: &Value) -> Result<Vec<Quad>, SchemaError> {
    let facts = body
        .get("facts")
        .and_then(Value::as_array)
        .ok_or_else(|| SchemaError("missing `facts` array".to_string()))?;
    if facts.len() > MAX_ITEMS_PER_REQUEST {
        return Err(SchemaError(format!(
            "{} facts exceed the cap of {MAX_ITEMS_PER_REQUEST} per request",
            facts.len()
        )));
    }
    facts
        .iter()
        .enumerate()
        .map(|(i, item)| {
            let what = format!("fact #{i}");
            Ok(Quad::new(
                field_u32(item, "subject", &what)?,
                field_u32(item, "relation", &what)?,
                field_u32(item, "object", &what)?,
                field_u32(item, "timestamp", &what)?,
            ))
        })
        .collect()
}

/// The `"timing"` object engine-backed responses carry: queue wait vs
/// engine service time, in milliseconds.
fn timing_json(queue_wait_ns: u64, service_ns: u64) -> Value {
    let mut t = Value::object();
    t.insert("queue_wait_ms", Value::from(queue_wait_ns as f64 / 1e6));
    t.insert("service_ms", Value::from(service_ns as f64 / 1e6));
    t
}

/// Serializes a [`QueryResponse`].
pub fn query_response_json(resp: &QueryResponse) -> Value {
    let mut body = Value::object();
    body.insert("window_end", Value::from(resp.window_end));
    body.insert("epoch", Value::from(resp.epoch));
    body.insert("timing", timing_json(resp.queue_wait_ns, resp.service_ns));
    let results: Vec<Value> = resp
        .results
        .iter()
        .map(|r| {
            let candidates: Vec<Value> = r
                .candidates
                .iter()
                .map(|&(id, score)| {
                    let mut c = Value::object();
                    c.insert("id", Value::from(id));
                    c.insert("score", Value::from(score));
                    c
                })
                .collect();
            let mut item = Value::object();
            item.insert("candidates", Value::from(candidates));
            item
        })
        .collect();
    body.insert("results", Value::from(results));
    body
}

/// Serializes an [`IngestResponse`].
pub fn ingest_response_json(resp: &IngestResponse) -> Value {
    let mut window = Value::object();
    window.insert("start", Value::from(resp.window_start));
    window.insert("end", Value::from(resp.window_end));
    window.insert("length", Value::from(resp.window_len));
    let mut body = Value::object();
    body.insert("accepted", Value::from(resp.accepted));
    body.insert("epoch", Value::from(resp.epoch));
    body.insert("window", window);
    body.insert("timing", timing_json(resp.queue_wait_ns, resp.service_ns));
    body
}

/// Renders `GET /v1/drift`: the online drift monitor's latest readout. When
/// online learning is off, `enabled` is `false` and every reading is its
/// zero default.
pub fn drift_response_json(enabled: bool, report: &DriftReport) -> Value {
    let mut body = Value::object();
    body.insert("enabled", Value::from(enabled));
    body.insert("window_epoch", Value::from(report.window_epoch as f64));
    body.insert("candidate_loss", Value::from(report.candidate_loss));
    body.insert("baseline_loss", Value::from(report.baseline_loss));
    body.insert("candidate_mrr", Value::from(report.candidate_mrr));
    body.insert("baseline_mrr", Value::from(report.baseline_mrr));
    body.insert("breach_streak", Value::from(report.breach_streak as f64));
    body.insert("evaluations", Value::from(report.evaluations as f64));
    body.insert("swaps", Value::from(report.swaps as f64));
    body.insert("rollbacks", Value::from(report.rollbacks as f64));
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::TopK;
    use retia_json::parse;

    #[test]
    fn parses_entity_and_relation_queries() {
        let body = parse(
            r#"{"kind": "entity", "k": 3,
                "queries": [{"subject": 1, "relation": 2}, {"subject": 0, "relation": 5}]}"#,
        )
        .expect("valid json");
        let qs = parse_query_request(&body).expect("valid schema");
        assert_eq!(qs.len(), 2);
        assert_eq!(qs[0].kind, QueryKind::Entity);
        assert_eq!((qs[1].subject, qs[1].b, qs[1].k), (0, 5, 3));

        let body = parse(r#"{"kind": "relation", "queries": [{"subject": 1, "object": 2}]}"#)
            .expect("valid json");
        let qs = parse_query_request(&body).expect("valid schema");
        assert_eq!(qs[0].kind, QueryKind::Relation);
        assert_eq!(qs[0].k, DEFAULT_TOP_K);
    }

    #[test]
    fn rejects_schema_violations() {
        for bad in [
            r#"{"queries": "nope"}"#,
            r#"{}"#,
            r#"{"kind": "path", "queries": []}"#,
            r#"{"queries": [{"subject": 1}]}"#,
            r#"{"queries": [{"subject": -1, "relation": 2}]}"#,
            r#"{"queries": [{"subject": 1.5, "relation": 2}]}"#,
            r#"{"k": 100000, "queries": []}"#,
            r#"{"k": "many", "queries": []}"#,
            r#"{"queries": [{"subject": 99999999999, "relation": 2}]}"#,
        ] {
            let body = parse(bad).expect("valid json");
            assert!(parse_query_request(&body).is_err(), "must reject {bad}");
        }
    }

    #[test]
    fn parses_and_rejects_ingest() {
        let body =
            parse(r#"{"facts": [{"subject": 1, "relation": 0, "object": 2, "timestamp": 9}]}"#)
                .expect("valid json");
        let quads = parse_ingest_request(&body).expect("valid schema");
        assert_eq!(quads, vec![Quad::new(1, 0, 2, 9)]);

        for bad in [r#"{}"#, r#"{"facts": [{"subject": 1}]}"#, r#"{"facts": 3}"#] {
            let body = parse(bad).expect("valid json");
            assert!(parse_ingest_request(&body).is_err(), "must reject {bad}");
        }
    }

    #[test]
    fn responses_round_trip_through_the_parser() {
        let resp = QueryResponse {
            window_end: 17,
            epoch: 3,
            results: vec![TopK { candidates: vec![(4, 0.5), (1, 0.25)] }],
            queue_wait_ns: 2_000_000,
            service_ns: 3_000_000,
        };
        let text = query_response_json(&resp).to_string_compact();
        let back = parse(&text).expect("self-produced json parses");
        assert_eq!(back.get("epoch").and_then(Value::as_u64), Some(3));
        let timing = back.get("timing").expect("timing object");
        assert_eq!(timing.get("queue_wait_ms").and_then(Value::as_f64), Some(2.0));
        assert_eq!(timing.get("service_ms").and_then(Value::as_f64), Some(3.0));
        let results = back.get("results").and_then(Value::as_array).expect("results");
        let cands = results[0].get("candidates").and_then(Value::as_array).expect("candidates");
        assert_eq!(cands[0].get("id").and_then(Value::as_u64), Some(4));
        assert_eq!(cands[0].get("score").and_then(Value::as_f64), Some(0.5));

        let resp = IngestResponse {
            accepted: 2,
            window_start: 5,
            window_end: 9,
            window_len: 3,
            epoch: 1,
            queue_wait_ns: 0,
            service_ns: 1_500_000,
        };
        let text = ingest_response_json(&resp).to_string_compact();
        let back = parse(&text).expect("self-produced json parses");
        assert_eq!(back.get("accepted").and_then(Value::as_u64), Some(2));
        assert_eq!(back.get("window").and_then(|w| w.get("end")).and_then(Value::as_u64), Some(9));
    }
}
