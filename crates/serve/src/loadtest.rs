//! Load generator for a running retia-serve instance.
//!
//! Replays a synthetic query/ingest mix over **keep-alive** connections at a
//! ladder of concurrency levels and reports p50/p99 latency and QPS per
//! level — the numbers `BENCH_serve.json` tracks. Lives in the library so
//! the CLI (`retia loadtest`), the bench bin and the tests share one client
//! and one report shape.
//!
//! The generator is deterministic: query ids derive from a SplitMix64 hash
//! of `(level, connection, request)`, and every ingest reuses the fixed
//! timestamp `window_end + 1` probed at startup — always valid under the
//! engine's forward-only rule no matter how concurrent ingests interleave
//! (the first one advances the window end to it; later ones append facts at
//! the same timestamp).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use retia_json::Value;
use retia_obs::slo::{self, SloSpec};

/// What to replay and against whom.
#[derive(Clone, Debug)]
pub struct LoadtestConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Concurrency ladder: one measurement per connection count.
    pub levels: Vec<usize>,
    /// Requests sent per connection at every level.
    pub requests_per_conn: usize,
    /// Every `ingest_every`-th request is an ingest (`0` = queries only).
    pub ingest_every: usize,
    /// Candidates requested per query.
    pub k: usize,
    /// Entity-id space to draw subjects/objects from (must not exceed the
    /// server's entity count, or queries bounce with 422).
    pub entities: u32,
    /// Relation-id space (non-inverse ids only, for the same reason).
    pub relations: u32,
    /// Per-request socket timeout.
    pub timeout: Duration,
    /// Latency SLOs evaluated **client-side** against each level's measured
    /// latencies (the spec's `metric` is ignored here — the samples are the
    /// loadtest's own stopwatch, not a server histogram). Any burning
    /// objective marks the run as failed.
    pub slos: Vec<SloSpec>,
}

impl Default for LoadtestConfig {
    fn default() -> LoadtestConfig {
        LoadtestConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            levels: vec![1, 2, 4, 8, 16, 32, 64],
            requests_per_conn: 50,
            ingest_every: 25,
            k: 5,
            entities: 1,
            relations: 1,
            timeout: Duration::from_secs(30),
            slos: Vec::new(),
        }
    }
}

/// One SLO evaluated against a level's client-measured latencies.
#[derive(Clone, Debug)]
pub struct SloOutcome {
    /// The spec's name.
    pub name: String,
    /// Required fraction of requests at or below the threshold.
    pub objective: f64,
    /// Latency threshold in milliseconds.
    pub threshold_ms: f64,
    /// Observed fraction at or below the threshold (1.0 when no samples).
    pub compliance: f64,
    /// Error-budget burn rate: miss fraction over allowed miss fraction.
    pub burn: f64,
    /// Whether the budget burns faster than it accrues (`burn > 1.0`).
    pub burning: bool,
}

/// One concurrency level's aggregate results. `slos` holds the client-side
/// verdict for every configured objective.
#[derive(Clone, Debug)]
pub struct LevelStats {
    /// Connections (client threads) at this level.
    pub connections: usize,
    /// Successful (2xx) requests.
    pub completed: usize,
    /// Requests shed with 429.
    pub shed_429: usize,
    /// Other 4xx responses.
    pub other_4xx: usize,
    /// 5xx responses — the loadtest treats any as failure.
    pub status_5xx: usize,
    /// Socket-level failures (reconnects count here).
    pub io_errors: usize,
    /// Wall-clock for the whole level, seconds.
    pub wall_s: f64,
    /// Successful requests per second of wall clock.
    pub qps: f64,
    /// Median per-request latency (ms) over successful requests.
    pub p50_ms: f64,
    /// 99th-percentile per-request latency (ms).
    pub p99_ms: f64,
    /// Each configured SLO evaluated against this level's latencies.
    pub slos: Vec<SloOutcome>,
}

/// The full ladder, ready to serialize as `BENCH_serve.json`.
#[derive(Clone, Debug)]
pub struct LoadtestReport {
    /// One entry per requested concurrency level, in order.
    pub levels: Vec<LevelStats>,
}

impl LoadtestReport {
    /// Total 5xx responses across all levels.
    pub fn total_5xx(&self) -> usize {
        self.levels.iter().map(|l| l.status_5xx).sum()
    }

    /// Total successful requests across all levels.
    pub fn total_completed(&self) -> usize {
        self.levels.iter().map(|l| l.completed).sum()
    }

    /// Human-readable description of every burning SLO across the ladder —
    /// empty means all objectives held. The CLI turns a non-empty list into
    /// a nonzero exit.
    pub fn burning_slos(&self) -> Vec<String> {
        let mut out = Vec::new();
        for l in &self.levels {
            for s in l.slos.iter().filter(|s| s.burning) {
                out.push(format!(
                    "{} conns: `{}` burning — {:.2}% of requests <= {}ms (objective {:.2}%, \
                     burn {:.1}x)",
                    l.connections,
                    s.name,
                    s.compliance * 100.0,
                    s.threshold_ms,
                    s.objective * 100.0,
                    s.burn
                ));
            }
        }
        out
    }

    /// The `BENCH_serve.json` document.
    pub fn to_json(&self, cfg: &LoadtestConfig) -> Value {
        let mut doc = Value::object();
        doc.insert("bench", Value::from("serve_loadtest"));
        let mut c = Value::object();
        c.insert("requests_per_conn", Value::from(cfg.requests_per_conn));
        c.insert("ingest_every", Value::from(cfg.ingest_every));
        c.insert("k", Value::from(cfg.k));
        doc.insert("config", c);
        doc.insert("levels", self.levels_json());
        doc
    }

    /// Just the per-level stats array — what `to_json` embeds as `levels`
    /// and what the CLI's `--online` pass embeds under `train_active`.
    pub fn levels_json(&self) -> Value {
        let levels: Vec<Value> = self
            .levels
            .iter()
            .map(|l| {
                let mut v = Value::object();
                v.insert("connections", Value::from(l.connections));
                v.insert("completed", Value::from(l.completed));
                v.insert("shed_429", Value::from(l.shed_429));
                v.insert("other_4xx", Value::from(l.other_4xx));
                v.insert("status_5xx", Value::from(l.status_5xx));
                v.insert("io_errors", Value::from(l.io_errors));
                v.insert("wall_s", Value::from(l.wall_s));
                v.insert("qps", Value::from(l.qps));
                v.insert("p50_ms", Value::from(l.p50_ms));
                v.insert("p99_ms", Value::from(l.p99_ms));
                if !l.slos.is_empty() {
                    let slos: Vec<Value> = l
                        .slos
                        .iter()
                        .map(|s| {
                            let mut o = Value::object();
                            o.insert("name", Value::from(s.name.as_str()));
                            o.insert("objective", Value::from(s.objective));
                            o.insert("threshold_ms", Value::from(s.threshold_ms));
                            o.insert("compliance", Value::from(s.compliance));
                            o.insert("burn", Value::from(s.burn));
                            o.insert("burning", Value::from(s.burning));
                            o
                        })
                        .collect();
                    v.insert("slos", Value::from(slos));
                }
                v
            })
            .collect();
        Value::from(levels)
    }
}

/// A keep-alive HTTP/1.1 client: one connection, many requests, leftover
/// bytes carried between responses.
struct Client {
    stream: TcpStream,
    leftover: Vec<u8>,
}

impl Client {
    fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<Client> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Client { stream, leftover: Vec::new() })
    }

    /// Sends one JSON POST and reads one response; the connection stays
    /// usable for the next call.
    fn call(&mut self, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        let head = format!(
            "POST {path} HTTP/1.1\r\nHost: loadtest\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<(u16, String)> {
        let mut buf = std::mem::take(&mut self.leftover);
        let mut chunk = [0u8; 4096];
        // Head first.
        let head_end = loop {
            if let Some(pos) = find_head_end(&buf) {
                break pos;
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                ));
            }
            buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
        let status: u16 = head.split(' ').nth(1).and_then(|s| s.parse().ok()).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line")
        })?;
        let length: usize = head
            .lines()
            .find_map(|l| {
                let (name, value) = l.split_once(':')?;
                name.eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().ok())
                    .flatten()
            })
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "response without a length")
            })?;
        while buf.len() < head_end + length {
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
            buf.extend_from_slice(&chunk[..n]);
        }
        let body = String::from_utf8_lossy(&buf[head_end..head_end + length]).to_string();
        // Bytes past this response (a pipelined follow-up's head) carry over.
        self.leftover = buf.split_off(head_end + length);
        Ok((status, body))
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Evaluates each SLO spec against one level's merged latency samples using
/// the same budget arithmetic the server-side engine applies to its
/// histograms ([`slo::burn_of_samples`]).
fn evaluate_slos(specs: &[SloSpec], latencies_ms: &[f64]) -> Vec<SloOutcome> {
    specs
        .iter()
        .map(|s| {
            let (compliance, burn) =
                slo::burn_of_samples(latencies_ms, s.objective, s.threshold_ms);
            SloOutcome {
                name: s.name.clone(),
                objective: s.objective,
                threshold_ms: s.threshold_ms,
                compliance,
                burn,
                burning: burn > 1.0,
            }
        })
        .collect()
}

/// SplitMix64 — deterministic id mixing without a RNG dependency.
fn mix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-thread tally, merged after the level joins.
#[derive(Default)]
struct Tally {
    latencies_ms: Vec<f64>,
    completed: usize,
    shed_429: usize,
    other_4xx: usize,
    status_5xx: usize,
    io_errors: usize,
}

/// Runs the full ladder. Fails fast if the server cannot be probed at all;
/// per-request failures are tallied, not fatal.
pub fn run(cfg: &LoadtestConfig) -> Result<LoadtestReport, String> {
    // Probe: one query both sanity-checks the server and yields the window
    // end every ingest timestamp derives from.
    let mut probe = Client::connect(cfg.addr, cfg.timeout)
        .map_err(|e| format!("cannot connect to {}: {e}", cfg.addr))?;
    let (status, body) = probe
        .call("/v1/query", &query_body(cfg, 0))
        .map_err(|e| format!("probe query failed: {e}"))?;
    if status != 200 {
        return Err(format!("probe query got status {status}: {body}"));
    }
    let window_end = retia_json::parse(&body)
        .ok()
        .and_then(|v| v.get("window_end").and_then(Value::as_u64))
        .ok_or_else(|| format!("probe response lacks window_end: {body}"))?;
    let ingest_ts = (window_end as u32).saturating_add(1);
    drop(probe);

    let mut levels = Vec::with_capacity(cfg.levels.len());
    for (level_idx, &conns) in cfg.levels.iter().enumerate() {
        let conns = conns.max(1);
        let started = Instant::now();
        let tallies: Vec<Tally> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..conns)
                .map(|conn_idx| {
                    scope.spawn(move || client_thread(cfg, level_idx, conn_idx, ingest_ts))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("loadtest client thread panicked"))
                .collect()
        });
        let wall_s = started.elapsed().as_secs_f64().max(1e-9);

        let mut merged = Tally::default();
        for t in tallies {
            merged.latencies_ms.extend(t.latencies_ms);
            merged.completed += t.completed;
            merged.shed_429 += t.shed_429;
            merged.other_4xx += t.other_4xx;
            merged.status_5xx += t.status_5xx;
            merged.io_errors += t.io_errors;
        }
        merged.latencies_ms.sort_by(f64::total_cmp);
        levels.push(LevelStats {
            connections: conns,
            completed: merged.completed,
            shed_429: merged.shed_429,
            other_4xx: merged.other_4xx,
            status_5xx: merged.status_5xx,
            io_errors: merged.io_errors,
            wall_s,
            qps: merged.completed as f64 / wall_s,
            p50_ms: percentile(&merged.latencies_ms, 50.0),
            p99_ms: percentile(&merged.latencies_ms, 99.0),
            slos: evaluate_slos(&cfg.slos, &merged.latencies_ms),
        });
    }
    Ok(LoadtestReport { levels })
}

/// One connection's request loop: keep-alive, reconnecting (and tallying an
/// io error) when the transport drops.
fn client_thread(cfg: &LoadtestConfig, level_idx: usize, conn_idx: usize, ingest_ts: u32) -> Tally {
    let mut tally = Tally::default();
    let mut client = match Client::connect(cfg.addr, cfg.timeout) {
        Ok(c) => c,
        Err(_) => {
            tally.io_errors += 1;
            return tally;
        }
    };
    for i in 0..cfg.requests_per_conn {
        let seed = (level_idx as u64) << 40 | (conn_idx as u64) << 20 | i as u64;
        let is_ingest = cfg.ingest_every > 0 && (i + 1) % cfg.ingest_every == 0;
        let (path, body) = if is_ingest {
            ("/v1/ingest", ingest_body(cfg, seed, ingest_ts))
        } else {
            ("/v1/query", query_body(cfg, seed))
        };
        let begun = Instant::now();
        match client.call(path, &body) {
            Ok((status, _)) => {
                let ms = begun.elapsed().as_secs_f64() * 1e3;
                match status {
                    200..=299 => {
                        tally.completed += 1;
                        tally.latencies_ms.push(ms);
                    }
                    429 => tally.shed_429 += 1,
                    500..=599 => tally.status_5xx += 1,
                    _ => tally.other_4xx += 1,
                }
            }
            Err(_) => {
                tally.io_errors += 1;
                match Client::connect(cfg.addr, cfg.timeout) {
                    Ok(c) => client = c,
                    Err(_) => return tally,
                }
            }
        }
    }
    tally
}

fn query_body(cfg: &LoadtestConfig, seed: u64) -> String {
    let subject = (mix(seed) % cfg.entities.max(1) as u64) as u32;
    let relation = (mix(seed ^ 0x5151) % cfg.relations.max(1) as u64) as u32;
    format!(
        r#"{{"kind":"entity","k":{},"queries":[{{"subject":{subject},"relation":{relation}}}]}}"#,
        cfg.k
    )
}

fn ingest_body(cfg: &LoadtestConfig, seed: u64, ts: u32) -> String {
    let s = (mix(seed ^ 0xA0A0) % cfg.entities.max(1) as u64) as u32;
    let r = (mix(seed ^ 0xB1B1) % cfg.relations.max(1) as u64) as u32;
    let o = (mix(seed ^ 0xC2C2) % cfg.entities.max(1) as u64) as u32;
    format!(r#"{{"facts":[{{"subject":{s},"relation":{r},"object":{o},"timestamp":{ts}}}]}}"#)
}

/// Nearest-rank percentile over an ascending-sorted slice (0 when empty).
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 50.0), 51.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn bodies_are_valid_json_with_in_range_ids() {
        let cfg = LoadtestConfig { entities: 7, relations: 3, ..Default::default() };
        for seed in 0..50u64 {
            let q = retia_json::parse(&query_body(&cfg, seed)).expect("query body parses");
            let item = &q.get("queries").and_then(Value::as_array).expect("array")[0];
            assert!(item.get("subject").and_then(Value::as_u64).expect("subject") < 7);
            assert!(item.get("relation").and_then(Value::as_u64).expect("relation") < 3);
            let ing = retia_json::parse(&ingest_body(&cfg, seed, 42)).expect("ingest body parses");
            let fact = &ing.get("facts").and_then(Value::as_array).expect("array")[0];
            assert_eq!(fact.get("timestamp").and_then(Value::as_u64), Some(42));
        }
    }

    #[test]
    fn slo_outcomes_flag_burning_objectives() {
        let specs = vec![
            SloSpec {
                name: "strict".to_string(),
                metric: String::new(),
                objective: 0.99,
                threshold_ms: 10.0,
                window_s: 60.0,
            },
            SloSpec {
                name: "loose".to_string(),
                metric: String::new(),
                objective: 0.5,
                threshold_ms: 10.0,
                window_s: 60.0,
            },
        ];
        // 80 fast + 20 slow requests: 80% compliance.
        let mut samples = vec![1.0; 80];
        samples.extend(vec![100.0; 20]);
        let out = evaluate_slos(&specs, &samples);
        assert_eq!(out.len(), 2);
        assert!((out[0].compliance - 0.8).abs() < 1e-9);
        assert!(out[0].burning, "20% misses against a 1% budget must burn: {out:?}");
        assert!(out[0].burn > 10.0, "burn {} should be ~20x", out[0].burn);
        assert!(!out[1].burning, "20% misses fit a 50% budget: {out:?}");
        // No samples: perfectly compliant, nothing burns.
        let idle = evaluate_slos(&specs, &[]);
        assert!(idle.iter().all(|o| o.compliance == 1.0 && !o.burning));
    }

    #[test]
    fn burning_slos_render_per_level_lines() {
        let level = LevelStats {
            connections: 4,
            completed: 10,
            shed_429: 0,
            other_4xx: 0,
            status_5xx: 0,
            io_errors: 0,
            wall_s: 1.0,
            qps: 10.0,
            p50_ms: 1.0,
            p99_ms: 100.0,
            slos: vec![SloOutcome {
                name: "p99".to_string(),
                objective: 0.99,
                threshold_ms: 50.0,
                compliance: 0.8,
                burn: 20.0,
                burning: true,
            }],
        };
        let report = LoadtestReport { levels: vec![level] };
        let lines = report.burning_slos();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("`p99`") && lines[0].contains("4 conns"), "{lines:?}");
        let json = report.to_json(&LoadtestConfig::default()).to_string_compact();
        assert!(json.contains("\"burning\":true"), "{json}");
    }

    #[test]
    fn find_head_end_locates_terminator() {
        assert_eq!(find_head_end(b"HTTP/1.1 200 OK\r\nA: b\r\n\r\nrest"), Some(25));
        assert_eq!(find_head_end(b"HTTP/1.1 200 OK\r\n"), None);
    }
}
