//! Canonical stage names for the serve request pipeline.
//!
//! Every constant here names one segment of a request's lifecycle and has a
//! matching emission site (a `span!` or `trace::record_stage` call) somewhere
//! in the workspace — `retia-lint` enforces the pairing, so the span taxonomy
//! documented in DESIGN.md §7 cannot drift from the code. Names are dotted:
//! the first segment groups them under the `serve` module in the flame
//! table, deeper segments mirror the pipeline diagram (§10).

/// Socket read: first byte of the request to a complete parsed head+body.
pub const RECV: &str = "serve.recv";
/// Time a job spent in the engine's bounded queue before service began.
pub const QUEUE_WAIT: &str = "serve.queue_wait";
/// Embedding-cache consultation (hit check, and the evolve on a miss).
pub const CACHE: &str = "serve.cache";
/// Window recurrence re-evolving the last-`k` embedding states.
pub const EVOLVE: &str = "serve.evolve";
/// The fused scoring decode over a batch of queries.
pub const DECODE: &str = "serve.decode";
/// One entity-range shard of the sharded decode.
pub const DECODE_SHARD: &str = "serve.decode.shard";
/// Per-query top-k extraction and merge.
pub const TOPK: &str = "serve.topk";
/// Writing the response bytes back to the socket.
pub const WRITE: &str = "serve.write";
/// Window advance: validation, graph rebuild and eager cache warm.
pub const INGEST: &str = "serve.ingest";
/// One continual-training round on the online trainer's thread.
pub const TRAIN: &str = "serve.train";
/// Atomic installation of a candidate model on the engine thread.
pub const SWAP: &str = "serve.swap";
/// Drift gate: candidate-vs-baseline scoring on the newest window.
pub const DRIFT: &str = "serve.drift";
/// Boot replay of the ingest durability log.
pub const REPLAY: &str = "serve.replay";
