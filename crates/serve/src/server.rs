//! The std-only HTTP server: a shared [`TcpListener`], a fixed worker-thread
//! pool, request routing, and graceful shutdown with in-flight drain.
//!
//! Workers block in `accept`, parse one request per connection, and either
//! answer directly (`/healthz`, `/metrics`) or enqueue a job for the engine
//! thread (`/v1/query`, `/v1/ingest`). `POST /admin/shutdown` flips the
//! drain gate: workers stop accepting, requests already being handled run to
//! completion (the engine stops only after every worker has exited), and
//! [`Server::wait`] unblocks pending `accept` calls with loopback
//! connections before joining everything.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use retia::FrozenModel;
use retia_graph::Snapshot;
use retia_json::Value;

use crate::api;
use crate::engine::{Engine, EngineError, EngineHandle};
use crate::http::{error_body, read_request, write_json, HttpError, Request};

/// Server knobs. `addr` with port `0` binds an ephemeral port; the bound
/// address is on [`Server::addr`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:0`.
    pub addr: String,
    /// Fixed worker-thread pool size.
    pub workers: usize,
    /// Per-socket read/write timeout.
    pub io_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            io_timeout: Duration::from_secs(10),
        }
    }
}

/// Drain gate shared by workers and the shutdown endpoint.
struct Gate {
    draining: AtomicBool,
    in_flight: AtomicI64,
    state: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Gate {
        Gate {
            draining: AtomicBool::new(false),
            in_flight: AtomicI64::new(0),
            state: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn trigger(&self) {
        self.draining.store(true, Ordering::SeqCst);
        *self.state.lock().expect("gate mutex poisoned") = true;
        self.cv.notify_all();
    }

    fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn wait_triggered(&self) {
        let mut triggered = self.state.lock().expect("gate mutex poisoned");
        while !*triggered {
            triggered = self.cv.wait(triggered).expect("gate mutex poisoned");
        }
    }
}

/// A running server. Dropping it does **not** stop the threads; call
/// [`Server::shutdown`] (or let `POST /admin/shutdown` + [`Server::wait`]
/// drive the same sequence).
pub struct Server {
    addr: SocketAddr,
    gate: Arc<Gate>,
    workers: Vec<JoinHandle<()>>,
    engine: Engine,
}

impl Server {
    /// Binds, spawns the engine and the worker pool, and returns
    /// immediately. `window` is the initial history (the last `k` snapshots
    /// are kept, matching the paper's decode window).
    pub fn start(
        model: FrozenModel,
        window: Vec<Snapshot>,
        cfg: &ServeConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let listener = Arc::new(listener);
        let engine = Engine::start(model, window)?;
        let gate = Arc::new(Gate::new());

        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let listener = Arc::clone(&listener);
                let gate = Arc::clone(&gate);
                let handle = engine.handle();
                let timeout = cfg.io_timeout;
                std::thread::Builder::new()
                    .name(format!("retia-serve-worker-{i}"))
                    .spawn(move || worker_loop(&listener, &gate, &handle, timeout))
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        retia_obs::event!(
            retia_obs::Level::Info,
            "serve.started";
            format!("listening on {addr} with {} workers", workers.len())
        );
        Ok(Server { addr, gate, workers, engine })
    }

    /// The bound socket address (resolves `--port 0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// An engine handle (used by tests and the smoke bench).
    pub fn engine_handle(&self) -> EngineHandle {
        self.engine.handle()
    }

    /// Flips the drain gate, as `POST /admin/shutdown` does.
    pub fn request_shutdown(&self) {
        self.gate.trigger();
    }

    /// Blocks until the drain gate flips (via [`Server::request_shutdown`]
    /// or the admin endpoint), then drains: unblocks pending accepts, joins
    /// every worker (in-flight requests complete first), and only then stops
    /// the engine after all queued jobs.
    pub fn wait(self) {
        self.gate.wait_triggered();
        // Wake workers stuck in accept; their handler sees EOF and exits.
        for _ in 0..self.workers.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for w in self.workers {
            // A worker panic is a bug; surface it rather than hang.
            w.join().expect("serve worker panicked");
        }
        self.engine.shutdown();
        retia_obs::event!(retia_obs::Level::Info, "serve.stopped"; "drained and stopped");
    }

    /// [`Server::request_shutdown`] + [`Server::wait`].
    pub fn shutdown(self) {
        self.request_shutdown();
        self.wait();
    }
}

fn worker_loop(listener: &TcpListener, gate: &Gate, engine: &EngineHandle, timeout: Duration) {
    loop {
        if gate.is_draining() {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if gate.is_draining() {
            // Either the wake-up connection from `wait()` or a straggler
            // client; both get a clean refusal instead of a dead socket.
            let mut stream = stream;
            let _ = write_json(&mut stream, 503, &error_body("unavailable", "server draining"));
            return;
        }
        gate.in_flight.fetch_add(1, Ordering::SeqCst);
        retia_obs::metrics::set_gauge(
            "serve.in_flight",
            gate.in_flight.load(Ordering::SeqCst) as f64,
        );
        handle_connection(stream, gate, engine, timeout);
        gate.in_flight.fetch_sub(1, Ordering::SeqCst);
        retia_obs::metrics::set_gauge(
            "serve.in_flight",
            gate.in_flight.load(Ordering::SeqCst) as f64,
        );
    }
}

fn handle_connection(mut stream: TcpStream, gate: &Gate, engine: &EngineHandle, timeout: Duration) {
    let started = Instant::now();
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    retia_obs::metrics::inc("serve.requests");

    let (status, body) = match read_request(&mut stream) {
        Err(e) => http_error_response(&e),
        Ok(req) => route(&req, gate, engine),
    };
    if status >= 400 {
        retia_obs::metrics::inc("serve.http_errors");
    }
    let _ = write_json(&mut stream, status, &body);
    let _ = stream.flush();
    retia_obs::metrics::observe("serve.request_ms", started.elapsed().as_secs_f64() * 1e3);
}

fn http_error_response(e: &HttpError) -> (u16, Value) {
    (e.status(), error_body(e.code(), &e.message()))
}

/// Dispatches a parsed request to its endpoint.
fn route(req: &Request, gate: &Gate, engine: &EngineHandle) -> (u16, Value) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let mut body = Value::object();
            body.insert("status", Value::from("ok"));
            body.insert("draining", Value::from(gate.is_draining()));
            (200, body)
        }
        ("GET", "/metrics") => (200, retia_obs::metrics::registry().snapshot()),
        ("POST", "/admin/shutdown") => {
            gate.trigger();
            let mut body = Value::object();
            body.insert("draining", Value::from(true));
            (200, body)
        }
        ("POST", "/v1/query") => json_endpoint(req, |body| {
            let queries = api::parse_query_request(body)
                .map_err(|e| (422, error_body("unprocessable", &e.0)))?;
            retia_obs::metrics::inc_by("serve.queries", queries.len() as u64);
            let resp = engine.query(queries).map_err(engine_error_response)?;
            Ok(api::query_response_json(&resp))
        }),
        ("POST", "/v1/ingest") => json_endpoint(req, |body| {
            let facts = api::parse_ingest_request(body)
                .map_err(|e| (422, error_body("unprocessable", &e.0)))?;
            let resp = engine.ingest(facts).map_err(engine_error_response)?;
            Ok(api::ingest_response_json(&resp))
        }),
        (_, "/healthz" | "/metrics" | "/admin/shutdown" | "/v1/query" | "/v1/ingest") => {
            (405, error_body("method_not_allowed", &format!("{} not allowed here", req.method)))
        }
        (_, path) => (404, error_body("not_found", &format!("no route for {path}"))),
    }
}

/// Shared plumbing for the JSON POST endpoints: content-type gate, JSON
/// parse, then the endpoint body.
fn json_endpoint(
    req: &Request,
    f: impl FnOnce(&Value) -> Result<Value, (u16, Value)>,
) -> (u16, Value) {
    if !req.is_json() {
        return (
            415,
            error_body(
                "unsupported_media_type",
                "send application/json (set the Content-Type header)",
            ),
        );
    }
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(e) => return (400, error_body("bad_request", &format!("body is not UTF-8: {e}"))),
    };
    let body = match retia_json::parse(text) {
        Ok(v) => v,
        Err(e) => return (400, error_body("bad_request", &format!("body is not valid JSON: {e}"))),
    };
    match f(&body) {
        Ok(v) => (200, v),
        Err((status, body)) => (status, body),
    }
}

fn engine_error_response(e: EngineError) -> (u16, Value) {
    match &e {
        EngineError::InvalidQuery(m) => (422, error_body("unprocessable", m)),
        EngineError::InvalidIngest(m) => (422, error_body("unprocessable", m)),
        EngineError::Stopped => (503, error_body("unavailable", "engine stopped")),
    }
}
