//! The std-only HTTP server: a shared non-blocking [`TcpListener`], a fixed
//! pool of poll-loop workers, request routing, admission control, and
//! graceful shutdown with in-flight drain.
//!
//! ## Event loop
//!
//! Dependency-free readiness on `std::net`: the listener and every accepted
//! socket run in non-blocking mode, and each worker owns a set of
//! connections it polls in a loop — accept new sockets, read whatever bytes
//! are available into each connection's [`RequestBuffer`], answer every
//! complete request (pipelined requests are answered back-to-back), reap
//! idle connections, then sleep briefly only if the whole pass made no
//! progress. A connection lives through many requests (`keep-alive`) and
//! closes on `Connection: close`, a parse error, EOF, or the idle deadline.
//!
//! One latency refinement: a worker whose set holds exactly one connection
//! parks in a *blocking* read with a short timeout instead of polling — the
//! common ping-pong client costs no poll-interval latency, while fan-in
//! (many connections per worker) uses the non-blocking sweep.
//!
//! Connection states:
//!
//! ```text
//!   accept → READ → (buffer has full request?) → ROUTE → WRITE ─┐
//!     ▲       │  no                                   keep-alive │
//!     │       ▼                                                  │
//!     │   idle > deadline? ──► 408 (mid-request) / silent close  │
//!     └──────────────────────────────────────────────────────────┘
//!   parse error → typed 4xx, close;  socket error → log, drop (no write)
//! ```
//!
//! ## Admission control
//!
//! `/v1/query` and `/v1/ingest` enqueue into the engine's **bounded** queue;
//! when it is full the submission bounces and the client gets `429 Too Many
//! Requests` with a `Retry-After` header — load sheds at the edge instead of
//! accumulating unbounded latency. `/healthz` and `/metrics` are answered by
//! the worker directly and always succeed.
//!
//! `POST /admin/shutdown` flips the drain gate: workers stop accepting,
//! connections with a request in flight (bytes buffered) finish that
//! request, everything else closes, and the engine stops only after every
//! worker has exited.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use retia::FrozenModel;
use retia_graph::Snapshot;
use retia_json::Value;
use retia_obs::slo::SloSpec;
use retia_obs::trace::{self, TracePolicy};

use crate::api;
use crate::engine::{Engine, EngineError, EngineHandle, EngineOptions, EngineStats};
use crate::http::{
    error_body, write_json_response, write_text_response, HttpError, Request, RequestBuffer,
};
use crate::online::{self, OnlineOptions, OnlineStatus, OnlineTrainer};
use crate::stages;

/// Sleep between no-progress poll passes while connections are open.
const POLL_SLEEP: Duration = Duration::from_micros(200);
/// Sleep between poll passes while the worker has no connections at all.
const IDLE_SLEEP: Duration = Duration::from_millis(2);
/// Read timeout for the single-connection blocking fast path; bounds how
/// long a parked worker takes to notice accepts, drain, and deadlines.
const PARKED_READ_TIMEOUT: Duration = Duration::from_millis(20);

/// Server knobs. `addr` with port `0` binds an ephemeral port; the bound
/// address is on [`Server::addr`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:0`.
    pub addr: String,
    /// Fixed worker-thread pool size.
    pub workers: usize,
    /// Budget for writing one response to a slow peer.
    pub io_timeout: Duration,
    /// Keep-alive idle deadline: a connection with no partial request is
    /// reaped silently; one mid-request gets `408 Request Timeout`.
    pub idle_timeout: Duration,
    /// Engine job-queue bound (admission control); overflow → `429`.
    pub queue_cap: usize,
    /// Threads the entity decode shards candidate scoring across
    /// (bit-identical ranks at any value; `1` = fused path).
    pub decode_shards: usize,
    /// Service-level objectives evaluated against the per-endpoint latency
    /// histograms and exported as `slo.*` gauges on `/metrics`.
    pub slos: Vec<SloSpec>,
    /// Tail-sampling: every request at least this slow (total ms) keeps its
    /// trace in the `/v1/traces` store.
    pub trace_slow_ms: f64,
    /// Of the fast requests, 1 in this many keeps its trace (0 = none).
    pub trace_sample_every: u64,
    /// Bound on stored traces; the oldest is evicted beyond it.
    pub trace_capacity: usize,
    /// When set, an isolated continual trainer fine-tunes on newly ingested
    /// windows and publishes via atomic model swaps (DESIGN.md §12).
    pub online: Option<OnlineOptions>,
    /// When set, every accepted ingest is appended to this JSONL durability
    /// log before the window advances, and boot replays it (corrupt tails
    /// are truncated at the last valid record).
    pub ingest_log: Option<PathBuf>,
    /// When set, every accepted ingest is appended to the durable store at
    /// this directory before the window advances (the store-backed successor
    /// of `ingest_log`; the caller boots the window from the same store, so
    /// no separate boot replay happens here).
    pub store: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let engine = EngineOptions::default();
        let tracing = TracePolicy::default();
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            io_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(30),
            queue_cap: engine.queue_cap,
            decode_shards: engine.decode_shards,
            slos: Vec::new(),
            trace_slow_ms: tracing.slow_ms,
            trace_sample_every: tracing.sample_every,
            trace_capacity: tracing.capacity,
            online: None,
            ingest_log: None,
            store: None,
        }
    }
}

/// Health readout shared with every worker: lock-free engine counters plus
/// the online trainer's status (always present — [`OnlineStatus::disabled`]
/// when online learning is off), so `/healthz` and `/v1/drift` answer
/// without touching the engine queue.
#[derive(Clone)]
struct Health {
    stats: Arc<EngineStats>,
    status: Arc<OnlineStatus>,
}

impl Health {
    /// Degraded = the trainer is in its failure envelope (divergence, panic,
    /// drift rollback) or the served model is staler than the bound. Either
    /// way serving continues from the last-good model; this only flips the
    /// readiness readout.
    fn degraded(&self) -> bool {
        self.status.trainer_degraded()
            || (self.status.is_enabled() && self.stats.staleness() > self.status.max_staleness())
    }
}

/// Drain gate and connection accounting shared by workers and the shutdown
/// endpoint.
struct Gate {
    draining: AtomicBool,
    in_flight: AtomicI64,
    connections: AtomicI64,
    state: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Gate {
        Gate {
            draining: AtomicBool::new(false),
            in_flight: AtomicI64::new(0),
            connections: AtomicI64::new(0),
            state: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn trigger(&self) {
        self.draining.store(true, Ordering::SeqCst);
        *self.state.lock().expect("gate mutex poisoned") = true;
        self.cv.notify_all();
    }

    fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn wait_triggered(&self) {
        let mut triggered = self.state.lock().expect("gate mutex poisoned");
        while !*triggered {
            triggered = self.cv.wait(triggered).expect("gate mutex poisoned");
        }
    }

    fn conn_delta(&self, delta: i64) {
        let now = self.connections.fetch_add(delta, Ordering::SeqCst) + delta;
        retia_obs::metrics::set_gauge("serve.connections", now as f64);
    }
}

/// A running server. Dropping it does **not** stop the threads; call
/// [`Server::shutdown`] (or let `POST /admin/shutdown` + [`Server::wait`]
/// drive the same sequence).
pub struct Server {
    addr: SocketAddr,
    gate: Arc<Gate>,
    workers: Vec<JoinHandle<()>>,
    engine: Engine,
    online: Option<OnlineTrainer>,
    health: Health,
}

impl Server {
    /// Binds, spawns the engine and the worker pool, and returns
    /// immediately. `window` is the initial history (the last `k` snapshots
    /// are kept, matching the paper's decode window).
    pub fn start(
        model: FrozenModel,
        window: Vec<Snapshot>,
        cfg: &ServeConfig,
    ) -> std::io::Result<Server> {
        // Boot audit: prove the serving decode cannot produce NaN/inf under
        // the parameter envelope and that the inference replay reaches zero
        // trainable parameters — before binding a socket.
        let audit = model.audit();
        if !audit.is_clean() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("serve boot audit failed:\n{audit}"),
            ));
        }
        // The continual trainer seeds from (and drift-scores against) the
        // boot model; clone it before the engine takes ownership.
        let baseline = cfg.online.as_ref().map(|_| FrozenModel::new(model.clone_model()));
        // Durability replay: facts ingested before the last shutdown (or
        // crash) re-enter the window before the engine boots, so the served
        // window survives restarts. A torn or bit-flipped tail is truncated
        // at the last valid record inside `replay_ingest_log`.
        let mut window = window;
        if let Some(path) = &cfg.ingest_log {
            let replay = online::replay_ingest_log(path)?;
            if !replay.quads.is_empty() {
                window = online::replay_into_window(
                    window,
                    &replay.quads,
                    model.num_entities(),
                    model.num_relations(),
                    model.cfg().k,
                );
                retia_obs::event!(
                    retia_obs::Level::Info,
                    "serve.ingest_log.replayed",
                    records = replay.records as f64,
                    facts = replay.quads.len() as f64;
                    format!("replayed {} durable ingest records at boot", replay.records)
                );
            }
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let listener = Arc::new(listener);
        trace::set_policy(TracePolicy {
            slow_ms: cfg.trace_slow_ms,
            sample_every: cfg.trace_sample_every,
            capacity: cfg.trace_capacity,
        });
        // An empty objective list leaves any previously configured SLOs in
        // place (several servers share the process in tests).
        if !cfg.slos.is_empty() {
            retia_obs::slo::configure(cfg.slos.clone());
        }
        let opts = EngineOptions {
            queue_cap: cfg.queue_cap,
            decode_shards: cfg.decode_shards,
            ingest_log: cfg.ingest_log.clone(),
            store: cfg.store.clone(),
        };
        let engine = Engine::start_with(model, window, opts)?;
        let gate = Arc::new(Gate::new());
        let online = match (&cfg.online, baseline) {
            (Some(online_opts), Some(baseline)) => {
                Some(OnlineTrainer::spawn(engine.handle(), baseline, online_opts.clone())?)
            }
            _ => None,
        };
        let health = Health {
            stats: engine.handle().stats(),
            status: online
                .as_ref()
                .map(OnlineTrainer::status)
                .unwrap_or_else(OnlineStatus::disabled),
        };

        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let listener = Arc::clone(&listener);
                let gate = Arc::clone(&gate);
                let handle = engine.handle();
                let cfg = cfg.clone();
                let health = health.clone();
                std::thread::Builder::new()
                    .name(format!("retia-serve-worker-{i}"))
                    .spawn(move || worker_loop(&listener, &gate, &handle, &cfg, &health))
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        retia_obs::event!(
            retia_obs::Level::Info,
            "serve.started";
            format!(
                "listening on {addr} with {} workers (queue cap {}, {} decode shards)",
                workers.len(),
                cfg.queue_cap,
                cfg.decode_shards
            )
        );
        Ok(Server { addr, gate, workers, engine, online, health })
    }

    /// The bound socket address (resolves `--port 0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// An engine handle (used by tests and the smoke bench).
    pub fn engine_handle(&self) -> EngineHandle {
        self.engine.handle()
    }

    /// The online trainer's status handle ([`OnlineStatus::disabled`] when
    /// online learning is off) — what `/healthz` and `/v1/drift` read.
    pub fn online_status(&self) -> Arc<OnlineStatus> {
        Arc::clone(&self.health.status)
    }

    /// Flips the drain gate, as `POST /admin/shutdown` does.
    pub fn request_shutdown(&self) {
        self.gate.trigger();
    }

    /// Blocks until the drain gate flips (via [`Server::request_shutdown`]
    /// or the admin endpoint), then drains: every worker's poll loop notices
    /// the gate, finishes requests already in flight, closes its
    /// connections and exits; the engine stops after all queued jobs.
    pub fn wait(mut self) {
        self.gate.wait_triggered();
        for w in self.workers {
            // A worker panic is a bug; surface it rather than hang.
            w.join().expect("serve worker panicked");
        }
        // Stop the continual trainer before the engine: its supervisor loop
        // blocks on engine control jobs, so the engine must still answer
        // while the trainer winds down.
        if let Some(mut online) = self.online.take() {
            online.stop();
        }
        self.engine.shutdown();
        retia_obs::event!(retia_obs::Level::Info, "serve.stopped"; "drained and stopped");
    }

    /// [`Server::request_shutdown`] + [`Server::wait`].
    pub fn shutdown(self) {
        self.request_shutdown();
        self.wait();
    }
}

/// One keep-alive connection owned by a worker.
struct Conn {
    stream: TcpStream,
    buf: RequestBuffer,
    last_activity: Instant,
    /// Whether the socket is currently in blocking (parked) mode.
    parked: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn { stream, buf: RequestBuffer::new(), last_activity: Instant::now(), parked: false }
    }
}

/// The per-worker event loop described in the module docs.
fn worker_loop(
    listener: &TcpListener,
    gate: &Gate,
    engine: &EngineHandle,
    cfg: &ServeConfig,
    health: &Health,
) {
    let mut conns: Vec<Conn> = Vec::new();
    loop {
        let mut progressed = false;
        let mut slept = false;

        if !gate.is_draining() {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        let _ = stream.set_write_timeout(Some(cfg.io_timeout));
                        retia_obs::metrics::inc("serve.accepted");
                        gate.conn_delta(1);
                        conns.push(Conn::new(stream));
                        progressed = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    // Transient accept failures (aborted handshakes etc.):
                    // fall through to the connection sweep, retry next pass.
                    Err(_) => break,
                }
            }
        }

        let parked_mode = conns.len() == 1;
        let mut idx = 0;
        while idx < conns.len() {
            let keep = service_conn(
                &mut conns[idx],
                parked_mode,
                gate,
                engine,
                cfg,
                health,
                &mut progressed,
                &mut slept,
            );
            if keep {
                idx += 1;
            } else {
                drop(conns.swap_remove(idx));
                gate.conn_delta(-1);
            }
        }

        if gate.is_draining() && conns.is_empty() {
            return;
        }
        if !progressed && !slept {
            std::thread::sleep(if conns.is_empty() { IDLE_SLEEP } else { POLL_SLEEP });
        }
    }
}

/// Reads, parses and answers on one connection. Returns `false` when the
/// connection must close (error, EOF, `Connection: close`, deadline, drain).
#[allow(clippy::too_many_arguments)]
fn service_conn(
    c: &mut Conn,
    park: bool,
    gate: &Gate,
    engine: &EngineHandle,
    cfg: &ServeConfig,
    health: &Health,
    progressed: &mut bool,
    slept: &mut bool,
) -> bool {
    if park != c.parked {
        let switched = if park {
            c.stream
                .set_nonblocking(false)
                .and_then(|()| c.stream.set_read_timeout(Some(PARKED_READ_TIMEOUT)))
        } else {
            c.stream.set_nonblocking(true)
        };
        if switched.is_err() {
            return false;
        }
        c.parked = park;
    }

    let mut eof = false;
    let mut chunk = [0u8; 4096];
    if c.parked {
        // Blocking fast path: the read itself paces the worker loop.
        *slept = true;
        match c.stream.read(&mut chunk) {
            Ok(0) => eof = true,
            Ok(n) => {
                c.buf.extend(&chunk[..n]);
                c.last_activity = Instant::now();
                *progressed = true;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(e) => {
                drop_for_io_error(&e);
                return false;
            }
        }
    } else {
        loop {
            match c.stream.read(&mut chunk) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => {
                    c.buf.extend(&chunk[..n]);
                    c.last_activity = Instant::now();
                    *progressed = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    drop_for_io_error(&e);
                    return false;
                }
            }
        }
    }

    // Answer every complete request buffered so far (pipelining).
    loop {
        // Read the recv clock before try_next hands the request out and
        // re-arms it for the next pipelined request.
        let recv_start_ns = c.buf.recv_start_ns();
        match c.buf.try_next() {
            Ok(Some(req)) => {
                *progressed = true;
                let keep = req.keep_alive() && !gate.is_draining();
                let written =
                    respond(&mut c.stream, &req, keep, recv_start_ns, gate, engine, cfg, health);
                c.last_activity = Instant::now();
                if !written || !keep {
                    return false;
                }
            }
            Ok(None) => break,
            Err(e) => {
                // A malformed request mid-pipeline: answer it (when the
                // transport still works) and close — bytes after a framing
                // error cannot be trusted.
                answer_parse_error(&mut c.stream, &e, cfg);
                return false;
            }
        }
    }

    if eof {
        if !c.buf.is_empty() {
            // FIN with an incomplete request buffered: the request can never
            // complete, so answer 400 while the write side may still be open
            // (half-closing clients read it), then close.
            let e = HttpError::Malformed("connection closed before the request completed".into());
            answer_parse_error(&mut c.stream, &e, cfg);
        }
        return false;
    }

    if c.last_activity.elapsed() >= cfg.idle_timeout {
        if c.buf.is_empty() {
            // Idle keep-alive connection: reap silently.
            retia_obs::metrics::inc("serve.reaped_idle");
            return false;
        }
        // Mid-request silence: the client gets a typed 408.
        answer_parse_error(&mut c.stream, &HttpError::Timeout, cfg);
        return false;
    }

    // Draining with nothing buffered: nothing in flight to finish.
    if gate.is_draining() && c.buf.is_empty() {
        return false;
    }
    true
}

/// The Prometheus text exposition content type (`/metrics?format=prom`).
const PROM_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// A routed response body: JSON for the API endpoints, raw text (with its
/// content type) for the Prometheus exposition.
enum Payload {
    Json(Value),
    Text(&'static str, String),
}

/// Routes one request and writes the response. Returns `false` when the
/// write failed (connection must close).
///
/// This is where a request's trace lives: it opens at the first received
/// byte (`recv_start_ns`, measured by the connection's [`RequestBuffer`]),
/// records the `serve.recv` and `serve.write` edges explicitly, adopts the
/// root frame around `route` so engine-side spans attach to it, and finishes
/// with the response status — at which point the tail sampler decides
/// whether `/v1/traces` keeps it.
#[allow(clippy::too_many_arguments)]
fn respond(
    stream: &mut TcpStream,
    req: &Request,
    keep_alive: bool,
    recv_start_ns: Option<u64>,
    gate: &Gate,
    engine: &EngineHandle,
    cfg: &ServeConfig,
    health: &Health,
) -> bool {
    let started = Instant::now();
    let start_ns = retia_obs::now_ns();
    retia_obs::metrics::inc("serve.requests");
    let trace_start_ns = recv_start_ns.unwrap_or(start_ns).min(start_ns);
    let handle = trace::begin(&req.path, trace_start_ns);
    let root = handle.root_frame();
    trace::record_stage(
        &[root],
        stages::RECV,
        trace_start_ns,
        start_ns.saturating_sub(trace_start_ns),
    );

    gate.in_flight.fetch_add(1, Ordering::SeqCst);
    retia_obs::metrics::set_gauge("serve.in_flight", gate.in_flight.load(Ordering::SeqCst) as f64);
    let mut queue_wait_ns: Option<u64> = None;
    let (endpoint, status, body) = {
        let _scope = trace::adopt(vec![root]);
        route(req, gate, engine, health, &mut queue_wait_ns)
    };
    gate.in_flight.fetch_sub(1, Ordering::SeqCst);
    retia_obs::metrics::set_gauge("serve.in_flight", gate.in_flight.load(Ordering::SeqCst) as f64);
    if status >= 400 {
        retia_obs::metrics::inc("serve.http_errors");
    }
    // Trace correlation for clients; backpressure hint on every 429.
    let mut headers: Vec<(&str, String)> = vec![("X-Trace-Id", handle.trace_id().to_string())];
    if status == 429 {
        headers.push(("Retry-After", "1".to_string()));
    }
    // Latency split: the engine reports how long the job sat in its queue;
    // the rest of the route wall time is service. The legacy request_ms
    // series is exactly their sum.
    let ms = started.elapsed().as_secs_f64() * 1e3;
    let wait_ms = (queue_wait_ns.unwrap_or(0) as f64 / 1e6).min(ms);
    let service_ms = ms - wait_ms;
    retia_obs::metrics::observe("serve.queue_wait_ms", wait_ms);
    retia_obs::metrics::observe(&format!("serve.queue_wait_ms.{endpoint}"), wait_ms);
    retia_obs::metrics::observe("serve.service_ms", service_ms);
    retia_obs::metrics::observe(&format!("serve.service_ms.{endpoint}"), service_ms);
    retia_obs::metrics::observe("serve.request_ms", ms);
    retia_obs::metrics::observe(&format!("serve.request_ms.{endpoint}"), ms);

    let mut out = Vec::with_capacity(512);
    match &body {
        Payload::Json(v) => write_json_response(&mut out, status, v, keep_alive, &headers),
        Payload::Text(ct, t) => write_text_response(&mut out, status, ct, t, keep_alive, &headers),
    }
    .expect("writing to a Vec cannot fail");
    let write_start_ns = retia_obs::now_ns();
    let written = write_all_with_deadline(stream, &out, cfg.io_timeout);
    trace::record_stage(
        &[root],
        stages::WRITE,
        write_start_ns,
        retia_obs::now_ns().saturating_sub(write_start_ns),
    );
    trace::finish(handle, status);
    retia_obs::slo::tick();
    written
}

/// Answers a parse/framing error when the transport still works; socket
/// errors are logged and dropped (never written to a dead peer).
fn answer_parse_error(stream: &mut TcpStream, e: &HttpError, cfg: &ServeConfig) {
    if !e.wants_response() {
        retia_obs::metrics::inc("serve.io_dropped");
        retia_obs::event!(
            retia_obs::Level::Warn,
            "serve.io_error";
            format!("dropping connection: {}", e.message())
        );
        return;
    }
    retia_obs::metrics::inc("serve.requests");
    retia_obs::metrics::inc("serve.http_errors");
    let mut out = Vec::with_capacity(256);
    write_json_response(&mut out, e.status(), &error_body(e.code(), &e.message()), false, &[])
        .expect("writing to a Vec cannot fail");
    write_all_with_deadline(stream, &out, cfg.io_timeout);
}

/// The log-and-drop half of the Io/Timeout split: no bytes are written.
fn drop_for_io_error(e: &std::io::Error) {
    retia_obs::metrics::inc("serve.io_dropped");
    retia_obs::event!(retia_obs::Level::Warn, "serve.io_error"; format!("dropping connection: {e}"));
}

/// Writes all of `bytes` to a (possibly non-blocking) socket, retrying
/// `WouldBlock` until `timeout` elapses. Returns `false` on failure.
fn write_all_with_deadline(stream: &mut TcpStream, mut bytes: &[u8], timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while !bytes.is_empty() {
        match stream.write(bytes) {
            Ok(0) => return false,
            Ok(n) => bytes = &bytes[n..],
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if Instant::now() >= deadline {
                    drop_for_io_error(&e);
                    return false;
                }
                std::thread::sleep(Duration::from_micros(100));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => {
                drop_for_io_error(&e);
                return false;
            }
        }
    }
    stream.flush().is_ok()
}

/// Dispatches a parsed request to its endpoint; returns the metrics label,
/// status and body. `queue_wait_ns` reports the engine queue wait for the
/// endpoints that go through the job queue (the latency-split metrics).
fn route(
    req: &Request,
    gate: &Gate,
    engine: &EngineHandle,
    health: &Health,
    queue_wait_ns: &mut Option<u64>,
) -> (&'static str, u16, Payload) {
    let (path, query_string) = match req.path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (req.path.as_str(), ""),
    };
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => {
            // Answered from lock-free counters — never queues behind the
            // engine, so the probe stays honest under decode load.
            let staleness = health.stats.staleness();
            let degraded = health.degraded();
            retia_obs::metrics::set_gauge("serve.staleness", staleness as f64);
            let mut body = Value::object();
            body.insert("status", Value::from(if degraded { "degraded" } else { "ok" }));
            body.insert("draining", Value::from(gate.is_draining()));
            body.insert("model_epoch", Value::from(health.stats.model_epoch() as f64));
            body.insert("ingest_epoch", Value::from(health.stats.ingest_epoch() as f64));
            body.insert("staleness", Value::from(staleness as f64));
            body.insert("trainer", Value::from(health.status.trainer_state().as_str()));
            // Liveness always answers 200; the readiness variant (`?ready=1`)
            // turns "degraded" into a 503 so a load balancer can route away
            // while the process keeps serving last-good answers.
            let ready_probe = query_string.split('&').any(|kv| kv == "ready=1");
            let code = if ready_probe && degraded { 503 } else { 200 };
            ("healthz", code, Payload::Json(body))
        }
        ("GET", "/v1/drift") => {
            let report = health.status.drift();
            let enabled = health.status.is_enabled();
            ("drift", 200, Payload::Json(api::drift_response_json(enabled, &report)))
        }
        ("GET", "/metrics") => {
            // A scrape should see current SLO state, not quarter-second-old
            // gauges.
            retia_obs::slo::force_tick();
            if query_string.split('&').any(|kv| kv == "format=prom") {
                ("metrics", 200, Payload::Text(PROM_CONTENT_TYPE, retia_obs::metrics::prometheus()))
            } else {
                ("metrics", 200, Payload::Json(retia_obs::metrics::registry().snapshot()))
            }
        }
        ("GET", "/v1/traces") => ("traces", 200, Payload::Json(trace::traces_json())),
        ("POST", "/admin/shutdown") => {
            gate.trigger();
            let mut body = Value::object();
            body.insert("draining", Value::from(true));
            ("shutdown", 200, Payload::Json(body))
        }
        ("POST", "/v1/query") => {
            let (status, body) = json_endpoint(req, |body| {
                let queries = api::parse_query_request(body)
                    .map_err(|e| (422, error_body("unprocessable", &e.0)))?;
                retia_obs::metrics::inc_by("serve.queries", queries.len() as u64);
                let resp = engine.query(queries).map_err(engine_error_response)?;
                *queue_wait_ns = Some(resp.queue_wait_ns);
                Ok(api::query_response_json(&resp))
            });
            ("query", status, Payload::Json(body))
        }
        ("POST", "/v1/ingest") => {
            let (status, body) = json_endpoint(req, |body| {
                let facts = api::parse_ingest_request(body)
                    .map_err(|e| (422, error_body("unprocessable", &e.0)))?;
                let resp = engine.ingest(facts).map_err(engine_error_response)?;
                *queue_wait_ns = Some(resp.queue_wait_ns);
                Ok(api::ingest_response_json(&resp))
            });
            ("ingest", status, Payload::Json(body))
        }
        (
            _,
            "/healthz" | "/metrics" | "/v1/traces" | "/v1/drift" | "/admin/shutdown" | "/v1/query"
            | "/v1/ingest",
        ) => (
            "other",
            405,
            Payload::Json(error_body(
                "method_not_allowed",
                &format!("{} not allowed here", req.method),
            )),
        ),
        (_, path) => {
            ("other", 404, Payload::Json(error_body("not_found", &format!("no route for {path}"))))
        }
    }
}

/// Shared plumbing for the JSON POST endpoints: content-type gate, JSON
/// parse, then the endpoint body.
fn json_endpoint(
    req: &Request,
    f: impl FnOnce(&Value) -> Result<Value, (u16, Value)>,
) -> (u16, Value) {
    if !req.is_json() {
        return (
            415,
            error_body(
                "unsupported_media_type",
                "send application/json (set the Content-Type header)",
            ),
        );
    }
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(e) => return (400, error_body("bad_request", &format!("body is not UTF-8: {e}"))),
    };
    let body = match retia_json::parse(text) {
        Ok(v) => v,
        Err(e) => return (400, error_body("bad_request", &format!("body is not valid JSON: {e}"))),
    };
    match f(&body) {
        Ok(v) => (200, v),
        Err((status, body)) => (status, body),
    }
}

fn engine_error_response(e: EngineError) -> (u16, Value) {
    match &e {
        EngineError::InvalidQuery(m) => (422, error_body("unprocessable", m)),
        EngineError::InvalidIngest(m) => (422, error_body("unprocessable", m)),
        // Swaps come from the in-process trainer, never from HTTP; routing
        // one here would be a bug, but the map stays total.
        EngineError::InvalidSwap(m) => (422, error_body("unprocessable", m)),
        EngineError::Stopped => (503, error_body("unavailable", "engine stopped")),
        EngineError::Overloaded => {
            (429, error_body("overloaded", "job queue full; retry after the queue drains"))
        }
    }
}
