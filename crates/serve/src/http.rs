//! A dependency-free HTTP/1.1 subset on blocking [`std::io`] streams.
//!
//! Exactly what the serving endpoints need and nothing more: one request per
//! connection (`Connection: close`), request lines and headers parsed into a
//! [`Request`], bodies bounded by a hard cap, and JSON responses written with
//! explicit `Content-Length`. Every malformed input maps to a typed
//! [`HttpError`] carrying the 4xx status to answer with — parsing never
//! panics, whatever bytes arrive (the chaos tests feed it bit-flipped and
//! truncated buffers).

use std::io::{Read, Write};

use retia_json::Value;

/// Hard cap on request body size; larger `Content-Length` values are
/// answered with `413` before any body byte is read.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Cap on the request line + headers block, to bound memory for clients
/// that never send the terminating blank line.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request: method, path, lower-cased headers and the raw body.
#[derive(Debug)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// Request path (`/v1/query`), query strings not interpreted.
    pub path: String,
    /// Header `(name, value)` pairs; names lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Raw request body (exactly `Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Whether the request declares a JSON body (`application/json`, any
    /// parameters ignored). Requests without a body pass trivially.
    pub fn is_json(&self) -> bool {
        match self.header("content-type") {
            None => self.body.is_empty(),
            Some(ct) => {
                let mime = ct.split(';').next().unwrap_or("").trim().to_ascii_lowercase();
                mime == "application/json"
            }
        }
    }
}

/// Everything that can go wrong between the socket and a parsed [`Request`].
/// Each variant knows its HTTP status and a stable machine-readable code.
#[derive(Debug, PartialEq, Eq)]
pub enum HttpError {
    /// Unparseable request line, header, or a connection that closed before
    /// the declared body arrived.
    Malformed(String),
    /// Declared or actual body beyond [`MAX_BODY_BYTES`].
    PayloadTooLarge(usize),
    /// Head block beyond [`MAX_HEAD_BYTES`] without a terminating blank line.
    HeadTooLarge,
    /// Socket-level failure (reset, timeout) — no response possible.
    Io(String),
}

impl HttpError {
    /// HTTP status code to answer with.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Malformed(_) => 400,
            HttpError::PayloadTooLarge(_) => 413,
            HttpError::HeadTooLarge => 431,
            HttpError::Io(_) => 400,
        }
    }

    /// Stable machine-readable error code for the JSON envelope.
    pub fn code(&self) -> &'static str {
        match self {
            HttpError::Malformed(_) => "bad_request",
            HttpError::PayloadTooLarge(_) => "payload_too_large",
            HttpError::HeadTooLarge => "headers_too_large",
            HttpError::Io(_) => "bad_request",
        }
    }

    /// Human-readable detail for the JSON envelope.
    pub fn message(&self) -> String {
        match self {
            HttpError::Malformed(m) => m.clone(),
            HttpError::PayloadTooLarge(n) => {
                format!("request body of {n} bytes exceeds the {MAX_BODY_BYTES}-byte cap")
            }
            HttpError::HeadTooLarge => {
                format!("request head exceeds the {MAX_HEAD_BYTES}-byte cap")
            }
            HttpError::Io(m) => format!("connection error: {m}"),
        }
    }
}

/// Reads and parses one request from `stream`.
///
/// The head is read byte-wise until `\r\n\r\n` (or `\n\n`); the body is then
/// read to exactly `Content-Length` bytes. All failures are typed; this
/// function never panics on hostile input.
pub fn read_request(stream: &mut impl Read) -> Result<Request, HttpError> {
    let head = read_head(stream)?;
    let text = String::from_utf8_lossy(&head);
    let mut lines = text.split("\r\n").flat_map(|l| l.split('\n'));

    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => {
            return Err(HttpError::Malformed(format!("unparseable request line: {request_line:?}")))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("unsupported protocol version {version:?}")));
    }
    if !method.chars().all(|c| c.is_ascii_uppercase()) {
        return Err(HttpError::Malformed(format!("invalid method {method:?}")));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("header line without a colon: {line:?}")));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed(format!("invalid header name: {name:?}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut request =
        Request { method: method.to_string(), path: path.to_string(), headers, body: Vec::new() };

    let length = match request.header("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("unparseable content-length: {v:?}")))?,
    };
    if length > MAX_BODY_BYTES {
        return Err(HttpError::PayloadTooLarge(length));
    }
    if length > 0 {
        let mut body = vec![0u8; length];
        stream
            .read_exact(&mut body)
            .map_err(|e| HttpError::Malformed(format!("body shorter than content-length: {e}")))?;
        request.body = body;
    }
    Ok(request)
}

/// Reads up to and including the blank line that terminates the head.
fn read_head(stream: &mut impl Read) -> Result<Vec<u8>, HttpError> {
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => {
                return Err(HttpError::Malformed(
                    "connection closed before the request head completed".to_string(),
                ))
            }
            Ok(_) => head.push(byte[0]),
            Err(e) => return Err(HttpError::Io(e.to_string())),
        }
        if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
            return Ok(head);
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        415 => "Unsupported Media Type",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes a JSON response with `Connection: close`. Write failures are
/// returned (the peer may already be gone); callers log and move on.
pub fn write_json(stream: &mut impl Write, status: u16, body: &Value) -> std::io::Result<()> {
    let payload = body.to_string_compact();
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        reason(status),
        payload.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(payload.as_bytes())?;
    stream.flush()
}

/// The typed error envelope every non-2xx response carries:
/// `{"error": {"code": ..., "message": ...}}`.
pub fn error_body(code: &str, message: &str) -> Value {
    let mut err = Value::object();
    err.insert("code", Value::from(code));
    err.insert("message", Value::from(message));
    let mut body = Value::object();
    body.insert("error", err);
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(raw.to_vec()))
    }

    #[test]
    fn parses_a_basic_post() {
        let req = parse(
            b"POST /v1/query HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\r\n{}",
        )
        .expect("well-formed request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/query");
        assert_eq!(req.body, b"{}");
        assert!(req.is_json());
        assert_eq!(req.header("host"), Some("x"));
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse(b"GET /healthz HTTP/1.1\r\n\r\n").expect("well-formed request");
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        assert!(req.is_json());
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for raw in [
            &b"\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /x\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET /x SPDY/3\r\n\r\n",
            b"get /x HTTP/1.1\r\n\r\n",
        ] {
            let err = parse(raw).expect_err("must reject");
            assert_eq!(err.status(), 400, "{raw:?}");
        }
    }

    #[test]
    fn rejects_truncated_head_and_short_body() {
        let err = parse(b"POST /v1/query HTTP/1.1\r\nContent-Le").expect_err("truncated head");
        assert_eq!(err.status(), 400);
        let err = parse(b"POST /v1/query HTTP/1.1\r\nContent-Length: 10\r\n\r\n{}")
            .expect_err("short body");
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn rejects_oversized_bodies_without_reading_them() {
        let raw =
            format!("POST /v1/ingest HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        let err = parse(raw.as_bytes()).expect_err("oversized");
        assert_eq!(err.status(), 413);
        assert_eq!(err.code(), "payload_too_large");
    }

    #[test]
    fn rejects_unbounded_heads() {
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 2));
        let err = parse(&raw).expect_err("unbounded head");
        assert_eq!(err, HttpError::HeadTooLarge);
        assert_eq!(err.status(), 431);
    }

    #[test]
    fn header_without_colon_is_malformed() {
        let err = parse(b"GET /x HTTP/1.1\r\nbroken header line\r\n\r\n").expect_err("no colon");
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn wrong_content_type_is_detected() {
        let req = parse(
            b"POST /v1/query HTTP/1.1\r\nContent-Type: text/plain\r\nContent-Length: 2\r\n\r\nhi",
        )
        .expect("parses fine");
        assert!(!req.is_json());
        let req = parse(
            b"POST /v1/query HTTP/1.1\r\nContent-Type: application/json; charset=utf-8\r\nContent-Length: 2\r\n\r\n{}",
        )
        .expect("parses fine");
        assert!(req.is_json());
    }

    #[test]
    fn response_writer_emits_content_length() {
        let mut out = Vec::new();
        write_json(&mut out, 422, &error_body("unprocessable", "bad ids")).expect("vec write");
        let text = String::from_utf8(out).expect("ascii");
        assert!(text.starts_with("HTTP/1.1 422 Unprocessable Entity\r\n"));
        assert!(text.contains("Connection: close"));
        let body = text.split("\r\n\r\n").nth(1).expect("body present");
        assert!(text.contains(&format!("Content-Length: {}", body.len())));
        assert!(body.contains("\"code\":\"unprocessable\""));
    }
}
