//! A dependency-free HTTP/1.1 subset on [`std::io`] streams, with
//! keep-alive in mind.
//!
//! The core is [`RequestBuffer`], an incremental parser: bytes arrive in
//! whatever chunks the socket delivers, complete requests come out, and
//! leftover bytes stay buffered for the next pipelined request — exactly the
//! state a keep-alive connection must carry between requests. Request lines
//! and headers parse into a [`Request`], bodies are bounded by a hard cap,
//! and JSON responses are written with explicit `Content-Length`. Every
//! malformed input maps to a typed [`HttpError`] carrying the 4xx status to
//! answer with — parsing never panics, whatever bytes arrive (the chaos
//! tests feed it bit-flipped and truncated buffers).
//!
//! Request-smuggling-shaped inputs are rejected outright: a `Content-Length`
//! that is not a plain digit string (`+10`, `-1`, `0x1f`) and duplicate
//! `Content-Length` headers that disagree are both typed 400s, never
//! silently reinterpreted.

use std::io::{Read, Write};

use retia_json::Value;

/// Hard cap on request body size; larger `Content-Length` values are
/// answered with `413` before any body byte is read.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Cap on the request line + headers block, to bound memory for clients
/// that never send the terminating blank line.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request: method, path, version, lower-cased headers and the raw
/// body.
#[derive(Debug)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// Request path (`/v1/query`), query strings not interpreted.
    pub path: String,
    /// Protocol version as sent (`HTTP/1.1` or `HTTP/1.0`).
    pub version: String,
    /// Header `(name, value)` pairs; names lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Raw request body (exactly `Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lower-case name. Headers where duplicates
    /// are dangerous (`Content-Length`) are validated during parsing, before
    /// this accessor can be reached.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Whether the request declares a JSON body (`application/json`, any
    /// parameters ignored). Requests without a body pass trivially.
    pub fn is_json(&self) -> bool {
        match self.header("content-type") {
            None => self.body.is_empty(),
            Some(ct) => {
                let mime = ct.split(';').next().unwrap_or("").trim().to_ascii_lowercase();
                mime == "application/json"
            }
        }
    }

    /// Whether the connection may carry another request after this one:
    /// HTTP/1.1 defaults to keep-alive unless the client sends
    /// `Connection: close`; HTTP/1.0 defaults to close unless the client
    /// opts in with `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        let has_token = |token: &str| {
            self.header("connection")
                .map(|v| v.split(',').any(|t| t.trim().eq_ignore_ascii_case(token)))
                .unwrap_or(false)
        };
        if has_token("close") {
            return false;
        }
        if self.version == "HTTP/1.0" {
            return has_token("keep-alive");
        }
        true
    }
}

/// Everything that can go wrong between the socket and a parsed [`Request`].
/// Each variant knows its HTTP status and a stable machine-readable code.
#[derive(Debug, PartialEq, Eq)]
pub enum HttpError {
    /// Unparseable request line, header, smuggling-shaped `Content-Length`,
    /// or a connection that closed before the declared body arrived.
    Malformed(String),
    /// Declared or actual body beyond [`MAX_BODY_BYTES`].
    PayloadTooLarge(usize),
    /// Head block beyond [`MAX_HEAD_BYTES`] without a terminating blank line.
    HeadTooLarge,
    /// The peer stayed silent past the read deadline with a request
    /// outstanding — answered with `408 Request Timeout`.
    Timeout,
    /// Socket-level failure (reset, broken pipe): the transport itself is
    /// gone, so **no response is possible** — callers log and drop the
    /// connection instead of writing to a dead socket (see
    /// [`HttpError::wants_response`]).
    Io(String),
}

impl HttpError {
    /// HTTP status code to answer with. [`HttpError::Io`] has no peer left
    /// to answer (guard with [`HttpError::wants_response`]); its nominal
    /// status is 500 and is never written to a socket.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Malformed(_) => 400,
            HttpError::PayloadTooLarge(_) => 413,
            HttpError::HeadTooLarge => 431,
            HttpError::Timeout => 408,
            HttpError::Io(_) => 500,
        }
    }

    /// Whether a response can and should be written back to the peer.
    /// `false` only for genuine socket failures, where the callers' duty is
    /// to log the event and drop the connection.
    pub fn wants_response(&self) -> bool {
        !matches!(self, HttpError::Io(_))
    }

    /// Stable machine-readable error code for the JSON envelope.
    pub fn code(&self) -> &'static str {
        match self {
            HttpError::Malformed(_) => "bad_request",
            HttpError::PayloadTooLarge(_) => "payload_too_large",
            HttpError::HeadTooLarge => "headers_too_large",
            HttpError::Timeout => "request_timeout",
            HttpError::Io(_) => "io_error",
        }
    }

    /// Human-readable detail for the JSON envelope.
    pub fn message(&self) -> String {
        match self {
            HttpError::Malformed(m) => m.clone(),
            HttpError::PayloadTooLarge(n) => {
                format!("request body of {n} bytes exceeds the {MAX_BODY_BYTES}-byte cap")
            }
            HttpError::HeadTooLarge => {
                format!("request head exceeds the {MAX_HEAD_BYTES}-byte cap")
            }
            HttpError::Timeout => "request not completed before the read deadline".to_string(),
            HttpError::Io(m) => format!("connection error: {m}"),
        }
    }
}

/// Maps a socket read failure to the right [`HttpError`]: a timeout on a
/// blocking socket (`WouldBlock`/`TimedOut`, depending on the platform) is
/// answerable with 408; anything else means the transport is gone.
pub fn classify_read_error(e: &std::io::Error) -> HttpError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpError::Timeout,
        _ => HttpError::Io(e.to_string()),
    }
}

/// Parsed head awaiting its body.
struct PendingHead {
    request: Request,
    head_len: usize,
    total_len: usize,
}

/// Incremental request parser for one connection.
///
/// Feed raw bytes with [`RequestBuffer::extend`]; pull complete requests
/// with [`RequestBuffer::try_next`]. Bytes past the end of a request stay
/// buffered and seed the next one — pipelined requests on a keep-alive
/// connection parse back-to-back without touching the socket. The
/// head-terminator scan is resumable, so parsing is `O(bytes)` regardless of
/// how the input is chunked (the old implementation read one byte per
/// syscall, which keep-alive made untenable).
#[derive(Default)]
pub struct RequestBuffer {
    buf: Vec<u8>,
    /// Bytes already scanned for the head terminator (no byte is re-scanned).
    scanned: usize,
    /// Parsed head waiting for `total_len` buffered bytes.
    pending: Option<PendingHead>,
    /// When the first byte of the request being assembled arrived
    /// (trace-epoch nanoseconds) — the start of the `serve.recv` stage.
    recv_start_ns: Option<u64>,
}

impl RequestBuffer {
    /// A fresh, empty buffer.
    pub fn new() -> RequestBuffer {
        RequestBuffer::default()
    }

    /// Appends bytes read from the connection.
    pub fn extend(&mut self, bytes: &[u8]) {
        if self.recv_start_ns.is_none() && !bytes.is_empty() {
            self.recv_start_ns = Some(retia_obs::now_ns());
        }
        self.buf.extend_from_slice(bytes);
    }

    /// When the first byte of the request currently being assembled arrived,
    /// in trace-epoch nanoseconds. Read it *before* [`RequestBuffer::try_next`]
    /// hands the request out (which re-arms the clock for the next one).
    pub fn recv_start_ns(&self) -> Option<u64> {
        self.recv_start_ns
    }

    /// True when nothing is buffered: no partial request is outstanding, so
    /// the connection is idle and safe to reap silently.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty() && self.pending.is_none()
    }

    /// Tries to parse one complete request from the buffered bytes.
    ///
    /// `Ok(None)` means "need more bytes". Errors are terminal for the
    /// connection: the caller answers (if [`HttpError::wants_response`]) and
    /// closes.
    pub fn try_next(&mut self) -> Result<Option<Request>, HttpError> {
        if self.pending.is_none() {
            let Some(head_len) = self.scan_head_end() else {
                if self.buf.len() > MAX_HEAD_BYTES {
                    return Err(HttpError::HeadTooLarge);
                }
                return Ok(None);
            };
            let request = parse_head(&self.buf[..head_len])?;
            let length = content_length(&request)?;
            if length > MAX_BODY_BYTES {
                return Err(HttpError::PayloadTooLarge(length));
            }
            self.pending = Some(PendingHead { request, head_len, total_len: head_len + length });
        }
        let total = match &self.pending {
            Some(p) => p.total_len,
            None => return Ok(None),
        };
        if self.buf.len() < total {
            return Ok(None);
        }
        let Some(mut p) = self.pending.take() else { return Ok(None) };
        p.request.body = self.buf[p.head_len..p.total_len].to_vec();
        self.buf.drain(..p.total_len);
        self.scanned = 0;
        // Re-arm the recv clock: pipelined bytes already buffered belong to
        // the next request, which effectively "arrived" now.
        self.recv_start_ns = (!self.buf.is_empty()).then(retia_obs::now_ns);
        Ok(Some(p.request))
    }

    /// Resumable scan for the earliest head terminator (`\r\n\r\n` or
    /// `\n\n`); returns the head length including the terminator.
    fn scan_head_end(&mut self) -> Option<usize> {
        let b = &self.buf;
        let mut i = self.scanned;
        while i < b.len() {
            if (i >= 3 && &b[i - 3..=i] == b"\r\n\r\n") || (i >= 1 && &b[i - 1..=i] == b"\n\n") {
                self.scanned = i + 1;
                return Some(i + 1);
            }
            i += 1;
        }
        self.scanned = b.len();
        None
    }
}

/// Parses the request line and headers from a complete head block.
fn parse_head(head: &[u8]) -> Result<Request, HttpError> {
    let text = String::from_utf8_lossy(head);
    let mut lines = text.split("\r\n").flat_map(|l| l.split('\n'));

    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => {
            return Err(HttpError::Malformed(format!("unparseable request line: {request_line:?}")))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("unsupported protocol version {version:?}")));
    }
    if !method.chars().all(|c| c.is_ascii_uppercase()) {
        return Err(HttpError::Malformed(format!("invalid method {method:?}")));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("header line without a colon: {line:?}")));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed(format!("invalid header name: {name:?}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        version: version.to_string(),
        headers,
        body: Vec::new(),
    })
}

/// Hardened `Content-Length` extraction.
///
/// Two request-smuggling-shaped inputs are rejected with typed 400s rather
/// than reinterpreted: values that are not plain digit strings (Rust's
/// `usize::from_str` would happily accept a leading `+`, so `+10` must be
/// refused *before* parsing), and duplicate headers that disagree (taking
/// the first silently would let a front proxy and this server frame the
/// stream differently). Identical duplicates are tolerated per RFC 9110
/// §8.6.
fn content_length(req: &Request) -> Result<usize, HttpError> {
    let mut values =
        req.headers.iter().filter(|(n, _)| n == "content-length").map(|(_, v)| v.as_str());
    let Some(first) = values.next() else { return Ok(0) };
    for other in values {
        if other != first {
            return Err(HttpError::Malformed(format!(
                "conflicting content-length headers: {first:?} vs {other:?}"
            )));
        }
    }
    if first.is_empty() || !first.bytes().all(|b| b.is_ascii_digit()) {
        return Err(HttpError::Malformed(format!("unparseable content-length: {first:?}")));
    }
    match first.parse::<usize>() {
        Ok(n) => Ok(n),
        // All digits but overflows usize: far beyond any cap.
        Err(_) => Err(HttpError::PayloadTooLarge(usize::MAX)),
    }
}

/// Reads and parses one request from a blocking `stream`.
///
/// Reads in 4 KiB chunks through a [`RequestBuffer`] (not one byte per
/// syscall) until a full request is buffered. All failures are typed; this
/// function never panics on hostile input. A read timeout configured on the
/// stream surfaces as [`HttpError::Timeout`]; other socket failures as
/// [`HttpError::Io`].
pub fn read_request(stream: &mut impl Read) -> Result<Request, HttpError> {
    let mut rb = RequestBuffer::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(req) = rb.try_next()? {
            return Ok(req);
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(HttpError::Malformed(
                    "connection closed before the request completed".to_string(),
                ))
            }
            Ok(n) => rb.extend(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(classify_read_error(&e)),
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        415 => "Unsupported Media Type",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes a JSON response with `Connection: close`. Write failures are
/// returned (the peer may already be gone); callers log and move on.
pub fn write_json(stream: &mut impl Write, status: u16, body: &Value) -> std::io::Result<()> {
    write_json_response(stream, status, body, false, &[])
}

/// Full-control JSON response writer: chooses the `Connection` header
/// (keep-alive vs close) and carries extra headers such as `Retry-After`.
pub fn write_json_response(
    stream: &mut impl Write,
    status: u16,
    body: &Value,
    keep_alive: bool,
    extra_headers: &[(&str, String)],
) -> std::io::Result<()> {
    let payload = body.to_string_compact();
    write_response(stream, status, "application/json", &payload, keep_alive, extra_headers)
}

/// Plain-text sibling of [`write_json_response`] with an explicit
/// `Content-Type` — the Prometheus exposition (`text/plain; version=0.0.4`)
/// goes through here.
pub fn write_text_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
    extra_headers: &[(&str, String)],
) -> std::io::Result<()> {
    write_response(stream, status, content_type, body, keep_alive, extra_headers)
}

fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    payload: &str,
    keep_alive: bool,
    extra_headers: &[(&str, String)],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        status,
        reason(status),
        content_type,
        payload.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str(if keep_alive {
        "Connection: keep-alive\r\n\r\n"
    } else {
        "Connection: close\r\n\r\n"
    });
    stream.write_all(head.as_bytes())?;
    stream.write_all(payload.as_bytes())?;
    stream.flush()
}

/// The typed error envelope every non-2xx response carries:
/// `{"error": {"code": ..., "message": ...}}`.
pub fn error_body(code: &str, message: &str) -> Value {
    let mut err = Value::object();
    err.insert("code", Value::from(code));
    err.insert("message", Value::from(message));
    let mut body = Value::object();
    body.insert("error", err);
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(raw.to_vec()))
    }

    #[test]
    fn parses_a_basic_post() {
        let req = parse(
            b"POST /v1/query HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\r\n{}",
        )
        .expect("well-formed request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/query");
        assert_eq!(req.version, "HTTP/1.1");
        assert_eq!(req.body, b"{}");
        assert!(req.is_json());
        assert!(req.keep_alive());
        assert_eq!(req.header("host"), Some("x"));
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse(b"GET /healthz HTTP/1.1\r\n\r\n").expect("well-formed request");
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        assert!(req.is_json());
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for raw in [
            &b"\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /x\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET /x SPDY/3\r\n\r\n",
            b"get /x HTTP/1.1\r\n\r\n",
        ] {
            let err = parse(raw).expect_err("must reject");
            assert_eq!(err.status(), 400, "{raw:?}");
        }
    }

    #[test]
    fn rejects_truncated_head_and_short_body() {
        let err = parse(b"POST /v1/query HTTP/1.1\r\nContent-Le").expect_err("truncated head");
        assert_eq!(err.status(), 400);
        let err = parse(b"POST /v1/query HTTP/1.1\r\nContent-Length: 10\r\n\r\n{}")
            .expect_err("short body");
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn rejects_oversized_bodies_without_reading_them() {
        let raw =
            format!("POST /v1/ingest HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        let err = parse(raw.as_bytes()).expect_err("oversized");
        assert_eq!(err.status(), 413);
        assert_eq!(err.code(), "payload_too_large");
    }

    #[test]
    fn overflowing_content_length_is_payload_too_large() {
        let err = parse(b"POST /x HTTP/1.1\r\nContent-Length: 99999999999999999999999\r\n\r\n")
            .expect_err("overflow");
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn rejects_unbounded_heads() {
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 2));
        let err = parse(&raw).expect_err("unbounded head");
        assert_eq!(err, HttpError::HeadTooLarge);
        assert_eq!(err.status(), 431);
    }

    #[test]
    fn header_without_colon_is_malformed() {
        let err = parse(b"GET /x HTTP/1.1\r\nbroken header line\r\n\r\n").expect_err("no colon");
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn plus_prefixed_content_length_is_rejected() {
        // usize::from_str accepts "+10"; the wire format must not.
        let err = parse(b"POST /x HTTP/1.1\r\nContent-Length: +10\r\n\r\n0123456789")
            .expect_err("smuggling-shaped length");
        assert_eq!(err.status(), 400);
        assert!(err.message().contains("content-length"), "{}", err.message());
        for bad in ["-1", " 10", "1 0", "0x10", ""] {
            let raw = format!("POST /x HTTP/1.1\r\nContent-Length:{bad}\r\n\r\n");
            let err = parse(raw.as_bytes()).expect_err("bad length must reject");
            assert_eq!(err.status(), 400, "content-length {bad:?}");
        }
    }

    #[test]
    fn conflicting_duplicate_content_lengths_are_rejected() {
        let err = parse(b"POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\nhi!")
            .expect_err("conflicting lengths");
        assert_eq!(err.status(), 400);
        assert!(err.message().contains("conflicting"), "{}", err.message());

        // Identical duplicates are tolerated (RFC 9110 §8.6).
        let req = parse(b"POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nhi")
            .expect("identical duplicates are one value");
        assert_eq!(req.body, b"hi");
    }

    #[test]
    fn read_timeout_maps_to_408_and_io_to_drop() {
        struct TimesOut;
        impl Read for TimesOut {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "timed out"))
            }
        }
        let err = read_request(&mut TimesOut).expect_err("timeout");
        assert_eq!(err, HttpError::Timeout);
        assert_eq!(err.status(), 408);
        assert!(err.wants_response());
        assert_eq!(reason(408), "Request Timeout");

        struct Resets;
        impl Read for Resets {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(std::io::ErrorKind::ConnectionReset, "peer reset"))
            }
        }
        let err = read_request(&mut Resets).expect_err("reset");
        assert!(matches!(err, HttpError::Io(_)));
        assert!(!err.wants_response(), "io errors must be log-and-drop");
    }

    #[test]
    fn pipelined_requests_parse_back_to_back_with_leftovers() {
        let mut rb = RequestBuffer::new();
        let raw = b"POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /b HTTP/1.1\r\n\r\nGET /c";
        // Feed in awkward 7-byte chunks to exercise the resumable scan.
        let mut got = Vec::new();
        for chunk in raw.chunks(7) {
            rb.extend(chunk);
            while let Some(req) = rb.try_next().expect("valid pipeline") {
                got.push((req.method.clone(), req.path.clone(), req.body.clone()));
            }
        }
        assert_eq!(
            got,
            vec![
                ("POST".to_string(), "/a".to_string(), b"hi".to_vec()),
                ("GET".to_string(), "/b".to_string(), Vec::new()),
            ]
        );
        // The trailing partial request stays buffered.
        assert!(!rb.is_empty());
        rb.extend(b" HTTP/1.1\r\n\r\n");
        let req = rb.try_next().expect("completes").expect("third request");
        assert_eq!(req.path, "/c");
        assert!(rb.is_empty());
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        let req = parse(b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n").expect("parses");
        assert!(!req.keep_alive());
        let req = parse(b"GET /x HTTP/1.0\r\n\r\n").expect("parses");
        assert!(!req.keep_alive());
        let req = parse(b"GET /x HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").expect("parses");
        assert!(req.keep_alive());
        let req = parse(b"GET /x HTTP/1.1\r\nConnection: upgrade, close\r\n\r\n").expect("parses");
        assert!(!req.keep_alive());
    }

    #[test]
    fn wrong_content_type_is_detected() {
        let req = parse(
            b"POST /v1/query HTTP/1.1\r\nContent-Type: text/plain\r\nContent-Length: 2\r\n\r\nhi",
        )
        .expect("parses fine");
        assert!(!req.is_json());
        let req = parse(
            b"POST /v1/query HTTP/1.1\r\nContent-Type: application/json; charset=utf-8\r\nContent-Length: 2\r\n\r\n{}",
        )
        .expect("parses fine");
        assert!(req.is_json());
    }

    #[test]
    fn response_writer_emits_content_length() {
        let mut out = Vec::new();
        write_json(&mut out, 422, &error_body("unprocessable", "bad ids")).expect("vec write");
        let text = String::from_utf8(out).expect("ascii");
        assert!(text.starts_with("HTTP/1.1 422 Unprocessable Entity\r\n"));
        assert!(text.contains("Connection: close"));
        let body = text.split("\r\n\r\n").nth(1).expect("body present");
        assert!(text.contains(&format!("Content-Length: {}", body.len())));
        assert!(body.contains("\"code\":\"unprocessable\""));
    }

    #[test]
    fn response_writer_keep_alive_and_extra_headers() {
        let mut out = Vec::new();
        write_json_response(
            &mut out,
            429,
            &error_body("overloaded", "queue full"),
            true,
            &[("Retry-After", "1".to_string())],
        )
        .expect("vec write");
        let text = String::from_utf8(out).expect("ascii");
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: keep-alive"));
    }
}
