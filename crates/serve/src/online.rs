//! Self-healing online learning: the continual-trainer supervisor, the
//! drift monitor with rollback, and the CRC-stamped ingest durability log.
//!
//! The supervisor runs on its own thread, completely isolated from the
//! serving path: it polls the engine for the current history window, runs a
//! few fault-tolerant gradient steps on a private [`Trainer`], and — only
//! when the candidate passes the value audit *and* the drift gate — offers
//! the engine an atomic model swap. Every failure mode folds into the
//! degradation ladder instead of an outage:
//!
//! * **divergence / trainer panic** → parameters restored from the
//!   last-good snapshot, serving marked `degraded`, retry with exponential
//!   backoff (queries keep answering from the last-good model throughout);
//! * **drift** (candidate loss/MRR regressing against the pinned boot
//!   baseline for `drift_window` consecutive rounds) → the served model is
//!   rolled back to the last-good swap and the trainer restarts from it,
//!   with a `recovery.rollback` event and `drift.rollbacks` counter;
//! * **staleness** (served weights lagging the ingest stream beyond
//!   `max_staleness` epochs) → surfaced through `/healthz` and metrics,
//!   never an error path.
//!
//! Chaos hooks: the trainer inherits the process's `RETIA_CHAOS` gradient
//! faults, and `trainer-panic@R` clauses kill training round `R` outright
//! to prove the isolation boundary holds.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use retia::{entity_queries, FrozenModel, RecoveryPolicy, Retia, TrainError, Trainer};
use retia_analyze::ChaosPlan;
use retia_eval::rank_of;
use retia_graph::{group_by_timestamp, HyperSnapshot, Quad, Snapshot};
use retia_json::Value;
use retia_tensor::serialize::crc32;

use crate::engine::{EngineError, EngineHandle, SwapRequest, WindowView};
use crate::stages;

/// Continual-training knobs, surfaced as `retia serve --online` flags.
#[derive(Clone, Debug)]
pub struct OnlineOptions {
    /// Gradient steps per training round (one round per ingest epoch).
    pub steps: usize,
    /// Poll interval between window checks when idle.
    pub interval: Duration,
    /// Ingest epochs the served model may lag before `/healthz` degrades.
    pub max_staleness: u64,
    /// Allowed relative regression of the candidate against the pinned
    /// baseline (e.g. `0.5` = candidate loss may be up to 50% worse).
    /// Negative values reject every candidate — the deterministic rollback
    /// switch the chaos tests use.
    pub drift_threshold: f64,
    /// Consecutive breaching rounds before the drift monitor rolls back.
    pub drift_window: u64,
    /// Deterministic fault plan for the trainer (gradient faults and
    /// `trainer-panic` rounds).
    pub chaos: ChaosPlan,
}

impl Default for OnlineOptions {
    fn default() -> OnlineOptions {
        OnlineOptions {
            steps: 4,
            interval: Duration::from_millis(200),
            max_staleness: 8,
            drift_threshold: 0.5,
            drift_window: 3,
            chaos: ChaosPlan::none(),
        }
    }
}

/// Trainer activity, encoded as an atomic for lock-free `/healthz` reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrainerState {
    /// Waiting for a new ingest epoch.
    Idle,
    /// A training round is running.
    Training,
    /// The last round failed; retrying after an exponential backoff.
    Backoff,
    /// Online learning is off (`--online` not passed).
    Disabled,
}

impl TrainerState {
    fn from_u8(v: u8) -> TrainerState {
        match v {
            0 => TrainerState::Idle,
            1 => TrainerState::Training,
            2 => TrainerState::Backoff,
            _ => TrainerState::Disabled,
        }
    }

    /// The `/healthz` wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            TrainerState::Idle => "idle",
            TrainerState::Training => "training",
            TrainerState::Backoff => "backoff",
            TrainerState::Disabled => "disabled",
        }
    }
}

/// Drift monitor readout: candidate-vs-baseline forecasting quality on the
/// newest window, served at `GET /v1/drift`.
#[derive(Clone, Debug, Default)]
pub struct DriftReport {
    /// Ingest epoch of the last evaluated window (0 = none yet).
    pub window_epoch: u64,
    /// Joint forecasting loss of the newest candidate on that window.
    pub candidate_loss: f64,
    /// Joint forecasting loss of the pinned boot baseline on that window.
    pub baseline_loss: f64,
    /// Entity MRR of the candidate on that window.
    pub candidate_mrr: f64,
    /// Entity MRR of the baseline on that window.
    pub baseline_mrr: f64,
    /// Consecutive rounds the candidate has breached the drift threshold.
    pub breach_streak: u64,
    /// Drift rollbacks performed since boot.
    pub rollbacks: u64,
    /// Training rounds evaluated since boot.
    pub evaluations: u64,
    /// Model swaps published since boot.
    pub swaps: u64,
}

/// Shared view of the online trainer for `/healthz` and `/v1/drift`.
/// Everything here is readable without touching the engine queue.
pub struct OnlineStatus {
    enabled: bool,
    max_staleness: u64,
    state: AtomicU8,
    degraded: AtomicBool,
    stop: AtomicBool,
    drift: Mutex<DriftReport>,
}

impl OnlineStatus {
    /// Placeholder status for a server running without `--online`.
    pub fn disabled() -> Arc<OnlineStatus> {
        Arc::new(OnlineStatus {
            enabled: false,
            max_staleness: u64::MAX,
            state: AtomicU8::new(TrainerState::Disabled as u8),
            degraded: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            drift: Mutex::new(DriftReport::default()),
        })
    }

    fn enabled(max_staleness: u64) -> Arc<OnlineStatus> {
        Arc::new(OnlineStatus {
            enabled: true,
            max_staleness,
            state: AtomicU8::new(TrainerState::Idle as u8),
            degraded: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            drift: Mutex::new(DriftReport::default()),
        })
    }

    /// Whether online learning is running.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The staleness budget `/healthz` degrades at (`u64::MAX` = unbounded).
    pub fn max_staleness(&self) -> u64 {
        self.max_staleness
    }

    /// Current trainer activity.
    pub fn trainer_state(&self) -> TrainerState {
        TrainerState::from_u8(self.state.load(Ordering::Acquire))
    }

    /// True while the trainer is in a failure window (divergence, panic or
    /// sustained drift) and serving runs from the last-good model.
    pub fn trainer_degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    /// A copy of the latest drift readout.
    pub fn drift(&self) -> DriftReport {
        self.drift.lock().expect("drift report poisoned").clone()
    }

    fn set_state(&self, s: TrainerState) {
        self.state.store(s as u8, Ordering::Release);
    }
}

/// The running supervisor: join handle plus the shared status.
pub(crate) struct OnlineTrainer {
    thread: Option<JoinHandle<()>>,
    status: Arc<OnlineStatus>,
}

impl OnlineTrainer {
    /// Spawns the supervisor thread. `baseline` is the pinned drift
    /// reference (the audited boot model); the trainer starts from a fresh
    /// copy of its parameters (Adam moments start at zero).
    pub(crate) fn spawn(
        engine: EngineHandle,
        baseline: FrozenModel,
        opts: OnlineOptions,
    ) -> std::io::Result<OnlineTrainer> {
        let status = OnlineStatus::enabled(opts.max_staleness);
        let shared = Arc::clone(&status);
        let thread = std::thread::Builder::new()
            .name("retia-serve-trainer".to_string())
            .spawn(move || supervise(engine, baseline, opts, &shared))?;
        Ok(OnlineTrainer { thread: Some(thread), status })
    }

    pub(crate) fn status(&self) -> Arc<OnlineStatus> {
        Arc::clone(&self.status)
    }

    /// Signals the supervisor to exit and joins it.
    pub(crate) fn stop(&mut self) {
        self.status.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            // The supervisor catches training panics itself; a panic here
            // means the isolation boundary is already broken, so surface it.
            t.join().expect("online trainer thread panicked");
        }
    }
}

/// Sleeps up to `d`, waking early when a stop is requested. Returns false
/// once the supervisor should exit.
fn interruptible_sleep(status: &OnlineStatus, d: Duration) -> bool {
    let step = Duration::from_millis(20);
    let mut left = d;
    while !left.is_zero() {
        if status.stop.load(Ordering::Acquire) {
            return false;
        }
        let chunk = left.min(step);
        std::thread::sleep(chunk);
        left = left.saturating_sub(chunk);
    }
    !status.stop.load(Ordering::Acquire)
}

/// The supervisor loop: poll → train → audit → drift-gate → swap, with
/// every failure folded into backoff + restore instead of propagation.
fn supervise(
    engine: EngineHandle,
    baseline: FrozenModel,
    opts: OnlineOptions,
    status: &OnlineStatus,
) {
    let cfg = baseline.cfg().clone();
    let mut trainer = Trainer::new(baseline.clone_model(), cfg.clone());
    trainer.set_recovery(Some(RecoveryPolicy::default()));
    trainer.set_chaos(opts.chaos.clone());

    // Last-good parameter values: what both the served model and a restored
    // trainer fall back to. Starts as the boot model.
    let mut good_params = trainer.model.store().clone();
    let mut good_trained_epoch = 0u64;
    let mut last_trained_epoch = 0u64;
    let mut round = 0u64;
    let mut failures = 0u32;

    loop {
        let backoff_pow = failures.min(6);
        let wait = opts.interval * 2u32.saturating_pow(backoff_pow);
        if !interruptible_sleep(status, wait) {
            break;
        }
        let view = match engine.window() {
            Ok(v) => v,
            Err(EngineError::Stopped) => break,
            Err(_) => continue,
        };
        if view.epoch == last_trained_epoch || view.snaps.len() < 2 {
            if failures == 0 {
                status.set_state(TrainerState::Idle);
            }
            continue;
        }

        status.set_state(TrainerState::Training);
        let this_round = round;
        round += 1;
        let outcome = train_round(&mut trainer, &view, &opts, this_round);
        match outcome {
            Ok(mean_loss) => {
                retia_obs::metrics::set_gauge("online.train_loss", mean_loss);
                match publish(
                    &engine,
                    &trainer,
                    &baseline,
                    &view,
                    &opts,
                    status,
                    &mut good_params,
                    &mut good_trained_epoch,
                ) {
                    Publish::Swapped | Publish::Held => {
                        last_trained_epoch = view.epoch;
                        failures = 0;
                        status.degraded.store(false, Ordering::Release);
                        status.set_state(TrainerState::Idle);
                    }
                    Publish::RolledBack => {
                        // Drift rollback: the trainer restarts from the
                        // last-good params; the window that produced the
                        // drifted candidate is considered handled.
                        trainer.model.store_mut().copy_values_from(&good_params);
                        trainer.set_lr(cfg.lr);
                        trainer.set_recovery(Some(RecoveryPolicy::default()));
                        last_trained_epoch = view.epoch;
                        failures = 0;
                        status.degraded.store(true, Ordering::Release);
                        status.set_state(TrainerState::Backoff);
                    }
                    Publish::EngineGone => break,
                }
            }
            Err(reason) => {
                // Fault isolation: restore the trainer to the last-good
                // snapshot and retry the same epoch after a backoff while
                // serving keeps answering from the last-good model.
                failures += 1;
                status.degraded.store(true, Ordering::Release);
                status.set_state(TrainerState::Backoff);
                trainer.model.store_mut().copy_values_from(&good_params);
                trainer.set_lr(cfg.lr);
                trainer.set_recovery(Some(RecoveryPolicy::default()));
                retia_obs::metrics::inc("online.train_failures");
                retia_obs::event!(
                    retia_obs::Level::Warn,
                    "online.train_failed",
                    round = this_round,
                    failures = failures;
                    format!(
                        "continual training round {this_round} failed ({reason}); serving \
                         degraded on last-good model, retrying with backoff"
                    )
                );
            }
        }
    }
    status.set_state(if status.enabled { TrainerState::Idle } else { TrainerState::Disabled });
}

/// One isolated training round: the chaos `trainer-panic` hook plus
/// `fit_window`, with panics contained to this call.
fn train_round(
    trainer: &mut Trainer,
    view: &WindowView,
    opts: &OnlineOptions,
    round: u64,
) -> Result<f64, String> {
    let _t = retia_obs::span!(stages::TRAIN, round = round, epoch = view.epoch);
    let chaos = opts.chaos.clone();
    let steps = opts.steps;
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if chaos.trainer_panic(round) {
            std::panic::panic_any(format!("chaos: trainer-panic round {round}"));
        }
        trainer.fit_window(&view.snaps, &view.hypers, steps)
    }));
    match result {
        Ok(Ok(loss)) => Ok(loss.joint),
        Ok(Err(TrainError::Diverged(report))) => Err(format!("diverged: {report}")),
        Ok(Err(e)) => Err(e.to_string()),
        Err(panic) => Err(match panic.downcast_ref::<String>() {
            Some(msg) => format!("panicked: {msg}"),
            None => "panicked".to_string(),
        }),
    }
}

enum Publish {
    /// Candidate passed every gate and is now serving.
    Swapped,
    /// Candidate breached the drift threshold (streak below the rollback
    /// window) or failed the audit; the last-good model keeps serving.
    Held,
    /// Sustained drift: the engine was rolled back to the last-good model.
    RolledBack,
    /// The engine stopped mid-publish.
    EngineGone,
}

/// Audit gate → drift gate → atomic swap, updating the shared drift report.
#[allow(clippy::too_many_arguments)]
fn publish(
    engine: &EngineHandle,
    trainer: &Trainer,
    baseline: &FrozenModel,
    view: &WindowView,
    opts: &OnlineOptions,
    status: &OnlineStatus,
    good_params: &mut retia_tensor::ParamStore,
    good_trained_epoch: &mut u64,
) -> Publish {
    let candidate = freeze_candidate(trainer);

    // Pre-swap audit gate (PR-8): the engine must never install a model the
    // value audit cannot prove NaN-free and tape-free.
    let audit = candidate.audit();
    if !audit.is_clean() {
        retia_obs::metrics::inc("online.audit_rejected");
        retia_obs::event!(
            retia_obs::Level::Warn,
            "online.audit_rejected";
            format!("candidate model failed the value audit; holding last-good:\n{audit}")
        );
        return Publish::Held;
    }

    // Drift gate: score candidate and pinned baseline on the newest window.
    let _t = retia_obs::span!(stages::DRIFT, epoch = view.epoch);
    let (history, target) = view.snaps.split_at(view.snaps.len() - 1);
    let hyper_history = &view.hypers[..history.len()];
    let target = &target[0];
    let cand_loss = candidate.window_loss(history, hyper_history, target);
    let base_loss = baseline.window_loss(history, hyper_history, target);
    let cand_mrr = window_mrr(&candidate, history, hyper_history, target);
    let base_mrr = window_mrr(baseline, history, hyper_history, target);
    let loss_breach =
        !cand_loss.is_finite() || cand_loss > base_loss * (1.0 + opts.drift_threshold).max(0.0);
    let mrr_breach = cand_mrr < base_mrr * (1.0 - opts.drift_threshold).min(1.0);
    let breached = loss_breach || mrr_breach;

    let (streak, rollbacks) = {
        let mut drift = status.drift.lock().expect("drift report poisoned");
        drift.window_epoch = view.epoch;
        drift.candidate_loss = cand_loss;
        drift.baseline_loss = base_loss;
        drift.candidate_mrr = cand_mrr;
        drift.baseline_mrr = base_mrr;
        drift.evaluations += 1;
        drift.breach_streak = if breached { drift.breach_streak + 1 } else { 0 };
        (drift.breach_streak, drift.rollbacks)
    };
    retia_obs::drift::record(cand_loss, base_loss, cand_mrr, base_mrr, streak);

    if breached && streak >= opts.drift_window.max(1) {
        // Sustained regression: roll the served model back to the
        // last-good swap and zero the streak.
        let rolled = engine.swap(SwapRequest {
            model: rollback_model(baseline, good_params),
            trained_epoch: *good_trained_epoch,
            states: None,
        });
        if matches!(rolled, Err(EngineError::Stopped)) {
            return Publish::EngineGone;
        }
        {
            let mut drift = status.drift.lock().expect("drift report poisoned");
            drift.breach_streak = 0;
            drift.rollbacks += 1;
        }
        retia_obs::drift::rollback(view.epoch, rollbacks + 1);
        return Publish::RolledBack;
    }
    if breached {
        retia_obs::metrics::inc("online.drift_held");
        return Publish::Held;
    }

    // Healthy candidate: pre-evolve its states off the engine thread so the
    // swap installs them without paying the recurrence under the queue.
    let states = candidate.evolve_window(&view.snaps, &view.hypers);
    let next_good = trainer.model.store().clone();
    match engine.swap(SwapRequest {
        model: candidate,
        trained_epoch: view.epoch,
        states: Some(states),
    }) {
        Ok(resp) => {
            *good_params = next_good;
            *good_trained_epoch = view.epoch;
            let mut drift = status.drift.lock().expect("drift report poisoned");
            drift.swaps += 1;
            retia_obs::metrics::set_gauge("online.model_epoch", resp.model_epoch as f64);
            retia_obs::event!(
                retia_obs::Level::Info,
                "online.swap",
                model_epoch = resp.model_epoch,
                trained_epoch = view.epoch;
                format!(
                    "published model epoch {} (trained through ingest epoch {}, states {})",
                    resp.model_epoch,
                    view.epoch,
                    if resp.states_reused { "reused" } else { "re-evolved" }
                )
            );
            Publish::Swapped
        }
        Err(EngineError::Stopped) => Publish::EngineGone,
        Err(e) => {
            retia_obs::metrics::inc("online.swap_rejected");
            retia_obs::event!(
                retia_obs::Level::Warn,
                "online.swap_rejected";
                format!("engine rejected the model swap: {e}")
            );
            Publish::Held
        }
    }
}

/// A frozen copy of the trainer's current parameters.
fn freeze_candidate(trainer: &Trainer) -> FrozenModel {
    let mut model = Retia::with_shape(
        &trainer.cfg,
        trainer.model.num_entities(),
        trainer.model.num_relations(),
    );
    model.store_mut().copy_values_from(trainer.model.store());
    FrozenModel::new(model)
}

/// The last-good model rebuilt from its parameter snapshot.
fn rollback_model(baseline: &FrozenModel, good_params: &retia_tensor::ParamStore) -> FrozenModel {
    let mut model = baseline.clone_model();
    model.store_mut().copy_values_from(good_params);
    FrozenModel::new(model)
}

/// Entity MRR of `model` forecasting `target` from `history` (capped at
/// [`MRR_QUERY_CAP`] queries to bound the drift monitor's cost).
fn window_mrr(
    model: &FrozenModel,
    history: &[Snapshot],
    hypers: &[HyperSnapshot],
    target: &Snapshot,
) -> f64 {
    const MRR_QUERY_CAP: usize = 256;
    let (mut subjects, mut rels, mut targets) = entity_queries(target, model.num_relations());
    subjects.truncate(MRR_QUERY_CAP);
    rels.truncate(MRR_QUERY_CAP);
    targets.truncate(MRR_QUERY_CAP);
    if targets.is_empty() {
        return 0.0;
    }
    let states = model.evolve_window(history, hypers);
    let probs = model.decode_entity(&states, subjects, rels);
    let mut rr = 0.0;
    for (i, t) in targets.iter().enumerate() {
        rr += 1.0 / rank_of(probs.row(i), *t as usize);
    }
    rr / targets.len() as f64
}

// ---------------------------------------------------------------------------
// Ingest durability log
// ---------------------------------------------------------------------------

/// Append-only JSONL durability log for accepted ingest facts. Each line is
/// `{"crc":C,"facts":[[s,r,o,t],...]}` where `C` is the CRC-32 of the
/// compact `facts` array text — enough to detect the torn or bit-flipped
/// tail a crash mid-append leaves behind.
pub struct IngestLog {
    file: File,
}

impl IngestLog {
    /// Opens (creating if needed) the log for appending.
    pub fn open_append(path: &Path) -> std::io::Result<IngestLog> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(IngestLog { file })
    }

    /// Appends one accepted ingest batch and syncs it to disk.
    pub fn append(&mut self, facts: &[Quad]) -> std::io::Result<()> {
        let line = record_line(facts);
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()
    }
}

fn facts_json(facts: &[Quad]) -> String {
    Value::Array(
        facts
            .iter()
            .map(|q| Value::Array(vec![q.s.into(), q.r.into(), q.o.into(), q.t.into()]))
            .collect(),
    )
    .to_string_compact()
}

fn record_line(facts: &[Quad]) -> String {
    let body = facts_json(facts);
    let crc = crc32(body.as_bytes());
    format!("{{\"crc\":{crc},\"facts\":{body}}}\n")
}

/// What boot replay recovered from an ingest log.
#[derive(Debug, Default)]
pub struct ReplayOutcome {
    /// Every fact from the valid prefix, in append order.
    pub quads: Vec<Quad>,
    /// Valid records replayed.
    pub records: usize,
    /// Byte length the log was truncated to when a corrupt tail was found
    /// (`None`: the whole log was valid).
    pub truncated_to: Option<u64>,
}

/// Reads an ingest log, returning the facts of its valid prefix. A corrupt
/// tail — torn final write, bit flip, garbage — is detected by the per-line
/// CRC and **cleanly truncated** in place at the last valid record, so the
/// next boot sees a wholly valid log.
pub fn replay_ingest_log(path: &Path) -> std::io::Result<ReplayOutcome> {
    let _t = retia_obs::span!(stages::REPLAY);
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(ReplayOutcome::default());
        }
        Err(e) => return Err(e),
    };
    let mut out = ReplayOutcome::default();
    let mut offset = 0usize;
    let mut corrupt = false;
    while offset < bytes.len() {
        let rest = &bytes[offset..];
        let (line, consumed) = match rest.iter().position(|&b| b == b'\n') {
            Some(i) => (&rest[..i], i + 1),
            // No trailing newline: accept the record anyway if it parses
            // and its CRC matches (the payload is complete; only the
            // delimiter was lost).
            None => (rest, rest.len()),
        };
        match parse_record(line) {
            Some(facts) => {
                out.quads.extend(facts);
                out.records += 1;
                offset += consumed;
            }
            None => {
                corrupt = true;
                break;
            }
        }
    }
    if corrupt {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(offset as u64)?;
        file.sync_data()?;
        out.truncated_to = Some(offset as u64);
        let dropped = bytes.len() - offset;
        retia_obs::metrics::inc("serve.ingest_log.truncations");
        retia_obs::event!(
            retia_obs::Level::Warn,
            "serve.ingest_log.truncated",
            valid_records = out.records,
            dropped_bytes = dropped;
            format!(
                "ingest log tail corrupt after {} valid record(s); truncated {} byte(s)",
                out.records, dropped
            )
        );
    }
    retia_obs::metrics::set_gauge("serve.ingest_log.records", out.records as f64);
    Ok(ReplayOutcome { quads: out.quads, records: out.records, truncated_to: out.truncated_to })
}

fn parse_record(line: &[u8]) -> Option<Vec<Quad>> {
    let text = std::str::from_utf8(line).ok()?;
    if text.trim().is_empty() {
        return None;
    }
    let value = retia_json::parse(text).ok()?;
    let crc = value.get("crc")?.as_u64()?;
    let facts = value.get("facts")?;
    // The CRC covers the compact rendering, which round-trips exactly for
    // the u32 components a Quad holds.
    if u64::from(crc32(facts.to_string_compact().as_bytes())) != crc {
        return None;
    }
    let rows = facts.as_array()?;
    let mut quads = Vec::with_capacity(rows.len());
    for row in rows {
        let cols = row.as_array()?;
        if cols.len() != 4 {
            return None;
        }
        let col = |i: usize| cols[i].as_u64().and_then(|v| u32::try_from(v).ok());
        quads.push(Quad::new(col(0)?, col(1)?, col(2)?, col(3)?));
    }
    Some(quads)
}

/// Merges replayed facts into a boot window using the engine's ingest
/// discipline: group by timestamp, extend the newest snapshot on a
/// timestamp match, append forward-only, trim to the last `k`. Facts that
/// jumped behind the window end (possible after a dataset change under the
/// same log) are skipped with a warning rather than rejected.
pub fn replay_into_window(
    window: Vec<Snapshot>,
    quads: &[Quad],
    num_entities: usize,
    num_relations: usize,
    k: usize,
) -> Vec<Snapshot> {
    let mut groups: Vec<(u32, Vec<Quad>)> = window.iter().map(|s| (s.t, s.facts.clone())).collect();
    let mut skipped = 0usize;
    for (t, group) in group_by_timestamp(quads) {
        let in_range = group.iter().all(|q| {
            (q.s as usize) < num_entities
                && (q.o as usize) < num_entities
                && (q.r as usize) < num_relations
        });
        let end = groups.last().map(|(t, _)| *t);
        if !in_range || end.is_some_and(|e| t < e) {
            skipped += group.len();
            continue;
        }
        match groups.last_mut() {
            Some((last_t, last_facts)) if *last_t == t => last_facts.extend(group),
            _ => groups.push((t, group)),
        }
    }
    if skipped > 0 {
        retia_obs::event!(
            retia_obs::Level::Warn,
            "serve.ingest_log.skipped",
            facts = skipped;
            format!("{skipped} replayed fact(s) out of window/id range; skipped")
        );
    }
    let k = k.max(1);
    let overflow = groups.len().saturating_sub(k);
    groups
        .into_iter()
        .skip(overflow)
        .map(|(t, facts)| {
            let mut snap = Snapshot::from_quads(&facts, num_entities, num_relations);
            snap.t = t;
            snap
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("retia-online-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join("ingest.jsonl")
    }

    fn facts(t: u32) -> Vec<Quad> {
        vec![Quad::new(0, 0, 1, t), Quad::new(1, 1, 2, t)]
    }

    #[test]
    fn ingest_log_roundtrips() {
        let path = tmp("roundtrip");
        let mut log = IngestLog::open_append(&path).expect("open");
        log.append(&facts(5)).expect("append");
        log.append(&facts(6)).expect("append");
        let replay = replay_ingest_log(&path).expect("replay");
        assert_eq!(replay.records, 2);
        assert_eq!(replay.quads.len(), 4);
        assert_eq!(replay.quads[0], Quad::new(0, 0, 1, 5));
        assert_eq!(replay.quads[3], Quad::new(1, 1, 2, 6));
        assert!(replay.truncated_to.is_none());
    }

    #[test]
    fn torn_tail_is_truncated_at_last_valid_record() {
        let path = tmp("torn");
        let mut log = IngestLog::open_append(&path).expect("open");
        log.append(&facts(5)).expect("append");
        let valid_len = std::fs::metadata(&path).expect("meta").len();
        log.append(&facts(6)).expect("append");
        // Tear the second record mid-line (crash during append).
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 7]).expect("tear");

        let replay = replay_ingest_log(&path).expect("replay");
        assert_eq!(replay.records, 1, "only the intact record survives");
        assert_eq!(replay.truncated_to, Some(valid_len));
        assert_eq!(std::fs::metadata(&path).expect("meta").len(), valid_len);
        // A second replay over the truncated log is clean.
        let again = replay_ingest_log(&path).expect("replay");
        assert_eq!(again.records, 1);
        assert!(again.truncated_to.is_none());
    }

    #[test]
    fn bit_flipped_tail_is_detected_by_crc() {
        let path = tmp("bitflip");
        let mut log = IngestLog::open_append(&path).expect("open");
        log.append(&facts(5)).expect("append");
        log.append(&facts(6)).expect("append");
        let bytes = std::fs::read(&path).expect("read");
        // Flip a digit inside the second record's facts payload.
        let flipped = retia_analyze::chaos::bit_flipped(&bytes, (bytes.len() - 10) * 8);
        std::fs::write(&path, flipped).expect("write");

        let replay = replay_ingest_log(&path).expect("replay");
        assert_eq!(replay.records, 1, "crc must reject the flipped record");
        assert!(replay.truncated_to.is_some());
    }

    #[test]
    fn missing_log_replays_empty() {
        let path = tmp("missing");
        let replay = replay_ingest_log(&path).expect("replay");
        assert_eq!(replay.records, 0);
        assert!(replay.quads.is_empty());
    }

    #[test]
    fn replay_into_window_merges_and_trims() {
        let base = vec![Quad::new(0, 0, 1, 10)];
        let mut snap = Snapshot::from_quads(&base, 4, 2);
        snap.t = 10;
        // Same-timestamp merge, forward append, then trim to k=2.
        let quads = vec![
            Quad::new(1, 1, 2, 10),
            Quad::new(2, 0, 3, 11),
            Quad::new(0, 1, 1, 12),
            Quad::new(3, 0, 0, 5),  // behind the window: skipped
            Quad::new(9, 0, 0, 13), // out of id range: skipped
        ];
        let window = replay_into_window(vec![snap], &quads, 4, 2, 2);
        assert_eq!(window.len(), 2);
        assert_eq!(window[0].t, 11);
        assert_eq!(window[1].t, 12);
        assert_eq!(window[1].facts, vec![Quad::new(0, 1, 1, 12)]);
    }

    #[test]
    fn trainer_state_wire_names() {
        assert_eq!(TrainerState::Idle.as_str(), "idle");
        assert_eq!(TrainerState::Training.as_str(), "training");
        assert_eq!(TrainerState::Backoff.as_str(), "backoff");
        assert_eq!(TrainerState::Disabled.as_str(), "disabled");
        let s = OnlineStatus::disabled();
        assert!(!s.is_enabled());
        assert_eq!(s.trainer_state(), TrainerState::Disabled);
    }
}
