#![warn(missing_docs)]

//! # retia-serve
//!
//! Online inference for a trained RETIA model: the subsystem that turns the
//! repo's batch trainer into something that can answer a live query
//! `(s, r, ?, t+1)` over HTTP.
//!
//! Architecture (one box per thread):
//!
//! ```text
//!        TcpListener (shared, ephemeral port ok)
//!             │ accept
//!   ┌─────────┼─────────┐
//!   worker  worker ... worker      fixed pool: parse HTTP/1.1, route,
//!   └─────────┼─────────┘          enqueue jobs, write JSON responses
//!             │ job queue (Mutex + Condvar)
//!        engine thread             drains the whole queue per wake:
//!             │                    consecutive query jobs fuse into ONE
//!             │                    batched Conv-TransE decode (micro-batch)
//!      ┌──────┴───────┐
//!      frozen model   embedding cache
//!      (no-grad       (detached last-k E_t/R_t matrices
//!       forward)       per window epoch; ingest advances)
//! ```
//!
//! The split mirrors the paper's decode strategy: scores are summed over the
//! last `k` evolved snapshot states (Eq. 13/14), so those `k` embedding
//! matrices fully determine every answer until the window moves. The engine
//! computes them once per window epoch in a no-tape inference graph
//! ([`retia_tensor::Graph::inference`] via [`retia::FrozenModel`]) and
//! caches them; per-query work is one decode batch plus a bounded top-k
//! heap. `POST /v1/ingest` appends facts, advances the window and recomputes
//! the cache — the online extrapolation setting, minus parameter updates.
//!
//! Endpoints: `POST /v1/query`, `POST /v1/ingest`, `GET /healthz`,
//! `GET /metrics` (the `retia-obs` registry snapshot), `POST
//! /admin/shutdown` (drains in-flight requests, then stops).
//!
//! Everything is `std`-only: no hyper, no tokio, no serde — the offline
//! build environment rules them out, and a fixed thread pool over blocking
//! sockets is enough for the paper-scale models this repo trains.

mod api;
mod engine;
mod http;
mod server;

pub use api::{
    ingest_response_json, parse_ingest_request, parse_query_request, query_response_json,
    SchemaError, DEFAULT_TOP_K, MAX_ITEMS_PER_REQUEST,
};
pub use engine::{
    Engine, EngineError, EngineHandle, IngestResponse, Query, QueryKind, QueryResponse, TopK,
};
pub use http::{
    error_body, read_request, write_json, HttpError, Request, MAX_BODY_BYTES, MAX_HEAD_BYTES,
};
pub use server::{ServeConfig, Server};
