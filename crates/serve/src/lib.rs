#![warn(missing_docs)]

//! # retia-serve
//!
//! Online inference for a trained RETIA model: the subsystem that turns the
//! repo's batch trainer into something that can answer a live query
//! `(s, r, ?, t+1)` over HTTP.
//!
//! Architecture (one box per thread):
//!
//! ```text
//!        TcpListener (shared, non-blocking, ephemeral port ok)
//!             │ accept (polled)
//!   ┌─────────┼─────────┐
//!   worker  worker ... worker      fixed pool of keep-alive poll loops:
//!   └─────────┼─────────┘          each owns its connections, parses
//!             │                    pipelined HTTP/1.1 incrementally, reaps
//!             │                    idle sockets, writes JSON responses
//!             │ BOUNDED job queue (Mutex + Condvar; overflow → 429)
//!        engine thread             drains the whole queue per wake:
//!             │                    consecutive query jobs fuse into ONE
//!             │                    batched Conv-TransE decode (micro-batch)
//!      ┌──────┼────────────┐
//!      frozen model        embedding cache
//!      (no-grad forward)   (detached last-k E_t/R_t per window epoch)
//!             │ entity decode: scoped shard threads
//!   ┌─────────┼─────────┐
//!   shard   shard ...  shard       q_t @ E_t[lo..hi]^T per entity range;
//!   └─────────┼─────────┘          merged ranks bit-identical to 1 thread
//! ```
//!
//! The split mirrors the paper's decode strategy: scores are summed over the
//! last `k` evolved snapshot states (Eq. 13/14), so those `k` embedding
//! matrices fully determine every answer until the window moves. The engine
//! computes them once per window epoch in a no-tape inference graph
//! ([`retia_tensor::Graph::inference`] via [`retia::FrozenModel`]) and
//! caches them; per-query work is one decode batch plus a bounded top-k
//! heap. `POST /v1/ingest` appends facts, advances the window and recomputes
//! the cache — the online extrapolation setting, minus parameter updates.
//!
//! Endpoints: `POST /v1/query`, `POST /v1/ingest`, `GET /healthz` (status,
//! model/ingest epochs, staleness and trainer state; `?ready=1` turns it
//! into a readiness probe that answers 503 while degraded), `GET /metrics`
//! (the `retia-obs` registry snapshot; `?format=prom` for the Prometheus
//! text exposition), `GET /v1/traces` (the tail-sampled request trace
//! store, newest first), `GET /v1/drift` (the continual trainer's drift
//! monitor readout), `POST /admin/shutdown` (drains in-flight requests,
//! then stops).
//!
//! With [`ServeConfig::online`] set, the [`online`] module runs a continual
//! trainer beside the engine: newly ingested windows are fine-tuned on an
//! isolated thread and published via atomic model swaps; trainer faults
//! degrade `/healthz`, never serving (see DESIGN.md §12).
//!
//! Every request is traced: a trace id is assigned when its first bytes
//! arrive (echoed back as `X-Trace-Id`), the `serve.recv`/`serve.queue_wait`
//! /`serve.decode`/`serve.write` stages reconstruct its lifecycle as a tree
//! (see [`stages`]), and the store keeps slow outliers plus a deterministic
//! 1-in-N sample. Latency SLOs from [`ServeConfig::slos`] are evaluated over
//! the per-endpoint histograms and exported as `slo.*` gauges.
//!
//! Everything is `std`-only: no hyper, no tokio, no serde — the offline
//! build environment rules them out. Readiness is `set_nonblocking` polling
//! with short adaptive sleeps (no `epoll` binding without dependencies);
//! workers holding a single connection park in a blocking read instead, so
//! the common ping-pong client pays no poll latency.

mod api;
mod engine;
mod http;
pub mod loadtest;
pub mod online;
mod server;
pub mod stages;

pub use api::{
    ingest_response_json, parse_ingest_request, parse_query_request, query_response_json,
    SchemaError, DEFAULT_TOP_K, MAX_ITEMS_PER_REQUEST,
};
pub use engine::{
    Engine, EngineError, EngineHandle, EngineOptions, EngineStats, IngestResponse, PauseGuard,
    Query, QueryKind, QueryResponse, SwapRequest, SwapResponse, TopK, WindowView,
};
pub use http::{
    error_body, read_request, write_json, write_json_response, write_text_response, HttpError,
    Request, RequestBuffer, MAX_BODY_BYTES, MAX_HEAD_BYTES,
};
pub use online::{DriftReport, OnlineOptions, OnlineStatus, TrainerState};
pub use retia_obs::slo::SloSpec;
pub use server::{ServeConfig, Server};
