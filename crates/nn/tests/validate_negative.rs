//! Negative validation tests: every public NN layer, fed deliberately
//! mismatched dimensions, must fail its `validate` with at least one issue
//! whose path names the layer — the guarantee `retia check` builds on.

use retia_analyze::{ShapeCtx, ShapeTensor};
use retia_graph::{HyperSnapshot, Quad, Snapshot};
use retia_nn::{
    validate_mean_pool_segments, ConvTransE, EntityRgcn, GruCell, Linear, LstmCell, RelationRgcn,
    WeightMode,
};
use retia_tensor::ParamStore;

/// Runs `f` in a fresh context and asserts it produced at least one issue
/// naming `layer` in its path.
fn expect_issue_naming(layer: &str, f: impl FnOnce(&mut ShapeCtx)) {
    let mut ctx = ShapeCtx::new();
    f(&mut ctx);
    let report = ctx.finish();
    assert!(!report.is_clean(), "{layer}: mismatched dims passed validation");
    assert!(
        report.issues.iter().any(|i| i.path.contains(layer)),
        "{layer}: no issue names the layer:\n{report}"
    );
}

fn snapshot() -> Snapshot {
    Snapshot::from_quads(&[Quad::new(0, 0, 2, 0), Quad::new(2, 1, 1, 0)], 4, 2)
}

#[test]
fn linear_rejects_wrong_input_width() {
    let mut store = ParamStore::new(0);
    let lin = Linear::new(&mut store, "l", 3, 5);
    expect_issue_naming("Linear", |ctx| {
        lin.validate(ctx, ShapeTensor::new(2, 4));
    });
}

#[test]
fn gru_rejects_wrong_input_width() {
    let mut store = ParamStore::new(0);
    let gru = GruCell::new(&mut store, "g", 8, 8);
    expect_issue_naming("GruCell", |ctx| {
        gru.validate(ctx, ShapeTensor::new(4, 7), ShapeTensor::new(4, 8));
    });
}

#[test]
fn gru_rejects_mismatched_hidden_rows() {
    let mut store = ParamStore::new(0);
    let gru = GruCell::new(&mut store, "g", 8, 8);
    expect_issue_naming("GruCell", |ctx| {
        gru.validate(ctx, ShapeTensor::new(4, 8), ShapeTensor::new(5, 8));
    });
}

#[test]
fn lstm_rejects_wrong_input_width() {
    let mut store = ParamStore::new(0);
    let lstm = LstmCell::new(&mut store, "l", 16, 8);
    expect_issue_naming("LstmCell", |ctx| {
        lstm.validate(ctx, ShapeTensor::new(4, 8), ShapeTensor::new(4, 8), ShapeTensor::new(4, 8));
    });
}

#[test]
fn lstm_rejects_mismatched_cell_state() {
    let mut store = ParamStore::new(0);
    let lstm = LstmCell::new(&mut store, "l", 16, 8);
    expect_issue_naming("LstmCell", |ctx| {
        lstm.validate(ctx, ShapeTensor::new(4, 16), ShapeTensor::new(4, 8), ShapeTensor::new(4, 9));
    });
}

#[test]
fn entity_rgcn_rejects_wrong_entity_count() {
    let snap = snapshot();
    let mut store = ParamStore::new(0);
    let rgcn = EntityRgcn::new(&mut store, "eam", 8, 4, WeightMode::Basis(2), 1, 0.0);
    expect_issue_naming("EntityRgcn", |ctx| {
        // 5 entity rows vs the snapshot's 4 entities.
        rgcn.validate(ctx, ShapeTensor::new(5, 8), ShapeTensor::new(4, 8), &snap);
    });
}

#[test]
fn entity_rgcn_rejects_wrong_relation_width() {
    let snap = snapshot();
    let mut store = ParamStore::new(0);
    let rgcn = EntityRgcn::new(&mut store, "eam", 8, 4, WeightMode::Basis(2), 1, 0.0);
    expect_issue_naming("EntityRgcn", |ctx| {
        // Relation embeddings narrower than d: the edge-message add breaks.
        rgcn.validate(ctx, ShapeTensor::new(4, 8), ShapeTensor::new(4, 6), &snap);
    });
}

#[test]
fn relation_rgcn_rejects_wrong_hyperrel_count() {
    let snap = snapshot();
    let hyper = HyperSnapshot::from_snapshot(&snap);
    let mut store = ParamStore::new(0);
    let rgcn = RelationRgcn::new(&mut store, "ram", 8, WeightMode::PerRelation, 1, 0.0);
    expect_issue_naming("RelationRgcn", |ctx| {
        // 3 hyperrelation rows instead of NUM_HYPERRELS_WITH_INV (8).
        rgcn.validate(
            ctx,
            ShapeTensor::new(hyper.num_rel_nodes, 8),
            ShapeTensor::new(3, 8),
            &hyper,
        );
    });
}

#[test]
fn conv_transe_rejects_wrong_query_width() {
    let mut store = ParamStore::new(0);
    let dec = ConvTransE::new(&mut store, "dec", 8, 4, 3, 0.0);
    expect_issue_naming("ConvTransE", |ctx| {
        dec.validate(ctx, ShapeTensor::new(2, 9), ShapeTensor::new(2, 9), ShapeTensor::new(5, 8));
    });
}

#[test]
fn conv_transe_rejects_mismatched_query_parts() {
    let mut store = ParamStore::new(0);
    let dec = ConvTransE::new(&mut store, "dec", 8, 4, 3, 0.0);
    expect_issue_naming("ConvTransE", |ctx| {
        dec.validate(ctx, ShapeTensor::new(2, 8), ShapeTensor::new(3, 8), ShapeTensor::new(5, 8));
    });
}

#[test]
fn mean_pool_rejects_out_of_range_member() {
    expect_issue_naming("mean_pool_segments", |ctx| {
        // Segment member 5 in a 3-row input.
        validate_mean_pool_segments(ctx, ShapeTensor::new(3, 4), &[vec![0, 5], vec![1]]);
    });
}

#[test]
fn valid_layers_pass() {
    let snap = snapshot();
    let hyper = HyperSnapshot::from_snapshot(&snap);
    let mut store = ParamStore::new(0);
    let mut ctx = ShapeCtx::new();
    let lin = Linear::new(&mut store, "l", 3, 5);
    lin.validate(&mut ctx, ShapeTensor::new(2, 3));
    let gru = GruCell::new(&mut store, "g", 8, 8);
    gru.validate(&mut ctx, ShapeTensor::new(4, 8), ShapeTensor::new(4, 8));
    let lstm = LstmCell::new(&mut store, "ls", 16, 8);
    lstm.validate(
        &mut ctx,
        ShapeTensor::new(4, 16),
        ShapeTensor::new(4, 8),
        ShapeTensor::new(4, 8),
    );
    let eam = EntityRgcn::new(&mut store, "eam", 8, 4, WeightMode::Basis(2), 2, 0.0);
    eam.validate(&mut ctx, ShapeTensor::new(4, 8), ShapeTensor::new(4, 8), &snap);
    let ram = RelationRgcn::new(&mut store, "ram", 8, WeightMode::PerRelation, 2, 0.0);
    ram.validate(
        &mut ctx,
        ShapeTensor::new(hyper.num_rel_nodes, 8),
        ShapeTensor::new(retia_graph::NUM_HYPERRELS_WITH_INV, 8),
        &hyper,
    );
    let dec = ConvTransE::new(&mut store, "dec", 8, 4, 3, 0.0);
    dec.validate(&mut ctx, ShapeTensor::new(2, 8), ShapeTensor::new(2, 8), ShapeTensor::new(5, 8));
    validate_mean_pool_segments(&mut ctx, ShapeTensor::new(4, 8), &[vec![0, 1], vec![], vec![3]]);
    let report = ctx.finish();
    assert!(report.is_clean(), "valid layers produced issues:\n{report}");
    assert!(report.ops_checked > 30);
}
