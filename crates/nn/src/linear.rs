//! Affine projection.

use retia_analyze::{ShapeCtx, ShapeTensor};
use retia_tensor::{Graph, NodeId, ParamStore};

/// `y = x @ W + b` with Xavier-initialized `W` and zero `b`.
#[derive(Clone, Debug)]
pub struct Linear {
    w: String,
    b: String,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers `prefix.w` (`[in_dim, out_dim]`) and `prefix.b`
    /// (`[1, out_dim]`) in `store`.
    pub fn new(store: &mut ParamStore, prefix: &str, in_dim: usize, out_dim: usize) -> Self {
        let w = format!("{prefix}.w");
        let b = format!("{prefix}.b");
        store.register_xavier(&w, in_dim, out_dim);
        store.register_zeros(&b, 1, out_dim);
        Linear { w, b, in_dim, out_dim }
    }

    /// Applies the projection to `x` (`[n, in_dim] -> [n, out_dim]`).
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        let _m = retia_obs::module_scope("Linear");
        assert_eq!(g.value(x).cols(), self.in_dim, "Linear input width mismatch");
        let w = g.param(store, &self.w);
        let b = g.param(store, &self.b);
        let y = g.matmul(x, w);
        g.add_bias(y, b)
    }

    /// Shape-only replay of [`Linear::forward`]: same op sequence over
    /// [`ShapeTensor`]s, issues recorded in `ctx` instead of panics.
    pub fn validate(&self, ctx: &mut ShapeCtx, x: ShapeTensor) -> ShapeTensor {
        Self::validate_dims(ctx, self.in_dim, self.out_dim, x)
    }

    /// Static form of [`Linear::validate`]: checks the op sequence for the
    /// given dimensions without constructing the layer (no parameters).
    pub fn validate_dims(
        ctx: &mut ShapeCtx,
        in_dim: usize,
        out_dim: usize,
        x: ShapeTensor,
    ) -> ShapeTensor {
        ctx.scoped("Linear", None, |ctx| {
            let y = ctx.matmul(x, ShapeTensor::new(in_dim, out_dim));
            ctx.add_bias(y, ShapeTensor::new(1, out_dim))
        })
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retia_tensor::{optim::Adam, Tensor};

    #[test]
    fn forward_shape() {
        let mut store = ParamStore::new(0);
        let lin = Linear::new(&mut store, "l", 3, 5);
        let mut g = Graph::new(false, 0);
        let x = g.constant(Tensor::ones(2, 3));
        let y = lin.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), (2, 5));
        assert_eq!(lin.out_dim(), 5);
    }

    #[test]
    fn fits_affine_function() {
        let mut store = ParamStore::new(3);
        let lin = Linear::new(&mut store, "l", 2, 1);
        let mut adam = Adam::new(0.05);
        // Target: y = 2*x0 - x1 + 0.5.
        let xs = Tensor::from_vec(4, 2, vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let ys = Tensor::from_vec(4, 1, vec![0.5, 2.5, -0.5, 1.5]);
        let mut last = f32::MAX;
        for _ in 0..500 {
            let mut g = Graph::new(true, 0);
            let x = g.constant(xs.clone());
            let y = g.constant(ys.clone());
            let pred = lin.forward(&mut g, &store, x);
            let d = g.sub(pred, y);
            let sq = g.mul(d, d);
            let loss = g.mean_all(sq);
            last = g.value(loss).item();
            g.backward(loss, &mut store);
            adam.step(&mut store);
            store.zero_grad();
        }
        assert!(last < 1e-3, "loss {last}");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_wrong_input_width() {
        let mut store = ParamStore::new(0);
        let lin = Linear::new(&mut store, "l", 3, 5);
        let mut g = Graph::new(false, 0);
        let x = g.constant(Tensor::ones(2, 4));
        lin.forward(&mut g, &store, x);
    }
}
