#![warn(missing_docs)]

//! # retia-nn
//!
//! Neural building blocks of the RETIA reproduction, layered on
//! [`retia_tensor`]'s autodiff graph:
//!
//! * [`Linear`] — affine projection;
//! * [`GruCell`], [`LstmCell`] — the recurrent cells driving RETIA's
//!   residual GRUs (Eq. 3/6) and twin-interact LSTMs (Eq. 8/10);
//! * [`EntityRgcn`] — the entity-aggregating R-GCN of Eq. 4;
//! * [`RelationRgcn`] — the relation-aggregating R-GCN over hyperrelation
//!   subgraphs of Eq. 1;
//! * [`ConvTransE`] — the convolutional decoder of Eq. 11/12;
//! * [`mean_pool_segments`] — the (hyper) mean pooling of Eq. 7/9.
//!
//! Modules register their parameters under a prefix in a shared
//! [`retia_tensor::ParamStore`] at construction and are pure at forward time:
//! `forward(&self, &mut Graph, &ParamStore, ...)`.
//!
//! Every layer also exposes a `validate` twin — a shape-only replay of its
//! forward op sequence over [`retia_analyze::ShapeTensor`]s that records
//! mismatches in a [`retia_analyze::ShapeCtx`] instead of panicking. The
//! model-level dry run in `retia`'s `validate` module composes these to
//! check an entire configuration before any training step.
//!
//! Layers likewise expose an `audit` twin — a value-domain replay over
//! interval abstractions in a [`retia_analyze::AuditCtx`] that declares the
//! layer's trainable parameters by store name, so the model-level audit can
//! prove finiteness and gradient-flow reachability (`retia audit`).

mod decoder;
mod linear;
mod pooling;
mod rgcn;
mod rnn;

pub use decoder::ConvTransE;
pub use linear::Linear;
pub use pooling::{audit_mean_pool_segments, mean_pool_segments, validate_mean_pool_segments};
pub use rgcn::{EntityRgcn, RelationRgcn, WeightMode};
pub use rnn::{GruCell, LstmCell};
