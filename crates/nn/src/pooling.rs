//! Segment mean pooling — the `MP`/`HMP` operators of Eq. 7 and Eq. 9.

use std::rc::Rc;

use retia_analyze::value::AbsId;
use retia_analyze::{AuditCtx, ShapeCtx, ShapeTensor};
use retia_tensor::transfer::Interval;
use retia_tensor::{Graph, NodeId};

/// Mean-pools rows of `x` (`[n, d]`) over `segments`: output row `i` is the
/// mean of `x[j]` for `j in segments[i]`. Empty segments yield zero rows
/// (absent relations / hyperrelations keep no pooled signal, matching the
/// reference implementation).
pub fn mean_pool_segments(g: &mut Graph, x: NodeId, segments: &[Vec<u32>]) -> NodeId {
    let _m = retia_obs::module_scope("mean_pool_segments");
    let num_segments = segments.len();
    let mut flat: Vec<u32> = Vec::new();
    let mut seg_ids: Vec<u32> = Vec::new();
    let mut inv_counts: Vec<f32> = Vec::with_capacity(num_segments);
    for (i, seg) in segments.iter().enumerate() {
        for &j in seg {
            flat.push(j);
            seg_ids.push(i as u32);
        }
        inv_counts.push(if seg.is_empty() { 0.0 } else { 1.0 / seg.len() as f32 });
    }
    if flat.is_empty() {
        // All segments empty: a zero tensor with no gradient path.
        let d = g.value(x).cols();
        return g.constant(retia_tensor::Tensor::zeros(num_segments, d));
    }
    let gathered = g.gather_rows(x, Rc::new(flat));
    let summed = g.scatter_add_rows(gathered, Rc::new(seg_ids), num_segments);
    g.row_scale(summed, Rc::new(inv_counts))
}

/// Shape-only replay of [`mean_pool_segments`]: same gather/scatter/scale op
/// sequence over [`ShapeTensor`]s, issues recorded in `ctx`.
pub fn validate_mean_pool_segments(
    ctx: &mut ShapeCtx,
    x: ShapeTensor,
    segments: &[Vec<u32>],
) -> ShapeTensor {
    ctx.scoped("mean_pool_segments", Some("Eq. 7/9"), |ctx| {
        let num_segments = segments.len();
        let mut flat: Vec<u32> = Vec::new();
        let mut seg_ids: Vec<u32> = Vec::new();
        for (i, seg) in segments.iter().enumerate() {
            for &j in seg {
                flat.push(j);
                seg_ids.push(i as u32);
            }
        }
        if flat.is_empty() {
            return ShapeTensor::new(num_segments, x.cols);
        }
        let gathered = ctx.gather_rows(x, &flat);
        let summed = ctx.scatter_add_rows(gathered, &seg_ids, num_segments);
        ctx.row_scale(summed, num_segments)
    })
}

/// Value-domain replay of [`mean_pool_segments`]. The per-segment
/// `1/count` weights live in `(0, 1]` (exactly 0 for empty segments), so
/// the pooled rows stay inside the hull of the inputs and zero.
pub fn audit_mean_pool_segments(ctx: &mut AuditCtx, x: AbsId, segments: &[Vec<u32>]) -> AbsId {
    ctx.scoped("mean_pool_segments", Some("Eq. 7/9"), |ctx| {
        let num_segments = segments.len();
        let total: usize = segments.iter().map(Vec::len).sum();
        if total == 0 {
            // All segments empty: a zero constant with no gradient path —
            // mirrored so the flow walk sees the same disconnection the
            // real graph has.
            let (_, d) = ctx.shape(x);
            return ctx.source(num_segments, d, Interval::point(0.0));
        }
        let gathered = ctx.gather_rows(x, total);
        let summed = ctx.scatter_add_rows(gathered, num_segments);
        ctx.row_scale(summed, Interval::new(0.0, 1.0))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use retia_tensor::{Graph, ParamStore, Tensor};

    #[test]
    fn pools_means_per_segment() {
        let mut g = Graph::new(false, 0);
        let x = g.constant(Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        let out = mean_pool_segments(&mut g, x, &[vec![0, 1], vec![2], vec![]]);
        let v = g.value(out);
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.row(0), &[2.0, 3.0]);
        assert_eq!(v.row(1), &[5.0, 6.0]);
        assert_eq!(v.row(2), &[0.0, 0.0]);
    }

    #[test]
    fn repeated_indices_allowed() {
        let mut g = Graph::new(false, 0);
        let x = g.constant(Tensor::from_vec(2, 1, vec![1.0, 3.0]));
        let out = mean_pool_segments(&mut g, x, &[vec![0, 0, 1]]);
        let v = g.value(out);
        assert!((v.get(0, 0) - 5.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn all_empty_segments() {
        let mut g = Graph::new(false, 0);
        let x = g.constant(Tensor::ones(2, 3));
        let out = mean_pool_segments(&mut g, x, &[vec![], vec![]]);
        assert_eq!(g.value(out).shape(), (2, 3));
        assert_eq!(g.value(out).sum(), 0.0);
    }

    #[test]
    fn gradients_flow_through_pooling() {
        let mut store = ParamStore::new(0);
        store.register("x", Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let mut g = Graph::new(false, 0);
        let x = g.param(&store, "x");
        let out = mean_pool_segments(&mut g, x, &[vec![0, 1]]);
        let loss = g.sum_all(out);
        g.backward(loss, &mut store);
        // d mean / d each source = 0.5 per column.
        assert_eq!(store.grad("x").data(), &[0.5, 0.5, 0.5, 0.5]);
    }
}
