//! Relational graph convolution layers.
//!
//! [`EntityRgcn`] implements Eq. 4 (the entity-aggregating R-GCN of the EAM):
//! each object entity aggregates `W_r (e_s + r)` from its in-edges (inverse
//! edges included), normalized by `1/c_{o,r}`, plus a self-loop `W_0 e_o`,
//! through an RReLU.
//!
//! [`RelationRgcn`] implements Eq. 1 (the relation-aggregating R-GCN of the
//! RAM) on a hyperrelation subgraph: each relation node aggregates
//! `W_hr (r_s + hr)` from its hyperrelation in-edges plus a self-loop.
//!
//! Per-edge-type weights come in two flavors (the [`WeightMode`] ablation of
//! `benches/rgcn.rs`): independent matrices per type, or the basis
//! decomposition of Schlichtkrull et al. (`W_r = Σ_b a_{rb} V_b`), which is
//! what large relation vocabularies need.

use std::rc::Rc;

use retia_analyze::value::AbsId;
use retia_analyze::{AuditCtx, ShapeCtx, ShapeTensor};
use retia_graph::{HyperSnapshot, Snapshot, NUM_HYPERRELS_WITH_INV};
use retia_tensor::transfer::Interval;
use retia_tensor::{Graph, NodeId, ParamStore};

/// How per-edge-type transforms are parameterized.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WeightMode {
    /// One independent `[d, d]` matrix per edge type.
    PerRelation,
    /// Basis decomposition with the given number of bases.
    Basis(usize),
}

/// Shared implementation over (src, etype, dst, norm) edge arrays.
#[derive(Clone, Debug)]
struct RgcnCore {
    prefix: String,
    dim: usize,
    num_edge_types: usize,
    mode: WeightMode,
    num_layers: usize,
    dropout: f32,
}

impl RgcnCore {
    fn new(
        store: &mut ParamStore,
        prefix: &str,
        dim: usize,
        num_edge_types: usize,
        mode: WeightMode,
        num_layers: usize,
        dropout: f32,
    ) -> Self {
        for l in 0..num_layers {
            store.register_xavier(&format!("{prefix}.l{l}.wself"), dim, dim);
            match mode {
                WeightMode::PerRelation => {
                    for r in 0..num_edge_types {
                        store.register_xavier(&format!("{prefix}.l{l}.w{r}"), dim, dim);
                    }
                }
                WeightMode::Basis(b) => {
                    assert!(b > 0, "basis count must be positive");
                    for i in 0..b {
                        store.register_xavier(&format!("{prefix}.l{l}.basis{i}"), dim, dim);
                    }
                    store.register_xavier(&format!("{prefix}.l{l}.coef"), num_edge_types, b);
                }
            }
        }
        RgcnCore { prefix: prefix.to_string(), dim, num_edge_types, mode, num_layers, dropout }
    }

    /// One layer: `h_nodes` `[n, d]`, `edge_emb` `[num_edge_types, d]`
    /// (relation or hyperrelation embeddings added into messages).
    #[allow(clippy::too_many_arguments)]
    fn layer(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        layer: usize,
        h_nodes: NodeId,
        edge_emb: NodeId,
        src: &[u32],
        etype: &[u32],
        dst: &[u32],
        norm: &[f32],
        type_ranges: &[(usize, usize)],
        num_nodes: usize,
    ) -> NodeId {
        let w0 = g.param(store, &format!("{}.l{layer}.wself", self.prefix));
        let self_part = g.matmul(h_nodes, w0);

        let mut out = self_part;
        if !src.is_empty() {
            // Message pre-transform: (h_src + edge_emb), degree-normalized.
            // Normalizing before the linear transform is equivalent (the
            // transform is linear) and lets both weight modes share it.
            let src_idx = Rc::new(src.to_vec());
            let type_idx = Rc::new(etype.to_vec());
            let h_src = g.gather_rows(h_nodes, src_idx);
            let e_edge = g.gather_rows(edge_emb, type_idx.clone());
            let raw = g.add(h_src, e_edge);
            let msg = g.row_scale(raw, Rc::new(norm.to_vec()));

            let transformed = match self.mode {
                WeightMode::Basis(nb) => {
                    let coef = g.param(store, &format!("{}.l{layer}.coef", self.prefix));
                    let coef_per_edge = g.gather_rows(coef, type_idx);
                    let mut acc: Option<NodeId> = None;
                    for b in 0..nb {
                        let vb = g.param(store, &format!("{}.l{layer}.basis{b}", self.prefix));
                        let xb = g.matmul(msg, vb);
                        let cb = g.slice_cols(coef_per_edge, b, b + 1);
                        let scaled = g.mul_col(xb, cb);
                        acc = Some(match acc {
                            Some(a) => g.add(a, scaled),
                            None => scaled,
                        });
                    }
                    let t = acc.expect("at least one basis");
                    g.scatter_add_rows(t, Rc::new(dst.to_vec()), num_nodes)
                }
                WeightMode::PerRelation => {
                    let mut acc: Option<NodeId> = None;
                    for (r, &(a, b)) in type_ranges.iter().enumerate() {
                        if b == a {
                            continue;
                        }
                        let rows: Rc<Vec<u32>> = Rc::new((a as u32..b as u32).collect());
                        let mr = g.gather_rows(msg, rows);
                        let wr = g.param(store, &format!("{}.l{layer}.w{r}", self.prefix));
                        let t = g.matmul(mr, wr);
                        let part = g.scatter_add_rows(t, Rc::new(dst[a..b].to_vec()), num_nodes);
                        acc = Some(match acc {
                            Some(x) => g.add(x, part),
                            None => part,
                        });
                    }
                    match acc {
                        Some(x) => x,
                        None => g.constant(retia_tensor::Tensor::zeros(num_nodes, self.dim)),
                    }
                }
            };
            out = g.add(out, transformed);
        }
        let activated = g.rrelu(out);
        g.dropout(activated, self.dropout)
    }

    /// Shape-only replay of [`RgcnCore::layer`]: same op sequence over
    /// [`ShapeTensor`]s and the real edge arrays, issues recorded in `ctx`.
    #[allow(clippy::too_many_arguments)]
    fn validate_layer(
        &self,
        ctx: &mut ShapeCtx,
        layer: usize,
        h_nodes: ShapeTensor,
        edge_emb: ShapeTensor,
        src: &[u32],
        etype: &[u32],
        dst: &[u32],
        norm: &[f32],
        type_ranges: &[(usize, usize)],
        num_nodes: usize,
    ) -> ShapeTensor {
        let scope = format!("layer {layer}");
        ctx.scoped(&scope, None, |ctx| {
            let w0 = ShapeTensor::new(self.dim, self.dim);
            let self_part = ctx.matmul(h_nodes, w0);
            let mut out = self_part;
            if !src.is_empty() {
                ctx.check("edge_types", type_ranges.len() == self.num_edge_types, || {
                    format!(
                        "{} type ranges for {} registered edge-type weights",
                        type_ranges.len(),
                        self.num_edge_types
                    )
                });
                let h_src = ctx.gather_rows(h_nodes, src);
                let e_edge = ctx.gather_rows(edge_emb, etype);
                let raw = ctx.add(h_src, e_edge);
                let msg = ctx.row_scale(raw, norm.len());
                let transformed = match self.mode {
                    WeightMode::Basis(nb) => {
                        let coef = ShapeTensor::new(self.num_edge_types, nb);
                        let coef_per_edge = ctx.gather_rows(coef, etype);
                        let mut acc: Option<ShapeTensor> = None;
                        for b in 0..nb {
                            let vb = ShapeTensor::new(self.dim, self.dim);
                            let xb = ctx.matmul(msg, vb);
                            let cb = ctx.slice_cols(coef_per_edge, b, b + 1);
                            let scaled = ctx.mul_col(xb, cb);
                            acc = Some(match acc {
                                Some(a) => ctx.add(a, scaled),
                                None => scaled,
                            });
                        }
                        ctx.check("basis_count", acc.is_some(), || {
                            "basis decomposition with zero bases".to_string()
                        });
                        let t = acc.unwrap_or(msg);
                        ctx.scatter_add_rows(t, dst, num_nodes)
                    }
                    WeightMode::PerRelation => {
                        let mut acc: Option<ShapeTensor> = None;
                        for (r, &(a, b)) in type_ranges.iter().enumerate() {
                            if b == a {
                                continue;
                            }
                            ctx.check("edge_type_id", r < self.num_edge_types, || {
                                format!(
                                    "edge type {r} has no registered weight (only {} types)",
                                    self.num_edge_types
                                )
                            });
                            let rows: Vec<u32> = (a as u32..b as u32).collect();
                            let mr = ctx.gather_rows(msg, &rows);
                            let wr = ShapeTensor::new(self.dim, self.dim);
                            let t = ctx.matmul(mr, wr);
                            let part = ctx.scatter_add_rows(t, &dst[a..b], num_nodes);
                            acc = Some(match acc {
                                Some(x) => ctx.add(x, part),
                                None => part,
                            });
                        }
                        acc.unwrap_or(ShapeTensor::new(num_nodes, self.dim))
                    }
                };
                out = ctx.add(out, transformed);
            }
            let activated = ctx.unary("rrelu", out);
            ctx.unary("dropout", activated)
        })
    }

    /// Value-domain replay of [`RgcnCore::layer`], declaring every layer
    /// parameter the real graph would touch for these edge arrays. In
    /// `PerRelation` mode, `w{r}` for an edge type with an empty range in
    /// this window is *not* declared — mirroring the real graph, which never
    /// creates that param node; the model-level audit declares such params
    /// frozen with a "type absent from the audit window" reason.
    #[allow(clippy::too_many_arguments)]
    fn audit_layer(
        &self,
        ctx: &mut AuditCtx,
        layer: usize,
        h_nodes: AbsId,
        edge_emb: AbsId,
        num_edges: usize,
        type_ranges: &[(usize, usize)],
        num_nodes: usize,
    ) -> AbsId {
        let scope = format!("layer {layer}");
        ctx.scoped(&scope, None, |ctx| {
            let w0 = ctx.param(&format!("{}.l{layer}.wself", self.prefix), self.dim, self.dim);
            let self_part = ctx.matmul(h_nodes, w0);
            let mut out = self_part;
            if num_edges > 0 {
                let h_src = ctx.gather_rows(h_nodes, num_edges);
                let e_edge = ctx.gather_rows(edge_emb, num_edges);
                let raw = ctx.add(h_src, e_edge);
                // Degree norms are 1/c_{o,r} in (0, 1].
                let msg = ctx.row_scale(raw, Interval::new(0.0, 1.0));
                let transformed = match self.mode {
                    WeightMode::Basis(nb) => {
                        let coef = ctx.param(
                            &format!("{}.l{layer}.coef", self.prefix),
                            self.num_edge_types,
                            nb,
                        );
                        let coef_per_edge = ctx.gather_rows(coef, num_edges);
                        let mut acc: Option<AbsId> = None;
                        for b in 0..nb {
                            let vb = ctx.param(
                                &format!("{}.l{layer}.basis{b}", self.prefix),
                                self.dim,
                                self.dim,
                            );
                            let xb = ctx.matmul(msg, vb);
                            let cb = ctx.slice_cols(coef_per_edge, b, b + 1);
                            let scaled = ctx.mul_col(xb, cb);
                            acc = Some(match acc {
                                Some(a) => ctx.add(a, scaled),
                                None => scaled,
                            });
                        }
                        let t = acc.unwrap_or(msg);
                        ctx.scatter_add_rows(t, num_nodes)
                    }
                    WeightMode::PerRelation => {
                        let mut acc: Option<AbsId> = None;
                        for (r, &(a, b)) in type_ranges.iter().enumerate() {
                            if b == a {
                                continue;
                            }
                            let mr = ctx.gather_rows(msg, b - a);
                            let wr = ctx.param(
                                &format!("{}.l{layer}.w{r}", self.prefix),
                                self.dim,
                                self.dim,
                            );
                            let t = ctx.matmul(mr, wr);
                            let part = ctx.scatter_add_rows(t, num_nodes);
                            acc = Some(match acc {
                                Some(x) => ctx.add(x, part),
                                None => part,
                            });
                        }
                        match acc {
                            Some(x) => x,
                            None => ctx.source(num_nodes, self.dim, Interval::point(0.0)),
                        }
                    }
                };
                out = ctx.add(out, transformed);
            }
            let activated = ctx.rrelu(out);
            ctx.dropout(activated, f64::from(self.dropout))
        })
    }
}

/// The entity-aggregating R-GCN (Eq. 4).
#[derive(Clone, Debug)]
pub struct EntityRgcn {
    core: RgcnCore,
}

impl EntityRgcn {
    /// Registers an `num_layers`-layer entity R-GCN under `prefix`.
    /// `num_rel_total` is `2M` (inverse relations included).
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        dim: usize,
        num_rel_total: usize,
        mode: WeightMode,
        num_layers: usize,
        dropout: f32,
    ) -> Self {
        EntityRgcn {
            core: RgcnCore::new(store, prefix, dim, num_rel_total, mode, num_layers, dropout),
        }
    }

    /// Aggregates over `snap`: `entities [N, d]`, `relations [2M, d]` →
    /// `[N, d]`.
    pub fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        entities: NodeId,
        relations: NodeId,
        snap: &Snapshot,
    ) -> NodeId {
        let _m = retia_obs::module_scope("EntityRgcn");
        assert_eq!(g.value(entities).rows(), snap.num_entities, "entity count mismatch");
        assert_eq!(g.value(relations).rows(), 2 * snap.num_relations, "relation count mismatch");
        let mut h = entities;
        for l in 0..self.core.num_layers {
            h = self.core.layer(
                g,
                store,
                l,
                h,
                relations,
                &snap.src,
                &snap.rel,
                &snap.dst,
                &snap.edge_norm,
                &snap.rel_ranges,
                snap.num_entities,
            );
        }
        h
    }

    /// Shape-only replay of [`EntityRgcn::forward`] over `snap`'s real edge
    /// arrays: `entities [N, d]`, `relations [2M, d]` -> `[N, d]`.
    pub fn validate(
        &self,
        ctx: &mut ShapeCtx,
        entities: ShapeTensor,
        relations: ShapeTensor,
        snap: &Snapshot,
    ) -> ShapeTensor {
        ctx.scoped("EntityRgcn", None, |ctx| {
            ctx.check("entity_count", entities.rows == snap.num_entities, || {
                format!(
                    "entity embeddings are {entities}, snapshot has {} entities",
                    snap.num_entities
                )
            });
            ctx.check("relation_count", relations.rows == 2 * snap.num_relations, || {
                format!(
                    "relation embeddings are {relations}, expected {} rows (2M with inverses)",
                    2 * snap.num_relations
                )
            });
            let mut h = entities;
            for l in 0..self.core.num_layers {
                h = self.core.validate_layer(
                    ctx,
                    l,
                    h,
                    relations,
                    &snap.src,
                    &snap.rel,
                    &snap.dst,
                    &snap.edge_norm,
                    &snap.rel_ranges,
                    snap.num_entities,
                );
            }
            h
        })
    }

    /// Value-domain replay of [`EntityRgcn::forward`] over `snap`'s real
    /// edge arrays, declaring the layer weights the real graph would touch.
    pub fn audit(
        &self,
        ctx: &mut AuditCtx,
        entities: AbsId,
        relations: AbsId,
        snap: &Snapshot,
    ) -> AbsId {
        ctx.scoped("EntityRgcn", None, |ctx| {
            let mut h = entities;
            for l in 0..self.core.num_layers {
                h = self.core.audit_layer(
                    ctx,
                    l,
                    h,
                    relations,
                    snap.num_edges(),
                    &snap.rel_ranges,
                    snap.num_entities,
                );
            }
            h
        })
    }
}

/// The relation-aggregating R-GCN over a hyperrelation subgraph (Eq. 1).
#[derive(Clone, Debug)]
pub struct RelationRgcn {
    core: RgcnCore,
}

impl RelationRgcn {
    /// Registers an `num_layers`-layer relation R-GCN under `prefix`. There
    /// are always `2H = 8` hyperrelation edge types.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        dim: usize,
        mode: WeightMode,
        num_layers: usize,
        dropout: f32,
    ) -> Self {
        RelationRgcn {
            core: RgcnCore::new(
                store,
                prefix,
                dim,
                NUM_HYPERRELS_WITH_INV,
                mode,
                num_layers,
                dropout,
            ),
        }
    }

    /// Aggregates over `hyper`: `relations [2M, d]`,
    /// `hyperrelations [2H, d]` → `[2M, d]`.
    pub fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        relations: NodeId,
        hyperrelations: NodeId,
        hyper: &HyperSnapshot,
    ) -> NodeId {
        let _m = retia_obs::module_scope("RelationRgcn");
        assert_eq!(g.value(relations).rows(), hyper.num_rel_nodes, "relation node count mismatch");
        assert_eq!(
            g.value(hyperrelations).rows(),
            NUM_HYPERRELS_WITH_INV,
            "hyperrelation embedding count mismatch"
        );
        let mut h = relations;
        for l in 0..self.core.num_layers {
            h = self.core.layer(
                g,
                store,
                l,
                h,
                hyperrelations,
                &hyper.src,
                &hyper.hrel,
                &hyper.dst,
                &hyper.edge_norm,
                &hyper.hrel_ranges,
                hyper.num_rel_nodes,
            );
        }
        h
    }

    /// Shape-only replay of [`RelationRgcn::forward`] over `hyper`'s real
    /// edge arrays: `relations [2M, d]`, `hyperrelations [2H, d]` ->
    /// `[2M, d]`.
    pub fn validate(
        &self,
        ctx: &mut ShapeCtx,
        relations: ShapeTensor,
        hyperrelations: ShapeTensor,
        hyper: &HyperSnapshot,
    ) -> ShapeTensor {
        ctx.scoped("RelationRgcn", None, |ctx| {
            ctx.check("relation_node_count", relations.rows == hyper.num_rel_nodes, || {
                format!(
                    "relation embeddings are {relations}, hypergraph has {} relation nodes",
                    hyper.num_rel_nodes
                )
            });
            ctx.check("hyperrelation_count", hyperrelations.rows == NUM_HYPERRELS_WITH_INV, || {
                format!(
                    "hyperrelation embeddings are {hyperrelations}, expected \
                         {NUM_HYPERRELS_WITH_INV} rows"
                )
            });
            let mut h = relations;
            for l in 0..self.core.num_layers {
                h = self.core.validate_layer(
                    ctx,
                    l,
                    h,
                    hyperrelations,
                    &hyper.src,
                    &hyper.hrel,
                    &hyper.dst,
                    &hyper.edge_norm,
                    &hyper.hrel_ranges,
                    hyper.num_rel_nodes,
                );
            }
            h
        })
    }

    /// Value-domain replay of [`RelationRgcn::forward`] over `hyper`'s real
    /// edge arrays.
    pub fn audit(
        &self,
        ctx: &mut AuditCtx,
        relations: AbsId,
        hyperrelations: AbsId,
        hyper: &HyperSnapshot,
    ) -> AbsId {
        ctx.scoped("RelationRgcn", None, |ctx| {
            let mut h = relations;
            for l in 0..self.core.num_layers {
                h = self.core.audit_layer(
                    ctx,
                    l,
                    h,
                    hyperrelations,
                    hyper.num_edges(),
                    &hyper.hrel_ranges,
                    hyper.num_rel_nodes,
                );
            }
            h
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retia_graph::Quad;
    use retia_tensor::{Tensor, RRELU_EVAL_SLOPE};

    fn toy_snapshot() -> Snapshot {
        let quads = vec![Quad::new(0, 0, 1, 0), Quad::new(2, 1, 1, 0), Quad::new(1, 0, 3, 0)];
        Snapshot::from_quads(&quads, 4, 2)
    }

    fn rrelu_eval(x: f32) -> f32 {
        if x >= 0.0 {
            x
        } else {
            x * RRELU_EVAL_SLOPE
        }
    }

    #[test]
    fn entity_rgcn_shapes_both_modes() {
        for mode in [WeightMode::PerRelation, WeightMode::Basis(2)] {
            let mut store = ParamStore::new(0);
            let rgcn = EntityRgcn::new(&mut store, "e", 8, 4, mode, 2, 0.0);
            let snap = toy_snapshot();
            let mut g = Graph::new(false, 0);
            let e = g.constant(Tensor::ones(4, 8));
            let r = g.constant(Tensor::ones(4, 8));
            let out = rgcn.forward(&mut g, &store, e, r, &snap);
            assert_eq!(g.value(out).shape(), (4, 8));
            assert!(g.value(out).all_finite());
        }
    }

    #[test]
    fn per_relation_matches_naive_dense() {
        // Single layer, per-relation weights, eval mode: compare against a
        // direct implementation of Eq. 4.
        let d = 3;
        let snap = toy_snapshot();
        let mut store = ParamStore::new(7);
        let rgcn = EntityRgcn::new(&mut store, "e", d, 4, WeightMode::PerRelation, 1, 0.0);
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let ent = Tensor::from_fn(4, d, |_, _| rng.gen_range(-1.0f32..1.0));
        let rel = Tensor::from_fn(4, d, |_, _| rng.gen_range(-1.0f32..1.0));

        let mut g = Graph::new(false, 0);
        let e = g.constant(ent.clone());
        let r = g.constant(rel.clone());
        let out = rgcn.forward(&mut g, &store, e, r, &snap);
        let got = g.value(out).clone();

        // Naive: for each node o, W0 e_o + sum over in-edges (1/c)(e_s + r)W_r.
        let w0 = store.value("e.l0.wself");
        let mut expected = ent.matmul(w0);
        for i in 0..snap.num_edges() {
            let (s, rr, o) = (snap.src[i] as usize, snap.rel[i] as usize, snap.dst[i] as usize);
            let wr = store.value(&format!("e.l0.w{rr}"));
            let mut msg = Tensor::from_vec(
                1,
                d,
                ent.row(s).iter().zip(rel.row(rr).iter()).map(|(&a, &b)| a + b).collect(),
            );
            msg = msg.scale(snap.edge_norm[i]).matmul(wr);
            for j in 0..d {
                let v = expected.get(o, j) + msg.get(0, j);
                expected.set(o, j, v);
            }
        }
        expected.map_inplace(rrelu_eval);
        assert!(got.max_abs_diff(&expected) < 1e-5, "diff {}", got.max_abs_diff(&expected));
    }

    #[test]
    fn relation_rgcn_over_hypergraph() {
        let snap = toy_snapshot();
        let hyper = HyperSnapshot::from_snapshot(&snap);
        assert!(hyper.num_edges() > 0);
        let mut store = ParamStore::new(0);
        let rgcn = RelationRgcn::new(&mut store, "r", 6, WeightMode::PerRelation, 2, 0.0);
        let mut g = Graph::new(false, 0);
        let r = g.constant(Tensor::ones(4, 6));
        let hr = g.constant(Tensor::ones(8, 6));
        let out = rgcn.forward(&mut g, &store, r, hr, &hyper);
        assert_eq!(g.value(out).shape(), (4, 6));
        assert!(g.value(out).all_finite());
    }

    #[test]
    fn gradients_reach_all_layer_params() {
        let snap = toy_snapshot();
        let mut store = ParamStore::new(0);
        store.register_xavier("ent", 4, 5);
        store.register_xavier("rel", 4, 5);
        let rgcn = EntityRgcn::new(&mut store, "e", 5, 4, WeightMode::Basis(2), 2, 0.0);
        let mut g = Graph::new(false, 0);
        let e = g.param(&store, "ent");
        let r = g.param(&store, "rel");
        let out = rgcn.forward(&mut g, &store, e, r, &snap);
        let sq = g.mul(out, out);
        let loss = g.sum_all(sq);
        g.backward(loss, &mut store);
        for name in
            ["ent", "rel", "e.l0.wself", "e.l0.basis0", "e.l0.basis1", "e.l0.coef", "e.l1.wself"]
        {
            assert!(store.grad(name).norm() > 0.0, "no gradient reached `{name}`");
        }
        let _ = rgcn; // silence unused in non-test builds
    }

    #[test]
    fn basis_with_identity_coefficients_matches_per_relation() {
        // With B = num_edge_types and one-hot coefficients, the basis
        // decomposition degenerates to independent per-relation weights:
        // W_r = basis_r. Copy the basis matrices into a per-relation model
        // and the two layers must agree exactly.
        let d = 4;
        let m = 2; // 2M = 4 edge types
        let snap = toy_snapshot();
        let mut store = ParamStore::new(3);
        let basis = EntityRgcn::new(&mut store, "b", d, 2 * m, WeightMode::Basis(2 * m), 1, 0.0);
        let per = EntityRgcn::new(&mut store, "p", d, 2 * m, WeightMode::PerRelation, 1, 0.0);

        // One-hot coefficients.
        *store.value_mut("b.l0.coef") = Tensor::eye(2 * m);
        // Mirror weights.
        let wself = store.value("b.l0.wself").clone();
        *store.value_mut("p.l0.wself") = wself;
        for r in 0..2 * m {
            let w = store.value(&format!("b.l0.basis{r}")).clone();
            *store.value_mut(&format!("p.l0.w{r}")) = w;
        }

        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let ent = Tensor::from_fn(4, d, |_, _| rng.gen_range(-1.0f32..1.0));
        let rel = Tensor::from_fn(4, d, |_, _| rng.gen_range(-1.0f32..1.0));

        let mut g = Graph::new(false, 0);
        let e = g.constant(ent.clone());
        let r = g.constant(rel.clone());
        let out_b = basis.forward(&mut g, &store, e, r, &snap);
        let out_p = per.forward(&mut g, &store, e, r, &snap);
        let diff = g.value(out_b).max_abs_diff(g.value(out_p));
        assert!(diff < 1e-5, "basis/per-relation mismatch: {diff}");
    }

    #[test]
    fn dropout_active_only_in_training_mode() {
        let snap = toy_snapshot();
        let mut store = ParamStore::new(0);
        let rgcn = EntityRgcn::new(&mut store, "e", 6, 4, WeightMode::Basis(2), 1, 0.5);
        let run = |training: bool, seed: u64| {
            let mut g = Graph::new(training, seed);
            let e = g.constant(Tensor::ones(4, 6));
            let r = g.constant(Tensor::ones(4, 6));
            let out = rgcn.forward(&mut g, &store, e, r, &snap);
            g.value(out).clone()
        };
        // Eval is deterministic across seeds; train is not (dropout masks).
        assert_eq!(run(false, 1), run(false, 2));
        assert_ne!(run(true, 1), run(true, 2));
    }

    #[test]
    fn empty_snapshot_keeps_self_loop_only() {
        let snap = Snapshot::empty(0, 3, 2);
        let mut store = ParamStore::new(0);
        let rgcn = EntityRgcn::new(&mut store, "e", 4, 4, WeightMode::PerRelation, 1, 0.0);
        let mut g = Graph::new(false, 0);
        let e = g.constant(Tensor::ones(3, 4));
        let r = g.constant(Tensor::ones(4, 4));
        let out = rgcn.forward(&mut g, &store, e, r, &snap);
        // Self-loop only: rrelu(e @ W0).
        let expected = {
            let mut t = Tensor::ones(3, 4).matmul(store.value("e.l0.wself"));
            t.map_inplace(rrelu_eval);
            t
        };
        assert!(g.value(out).max_abs_diff(&expected) < 1e-6);
    }
}
