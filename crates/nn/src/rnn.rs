//! Recurrent cells.
//!
//! RETIA threads three recurrences through the snapshot sequence: a residual
//! GRU normalizing each R-GCN's output against its input (Eq. 3 and 6), an
//! LSTM carrying the entity→relation interaction channel (Eq. 8) and a
//! "hyper" LSTM carrying the relation→hyperrelation channel (Eq. 10). Both
//! cells here operate on `[rows, dim]` matrices, treating each row as an
//! independent sequence element (one relation / entity / hyperrelation).
//!
//! Note on dimensions: the paper types the LSTM cell state as `2d`-wide while
//! its hidden state is `d`-wide (Eq. 8); we use the standard LSTM
//! (cell width = hidden width = `d`) with a `2d → d` input projection folded
//! into the gate weights, which preserves the information flow. This
//! deviation is recorded in DESIGN.md.

use retia_analyze::value::AbsId;
use retia_analyze::{AuditCtx, ShapeCtx, ShapeTensor};
use retia_tensor::{Graph, NodeId, ParamStore};

/// Gated recurrent unit cell (Cho et al., 2014).
#[derive(Clone, Debug)]
pub struct GruCell {
    w: String,
    u: String,
    b: String,
    input_dim: usize,
    hidden_dim: usize,
}

impl GruCell {
    /// Registers gate weights under `prefix`: `W [input_dim, 3*hidden]`,
    /// `U [hidden, 3*hidden]`, `b [1, 3*hidden]` (gate order: z, r, n).
    pub fn new(store: &mut ParamStore, prefix: &str, input_dim: usize, hidden_dim: usize) -> Self {
        let w = format!("{prefix}.w");
        let u = format!("{prefix}.u");
        let b = format!("{prefix}.b");
        store.register_xavier(&w, input_dim, 3 * hidden_dim);
        store.register_xavier(&u, hidden_dim, 3 * hidden_dim);
        store.register_zeros(&b, 1, 3 * hidden_dim);
        GruCell { w, u, b, input_dim, hidden_dim }
    }

    /// One step: `h' = GRU(x, h)`, with `x: [n, input_dim]`,
    /// `h: [n, hidden_dim]`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: NodeId, h: NodeId) -> NodeId {
        let _m = retia_obs::module_scope("GruCell");
        assert_eq!(g.value(x).cols(), self.input_dim, "GRU input width mismatch");
        assert_eq!(g.value(h).cols(), self.hidden_dim, "GRU hidden width mismatch");
        let d = self.hidden_dim;
        let w = g.param(store, &self.w);
        let u = g.param(store, &self.u);
        let b = g.param(store, &self.b);
        let xw = g.matmul(x, w);
        let hu = g.matmul(h, u);
        let xwb = g.add_bias(xw, b);

        let xz = g.slice_cols(xwb, 0, d);
        let xr = g.slice_cols(xwb, d, 2 * d);
        let xn = g.slice_cols(xwb, 2 * d, 3 * d);
        let hz = g.slice_cols(hu, 0, d);
        let hr = g.slice_cols(hu, d, 2 * d);
        let hn = g.slice_cols(hu, 2 * d, 3 * d);

        let z_in = g.add(xz, hz);
        let z = g.sigmoid(z_in);
        let r_in = g.add(xr, hr);
        let r = g.sigmoid(r_in);
        let rhn = g.mul(r, hn);
        let n_in = g.add(xn, rhn);
        let n = g.tanh(n_in);

        // h' = (1 - z) * n + z * h = n + z * (h - n).
        let hmn = g.sub(h, n);
        let zh = g.mul(z, hmn);
        g.add(n, zh)
    }

    /// Shape-only replay of [`GruCell::forward`].
    pub fn validate(&self, ctx: &mut ShapeCtx, x: ShapeTensor, h: ShapeTensor) -> ShapeTensor {
        Self::validate_dims(ctx, self.input_dim, self.hidden_dim, x, h)
    }

    /// Static form of [`GruCell::validate`]: checks the gate op sequence for
    /// the given dimensions without constructing the cell.
    pub fn validate_dims(
        ctx: &mut ShapeCtx,
        input_dim: usize,
        hidden_dim: usize,
        x: ShapeTensor,
        h: ShapeTensor,
    ) -> ShapeTensor {
        ctx.scoped("GruCell", None, |ctx| {
            let d = hidden_dim;
            let w = ShapeTensor::new(input_dim, 3 * d);
            let u = ShapeTensor::new(hidden_dim, 3 * d);
            let b = ShapeTensor::new(1, 3 * d);
            let xw = ctx.matmul(x, w);
            let hu = ctx.matmul(h, u);
            let xwb = ctx.add_bias(xw, b);
            let xz = ctx.slice_cols(xwb, 0, d);
            let xr = ctx.slice_cols(xwb, d, 2 * d);
            let xn = ctx.slice_cols(xwb, 2 * d, 3 * d);
            let hz = ctx.slice_cols(hu, 0, d);
            let hr = ctx.slice_cols(hu, d, 2 * d);
            let hn = ctx.slice_cols(hu, 2 * d, 3 * d);
            let z = ctx.add(xz, hz);
            let r = ctx.add(xr, hr);
            let rhn = ctx.mul(r, hn);
            let n = ctx.add(xn, rhn);
            let hmn = ctx.sub(h, n);
            let zh = ctx.mul(z, hmn);
            ctx.add(n, zh)
        })
    }

    /// Value-domain replay of [`GruCell::forward`]: same op sequence over
    /// intervals, declaring the gate weights by their store names so the
    /// gradient-flow walk can reconcile them.
    pub fn audit(&self, ctx: &mut AuditCtx, x: AbsId, h: AbsId) -> AbsId {
        ctx.scoped("GruCell", None, |ctx| {
            let d = self.hidden_dim;
            let w = ctx.param(&self.w, self.input_dim, 3 * d);
            let u = ctx.param(&self.u, self.hidden_dim, 3 * d);
            let b = ctx.param(&self.b, 1, 3 * d);
            let xw = ctx.matmul(x, w);
            let hu = ctx.matmul(h, u);
            let xwb = ctx.add_bias(xw, b);
            let xz = ctx.slice_cols(xwb, 0, d);
            let xr = ctx.slice_cols(xwb, d, 2 * d);
            let xn = ctx.slice_cols(xwb, 2 * d, 3 * d);
            let hz = ctx.slice_cols(hu, 0, d);
            let hr = ctx.slice_cols(hu, d, 2 * d);
            let hn = ctx.slice_cols(hu, 2 * d, 3 * d);
            let z_in = ctx.add(xz, hz);
            let z = ctx.sigmoid(z_in);
            let r_in = ctx.add(xr, hr);
            let r = ctx.sigmoid(r_in);
            let rhn = ctx.mul(r, hn);
            let n_in = ctx.add(xn, rhn);
            let n = ctx.tanh(n_in);
            let hmn = ctx.sub(h, n);
            let zh = ctx.mul(z, hmn);
            ctx.add(n, zh)
        })
    }
}

/// Long short-term memory cell (Hochreiter & Schmidhuber, 1997) with the
/// forget-gate bias initialized to 1.
#[derive(Clone, Debug)]
pub struct LstmCell {
    w: String,
    u: String,
    b: String,
    input_dim: usize,
    hidden_dim: usize,
}

impl LstmCell {
    /// Registers gate weights under `prefix`: `W [input_dim, 4*hidden]`,
    /// `U [hidden, 4*hidden]`, `b [1, 4*hidden]` (gate order: i, f, g, o).
    pub fn new(store: &mut ParamStore, prefix: &str, input_dim: usize, hidden_dim: usize) -> Self {
        let w = format!("{prefix}.w");
        let u = format!("{prefix}.u");
        let b = format!("{prefix}.b");
        store.register_xavier(&w, input_dim, 4 * hidden_dim);
        store.register_xavier(&u, hidden_dim, 4 * hidden_dim);
        store.register_zeros(&b, 1, 4 * hidden_dim);
        // Forget-gate bias 1.0: standard trick so early training does not
        // wipe the carried state.
        {
            let bias = store.value_mut(&b);
            for j in hidden_dim..2 * hidden_dim {
                bias.set(0, j, 1.0);
            }
        }
        LstmCell { w, u, b, input_dim, hidden_dim }
    }

    /// One step: `(h', c') = LSTM(x, (h, c))`, with `x: [n, input_dim]`,
    /// `h, c: [n, hidden_dim]`.
    pub fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        x: NodeId,
        h: NodeId,
        c: NodeId,
    ) -> (NodeId, NodeId) {
        let _m = retia_obs::module_scope("LstmCell");
        assert_eq!(g.value(x).cols(), self.input_dim, "LSTM input width mismatch");
        assert_eq!(g.value(h).cols(), self.hidden_dim, "LSTM hidden width mismatch");
        assert_eq!(g.value(c).cols(), self.hidden_dim, "LSTM cell width mismatch");
        let d = self.hidden_dim;
        let w = g.param(store, &self.w);
        let u = g.param(store, &self.u);
        let b = g.param(store, &self.b);
        let xw = g.matmul(x, w);
        let hu = g.matmul(h, u);
        let pre0 = g.add(xw, hu);
        let pre = g.add_bias(pre0, b);

        let i_in = g.slice_cols(pre, 0, d);
        let f_in = g.slice_cols(pre, d, 2 * d);
        let g_in = g.slice_cols(pre, 2 * d, 3 * d);
        let o_in = g.slice_cols(pre, 3 * d, 4 * d);

        let i = g.sigmoid(i_in);
        let f = g.sigmoid(f_in);
        let gg = g.tanh(g_in);
        let o = g.sigmoid(o_in);

        let fc = g.mul(f, c);
        let ig = g.mul(i, gg);
        let c_new = g.add(fc, ig);
        let tc = g.tanh(c_new);
        let h_new = g.mul(o, tc);
        (h_new, c_new)
    }

    /// Shape-only replay of [`LstmCell::forward`].
    pub fn validate(
        &self,
        ctx: &mut ShapeCtx,
        x: ShapeTensor,
        h: ShapeTensor,
        c: ShapeTensor,
    ) -> (ShapeTensor, ShapeTensor) {
        Self::validate_dims(ctx, self.input_dim, self.hidden_dim, x, h, c)
    }

    /// Static form of [`LstmCell::validate`]: checks the gate op sequence for
    /// the given dimensions without constructing the cell.
    pub fn validate_dims(
        ctx: &mut ShapeCtx,
        input_dim: usize,
        hidden_dim: usize,
        x: ShapeTensor,
        h: ShapeTensor,
        c: ShapeTensor,
    ) -> (ShapeTensor, ShapeTensor) {
        ctx.scoped("LstmCell", None, |ctx| {
            let d = hidden_dim;
            let w = ShapeTensor::new(input_dim, 4 * d);
            let u = ShapeTensor::new(hidden_dim, 4 * d);
            let b = ShapeTensor::new(1, 4 * d);
            let xw = ctx.matmul(x, w);
            let hu = ctx.matmul(h, u);
            let pre0 = ctx.add(xw, hu);
            let pre = ctx.add_bias(pre0, b);
            let i = ctx.slice_cols(pre, 0, d);
            let f = ctx.slice_cols(pre, d, 2 * d);
            let gg = ctx.slice_cols(pre, 2 * d, 3 * d);
            let o = ctx.slice_cols(pre, 3 * d, 4 * d);
            let fc = ctx.mul(f, c);
            let ig = ctx.mul(i, gg);
            let c_new = ctx.add(fc, ig);
            let tc = ctx.unary("tanh", c_new);
            let h_new = ctx.mul(o, tc);
            (h_new, c_new)
        })
    }

    /// Value-domain replay of [`LstmCell::forward`], declaring the gate
    /// weights by their store names.
    pub fn audit(&self, ctx: &mut AuditCtx, x: AbsId, h: AbsId, c: AbsId) -> (AbsId, AbsId) {
        ctx.scoped("LstmCell", None, |ctx| {
            let d = self.hidden_dim;
            let w = ctx.param(&self.w, self.input_dim, 4 * d);
            let u = ctx.param(&self.u, self.hidden_dim, 4 * d);
            let b = ctx.param(&self.b, 1, 4 * d);
            let xw = ctx.matmul(x, w);
            let hu = ctx.matmul(h, u);
            let pre0 = ctx.add(xw, hu);
            let pre = ctx.add_bias(pre0, b);
            let i_in = ctx.slice_cols(pre, 0, d);
            let f_in = ctx.slice_cols(pre, d, 2 * d);
            let g_in = ctx.slice_cols(pre, 2 * d, 3 * d);
            let o_in = ctx.slice_cols(pre, 3 * d, 4 * d);
            let i = ctx.sigmoid(i_in);
            let f = ctx.sigmoid(f_in);
            let gg = ctx.tanh(g_in);
            let o = ctx.sigmoid(o_in);
            let fc = ctx.mul(f, c);
            let ig = ctx.mul(i, gg);
            let c_new = ctx.add(fc, ig);
            let tc = ctx.tanh(c_new);
            let h_new = ctx.mul(o, tc);
            (h_new, c_new)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retia_tensor::{optim::Adam, Tensor};

    #[test]
    fn gru_shapes() {
        let mut store = ParamStore::new(0);
        let cell = GruCell::new(&mut store, "gru", 6, 4);
        let mut g = Graph::new(false, 0);
        let x = g.constant(Tensor::ones(3, 6));
        let h = g.constant(Tensor::zeros(3, 4));
        let h2 = cell.forward(&mut g, &store, x, h);
        assert_eq!(g.value(h2).shape(), (3, 4));
        assert!(g.value(h2).all_finite());
    }

    #[test]
    fn lstm_shapes() {
        let mut store = ParamStore::new(0);
        let cell = LstmCell::new(&mut store, "lstm", 8, 4);
        let mut g = Graph::new(false, 0);
        let x = g.constant(Tensor::ones(3, 8));
        let h = g.constant(Tensor::zeros(3, 4));
        let c = g.constant(Tensor::zeros(3, 4));
        let (h2, c2) = cell.forward(&mut g, &store, x, h, c);
        assert_eq!(g.value(h2).shape(), (3, 4));
        assert_eq!(g.value(c2).shape(), (3, 4));
    }

    #[test]
    fn lstm_forget_bias_initialized() {
        let mut store = ParamStore::new(0);
        let _ = LstmCell::new(&mut store, "lstm", 2, 3);
        let b = store.value("lstm.b");
        // Gates: i (0..3), f (3..6), g (6..9), o (9..12).
        assert_eq!(b.get(0, 3), 1.0);
        assert_eq!(b.get(0, 5), 1.0);
        assert_eq!(b.get(0, 0), 0.0);
        assert_eq!(b.get(0, 6), 0.0);
    }

    /// A two-step memory task: remember the first input and reproduce it
    /// after seeing a distractor. Both cells should fit this easily.
    fn memory_task_loss(seed: u64, use_lstm: bool) -> f32 {
        let mut store = ParamStore::new(seed);
        let gru = GruCell::new(&mut store, "g", 2, 4);
        let lstm = LstmCell::new(&mut store, "l", 2, 4);
        let readout = crate::linear::Linear::new(&mut store, "r", 4, 1);
        let mut adam = Adam::new(0.03);
        // Batch of 4 sequences: first input is the signal in {0,1}, second is
        // a constant distractor; target = signal.
        let x1 = Tensor::from_vec(4, 2, vec![0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0]);
        let x2 = Tensor::from_vec(4, 2, vec![0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5]);
        let y = Tensor::from_vec(4, 1, vec![0.0, 1.0, 0.0, 1.0]);
        let mut last = f32::MAX;
        for _ in 0..400 {
            let mut g = Graph::new(true, 0);
            let x1n = g.constant(x1.clone());
            let x2n = g.constant(x2.clone());
            let yn = g.constant(y.clone());
            let h0 = g.constant(Tensor::zeros(4, 4));
            let c0 = g.constant(Tensor::zeros(4, 4));
            let h2 = if use_lstm {
                let (h1, c1) = lstm.forward(&mut g, &store, x1n, h0, c0);
                let (h2, _) = lstm.forward(&mut g, &store, x2n, h1, c1);
                h2
            } else {
                let h1 = gru.forward(&mut g, &store, x1n, h0);
                gru.forward(&mut g, &store, x2n, h1)
            };
            let pred = readout.forward(&mut g, &store, h2);
            let d = g.sub(pred, yn);
            let sq = g.mul(d, d);
            let loss = g.mean_all(sq);
            last = g.value(loss).item();
            g.backward(loss, &mut store);
            adam.step(&mut store);
            store.zero_grad();
        }
        last
    }

    #[test]
    fn gru_learns_memory_task() {
        let loss = memory_task_loss(1, false);
        assert!(loss < 1e-2, "GRU loss {loss}");
    }

    #[test]
    fn lstm_learns_memory_task() {
        let loss = memory_task_loss(2, true);
        assert!(loss < 1e-2, "LSTM loss {loss}");
    }

    #[test]
    fn gru_identity_when_update_gate_saturated() {
        // With giant positive z-gate bias the GRU must keep its hidden state.
        let mut store = ParamStore::new(0);
        let cell = GruCell::new(&mut store, "gru", 2, 2);
        {
            let b = store.value_mut("gru.b");
            b.set(0, 0, 100.0);
            b.set(0, 1, 100.0);
        }
        let mut g = Graph::new(false, 0);
        let x = g.constant(Tensor::ones(1, 2));
        let h = g.constant(Tensor::from_vec(1, 2, vec![0.3, -0.7]));
        let h2 = cell.forward(&mut g, &store, x, h);
        let out = g.value(h2);
        assert!((out.get(0, 0) - 0.3).abs() < 1e-3);
        assert!((out.get(0, 1) + 0.7).abs() < 1e-3);
    }
}
