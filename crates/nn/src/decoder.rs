//! Conv-TransE score decoder (Shang et al., 2019) — Eq. 11/12 of the paper.
//!
//! Two query embeddings (subject+relation for entity forecasting,
//! subject+object for relation forecasting) are stacked as a 2-channel
//! 1-D "image" over the embedding dimension, convolved, projected back to
//! `d`, and scored against every candidate embedding by inner product.
//!
//! The paper's configuration: kernel `3 x 2` (width 3 over the embedding
//! axis, spanning both stacked rows — i.e. 2 input channels), 50 kernels,
//! dropout 0.2. The reference implementation's batch norms are replaced by
//! layer norm here (our substrate has no running-statistics batch norm);
//! the substitution is recorded in DESIGN.md.

use retia_analyze::value::{AbsId, PARAM_BOUND};
use retia_analyze::{AuditCtx, ShapeCtx, ShapeTensor};
use retia_tensor::transfer::Interval;
use retia_tensor::{Graph, NodeId, ParamStore};

/// Convolutional decoder producing `[queries, candidates]` score matrices.
#[derive(Clone, Debug)]
pub struct ConvTransE {
    conv_w: String,
    conv_b: String,
    fc_w: String,
    fc_b: String,
    dim: usize,
    channels: usize,
    ksize: usize,
    dropout: f32,
}

impl ConvTransE {
    /// Registers decoder parameters under `prefix`. `dim` is the embedding
    /// width, `channels` the number of kernels, `ksize` the kernel width.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        dim: usize,
        channels: usize,
        ksize: usize,
        dropout: f32,
    ) -> Self {
        let conv_w = format!("{prefix}.conv.w");
        let conv_b = format!("{prefix}.conv.b");
        let fc_w = format!("{prefix}.fc.w");
        let fc_b = format!("{prefix}.fc.b");
        store.register_xavier(&conv_w, channels, 2 * ksize);
        store.register_zeros(&conv_b, 1, channels);
        store.register_xavier(&fc_w, channels * dim, dim);
        store.register_zeros(&fc_b, 1, dim);
        ConvTransE { conv_w, conv_b, fc_w, fc_b, dim, channels, ksize, dropout }
    }

    /// The paper's configuration: 50 kernels of width 3, dropout 0.2.
    pub fn paper_config(store: &mut ParamStore, prefix: &str, dim: usize) -> Self {
        Self::new(store, prefix, dim, 50, 3, 0.2)
    }

    /// Embeds a query pair into a `[queries, dim]` representation (the part
    /// of the decoder before candidate scoring).
    pub fn query_repr(&self, g: &mut Graph, store: &ParamStore, a: NodeId, b: NodeId) -> NodeId {
        let _m = retia_obs::module_scope("ConvTransE");
        assert_eq!(g.value(a).cols(), self.dim, "decoder input width mismatch");
        assert_eq!(g.value(a).shape(), g.value(b).shape(), "query part shape mismatch");
        // Channels-major stacking: [a | b] is channel 0 then channel 1.
        let stacked = g.concat_cols(a, b);
        let x = g.dropout(stacked, self.dropout);
        let cw = g.param(store, &self.conv_w);
        let cb = g.param(store, &self.conv_b);
        let conv = g.conv1d(x, cw, cb, 2, self.channels, self.ksize);
        let normed = g.layer_norm_rows(conv);
        let act = g.relu(normed);
        let act = g.dropout(act, self.dropout);
        let fw = g.param(store, &self.fc_w);
        let fb = g.param(store, &self.fc_b);
        let proj = g.matmul(act, fw);
        let proj = g.add_bias(proj, fb);
        let normed2 = g.layer_norm_rows(proj);
        let act2 = g.relu(normed2);
        g.dropout(act2, self.dropout)
    }

    /// Scores every candidate for every query:
    /// `(a, b) x candidates -> [queries, num_candidates]` logits.
    ///
    /// The `queries x candidates` scoring product dominates evaluation cost;
    /// it (and the conv/projection above) runs on the chunk-parallel kernels
    /// in `retia_tensor::parallel`, whose output is bit-identical at any
    /// `RETIA_NUM_THREADS`.
    pub fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        a: NodeId,
        b: NodeId,
        candidates: NodeId,
    ) -> NodeId {
        let q = self.query_repr(g, store, a, b);
        g.matmul_nt(q, candidates)
    }

    /// Shape-only replay of [`ConvTransE::forward`]: stacks the two query
    /// parts, runs the conv/projection op sequence, and scores against
    /// `candidates`, recording any mismatch in `ctx`.
    pub fn validate(
        &self,
        ctx: &mut ShapeCtx,
        a: ShapeTensor,
        b: ShapeTensor,
        candidates: ShapeTensor,
    ) -> ShapeTensor {
        Self::validate_dims(ctx, self.dim, self.channels, self.ksize, a, b, candidates)
    }

    /// Static form of [`ConvTransE::validate`]: checks the op sequence for
    /// the given dimensions without constructing the layer.
    pub fn validate_dims(
        ctx: &mut ShapeCtx,
        dim: usize,
        channels: usize,
        ksize: usize,
        a: ShapeTensor,
        b: ShapeTensor,
        candidates: ShapeTensor,
    ) -> ShapeTensor {
        ctx.scoped("ConvTransE", Some("Eq. 11/12"), |ctx| {
            ctx.check("query_width", a.cols == dim, || {
                format!("query part is {a}, decoder embedding width is {dim}")
            });
            ctx.check("query_parts", a.shape() == b.shape(), || {
                format!("query parts disagree: {a} vs {b}")
            });
            let stacked = ctx.concat_cols(a, b);
            let x = ctx.unary("dropout", stacked);
            let conv = ctx.conv1d(
                x,
                ShapeTensor::new(channels, 2 * ksize),
                ShapeTensor::new(1, channels),
                2,
                channels,
                ksize,
            );
            let normed = ctx.unary("layer_norm_rows", conv);
            let act = ctx.unary("relu", normed);
            let act = ctx.unary("dropout", act);
            let proj = ctx.matmul(act, ShapeTensor::new(channels * dim, dim));
            let proj = ctx.add_bias(proj, ShapeTensor::new(1, dim));
            let normed2 = ctx.unary("layer_norm_rows", proj);
            let act2 = ctx.unary("relu", normed2);
            let q = ctx.unary("dropout", act2);
            ctx.matmul_nt(q, candidates)
        })
    }

    /// Value-domain replay of the query embedding (the part of
    /// [`ConvTransE::forward`] before candidate scoring), declaring the
    /// conv/projection weights by their store names.
    pub fn audit_query_repr(&self, ctx: &mut AuditCtx, a: AbsId, b: AbsId) -> AbsId {
        ctx.scoped("ConvTransE", Some("Eq. 11/12"), |ctx| {
            let stacked = ctx.concat_cols(a, b);
            let x = ctx.dropout(stacked, f64::from(self.dropout));
            let cw = ctx.param(&self.conv_w, self.channels, 2 * self.ksize);
            let cb = ctx.param(&self.conv_b, 1, self.channels);
            let conv = ctx.conv1d(x, cw, cb, 2, self.channels, self.ksize);
            let normed = ctx.layer_norm_rows(conv);
            let act = ctx.relu(normed);
            let act = ctx.dropout(act, f64::from(self.dropout));
            let fw = ctx.param(&self.fc_w, self.channels * self.dim, self.dim);
            let fb = ctx.param(&self.fc_b, 1, self.dim);
            let proj = ctx.matmul(act, fw);
            let proj = ctx.add_bias(proj, fb);
            let normed2 = ctx.layer_norm_rows(proj);
            let act2 = ctx.relu(normed2);
            ctx.dropout(act2, f64::from(self.dropout))
        })
    }

    /// Value-domain replay of [`ConvTransE::forward`].
    pub fn audit(&self, ctx: &mut AuditCtx, a: AbsId, b: AbsId, candidates: AbsId) -> AbsId {
        let q = self.audit_query_repr(ctx, a, b);
        ctx.scoped("ConvTransE", Some("Eq. 11/12"), |ctx| ctx.matmul_nt(q, candidates))
    }

    /// Value-domain replay of [`ConvTransE::forward`] for the frozen
    /// serving path: the weights enter as constant sources under the
    /// parameter envelope instead of trainable declarations, so an
    /// inference-graph audit can prove the tape holds zero parameters.
    pub fn audit_frozen(&self, ctx: &mut AuditCtx, a: AbsId, b: AbsId, candidates: AbsId) -> AbsId {
        ctx.scoped("ConvTransE", Some("Eq. 11/12"), |ctx| {
            let env = Interval::new(-PARAM_BOUND, PARAM_BOUND);
            let stacked = ctx.concat_cols(a, b);
            let x = ctx.dropout(stacked, f64::from(self.dropout));
            let cw = ctx.source(self.channels, 2 * self.ksize, env);
            let cb = ctx.source(1, self.channels, env);
            let conv = ctx.conv1d(x, cw, cb, 2, self.channels, self.ksize);
            let normed = ctx.layer_norm_rows(conv);
            let act = ctx.relu(normed);
            let act = ctx.dropout(act, f64::from(self.dropout));
            let fw = ctx.source(self.channels * self.dim, self.dim, env);
            let fb = ctx.source(1, self.dim, env);
            let proj = ctx.matmul(act, fw);
            let proj = ctx.add_bias(proj, fb);
            let normed2 = ctx.layer_norm_rows(proj);
            let act2 = ctx.relu(normed2);
            let q = ctx.dropout(act2, f64::from(self.dropout));
            ctx.matmul_nt(q, candidates)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retia_tensor::{optim::Adam, Tensor};
    use std::rc::Rc;

    #[test]
    fn score_shape() {
        let mut store = ParamStore::new(0);
        let dec = ConvTransE::new(&mut store, "dec", 8, 5, 3, 0.0);
        let mut g = Graph::new(false, 0);
        let a = g.constant(Tensor::ones(4, 8));
        let b = g.constant(Tensor::ones(4, 8));
        let cand = g.constant(Tensor::ones(11, 8));
        let scores = dec.forward(&mut g, &store, a, b, cand);
        assert_eq!(g.value(scores).shape(), (4, 11));
        assert!(g.value(scores).all_finite());
    }

    #[test]
    fn learns_to_rank_correct_candidate() {
        // 6 entities, 2 relations; facts (e, r) -> target; the decoder plus
        // embeddings must push the target's score to the top.
        let n = 6usize;
        let d = 8usize;
        let mut store = ParamStore::new(11);
        store.register_xavier("ent", n, d);
        store.register_xavier("rel", 2, d);
        let dec = ConvTransE::new(&mut store, "dec", d, 6, 3, 0.0);
        let mut adam = Adam::new(0.02);
        let queries: Vec<(u32, u32, u32)> =
            vec![(0, 0, 1), (1, 0, 2), (2, 1, 3), (3, 1, 4), (4, 0, 5), (5, 1, 0)];
        let subjects: Rc<Vec<u32>> = Rc::new(queries.iter().map(|q| q.0).collect());
        let rels: Rc<Vec<u32>> = Rc::new(queries.iter().map(|q| q.1).collect());
        let targets: Rc<Vec<u32>> = Rc::new(queries.iter().map(|q| q.2).collect());
        let mut last = f32::MAX;
        for _ in 0..300 {
            let mut g = Graph::new(true, 1);
            let ent = g.param(&store, "ent");
            let rel = g.param(&store, "rel");
            let s_emb = g.gather_rows(ent, subjects.clone());
            let r_emb = g.gather_rows(rel, rels.clone());
            let scores = dec.forward(&mut g, &store, s_emb, r_emb, ent);
            let loss = g.softmax_xent(scores, targets.clone());
            last = g.value(loss).item();
            g.backward(loss, &mut store);
            adam.step(&mut store);
            store.zero_grad();
        }
        assert!(last < 0.2, "final loss {last}");

        // Eval: the argmax must be the target for most queries.
        let mut g = Graph::new(false, 0);
        let ent = g.param(&store, "ent");
        let rel = g.param(&store, "rel");
        let s_emb = g.gather_rows(ent, subjects.clone());
        let r_emb = g.gather_rows(rel, rels);
        let scores = dec.forward(&mut g, &store, s_emb, r_emb, ent);
        let sc = g.value(scores);
        let correct =
            (0..queries.len()).filter(|&i| sc.argmax_row(i) == targets[i] as usize).count();
        assert!(correct >= 5, "only {correct}/6 queries ranked correctly");
    }

    #[test]
    fn eval_mode_is_deterministic() {
        let mut store = ParamStore::new(0);
        let dec = ConvTransE::new(&mut store, "dec", 8, 4, 3, 0.5);
        let run = |seed: u64| {
            let mut g = Graph::new(false, seed);
            let a = g.constant(Tensor::full(2, 8, 0.3));
            let b = g.constant(Tensor::full(2, 8, -0.2));
            let cand = g.constant(Tensor::ones(5, 8));
            let s = dec.forward(&mut g, &store, a, b, cand);
            g.value(s).clone()
        };
        assert_eq!(run(1), run(999), "dropout must be off in eval mode");
    }
}
