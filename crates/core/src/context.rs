//! Precomputed snapshot/hypergraph sequences over a dataset.

use std::collections::HashSet;

use retia_data::TkgDataset;
use retia_graph::{group_by_timestamp, HyperSnapshot, Quad, Snapshot};

/// Which evaluation split to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Split {
    /// Validation timestamps.
    Valid,
    /// Test timestamps.
    Test,
}

/// All snapshots of a dataset (train, valid and test), in timestamp order,
/// with their twin hyperrelation subgraphs precomputed, plus the index ranges
/// of each split.
///
/// Evaluation at timestamp index `i` uses the preceding `k` snapshots as
/// ground-truth history — the standard RE-GCN protocol (historical facts are
/// observed once their timestamp has passed).
pub struct TkgContext {
    /// Every snapshot, ascending by timestamp.
    pub snapshots: Vec<Snapshot>,
    /// Twin hyperrelation subgraphs, parallel with `snapshots`.
    pub hypers: Vec<HyperSnapshot>,
    /// Snapshot indices whose facts belong to the training split.
    pub train_idx: Vec<usize>,
    /// Snapshot indices of the validation split.
    pub valid_idx: Vec<usize>,
    /// Snapshot indices of the test split.
    pub test_idx: Vec<usize>,
    /// Number of entities `N`.
    pub num_entities: usize,
    /// Number of original relations `M`.
    pub num_relations: usize,
}

impl TkgContext {
    /// Builds the context from a dataset (precomputing every hyperrelation
    /// subgraph once; they are reused across epochs).
    pub fn new(ds: &TkgDataset) -> Self {
        let valid_ts: HashSet<u32> = ds.valid.iter().map(|q| q.t).collect();
        let test_ts: HashSet<u32> = ds.test.iter().map(|q| q.t).collect();

        let all: Vec<Quad> = ds.all_quads().copied().collect();
        let groups = group_by_timestamp(&all);
        let mut snapshots = Vec::with_capacity(groups.len());
        let mut hypers = Vec::with_capacity(groups.len());
        let (mut train_idx, mut valid_idx, mut test_idx) = (Vec::new(), Vec::new(), Vec::new());
        for (i, (t, facts)) in groups.into_iter().enumerate() {
            let snap = Snapshot::from_quads(&facts, ds.num_entities, ds.num_relations);
            hypers.push(HyperSnapshot::from_snapshot(&snap));
            snapshots.push(snap);
            if test_ts.contains(&t) {
                test_idx.push(i);
            } else if valid_ts.contains(&t) {
                valid_idx.push(i);
            } else {
                train_idx.push(i);
            }
        }
        TkgContext {
            snapshots,
            hypers,
            train_idx,
            valid_idx,
            test_idx,
            num_entities: ds.num_entities,
            num_relations: ds.num_relations,
        }
    }

    /// The history window of the `k` snapshots strictly before index `i`
    /// (shorter near the beginning of the sequence).
    pub fn history(&self, i: usize, k: usize) -> (&[Snapshot], &[HyperSnapshot]) {
        let start = i.saturating_sub(k);
        (&self.snapshots[start..i], &self.hypers[start..i])
    }

    /// Snapshot indices of a split.
    pub fn split_indices(&self, split: Split) -> &[usize] {
        match split {
            Split::Valid => &self.valid_idx,
            Split::Test => &self.test_idx,
        }
    }

    /// Total facts in a split's snapshots.
    pub fn split_fact_count(&self, split: Split) -> usize {
        self.split_indices(split).iter().map(|&i| self.snapshots[i].facts.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retia_data::SyntheticConfig;

    #[test]
    fn context_covers_all_snapshots_in_order() {
        let ds = SyntheticConfig::tiny(0).generate();
        let ctx = TkgContext::new(&ds);
        assert_eq!(ctx.snapshots.len(), ctx.hypers.len());
        for w in ctx.snapshots.windows(2) {
            assert!(w[0].t < w[1].t);
        }
        let covered = ctx.train_idx.len() + ctx.valid_idx.len() + ctx.test_idx.len();
        assert_eq!(covered, ctx.snapshots.len());
    }

    #[test]
    fn split_indices_are_ordered_train_valid_test() {
        let ds = SyntheticConfig::tiny(0).generate();
        let ctx = TkgContext::new(&ds);
        let max_train = ctx.train_idx.iter().max().unwrap();
        let min_valid = ctx.valid_idx.iter().min().unwrap();
        let max_valid = ctx.valid_idx.iter().max().unwrap();
        let min_test = ctx.test_idx.iter().min().unwrap();
        assert!(max_train < min_valid);
        assert!(max_valid < min_test);
    }

    #[test]
    fn history_window_sizes() {
        let ds = SyntheticConfig::tiny(0).generate();
        let ctx = TkgContext::new(&ds);
        let (h, hh) = ctx.history(0, 3);
        assert!(h.is_empty() && hh.is_empty());
        let (h, _) = ctx.history(2, 3);
        assert_eq!(h.len(), 2);
        let (h, _) = ctx.history(10, 3);
        assert_eq!(h.len(), 3);
        assert!(h[2].t < ctx.snapshots[10].t);
    }

    #[test]
    fn split_fact_counts_match_dataset() {
        let ds = SyntheticConfig::tiny(0).generate();
        let ctx = TkgContext::new(&ds);
        assert_eq!(ctx.split_fact_count(Split::Valid), ds.valid.len());
        assert_eq!(ctx.split_fact_count(Split::Test), ds.test.len());
    }
}
