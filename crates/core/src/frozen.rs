//! Read-only serving façade over a trained [`Retia`].
//!
//! The serving path splits the paper's decode (Eq. 11–14) into two halves
//! with very different costs: the EAM/RAM/TIM recurrence over the history
//! window (expensive, query-independent) and the Conv-TransE decode against
//! the last `k` evolved states (cheap, query-dependent). [`FrozenModel`]
//! runs the recurrence once in a no-tape inference graph and hands back the
//! detached last-`k` embedding matrices as a [`FrozenStates`] value that can
//! be cached per window and decoded against arbitrarily many times — with
//! scores bit-identical to [`Retia::predict_entity`] on the same window,
//! because the decode replays the exact same float ops on the exact same
//! input tensors.

use std::rc::Rc;

use retia_analyze::value::PARAM_BOUND;
use retia_analyze::{AuditCtx, AuditReport};
use retia_graph::{HyperSnapshot, Snapshot};
use retia_tensor::transfer::Interval;
use retia_tensor::{Graph, Tensor};

use crate::config::RetiaConfig;
use crate::model::{last_k, EvolvedState, Retia};

/// Detached last-`k` evolved embeddings for one history window: the
/// query-independent half of the decode, safe to cache and share.
#[derive(Clone, Debug)]
pub struct FrozenStates {
    /// `(E_t, R_t)` pairs for the window's last `k` timestamps, oldest
    /// first. `E_t` is `[N, d]`, `R_t` is `[2M, d]` (inverses included).
    pub states: Vec<(Tensor, Tensor)>,
}

impl FrozenStates {
    /// Approximate resident size in bytes (for cache accounting).
    pub fn num_bytes(&self) -> usize {
        self.states
            .iter()
            .map(|(e, r)| (e.data().len() + r.data().len()) * std::mem::size_of::<f32>())
            .sum()
    }
}

/// An immutable, inference-only view of a trained model. Construction takes
/// ownership of the [`Retia`]; nothing here can mutate parameters.
pub struct FrozenModel {
    model: Retia,
}

impl FrozenModel {
    /// Freezes a trained model for serving.
    pub fn new(model: Retia) -> Self {
        FrozenModel { model }
    }

    /// The configuration the model was trained with.
    pub fn cfg(&self) -> &RetiaConfig {
        &self.model.cfg
    }

    /// Number of entities `N`.
    pub fn num_entities(&self) -> usize {
        self.model.num_entities()
    }

    /// Number of original relations `M` (inverses excluded).
    pub fn num_relations(&self) -> usize {
        self.model.num_relations()
    }

    /// Runs the RAM/EAM/TIM recurrence once over `history` in a no-tape
    /// inference graph and returns the detached last-`k` states.
    ///
    /// Panics if the inference graph recorded any tape op — the no-grad
    /// guarantee the serve engine advertises.
    pub fn evolve_window(&self, history: &[Snapshot], hypers: &[HyperSnapshot]) -> FrozenStates {
        let _t = retia_obs::span!("serve.evolve", window = history.len());
        let mut g = Graph::inference();
        let states = self.model.evolve(&mut g, history, hypers);
        let last = last_k(&states, self.model.cfg.k);
        assert_eq!(g.tape_ops(), 0, "inference evolve must not allocate a tape");
        FrozenStates {
            states: last.iter().map(|st| (g.detach(st.entities), g.detach(st.relations))).collect(),
        }
    }

    /// Entity decode against cached states: summed per-timestamp
    /// probabilities `[Q, N]` for queries `(subjects[i], rels[i], ?)`.
    /// `rels` may contain inverse ids (`r + M`) for subject forecasting.
    ///
    /// Bit-identical to [`Retia::predict_entity`] over the window the states
    /// were evolved from.
    pub fn decode_entity(
        &self,
        states: &FrozenStates,
        subjects: Vec<u32>,
        rels: Vec<u32>,
    ) -> Tensor {
        let (mut g, evolved) = self.replay(states);
        let p = self.model.entity_prob_sum(&mut g, &evolved, Rc::new(subjects), Rc::new(rels));
        assert_eq!(g.tape_ops(), 0, "inference decode must not allocate a tape");
        g.detach(p)
    }

    /// Entity decode with candidate scoring sharded across `shards` threads
    /// by entity range — bit-identical to [`FrozenModel::decode_entity`].
    ///
    /// The decode splits into three phases with different parallelism:
    ///
    /// 1. **Query representations** (engine thread, graph): gather + the
    ///    Conv-TransE head, one detached `[Q, d]` tensor per timestamp.
    /// 2. **Candidate scoring** (scoped shard threads): each shard computes
    ///    `q_t @ E_t[lo..hi]^T` for every timestamp with
    ///    [`Tensor::matmul_nt_range`]. Every logit is the same independent
    ///    sequential dot product the fused path computes, so slicing the
    ///    candidate rows changes no bit of it.
    /// 3. **Normalize + accumulate** (engine thread): shard columns are
    ///    stitched back into full `[Q, N]` logit matrices (a pure copy),
    ///    then softmax and the across-timestamp sum run in the exact
    ///    single-thread order (`softmax_rows`, then `add_assign` oldest
    ///    first — the same association the graph's `add_n` uses). Softmax
    ///    must happen *after* the merge: its row sum is global across all
    ///    `N` candidates, so normalizing per shard would change the result.
    pub fn decode_entity_sharded(
        &self,
        states: &FrozenStates,
        subjects: Vec<u32>,
        rels: Vec<u32>,
        shards: usize,
    ) -> Tensor {
        let n = self.num_entities();
        let shards = shards.clamp(1, n.max(1));
        if shards == 1 {
            return self.decode_entity(states, subjects, rels);
        }
        let _t = retia_obs::span!("serve.decode_sharded", shards = shards);
        let queries = subjects.len();
        let (mut g, evolved) = self.replay(states);
        let reprs =
            self.model.entity_query_reprs(&mut g, &evolved, Rc::new(subjects), Rc::new(rels));
        assert_eq!(g.tape_ops(), 0, "inference decode must not allocate a tape");

        let ranges: Vec<(usize, usize)> = retia_eval::shard_ranges(n, shards);
        // Interval-overlap proof for the column sharding: the shard ranges
        // must partition the candidate columns exactly, or two threads
        // would score (and later stitch) the same logit column.
        let col_plan: Vec<std::ops::Range<usize>> = ranges.iter().map(|&(lo, hi)| lo..hi).collect();
        let plan = retia_tensor::parallel::verify_col_plan(n, &col_plan);
        assert!(plan.is_ok(), "decode shard plan failed the column race prover: {plan:?}");
        // Phase 2: shard threads score candidate ranges. Only the detached
        // tensors are borrowed into the scope, and results come back in
        // shard order via the join handles, so the merge is deterministic.
        // Each shard adopts the request traces active on the engine thread,
        // so its `serve.decode.shard` span lands in every request of the
        // fused batch with per-shard timings.
        let frames = retia_obs::trace::current_frames();
        let per_shard: Vec<Vec<Tensor>> = std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .enumerate()
                .map(|(shard, &(lo, hi))| {
                    let reprs = &reprs;
                    let frozen = &states.states;
                    let frames = frames.clone();
                    scope.spawn(move || {
                        let _adopted = retia_obs::trace::adopt(frames);
                        let _s =
                            retia_obs::span!("serve.decode.shard", shard = shard, lo = lo, hi = hi);
                        reprs
                            .iter()
                            .zip(frozen.iter())
                            .map(|(q, (e_t, _))| q.matmul_nt_range(e_t, lo, hi))
                            .collect::<Vec<Tensor>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("decode shard thread panicked")).collect()
        });

        // Phase 3: stitch columns, normalize globally, accumulate in the
        // single-thread order.
        let mut acc: Option<Tensor> = None;
        for t in 0..reprs.len() {
            let mut logits = Tensor::zeros(queries, n);
            for (shard, &(lo, hi)) in per_shard.iter().zip(ranges.iter()) {
                let part = &shard[t];
                for i in 0..queries {
                    let dst = i * n + lo;
                    logits.data_mut()[dst..dst + (hi - lo)].copy_from_slice(part.row(i));
                }
            }
            let probs = logits.softmax_rows();
            match acc.as_mut() {
                None => acc = Some(probs),
                Some(a) => a.add_assign(&probs),
            }
        }
        acc.expect("frozen states hold at least one timestamp")
    }

    /// Relation decode against cached states: summed probabilities `[Q, M]`
    /// for queries `(subjects[i], ?, objects[i])`.
    pub fn decode_relation(
        &self,
        states: &FrozenStates,
        subjects: Vec<u32>,
        objects: Vec<u32>,
    ) -> Tensor {
        let (mut g, evolved) = self.replay(states);
        let p = self.model.relation_prob_sum(&mut g, &evolved, Rc::new(subjects), Rc::new(objects));
        assert_eq!(g.tape_ops(), 0, "inference decode must not allocate a tape");
        g.detach(p)
    }

    /// Builds a fresh trainable [`Retia`] carrying this model's parameter
    /// values (Adam moments start at zero). The continual trainer seeds
    /// itself from the served model this way, and the drift monitor uses it
    /// to rebuild a last-good model for rollback — the frozen model itself
    /// stays immutable throughout.
    pub fn clone_model(&self) -> Retia {
        let mut model =
            Retia::with_shape(&self.model.cfg, self.num_entities(), self.num_relations());
        model.store_mut().copy_values_from(self.model.store());
        model
    }

    /// Joint forecasting loss of `target` given `history`, computed in a
    /// no-tape inference graph (no gradients, no parameter mutation). This
    /// is the drift monitor's signal: the same Eq. 13/14 objective training
    /// minimizes, evaluated by the served (or candidate) weights on the
    /// facts that just arrived.
    pub fn window_loss(
        &self,
        history: &[Snapshot],
        hypers: &[HyperSnapshot],
        target: &Snapshot,
    ) -> f64 {
        let mut g = Graph::inference();
        let states = self.model.evolve(&mut g, history, hypers);
        let decode_states = last_k(&states, self.model.cfg.k).to_vec();
        let (loss, _, _) = self.model.loss(&mut g, &decode_states, target);
        assert_eq!(g.tape_ops(), 0, "inference loss must not allocate a tape");
        g.value(loss).item() as f64
    }

    /// Value audit of the serving decode: replays the cached-state decode
    /// (Eq. 11–14 without the loss) over the interval domain, with the
    /// frozen window states entering as *declared* detach boundaries and
    /// the decoder weights as constant sources — then proves the abstract
    /// tape declares zero trainable parameters, which is exactly the
    /// no-grad guarantee the `tape_ops() == 0` asserts enforce at runtime.
    /// The sharded decode's column split is declared as a reorder of the
    /// `matmul_nt` output lanes, which the sensitivity map must rule legal.
    ///
    /// The serve boot check runs this before accepting traffic.
    pub fn audit(&self) -> AuditReport {
        let mut ctx = AuditCtx::new();
        let cfg = self.cfg();
        let n = self.num_entities();
        let m = self.num_relations();
        let m2 = 2 * m;
        let d = cfg.dim;
        let k = cfg.k.max(1);
        let env = Interval::new(-PARAM_BOUND, PARAM_BOUND);
        let queries = 8; // abstract query count; intervals are row-uniform

        ctx.scoped("serve", None, |ctx| {
            // The entity-sharded decode splits candidate columns across
            // threads: a reorder of the scoring matmul's output lanes.
            ctx.reorder("matmul_nt", "output-lanes");

            let states: Vec<_> = (0..k)
                .map(|_| {
                    let e_raw = ctx.source(n, d, env);
                    let e = ctx.detach(
                        e_raw,
                        "frozen window states: evolve_window detaches the last-k \
                         entity embeddings",
                    );
                    let r_raw = ctx.source(m2, d, env);
                    let r = ctx.detach(
                        r_raw,
                        "frozen window states: evolve_window detaches the last-k \
                         relation embeddings",
                    );
                    (e, r)
                })
                .collect();

            ctx.scoped("decode.entity", Some("Eq. 11/13"), |ctx| {
                let mut probs = Vec::with_capacity(states.len());
                for &(e_t, r_t) in &states {
                    let s_emb = ctx.gather_rows(e_t, queries);
                    let r_emb = ctx.gather_rows(r_t, queries);
                    let logits = self.model.dec_entity.audit_frozen(ctx, s_emb, r_emb, e_t);
                    probs.push(ctx.softmax_rows(logits));
                }
                ctx.add_n(&probs)
            });

            ctx.scoped("decode.relation", Some("Eq. 12/14"), |ctx| {
                let mut probs = Vec::with_capacity(states.len());
                for &(e_t, r_t) in &states {
                    let s_emb = ctx.gather_rows(e_t, queries);
                    let o_emb = ctx.gather_rows(e_t, queries);
                    let cand = ctx.gather_rows(r_t, m);
                    let logits = self.model.dec_relation.audit_frozen(ctx, s_emb, o_emb, cand);
                    probs.push(ctx.softmax_rows(logits));
                }
                ctx.add_n(&probs)
            });
        });

        ctx.check_no_trainable_params();
        ctx.finish()
    }

    /// Re-inserts cached embedding matrices as constants of a fresh
    /// inference graph.
    fn replay(&self, states: &FrozenStates) -> (Graph, Vec<EvolvedState>) {
        assert!(!states.states.is_empty(), "frozen states must hold at least one timestamp");
        let mut g = Graph::inference();
        let evolved = states
            .states
            .iter()
            .map(|(e, r)| EvolvedState {
                entities: g.constant(e.clone()),
                relations: g.constant(r.clone()),
            })
            .collect();
        (g, evolved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{entity_queries, relation_queries, Retia, RetiaConfig, TkgContext};
    use retia_data::SyntheticConfig;

    fn setup() -> (FrozenModel, TkgContext) {
        let ds = SyntheticConfig::tiny(3).generate();
        let ctx = TkgContext::new(&ds);
        let cfg = RetiaConfig { dim: 8, channels: 4, k: 2, ..Default::default() };
        let model = Retia::new(&cfg, &ds);
        (FrozenModel::new(model), ctx)
    }

    #[test]
    fn cached_decode_is_bitwise_identical_to_direct_predict() {
        let (fm, ctx) = setup();
        let idx = ctx.test_idx[0];
        let (history, hypers) = ctx.history(idx, fm.cfg().k);
        let target = &ctx.snapshots[idx];

        let (subjects, rels, _) = entity_queries(target, ctx.num_relations);
        let direct = fm.model.predict_entity(history, hypers, subjects.clone(), rels.clone());
        let frozen = fm.evolve_window(history, hypers);
        let cached = fm.decode_entity(&frozen, subjects, rels);
        assert_eq!(direct.data(), cached.data(), "entity scores must be bit-identical");

        let (rs, ro, _) = relation_queries(target);
        let direct = fm.model.predict_relation(history, hypers, rs.clone(), ro.clone());
        let cached = fm.decode_relation(&frozen, rs, ro);
        assert_eq!(direct.data(), cached.data(), "relation scores must be bit-identical");
    }

    #[test]
    fn sharded_decode_is_bitwise_identical_to_fused_decode() {
        let (fm, ctx) = setup();
        let idx = ctx.test_idx[0];
        let (history, hypers) = ctx.history(idx, fm.cfg().k);
        let target = &ctx.snapshots[idx];
        let (subjects, rels, _) = entity_queries(target, ctx.num_relations);

        let frozen = fm.evolve_window(history, hypers);
        let fused = fm.decode_entity(&frozen, subjects.clone(), rels.clone());
        // ≥2 shard counts, including one that doesn't divide N and one per
        // entity, per the sharding acceptance criterion.
        for shards in [2usize, 3, fm.num_entities()] {
            let sharded = fm.decode_entity_sharded(&frozen, subjects.clone(), rels.clone(), shards);
            assert_eq!(fused.shape(), sharded.shape());
            for (a, b) in fused.data().iter().zip(sharded.data().iter()) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "sharded decode diverged from fused at {shards} shards"
                );
            }
        }
        // shards=1 must route through the fused path unchanged.
        let one = fm.decode_entity_sharded(&frozen, subjects, rels, 1);
        assert_eq!(one.data(), fused.data());
    }

    #[test]
    fn serving_audit_is_clean_with_zero_params_and_declared_detaches() {
        let (fm, _) = setup();
        let report = fm.audit();
        assert!(report.is_clean(), "serving audit found:\n{report}");
        assert_eq!(report.params_declared, 0, "inference replay declared trainable params");
        assert!(!report.detaches.is_empty(), "frozen-state detaches were not declared");
        assert!(report.ops_checked > 10);
    }

    #[test]
    fn clone_model_carries_exact_parameter_values() {
        let (fm, ctx) = setup();
        let clone = fm.clone_model();
        for ((name_a, a), (name_b, b)) in fm.model.store().iter().zip(clone.store().iter()) {
            assert_eq!(name_a, name_b);
            assert_eq!(a.data(), b.data(), "param `{name_a}` diverged in the clone");
        }
        // The clone decodes bit-identically to the original.
        let idx = ctx.test_idx[0];
        let (history, hypers) = ctx.history(idx, fm.cfg().k);
        let target = &ctx.snapshots[idx];
        let (subjects, rels, _) = entity_queries(target, ctx.num_relations);
        let a = fm.model.predict_entity(history, hypers, subjects.clone(), rels.clone());
        let b = clone.predict_entity(history, hypers, subjects, rels);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn window_loss_is_finite_deterministic_and_pure() {
        let (fm, ctx) = setup();
        let idx = ctx.test_idx[0];
        let (history, hypers) = ctx.history(idx, fm.cfg().k);
        let target = &ctx.snapshots[idx];
        let before: Vec<f32> = fm.model.store().value("ent0").data().to_vec();
        let l1 = fm.window_loss(history, hypers, target);
        let l2 = fm.window_loss(history, hypers, target);
        assert!(l1.is_finite() && l1 > 0.0, "joint loss should be a positive NLL: {l1}");
        assert_eq!(l1.to_bits(), l2.to_bits(), "window loss must be deterministic");
        assert_eq!(
            before,
            fm.model.store().value("ent0").data(),
            "window loss must not mutate params"
        );
        // Empty history decodes from the initial state and still yields a loss.
        let l0 = fm.window_loss(&[], &[], target);
        assert!(l0.is_finite());
    }

    #[test]
    fn frozen_states_hold_last_k_windows() {
        let (fm, ctx) = setup();
        let idx = *ctx.test_idx.last().expect("test split");
        let (history, hypers) = ctx.history(idx, 5);
        let frozen = fm.evolve_window(history, hypers);
        assert_eq!(frozen.states.len(), fm.cfg().k.min(history.len().max(1)));
        assert!(frozen.num_bytes() > 0);
        for (e, r) in &frozen.states {
            assert_eq!(e.shape(), (fm.num_entities(), fm.cfg().dim));
            assert_eq!(r.shape(), (2 * fm.num_relations(), fm.cfg().dim));
        }
    }
}
