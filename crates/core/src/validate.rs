//! Model-level dry run: an abstract shape interpretation of one full
//! training step (evolve → decode → loss → backward) over a synthetic
//! snapshot window, reporting every shape/broadcast/index-space mismatch
//! with the module and paper-equation name it occurred in.
//!
//! The replay is built from the per-layer `validate` twins in `retia_nn`
//! (each a shape-only mirror of its `forward`) composed exactly as
//! [`Retia::evolve`]/[`Retia::loss`] compose the real layers. Because the
//! interpreter works on [`ShapeTensor`]s, a dry run of even paper-scale
//! configurations finishes in well under a second and touches no
//! floating-point data.
//!
//! `retia check` in the CLI surfaces this, and the trainer entry points run
//! it before the first gradient step so a mis-wired configuration fails in
//! milliseconds instead of mid-epoch.

use retia_analyze::{ShapeCtx, ShapeReport, ShapeTensor};
use retia_graph::{HyperSnapshot, Quad, Snapshot, NUM_HYPERRELS_WITH_INV};
use retia_nn::{validate_mean_pool_segments, ConvTransE, GruCell, LstmCell};

use crate::config::{HyperrelMode, RelationMode, RetiaConfig};
use crate::model::{entity_queries, relation_queries, Retia};

/// The inter-module tensor widths the dry run wires the layers together
/// with. Derived from the configuration by [`ModelWiring::of`]; tests
/// corrupt individual fields to prove the interpreter catches mis-wirings.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ModelWiring {
    /// Embedding width `d`.
    pub d: usize,
    /// TIM LSTM input width (Eq. 8 concatenates `[R_0 ; MP(...)]` → `2d`).
    pub tim_input: usize,
    /// Hyper LSTM input width (Eq. 10 concatenates `[HR_0 ; HMP(...)]` → `2d`).
    pub hyper_input: usize,
    /// Residual GRU input width (Eq. 3/6 feed the aggregated state → `d`).
    pub gru_input: usize,
    /// Decoder embedding width (Eq. 11/12 → `d`).
    pub dec_dim: usize,
}

impl ModelWiring {
    /// The correct wiring for `cfg`.
    pub(crate) fn of(cfg: &RetiaConfig) -> Self {
        let d = cfg.dim;
        ModelWiring { d, tim_input: 2 * d, hyper_input: 2 * d, gru_input: d, dec_dim: d }
    }
}

/// A two-snapshot history plus a target snapshot exercising the extreme
/// index spaces: entity ids `0` and `N-1`, relation ids `0` and `M-1`, so
/// any gather/scatter whose index space is off-by-one or mis-sized is
/// caught without running on real data.
pub(crate) fn synthetic_window(
    num_entities: usize,
    num_relations: usize,
) -> (Vec<Snapshot>, Vec<HyperSnapshot>, Snapshot) {
    let n = num_entities.max(2) as u32;
    let m = num_relations.max(1) as u32;
    let facts_at = |t: u32| {
        vec![
            Quad::new(0, 0, n - 1, t),
            Quad::new(n - 1, m - 1, 0, t),
            Quad::new(0, m - 1, 1 % n, t),
            Quad::new(1 % n, 0, n - 1, t),
        ]
    };
    let snaps: Vec<Snapshot> =
        (0..2).map(|t| Snapshot::from_quads(&facts_at(t), num_entities, num_relations)).collect();
    let hypers = snaps.iter().map(HyperSnapshot::from_snapshot).collect();
    let target = Snapshot::from_quads(&facts_at(2), num_entities, num_relations);
    (snaps, hypers, target)
}

impl Retia {
    /// Dry-runs one full training step (evolve over a synthetic snapshot
    /// window, entity + relation decoding, the joint loss, backward) on
    /// shapes alone, returning every mismatch found. A clean report
    /// ([`ShapeReport::is_clean`]) means the configuration's tensors wire
    /// together; it costs no floating-point work and finishes in
    /// milliseconds at any scale.
    pub fn validate(&self) -> ShapeReport {
        self.dry_run(&ModelWiring::of(&self.cfg))
    }

    pub(crate) fn dry_run(&self, w: &ModelWiring) -> ShapeReport {
        let mut ctx = ShapeCtx::new();
        let n = self.num_entities();
        let m = self.num_relations();
        let m2 = 2 * m;
        let d = w.d;
        let (snaps, hypers, target) = synthetic_window(n, m);

        let e0 = ShapeTensor::new(n, d);
        let r0 = ShapeTensor::new(m2, d);
        let hr0 = ShapeTensor::new(NUM_HYPERRELS_WITH_INV, d);

        // ---- evolve: the RAM/EAM/TIM recurrence (Eq. 1-10) ----
        let mut e_prev = e0;
        let mut r_prev = r0;
        let mut hr_prev = hr0;
        let mut c_prev: Option<ShapeTensor> = None;
        let mut hc_prev: Option<ShapeTensor> = None;
        let mut states: Vec<(ShapeTensor, ShapeTensor)> = Vec::with_capacity(snaps.len());

        for (snap, hyper) in snaps.iter().zip(hypers.iter()) {
            let r_t = match self.cfg.relation_mode {
                RelationMode::None | RelationMode::Static => r0,
                RelationMode::Mp => ctx.scoped("tim", Some("Eq. 7"), |ctx| {
                    let pooled = validate_mean_pool_segments(ctx, e_prev, &snap.rel_entities);
                    let fb = ctx.row_scale(r0, snap.rel_entities.len());
                    ctx.add(pooled, fb)
                }),
                RelationMode::MpLstm | RelationMode::MpLstmAgg => {
                    let r_lstm = if self.cfg.use_tim {
                        ctx.scoped("tim.lstm", Some("Eq. 7-8"), |ctx| {
                            let pooled =
                                validate_mean_pool_segments(ctx, e_prev, &snap.rel_entities);
                            let r_mean = ctx.concat_cols(r0, pooled);
                            let c0 = c_prev.unwrap_or(ShapeTensor::new(m2, d));
                            let (h, c) =
                                LstmCell::validate_dims(ctx, w.tim_input, d, r_mean, r_prev, c0);
                            c_prev = Some(c);
                            h
                        })
                    } else {
                        r_prev
                    };

                    if self.cfg.relation_mode == RelationMode::MpLstmAgg {
                        let hr_t = match self.cfg.hyperrel_mode {
                            HyperrelMode::Init => hr0,
                            HyperrelMode::Hmp => ctx.scoped("tim.hyper", Some("Eq. 9"), |ctx| {
                                let pooled =
                                    validate_mean_pool_segments(ctx, r_lstm, &hyper.hrel_relations);
                                let fb = ctx.row_scale(hr0, hyper.hrel_relations.len());
                                ctx.add(pooled, fb)
                            }),
                            HyperrelMode::HmpHlstm => {
                                ctx.scoped("tim.hyper_lstm", Some("Eq. 9-10"), |ctx| {
                                    let pooled = validate_mean_pool_segments(
                                        ctx,
                                        r_lstm,
                                        &hyper.hrel_relations,
                                    );
                                    let hr_mean = ctx.concat_cols(hr0, pooled);
                                    let hc0 = hc_prev
                                        .unwrap_or(ShapeTensor::new(NUM_HYPERRELS_WITH_INV, d));
                                    let (h, c) = LstmCell::validate_dims(
                                        ctx,
                                        w.hyper_input,
                                        d,
                                        hr_mean,
                                        hr_prev,
                                        hc0,
                                    );
                                    hc_prev = Some(c);
                                    hr_prev = h;
                                    h
                                })
                            }
                        };
                        let r_agg = ctx.scoped("ram", Some("Eq. 1-2"), |ctx| {
                            self.ram_rgcn.validate(ctx, r_lstm, hr_t, hyper)
                        });
                        ctx.scoped("ram.gru", Some("Eq. 3"), |ctx| {
                            GruCell::validate_dims(ctx, w.gru_input, d, r_agg, r_lstm)
                        })
                    } else {
                        r_lstm
                    }
                }
            };

            let e_t = if self.cfg.use_eam {
                ctx.scoped("eam", Some("Eq. 4-6"), |ctx| {
                    let e_agg = self.eam_rgcn.validate(ctx, e_prev, r_t, snap);
                    let e = GruCell::validate_dims(ctx, w.gru_input, d, e_agg, e_prev);
                    if self.cfg.normalize_entities {
                        ctx.unary("normalize_rows", e)
                    } else {
                        e
                    }
                })
            } else {
                e_prev
            };

            states.push((e_t, r_t));
            e_prev = e_t;
            r_prev = r_t;
        }

        // ---- decode + loss (Eq. 11-14) ----
        let (subjects, rels, e_targets) = entity_queries(&target, m);
        let pe = ctx.scoped("decode.entity", Some("Eq. 11/13"), |ctx| {
            let mut probs = Vec::with_capacity(states.len());
            for &(e_t, r_t) in &states {
                let s_emb = ctx.gather_rows(e_t, &subjects);
                let r_emb = ctx.gather_rows(r_t, &rels);
                let logits = ConvTransE::validate_dims(
                    ctx,
                    w.dec_dim,
                    self.cfg.channels,
                    self.cfg.ksize,
                    s_emb,
                    r_emb,
                    e_t,
                );
                probs.push(ctx.unary("softmax_rows", logits));
            }
            ctx.add_n(&probs)
        });

        let (rs, ro, r_targets) = relation_queries(&target);
        let orig: Vec<u32> = (0..m as u32).collect();
        let pr = ctx.scoped("decode.relation", Some("Eq. 12/14"), |ctx| {
            let mut probs = Vec::with_capacity(states.len());
            for &(e_t, r_t) in &states {
                let s_emb = ctx.gather_rows(e_t, &rs);
                let o_emb = ctx.gather_rows(e_t, &ro);
                let cand = ctx.gather_rows(r_t, &orig);
                let logits = ConvTransE::validate_dims(
                    ctx,
                    w.dec_dim,
                    self.cfg.channels,
                    self.cfg.ksize,
                    s_emb,
                    o_emb,
                    cand,
                );
                probs.push(ctx.unary("softmax_rows", logits));
            }
            ctx.add_n(&probs)
        });

        let loss = ctx.scoped("loss", Some("Eq. 13-14"), |ctx| {
            let picked_e = ctx.gather_cols(pe, &e_targets);
            let ln_e = ctx.unary("ln", picked_e);
            let le = ctx.mean_all(ln_e);
            let picked_r = ctx.gather_cols(pr, &r_targets);
            let ln_r = ctx.unary("ln", picked_r);
            let lr = ctx.mean_all(ln_r);
            let mut loss = ctx.add(le, lr);
            if self.cfg.static_weight > 0.0 && self.cfg.use_eam {
                let e0n = ctx.unary("normalize_rows", e0);
                let mut terms = Vec::with_capacity(states.len());
                for &(e_t, _) in &states {
                    let en = ctx.unary("normalize_rows", e_t);
                    let prod = ctx.mul(en, e0n);
                    let cos = ctx.sum_rows(prod);
                    let pen = ctx.unary("relu", cos);
                    terms.push(ctx.mean_all(pen));
                }
                let stat = ctx.add_n(&terms);
                loss = ctx.add(loss, stat);
            }
            loss
        });
        ctx.backward(loss);

        ctx.finish()
    }
}

/// Builds a model for the given configuration and shape and dry-runs it —
/// the implementation behind `retia check`. Returns the resulting
/// [`ShapeReport`] (clean or listing every mismatch).
pub fn validate_config(
    cfg: &RetiaConfig,
    num_entities: usize,
    num_relations: usize,
) -> ShapeReport {
    let model = Retia::with_shape(cfg, num_entities, num_relations);
    model.validate()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> RetiaConfig {
        RetiaConfig { dim: 8, channels: 4, k: 2, ..Default::default() }
    }

    #[test]
    fn default_wiring_is_clean() {
        let report = validate_config(&tiny_cfg(), 12, 3);
        assert!(report.is_clean(), "unexpected issues:\n{report}");
        assert!(report.ops_checked > 50, "dry run checked only {} ops", report.ops_checked);
    }

    #[test]
    fn every_ablation_mode_is_clean() {
        for rm in [
            RelationMode::None,
            RelationMode::Static,
            RelationMode::Mp,
            RelationMode::MpLstm,
            RelationMode::MpLstmAgg,
        ] {
            for hm in [HyperrelMode::Init, HyperrelMode::Hmp, HyperrelMode::HmpHlstm] {
                for (tim, eam) in [(true, true), (false, true), (true, false)] {
                    let cfg = RetiaConfig {
                        relation_mode: rm,
                        hyperrel_mode: hm,
                        use_tim: tim,
                        use_eam: eam,
                        static_weight: 1.0,
                        ..tiny_cfg()
                    };
                    let report = validate_config(&cfg, 9, 2);
                    assert!(
                        report.is_clean(),
                        "issues for {rm:?}/{hm:?}/tim={tim}/eam={eam}:\n{report}"
                    );
                }
            }
        }
    }

    #[test]
    fn injected_tim_wiring_bug_is_caught_and_named() {
        // Sever the Eq. 8 concatenation: pretend the TIM LSTM expects a
        // plain d-wide input. The dry run must flag it inside the TIM LSTM,
        // not somewhere downstream, and keep replaying to the end.
        let cfg = tiny_cfg();
        let model = Retia::with_shape(&cfg, 12, 3);
        let mut w = ModelWiring::of(&cfg);
        w.tim_input = cfg.dim;
        let report = model.dry_run(&w);
        assert!(!report.is_clean(), "corrupted wiring passed validation");
        assert!(
            report.issues.iter().any(|i| i.path.contains("tim.lstm")),
            "no issue names the TIM LSTM:\n{report}"
        );
    }

    #[test]
    fn injected_decoder_wiring_bug_is_caught() {
        let cfg = tiny_cfg();
        let model = Retia::with_shape(&cfg, 12, 3);
        let mut w = ModelWiring::of(&cfg);
        w.dec_dim = cfg.dim + 1;
        let report = model.dry_run(&w);
        assert!(!report.is_clean());
        assert!(
            report.issues.iter().any(|i| i.path.contains("decode")),
            "no issue names a decoder:\n{report}"
        );
    }

    #[test]
    fn dry_run_scales_to_paper_dims_instantly() {
        // Paper-scale ICEWS18: ~23k entities, 256 relations, d=200. The
        // interpreter must stay well under the CLI's 1-second budget.
        let start = std::time::Instant::now();
        let report = validate_config(&RetiaConfig::paper_scale(), 23_033, 256);
        assert!(report.is_clean(), "{report}");
        assert!(
            start.elapsed() < std::time::Duration::from_secs(1),
            "dry run took {:?}",
            start.elapsed()
        );
    }
}
