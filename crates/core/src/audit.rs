//! Model-level value audit: an abstract interpretation of one full training
//! step (evolve → decode → loss → backward) over the interval + finiteness
//! domain, plus gradient-flow reachability from the loss and reduction-order
//! declarations. The complement of [`Retia::validate`]: where the shape dry
//! run proves the tensors *wire together*, the audit proves the wired model
//! cannot produce NaN/inf under the [`retia_analyze::value::PARAM_BOUND`]
//! parameter envelope and that every trainable parameter either receives
//! gradient or is declared frozen (with the ablation flag that freezes it).
//!
//! The replay is built from the per-layer `audit` twins in `retia_nn`
//! composed exactly as [`Retia::evolve`]/[`Retia::loss`] compose the real
//! layers, over the same synthetic window the shape dry run uses. `retia
//! audit` surfaces it; the trainer pre-flight and the serve boot check run
//! it before any real work.

use retia_analyze::value::PARAM_BOUND;
use retia_analyze::{AuditCtx, AuditIssue, AuditKind, AuditReport, FrozenParam};
use retia_graph::{HyperSnapshot, NUM_HYPERRELS_WITH_INV};
use retia_nn::audit_mean_pool_segments;
use retia_tensor::transfer::Interval;

use crate::config::{HyperrelMode, RelationMode, RetiaConfig};
use crate::model::{entity_queries, relation_queries, Retia};
use crate::validate::synthetic_window;

/// Seeded-bug injections for the audit replay. All `false` in production;
/// tests flip one at a time to prove the audit catches each class with the
/// right module + equation attribution.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct AuditOptions {
    /// (a) Sever the TIM LSTM output from the loss *without* declaring the
    /// detach: its gate weights must be reported unreached.
    pub detach_tim_output: bool,
    /// (b) Apply an unguarded `exp` to the decode logits: the overflow rule
    /// must flag it inside the entity decoder scope.
    pub exp_logits: bool,
    /// (c) Declare a reorder of the softmax row-sum accumulation: the
    /// sensitivity map must veto it.
    pub reorder_softmax_sum: bool,
}

impl Retia {
    /// Audits one full training step on abstract values alone: finiteness
    /// under the parameter envelope, gradient-flow reachability reconciled
    /// against the configuration's frozen set, and reduction-order
    /// declarations. A clean report means no kernel in the step can
    /// introduce NaN/inf and every parameter's gradient disposition matches
    /// the configuration. Costs no floating-point tensor work.
    pub fn audit(&self) -> AuditReport {
        self.audit_run(&AuditOptions::default())
    }

    pub(crate) fn audit_run(&self, opts: &AuditOptions) -> AuditReport {
        let mut ctx = AuditCtx::new();
        let n = self.num_entities();
        let m = self.num_relations();
        let m2 = 2 * m;
        let d = self.cfg.dim;
        let (snaps, hypers, target) = synthetic_window(n, m);
        let param_iv = Interval::new(-PARAM_BOUND, PARAM_BOUND);

        // ---- initial embeddings (ablated ones enter as constants, exactly
        // as `Retia::evolve` inserts them) ----
        let ent0_raw =
            if self.cfg.use_eam { ctx.param("ent0", n, d) } else { ctx.source(n, d, param_iv) };
        let e0 = if self.cfg.normalize_entities { ctx.normalize_rows(ent0_raw) } else { ent0_raw };
        let r0 = match self.cfg.relation_mode {
            RelationMode::None => ctx.source(m2, d, param_iv),
            _ => ctx.param("rel0", m2, d),
        };
        let hr0 = ctx.param("hyper0", NUM_HYPERRELS_WITH_INV, d);

        // ---- evolve: the RAM/EAM/TIM recurrence (Eq. 1-10) ----
        let mut e_prev = e0;
        let mut r_prev = r0;
        let mut hr_prev = hr0;
        let mut c_prev = None;
        let mut hc_prev = None;
        let mut states = Vec::with_capacity(snaps.len());

        for (snap, hyper) in snaps.iter().zip(hypers.iter()) {
            let r_t = match self.cfg.relation_mode {
                RelationMode::None | RelationMode::Static => r0,
                RelationMode::Mp => ctx.scoped("tim", Some("Eq. 7"), |ctx| {
                    let pooled = audit_mean_pool_segments(ctx, e_prev, &snap.rel_entities);
                    let fb = ctx.row_scale(r0, Interval::new(0.0, 1.0));
                    ctx.add(pooled, fb)
                }),
                RelationMode::MpLstm | RelationMode::MpLstmAgg => {
                    let r_lstm = if self.cfg.use_tim {
                        ctx.scoped("tim.lstm", Some("Eq. 7-8"), |ctx| {
                            let pooled = audit_mean_pool_segments(ctx, e_prev, &snap.rel_entities);
                            let r_mean = ctx.concat_cols(r0, pooled);
                            let c0 =
                                c_prev.unwrap_or_else(|| ctx.source(m2, d, Interval::point(0.0)));
                            let (h, c) = self.tim_lstm.audit(ctx, r_mean, r_prev, c0);
                            c_prev = Some(c);
                            if opts.detach_tim_output {
                                // Seeded bug (a): an *undeclared* detach —
                                // the value flows on but the backward edge
                                // is gone.
                                let (rows, cols) = ctx.shape(h);
                                let iv = ctx.interval(h);
                                ctx.source(rows, cols, iv)
                            } else {
                                h
                            }
                        })
                    } else {
                        r_prev
                    };

                    if self.cfg.relation_mode == RelationMode::MpLstmAgg {
                        let hr_t = match self.cfg.hyperrel_mode {
                            HyperrelMode::Init => hr0,
                            HyperrelMode::Hmp => ctx.scoped("tim.hyper", Some("Eq. 9"), |ctx| {
                                let pooled =
                                    audit_mean_pool_segments(ctx, r_lstm, &hyper.hrel_relations);
                                let fb = ctx.row_scale(hr0, Interval::new(0.0, 1.0));
                                ctx.add(pooled, fb)
                            }),
                            HyperrelMode::HmpHlstm => {
                                ctx.scoped("tim.hyper_lstm", Some("Eq. 9-10"), |ctx| {
                                    let pooled = audit_mean_pool_segments(
                                        ctx,
                                        r_lstm,
                                        &hyper.hrel_relations,
                                    );
                                    let hr_mean = ctx.concat_cols(hr0, pooled);
                                    let hc0 = hc_prev.unwrap_or_else(|| {
                                        ctx.source(NUM_HYPERRELS_WITH_INV, d, Interval::point(0.0))
                                    });
                                    let (h, c) = self.hyper_lstm.audit(ctx, hr_mean, hr_prev, hc0);
                                    hc_prev = Some(c);
                                    hr_prev = h;
                                    h
                                })
                            }
                        };
                        let r_agg = ctx.scoped("ram", Some("Eq. 1-2"), |ctx| {
                            self.ram_rgcn.audit(ctx, r_lstm, hr_t, hyper)
                        });
                        ctx.scoped("ram.gru", Some("Eq. 3"), |ctx| {
                            self.rel_gru.audit(ctx, r_agg, r_lstm)
                        })
                    } else {
                        r_lstm
                    }
                }
            };

            let e_t = if self.cfg.use_eam {
                ctx.scoped("eam", Some("Eq. 4-6"), |ctx| {
                    let rel_for_eam =
                        if self.cfg.use_tim { r_t } else { ctx.param("eam_rel0", m2, d) };
                    let e_agg = self.eam_rgcn.audit(ctx, e_prev, rel_for_eam, snap);
                    let e = self.ent_gru.audit(ctx, e_agg, e_prev);
                    if self.cfg.normalize_entities {
                        ctx.normalize_rows(e)
                    } else {
                        e
                    }
                })
            } else {
                e_prev
            };

            states.push((e_t, r_t));
            e_prev = e_t;
            r_prev = r_t;
        }

        // ---- decode + loss (Eq. 11-14) ----
        let (subjects, _rels, _e_targets) = entity_queries(&target, m);
        let pe = ctx.scoped("decode.entity", Some("Eq. 11/13"), |ctx| {
            if opts.reorder_softmax_sum {
                // Seeded bug (c): a shard plan over the softmax row-sum
                // accumulation — order-sensitive, must be vetoed.
                ctx.reorder("softmax_rows", "row-sum");
            }
            let mut probs = Vec::with_capacity(states.len());
            for &(e_t, r_t) in &states {
                let s_emb = ctx.gather_rows(e_t, subjects.len());
                let r_emb = ctx.gather_rows(r_t, subjects.len());
                let mut logits = self.dec_entity.audit(ctx, s_emb, r_emb, e_t);
                if opts.exp_logits {
                    // Seeded bug (b): an unguarded exponential over the
                    // unbounded logits.
                    logits = ctx.exp(logits);
                }
                probs.push(ctx.softmax_rows(logits));
            }
            ctx.add_n(&probs)
        });

        let (rs, _ro, _r_targets) = relation_queries(&target);
        let pr = ctx.scoped("decode.relation", Some("Eq. 12/14"), |ctx| {
            let mut probs = Vec::with_capacity(states.len());
            for &(e_t, r_t) in &states {
                let s_emb = ctx.gather_rows(e_t, rs.len());
                let o_emb = ctx.gather_rows(e_t, rs.len());
                let cand = ctx.gather_rows(r_t, m);
                let logits = self.dec_relation.audit(ctx, s_emb, o_emb, cand);
                probs.push(ctx.softmax_rows(logits));
            }
            ctx.add_n(&probs)
        });

        let loss = ctx.scoped("loss", Some("Eq. 13-14"), |ctx| {
            let picked_e = ctx.gather_cols(pe);
            let ln_e = ctx.ln(picked_e, 1e-9);
            let mean_e = ctx.mean_all(ln_e);
            let le = ctx.scale(mean_e, -1.0);
            let picked_r = ctx.gather_cols(pr);
            let ln_r = ctx.ln(picked_r, 1e-9);
            let mean_r = ctx.mean_all(ln_r);
            let lr = ctx.scale(mean_r, -1.0);
            let we = ctx.scale(le, f64::from(self.cfg.lambda));
            let wr = ctx.scale(lr, f64::from(1.0 - self.cfg.lambda));
            let mut loss = ctx.add(we, wr);
            if self.cfg.static_weight > 0.0 && self.cfg.use_eam {
                let ent0 = ctx.param("ent0", n, d);
                let e0n = ctx.normalize_rows(ent0);
                let mut terms = Vec::with_capacity(states.len());
                for (j, &(e_t, _)) in states.iter().enumerate() {
                    let en =
                        if self.cfg.normalize_entities { e_t } else { ctx.normalize_rows(e_t) };
                    let prod = ctx.mul(en, e0n);
                    let cos = ctx.sum_rows(prod);
                    let angle = (f64::from(self.cfg.static_angle_deg) * (j + 1) as f64).min(90.0);
                    let thr = angle.to_radians().cos();
                    let neg = ctx.scale(cos, -1.0);
                    let gap = ctx.add_scalar(neg, thr);
                    let pen = ctx.relu(gap);
                    terms.push(ctx.mean_all(pen));
                }
                let total = ctx.add_n(&terms);
                let stat = ctx.scale(total, 1.0 / states.len().max(1) as f64);
                let ws = ctx.scale(stat, f64::from(self.cfg.static_weight));
                loss = ctx.add(loss, ws);
            }
            loss
        });

        let frozen = self.frozen_params(&hypers);
        ctx.check_gradient_flow(loss, &frozen);

        // ---- store cross-check: every registered parameter must be on the
        // abstract tape or in the frozen table — a name in neither means the
        // audit replay (or the model) forgot a module ----
        let declared = ctx.declared_param_names();
        let mut report = ctx.finish();
        for (name, _) in self.store().iter() {
            report.ops_checked += 1;
            let in_tape = declared.iter().any(|d| d == name);
            let in_frozen = frozen.iter().any(|f| f.name == name);
            if !in_tape && !in_frozen {
                report.issues.push(AuditIssue {
                    path: String::new(),
                    op: format!("param `{name}`"),
                    kind: AuditKind::GradFlow,
                    detail: "registered in the parameter store but neither declared on \
                             the abstract tape nor frozen for this configuration"
                        .to_string(),
                });
            }
        }
        report
    }

    /// The parameters expected to receive *no* gradient under this
    /// configuration, each with the ablation flag (or data condition) that
    /// freezes it. [`AuditCtx::check_gradient_flow`] reconciles this table
    /// both ways: an undeclared unreached parameter is a finding, and so is
    /// a declared-frozen parameter the backward walk reaches.
    fn frozen_params(&self, hypers: &[HyperSnapshot]) -> Vec<FrozenParam> {
        let cfg = &self.cfg;
        let m2 = 2 * self.num_relations();
        let mut frozen = Vec::new();
        let cell =
            |prefix: &str| [format!("{prefix}.w"), format!("{prefix}.u"), format!("{prefix}.b")];

        if !cfg.use_eam {
            frozen.push(FrozenParam::new(
                "ent0",
                "EAM ablated (--no-eam): entity embeddings stay at initialization",
            ));
            for l in 0..cfg.rgcn_layers {
                frozen.push(FrozenParam::new(format!("eam.l{l}.wself"), "EAM ablated (--no-eam)"));
                for i in 0..cfg.num_bases.min(m2) {
                    frozen.push(FrozenParam::new(
                        format!("eam.l{l}.basis{i}"),
                        "EAM ablated (--no-eam)",
                    ));
                }
                frozen.push(FrozenParam::new(format!("eam.l{l}.coef"), "EAM ablated (--no-eam)"));
            }
            for name in cell("rgru_ent") {
                frozen.push(FrozenParam::new(name, "EAM ablated (--no-eam)"));
            }
        }

        if cfg.relation_mode == RelationMode::None {
            frozen.push(FrozenParam::new(
                "rel0",
                "relation evolution disabled (relation_mode = none)",
            ));
        }

        let ram_active = cfg.relation_mode == RelationMode::MpLstmAgg;
        if !ram_active {
            let why = "RAM aggregation disabled (relation_mode != mp-lstm-agg)";
            frozen.push(FrozenParam::new("hyper0", why));
            for l in 0..cfg.rgcn_layers {
                frozen.push(FrozenParam::new(format!("ram.l{l}.wself"), why));
                for r in 0..NUM_HYPERRELS_WITH_INV {
                    frozen.push(FrozenParam::new(format!("ram.l{l}.w{r}"), why));
                }
            }
            for name in cell("rgru_rel") {
                frozen.push(FrozenParam::new(name, why));
            }
        } else {
            // Per-type RAM weights for hyperrelation types with no edges
            // anywhere in the audit window never enter the graph.
            for r in 0..NUM_HYPERRELS_WITH_INV {
                let absent =
                    hypers.iter().all(|h| h.hrel_ranges.get(r).is_none_or(|&(a, b)| a == b));
                if absent {
                    for l in 0..cfg.rgcn_layers {
                        frozen.push(FrozenParam::new(
                            format!("ram.l{l}.w{r}"),
                            "hyperrelation type absent from the audit window",
                        ));
                    }
                }
            }
        }

        let tim_active = cfg.use_tim
            && matches!(cfg.relation_mode, RelationMode::MpLstm | RelationMode::MpLstmAgg);
        if !tim_active {
            let why = if cfg.use_tim {
                "relation mode does not run the TIM LSTM"
            } else {
                "TIM severed (--no-tim)"
            };
            for name in cell("tim_lstm") {
                frozen.push(FrozenParam::new(name, why));
            }
        }

        if !(ram_active && cfg.hyperrel_mode == HyperrelMode::HmpHlstm) {
            for name in cell("hyper_lstm") {
                frozen.push(FrozenParam::new(
                    name,
                    "hyperrelation LSTM disabled (hyperrel_mode != hmp-hlstm, or RAM off)",
                ));
            }
        }

        // eam_rel0 only flows when the EAM is on and the TIM channel is off.
        if !cfg.use_eam || cfg.use_tim {
            frozen.push(FrozenParam::new(
                "eam_rel0",
                if cfg.use_eam {
                    "EAM reads the evolved relations while the TIM channel is on"
                } else {
                    "EAM ablated (--no-eam)"
                },
            ));
        }

        frozen
    }
}

/// Builds a model for the given configuration and shape and audits it — the
/// implementation behind `retia audit`. Returns the resulting
/// [`AuditReport`] (clean or listing every finding).
pub fn audit_config(cfg: &RetiaConfig, num_entities: usize, num_relations: usize) -> AuditReport {
    let model = Retia::with_shape(cfg, num_entities, num_relations);
    model.audit()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> RetiaConfig {
        RetiaConfig { dim: 8, channels: 4, k: 2, ..Default::default() }
    }

    #[test]
    fn default_configuration_is_clean() {
        let report = audit_config(&tiny_cfg(), 12, 3);
        assert!(report.is_clean(), "unexpected findings:\n{report}");
        assert!(report.ops_checked > 50, "audit checked only {} ops", report.ops_checked);
        assert!(report.params_declared > 10);
        assert_eq!(report.params_declared, report.params_reached);
    }

    #[test]
    fn every_ablation_mode_is_clean() {
        for rm in [
            RelationMode::None,
            RelationMode::Static,
            RelationMode::Mp,
            RelationMode::MpLstm,
            RelationMode::MpLstmAgg,
        ] {
            for hm in [HyperrelMode::Init, HyperrelMode::Hmp, HyperrelMode::HmpHlstm] {
                for (tim, eam) in [(true, true), (false, true), (true, false)] {
                    let cfg = RetiaConfig {
                        relation_mode: rm,
                        hyperrel_mode: hm,
                        use_tim: tim,
                        use_eam: eam,
                        static_weight: 1.0,
                        ..tiny_cfg()
                    };
                    let report = audit_config(&cfg, 9, 2);
                    assert!(
                        report.is_clean(),
                        "findings for {rm:?}/{hm:?}/tim={tim}/eam={eam}:\n{report}"
                    );
                }
            }
        }
    }

    #[test]
    fn seeded_undeclared_detach_is_caught_in_the_tim() {
        let model = Retia::with_shape(&tiny_cfg(), 12, 3);
        let report =
            model.audit_run(&AuditOptions { detach_tim_output: true, ..Default::default() });
        assert!(!report.is_clean(), "undeclared detach passed the audit");
        let flagged: Vec<_> =
            report.issues.iter().filter(|i| i.kind == retia_analyze::AuditKind::GradFlow).collect();
        assert!(
            flagged
                .iter()
                .any(|i| i.op.contains("tim_lstm") && i.path.contains("tim.lstm [Eq. 7-8]")),
            "no finding blames the TIM LSTM weights:\n{report}"
        );
    }

    #[test]
    fn seeded_unguarded_exp_is_caught_in_the_decoder() {
        // Needs dims where the logit envelope exceeds ln(f32::MAX); the
        // tiny 8-dim config keeps |logits| < 89 and a bare exp is (soundly)
        // not flagged there.
        let cfg = RetiaConfig { dim: 32, channels: 8, k: 2, ..Default::default() };
        let model = Retia::with_shape(&cfg, 12, 3);
        let report = model.audit_run(&AuditOptions { exp_logits: true, ..Default::default() });
        assert!(!report.is_clean(), "unguarded exp passed the audit");
        assert!(
            report.issues.iter().any(|i| {
                i.kind == retia_analyze::AuditKind::NonFinite
                    && i.op == "exp"
                    && i.path.contains("decode.entity [Eq. 11/13]")
            }),
            "no finding blames exp in the entity decoder:\n{report}"
        );
    }

    #[test]
    fn seeded_reduction_reorder_is_caught() {
        let model = Retia::with_shape(&tiny_cfg(), 12, 3);
        let report =
            model.audit_run(&AuditOptions { reorder_softmax_sum: true, ..Default::default() });
        assert!(!report.is_clean(), "order-sensitive reorder passed the audit");
        assert!(
            report.issues.iter().any(|i| {
                i.kind == retia_analyze::AuditKind::Reorder
                    && i.op.contains("softmax_rows/row-sum")
                    && i.path.contains("decode.entity")
            }),
            "no finding vetoes the softmax row-sum reorder:\n{report}"
        );
    }

    #[test]
    fn audit_scales_to_paper_dims_fast() {
        let start = std::time::Instant::now();
        let report = audit_config(&RetiaConfig::paper_scale(), 23_033, 256);
        assert!(report.is_clean(), "{report}");
        assert!(
            start.elapsed() < std::time::Duration::from_secs(1),
            "audit took {:?}",
            start.elapsed()
        );
    }
}
