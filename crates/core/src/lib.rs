#![warn(missing_docs)]

//! # retia
//!
//! A pure-Rust implementation of **RETIA: Relation-Entity Twin-Interact
//! Aggregation for Temporal Knowledge Graph Extrapolation** (Liu, Zhao, Xu,
//! Wang, Jin — ICDE 2023).
//!
//! Given a history of dated fact snapshots, RETIA forecasts the facts of the
//! next timestamp: missing objects `(s, r, ?, t+1)`, missing subjects
//! `(?, r, o, t+1)` and missing relations `(s, ?, o, t+1)`. Three modules
//! cooperate along the snapshot sequence:
//!
//! * the **entity aggregation module (EAM)** — an entity-aggregating R-GCN
//!   plus residual GRU (Eq. 4–6), the RE-GCN backbone;
//! * the **relation aggregation module (RAM)** — a *twin hyperrelation
//!   subgraph* is derived from each snapshot (Algorithm 1) and a
//!   relation-aggregating R-GCN plus residual GRU runs on it (Eq. 1–3),
//!   bridging the "message islands" that entity-centric aggregation leaves
//!   between relations;
//! * the **twin-interact module (TIM)** — mean-pooling + LSTM channels that
//!   feed entity state into relation updates (Eq. 7–8) and relation state
//!   into hyperrelation updates (Eq. 9–10), modeling the positional
//!   association constraints between entities and relations.
//!
//! Decoding uses Conv-TransE score heads summed over the last `k` snapshot
//! states (the time-variability strategy, Eq. 11–14), and evaluation can run
//! with online continual training, as in the paper.
//!
//! ## Quickstart
//!
//! ```
//! use retia::{Retia, RetiaConfig, TkgContext, Trainer};
//! use retia_data::SyntheticConfig;
//!
//! let ds = SyntheticConfig::tiny(1).generate();
//! let ctx = TkgContext::new(&ds);
//! let cfg = RetiaConfig { dim: 16, channels: 8, epochs: 1, k: 2, ..Default::default() };
//! let mut trainer = Trainer::new(Retia::new(&cfg, &ds), cfg);
//! trainer.fit(&ctx);
//! let report = trainer.evaluate(&ctx, retia::Split::Test);
//! assert!(report.entity_raw.mrr() > 0.0);
//! ```
//!
//! The ablation switches exercised by the paper's Tables VI/IX and Figures
//! 3–8 are all fields of [`RetiaConfig`]: [`RelationMode`], [`HyperrelMode`],
//! `use_tim`, `use_eam`, `online`.

mod audit;
mod checkpoint;
mod config;
mod context;
mod frozen;
mod model;
mod trainer;
mod validate;

pub use audit::audit_config;
pub use checkpoint::CheckpointPolicy;
pub use config::{HyperrelMode, RelationMode, RetiaConfig};
pub use context::{Split, TkgContext};
pub use frozen::{FrozenModel, FrozenStates};
pub use model::{entity_queries, relation_queries, EvolvedState, Retia};
pub use retia_analyze::{AuditIssue, AuditReport, ShapeIssue, ShapeReport};
pub use trainer::{DivergenceReport, EpochLoss, EvalReport, RecoveryPolicy, TrainError, Trainer};
pub use validate::validate_config;
