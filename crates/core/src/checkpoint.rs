//! Full train-state checkpointing: periodic atomic saves during `fit`,
//! rotation with a best-checkpoint pin, and crash-consistent resume.
//!
//! A train-state checkpoint is a v2 container (see
//! [`retia_tensor::serialize`]) with these sections:
//!
//! | section   | payload                                                  |
//! |-----------|----------------------------------------------------------|
//! | `config`  | the [`RetiaConfig`] as JSON — a checkpoint rebuilds its own model |
//! | `params`  | parameter values (named-tensor codec)                    |
//! | `opt.m`   | Adam first-moment estimates                              |
//! | `opt.v`   | Adam second-moment estimates                             |
//! | `trainer` | binary trainer state v1 (steps, seeds, schedule, history)|
//! | `best`    | best-validation parameter values (only when tracked)     |
//!
//! Everything a resumed run needs to be **bit-identical** to an
//! uninterrupted one is captured: the Adam step count `t` (bias
//! correction), the per-step RNG seed, the global step counter, epoch
//! progress and the early-stopping state. Combined with the deterministic
//! kernels (results identical at any `RETIA_NUM_THREADS`), kill + resume
//! reproduces the exact parameter bytes of a run that was never killed.
//!
//! A checkpoint directory holds `ckpt-{epoch:05}.retia` files plus a
//! `manifest.json` naming the latest and best checkpoints; rotation keeps
//! the last `keep` files *and* the best one. All writes are atomic
//! (temp + fsync + rename), so a crash at any instant leaves the directory
//! resumable.

use std::path::{Path, PathBuf};

use retia_data::TkgDataset;
use retia_tensor::serialize::{
    atomic_write, read_container, require_section, write_container, Reader,
};
use retia_tensor::CheckpointError;

use crate::config::RetiaConfig;
use crate::model::Retia;
use crate::trainer::{EpochLoss, TrainError, Trainer};

/// Version stamp of the `trainer` section payload.
const TRAINER_STATE_VERSION: u32 = 1;

/// When and where `fit` persists full train state.
#[derive(Clone, Debug)]
pub struct CheckpointPolicy {
    /// Directory for `ckpt-*.retia` files and `manifest.json`.
    pub dir: PathBuf,
    /// Save every N completed epochs (a final/early-stop save always
    /// happens regardless).
    pub every_epochs: usize,
    /// Checkpoints retained by rotation, newest first. The best-validation
    /// checkpoint is pinned and never rotated out.
    pub keep: usize,
}

impl CheckpointPolicy {
    /// Policy with the default cadence: every epoch, keep the last 3
    /// (plus the best).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointPolicy { dir: dir.into(), every_epochs: 1, keep: 3 }
    }

    /// Whether a save is due after `epochs_done` completed epochs.
    pub(crate) fn due(&self, epochs_done: usize) -> bool {
        self.every_epochs > 0 && epochs_done > 0 && epochs_done.is_multiple_of(self.every_epochs)
    }
}

/// One manifest row.
#[derive(Clone, Debug)]
struct ManifestEntry {
    file: String,
    epoch: usize,
    step: u64,
    valid_mrr: Option<f64>,
}

/// `manifest.json`: the order of checkpoints and which one is best.
#[derive(Clone, Debug, Default)]
struct Manifest {
    entries: Vec<ManifestEntry>,
}

impl Manifest {
    fn latest(&self) -> Option<&ManifestEntry> {
        self.entries.last()
    }

    /// The entry with the highest validation MRR, falling back to the
    /// latest when no entry has one (patience-free runs).
    fn best(&self) -> Option<&ManifestEntry> {
        self.entries
            .iter()
            .filter(|e| e.valid_mrr.is_some())
            .max_by(|a, b| {
                a.valid_mrr.partial_cmp(&b.valid_mrr).unwrap_or(std::cmp::Ordering::Equal)
            })
            .or_else(|| self.latest())
    }

    fn to_json(&self) -> String {
        let mut root = retia_json::Value::object();
        if let Some(e) = self.latest() {
            root.insert("latest", retia_json::Value::String(e.file.clone()));
        }
        if let Some(e) = self.best() {
            root.insert("best", retia_json::Value::String(e.file.clone()));
        }
        let rows = self
            .entries
            .iter()
            .map(|e| {
                let mut row = retia_json::Value::object();
                row.insert("file", retia_json::Value::String(e.file.clone()));
                row.insert("epoch", retia_json::Value::Number(e.epoch as f64));
                row.insert("step", retia_json::Value::Number(e.step as f64));
                match e.valid_mrr {
                    Some(mrr) => row.insert("valid_mrr", retia_json::Value::Number(mrr)),
                    None => row.insert("valid_mrr", retia_json::Value::Null),
                };
                row
            })
            .collect();
        root.insert("entries", retia_json::Value::Array(rows));
        root.to_string_pretty()
    }

    fn from_json(text: &str, path: &Path) -> Result<Manifest, TrainError> {
        let invalid = |what: &str| {
            TrainError::Invalid(format!("{}: invalid manifest: {what}", path.display()))
        };
        let root = retia_json::parse(text)
            .map_err(|e| TrainError::Invalid(format!("{}: {e}", path.display())))?;
        let rows = root
            .get("entries")
            .and_then(|v| v.as_array())
            .ok_or_else(|| invalid("missing `entries` array"))?;
        let mut entries = Vec::with_capacity(rows.len());
        for row in rows {
            entries.push(ManifestEntry {
                file: row
                    .get("file")
                    .and_then(|v| v.as_str())
                    .ok_or_else(|| invalid("entry missing `file`"))?
                    .to_string(),
                epoch: row
                    .get("epoch")
                    .and_then(|v| v.as_usize())
                    .ok_or_else(|| invalid("entry missing `epoch`"))?,
                step: row
                    .get("step")
                    .and_then(|v| v.as_u64())
                    .ok_or_else(|| invalid("entry missing `step`"))?,
                valid_mrr: row.get("valid_mrr").and_then(|v| v.as_f64()),
            });
        }
        Ok(Manifest { entries })
    }

    fn load(dir: &Path) -> Result<Option<Manifest>, TrainError> {
        let path = dir.join("manifest.json");
        match std::fs::read_to_string(&path) {
            Ok(text) => Ok(Some(Manifest::from_json(&text, &path)?)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(TrainError::Checkpoint(CheckpointError::Io(e))),
        }
    }

    fn save(&self, dir: &Path) -> Result<(), TrainError> {
        atomic_write(&dir.join("manifest.json"), self.to_json().as_bytes())?;
        Ok(())
    }
}

impl Trainer {
    /// Serializes the complete train state (model, optimizer, schedule,
    /// early-stopping bookkeeping) as a v2 checkpoint container.
    pub fn to_checkpoint_bytes(&self) -> Vec<u8> {
        let store = self.model.store();
        let (m, v) = store.moments_payloads();
        let mut sections: Vec<(&str, Vec<u8>)> = vec![
            ("config", self.cfg.to_json().into_bytes()),
            ("params", store.values_payload()),
            ("opt.m", m),
            ("opt.v", v),
            ("trainer", self.trainer_state_payload()),
        ];
        if let Some(best) = &self.best_params {
            sections.push(("best", best.values_payload()));
        }
        write_container(&sections)
    }

    /// Encodes the scalar trainer state (`trainer` section, v1).
    fn trainer_state_payload(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&TRAINER_STATE_VERSION.to_le_bytes());
        buf.extend_from_slice(&self.opt.steps().to_le_bytes());
        buf.extend_from_slice(&self.opt.lr.to_le_bytes());
        buf.extend_from_slice(&self.steps.to_le_bytes());
        buf.extend_from_slice(&self.step_seed.to_le_bytes());
        buf.extend_from_slice(&(self.epochs_done as u64).to_le_bytes());
        buf.extend_from_slice(&(self.bad_epochs as u64).to_le_bytes());
        buf.extend_from_slice(&self.best_mrr.to_bits().to_le_bytes());
        buf.push(self.best_params.is_some() as u8);
        buf.push(self.last_valid_mrr.is_some() as u8);
        buf.extend_from_slice(&self.last_valid_mrr.unwrap_or(0.0).to_bits().to_le_bytes());
        buf.extend_from_slice(&(self.loss_history.len() as u32).to_le_bytes());
        for l in &self.loss_history {
            buf.extend_from_slice(&l.entity.to_bits().to_le_bytes());
            buf.extend_from_slice(&l.relation.to_bits().to_le_bytes());
            buf.extend_from_slice(&l.joint.to_bits().to_le_bytes());
        }
        buf
    }

    /// Restores scalar trainer state from a `trainer` section payload.
    /// Returns whether the checkpoint tracked best-validation parameters
    /// (i.e. a `best` section must be present).
    fn apply_trainer_state(&mut self, payload: &[u8]) -> Result<bool, CheckpointError> {
        let mut r = Reader::new(payload);
        let version = r.get_u32_le("trainer state version")?;
        if version != TRAINER_STATE_VERSION {
            return Err(CheckpointError::Corrupt(format!(
                "unsupported trainer state version {version} \
                 (this build reads version {TRAINER_STATE_VERSION})"
            )));
        }
        let adam_t = r.get_u64_le("adam step count")?;
        let lr = r.get_f32_le("learning rate")?;
        let steps = r.get_u64_le("global step count")?;
        let step_seed = r.get_u64_le("step seed")?;
        let epochs_done = r.get_u64_le("epochs done")?;
        let bad_epochs = r.get_u64_le("bad epochs")?;
        let best_mrr = r.get_f64_le("best validation MRR")?;
        let has_best = r.get_u8("best-params flag")? != 0;
        let has_last_valid = r.get_u8("last-valid-MRR flag")? != 0;
        let last_valid = r.get_f64_le("last validation MRR")?;
        let count = r.get_u32_le("loss history length")? as usize;
        let mut history = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            history.push(EpochLoss {
                entity: r.get_f64_le("epoch entity loss")?,
                relation: r.get_f64_le("epoch relation loss")?,
                joint: r.get_f64_le("epoch joint loss")?,
            });
        }
        r.finish("trainer state")?;

        self.opt.set_steps(adam_t);
        self.opt.lr = lr;
        self.steps = steps;
        self.step_seed = step_seed;
        self.epochs_done = epochs_done as usize;
        self.bad_epochs = bad_epochs as usize;
        self.best_mrr = best_mrr;
        self.last_valid_mrr = has_last_valid.then_some(last_valid);
        self.loss_history = history;
        Ok(has_best)
    }

    /// Writes a full train-state checkpoint atomically to `path`.
    pub fn save_checkpoint(&self, path: &Path) -> Result<(), TrainError> {
        atomic_write(path, &self.to_checkpoint_bytes())?;
        Ok(())
    }

    /// Saves `ckpt-{epoch:05}.retia` into the policy directory, updates
    /// `manifest.json`, and rotates old checkpoints (keeping the last
    /// `policy.keep` plus the best-validation one).
    pub(crate) fn save_rotating(&mut self, policy: &CheckpointPolicy) -> Result<(), TrainError> {
        std::fs::create_dir_all(&policy.dir)
            .map_err(|e| TrainError::Checkpoint(CheckpointError::Io(e)))?;
        let file = format!("ckpt-{:05}.retia", self.epochs_done);
        self.save_checkpoint(&policy.dir.join(&file))?;

        let mut manifest = Manifest::load(&policy.dir)?.unwrap_or_default();
        manifest.entries.retain(|e| e.file != file);
        manifest.entries.push(ManifestEntry {
            file: file.clone(),
            epoch: self.epochs_done,
            step: self.steps,
            valid_mrr: self.last_valid_mrr,
        });

        // Rotation: last `keep` entries stay, plus the best one (pinned).
        let keep_from = manifest.entries.len().saturating_sub(policy.keep.max(1));
        let pinned: Option<String> = manifest.best().map(|e| e.file.clone());
        let mut dropped = Vec::new();
        let mut kept = Vec::new();
        for (i, e) in manifest.entries.iter().cloned().enumerate() {
            if i < keep_from && Some(&e.file) != pinned.as_ref() {
                dropped.push(e);
            } else {
                kept.push(e);
            }
        }
        manifest.entries = kept;
        manifest.save(&policy.dir)?;
        // Delete rotated-out files only after the manifest no longer names
        // them; a failed delete leaves garbage, never a dangling reference.
        for e in &dropped {
            let _ = std::fs::remove_file(policy.dir.join(&e.file));
        }
        retia_obs::event!(
            retia_obs::Level::Info,
            "checkpoint.saved",
            epoch = self.epochs_done,
            step = self.steps;
            format!("checkpoint `{file}` written ({} retained)", manifest.entries.len())
        );
        Ok(())
    }

    /// Rebuilds a trainer from the latest checkpoint in `dir`, ready for
    /// `try_fit` to continue from the next epoch — bit-identically to a
    /// run that was never interrupted. The dataset must be the one the
    /// original run trained on (shape mismatches are typed errors naming
    /// the offending parameter).
    pub fn resume(dir: &Path, ds: &TkgDataset) -> Result<Trainer, TrainError> {
        let manifest = Manifest::load(dir)?.ok_or_else(|| {
            TrainError::Invalid(format!(
                "{}: no manifest.json — not a checkpoint directory",
                dir.display()
            ))
        })?;
        let entry = manifest.latest().ok_or_else(|| {
            TrainError::Invalid(format!("{}: manifest lists no checkpoints", dir.display()))
        })?;
        Trainer::from_checkpoint_file(&dir.join(&entry.file), ds)
    }

    /// Rebuilds a trainer from one checkpoint file (the model architecture
    /// comes from the embedded `config` section).
    pub fn from_checkpoint_file(path: &Path, ds: &TkgDataset) -> Result<Trainer, TrainError> {
        let bytes =
            std::fs::read(path).map_err(|e| TrainError::Checkpoint(CheckpointError::Io(e)))?;
        Trainer::from_checkpoint_bytes(&bytes, ds)
            .map_err(|e| TrainError::Invalid(format!("{}: {e}", path.display())))
    }

    /// Rebuilds a trainer from checkpoint bytes.
    pub fn from_checkpoint_bytes(bytes: &[u8], ds: &TkgDataset) -> Result<Trainer, TrainError> {
        let sections = read_container(bytes)?;
        let config_text = String::from_utf8(require_section(&sections, "config")?.to_vec())
            .map_err(|_| CheckpointError::Corrupt("non-utf8 config section".into()))?;
        let cfg = RetiaConfig::from_json(&config_text).map_err(TrainError::Invalid)?;
        let model = Retia::new(&cfg, ds);
        let mut trainer = Trainer::new(model, cfg);
        trainer.model.store_mut().load_values_payload(require_section(&sections, "params")?)?;
        let m = require_section(&sections, "opt.m")?;
        let v = require_section(&sections, "opt.v")?;
        trainer.model.store_mut().load_moments_payloads(m, v)?;
        let has_best = trainer.apply_trainer_state(require_section(&sections, "trainer")?)?;
        if has_best {
            let mut best = trainer.model.store().clone();
            best.load_values_payload(require_section(&sections, "best")?)?;
            trainer.best_params = Some(best);
        }
        Ok(trainer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::TkgContext;
    use retia_data::SyntheticConfig;

    fn setup(epochs: usize) -> (Trainer, TkgContext, TkgDataset) {
        let ds = SyntheticConfig::tiny(4).generate();
        let ctx = TkgContext::new(&ds);
        let cfg = RetiaConfig {
            dim: 8,
            channels: 4,
            k: 2,
            epochs,
            patience: 0,
            online: false,
            ..Default::default()
        };
        let model = Retia::new(&cfg, &ds);
        (Trainer::new(model, cfg), ctx, ds)
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("retia_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn checkpoint_bytes_roundtrip_full_state() {
        let (mut trainer, ctx, ds) = setup(1);
        trainer.try_fit(&ctx).unwrap();
        let bytes = trainer.to_checkpoint_bytes();
        let restored = Trainer::from_checkpoint_bytes(&bytes, &ds).unwrap();
        assert_eq!(restored.steps(), trainer.steps());
        assert_eq!(restored.epochs_done(), trainer.epochs_done());
        assert_eq!(restored.loss_history, trainer.loss_history);
        // Bit-identical params, moments and schedule → byte-identical
        // re-serialization.
        assert_eq!(restored.to_checkpoint_bytes(), bytes);
    }

    #[test]
    fn resume_continues_from_completed_epochs() {
        let (mut trainer, ctx, ds) = setup(3);
        let dir = tmp_dir("resume");
        trainer.cfg.epochs = 2;
        trainer.set_checkpointing(Some(CheckpointPolicy::new(&dir)));
        trainer.try_fit(&ctx).unwrap();
        assert_eq!(trainer.epochs_done(), 2);

        let mut resumed = Trainer::resume(&dir, &ds).unwrap();
        assert_eq!(resumed.epochs_done(), 2);
        resumed.cfg.epochs = 3;
        resumed.try_fit(&ctx).unwrap();
        assert_eq!(resumed.epochs_done(), 3);
        assert_eq!(resumed.loss_history.len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_keeps_last_k_plus_best() {
        let (mut trainer, ctx, _ds) = setup(6);
        let dir = tmp_dir("rotate");
        let mut policy = CheckpointPolicy::new(&dir);
        policy.keep = 2;
        trainer.set_checkpointing(Some(policy));
        // Pretend epoch 1 had the best validation MRR, then let later
        // epochs roll past the keep window.
        trainer.try_fit(&ctx).unwrap();
        let manifest = Manifest::load(&dir).unwrap().unwrap();
        assert!(manifest.entries.len() <= 3, "{:?}", manifest.entries);
        // Every retained entry's file exists; nothing else remains.
        let mut on_disk: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("ckpt-"))
            .collect();
        on_disk.sort();
        let mut named: Vec<String> = manifest.entries.iter().map(|e| e.file.clone()).collect();
        named.sort();
        assert_eq!(on_disk, named);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_from_empty_dir_is_typed_error() {
        let dir = tmp_dir("empty");
        let ds = SyntheticConfig::tiny(4).generate();
        let err = match Trainer::resume(&dir, &ds) {
            Err(e) => e,
            Ok(_) => panic!("resume from an empty dir must fail"),
        };
        assert!(matches!(err, TrainError::Invalid(_)), "{err:?}");
        assert!(err.to_string().contains("manifest"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_checkpoint_file_is_typed_error() {
        let (mut trainer, ctx, ds) = setup(1);
        let dir = tmp_dir("corrupt");
        trainer.set_checkpointing(Some(CheckpointPolicy::new(&dir)));
        trainer.try_fit(&ctx).unwrap();
        let file = dir.join("ckpt-00001.retia");
        let mut bytes = std::fs::read(&file).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&file, &bytes).unwrap();
        let err = match Trainer::resume(&dir, &ds) {
            Err(e) => e,
            Ok(_) => panic!("resume from a corrupt checkpoint must fail"),
        };
        assert!(err.to_string().contains("CRC") || err.to_string().contains("corrupt"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
