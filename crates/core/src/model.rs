//! The RETIA model: parameters, the evolution recurrence (RAM + EAM + TIM)
//! and the time-variability decoders.

use std::rc::Rc;

use retia_data::TkgDataset;
use retia_graph::{HyperSnapshot, Snapshot, NUM_HYPERRELS_WITH_INV};
use retia_nn::{
    mean_pool_segments, ConvTransE, EntityRgcn, GruCell, LstmCell, RelationRgcn, WeightMode,
};
use retia_tensor::{Graph, NodeId, ParamStore, Tensor};

use crate::config::{HyperrelMode, RelationMode, RetiaConfig};

/// The `(E_t, R_t)` pair produced for one historical timestamp.
#[derive(Clone, Copy, Debug)]
pub struct EvolvedState {
    /// Entity embeddings `E_t` (`[N, d]`).
    pub entities: NodeId,
    /// Relation embeddings `R_t` (`[2M, d]`, inverses included).
    pub relations: NodeId,
}

/// The RETIA model. Holds the parameter store and the module definitions;
/// each forward pass unrolls the recurrence in a fresh autodiff [`Graph`].
pub struct Retia {
    /// Configuration the model was built with.
    pub cfg: RetiaConfig,
    num_entities: usize,
    num_relations: usize,
    store: ParamStore,
    pub(crate) ram_rgcn: RelationRgcn,
    pub(crate) eam_rgcn: EntityRgcn,
    pub(crate) rel_gru: GruCell,
    pub(crate) ent_gru: GruCell,
    pub(crate) tim_lstm: LstmCell,
    pub(crate) hyper_lstm: LstmCell,
    pub(crate) dec_entity: ConvTransE,
    pub(crate) dec_relation: ConvTransE,
}

impl Retia {
    /// Builds a model for `ds`, registering all parameters.
    pub fn new(cfg: &RetiaConfig, ds: &TkgDataset) -> Self {
        cfg.validate().expect("invalid RetiaConfig");
        Self::with_shape(cfg, ds.num_entities, ds.num_relations)
    }

    /// Builds a model from raw entity/relation counts.
    pub fn with_shape(cfg: &RetiaConfig, num_entities: usize, num_relations: usize) -> Self {
        let d = cfg.dim;
        let m2 = 2 * num_relations;
        let mut store = ParamStore::new(cfg.seed);
        store.register_xavier("ent0", num_entities, d);
        store.register_xavier("rel0", m2, d);
        store.register_xavier("hyper0", NUM_HYPERRELS_WITH_INV, d);
        // Separate static relation table for the EAM when the TIM channel is
        // severed ("two different and inconsistent individuals", §IV-D).
        store.register_xavier("eam_rel0", m2, d);

        let ram_rgcn = RelationRgcn::new(
            &mut store,
            "ram",
            d,
            WeightMode::PerRelation,
            cfg.rgcn_layers,
            cfg.dropout,
        );
        let eam_rgcn = EntityRgcn::new(
            &mut store,
            "eam",
            d,
            m2,
            WeightMode::Basis(cfg.num_bases.min(m2)),
            cfg.rgcn_layers,
            cfg.dropout,
        );
        let rel_gru = GruCell::new(&mut store, "rgru_rel", d, d);
        let ent_gru = GruCell::new(&mut store, "rgru_ent", d, d);
        let tim_lstm = LstmCell::new(&mut store, "tim_lstm", 2 * d, d);
        let hyper_lstm = LstmCell::new(&mut store, "hyper_lstm", 2 * d, d);
        let dec_entity =
            ConvTransE::new(&mut store, "dec_e", d, cfg.channels, cfg.ksize, cfg.dropout);
        let dec_relation =
            ConvTransE::new(&mut store, "dec_r", d, cfg.channels, cfg.ksize, cfg.dropout);

        Retia {
            cfg: cfg.clone(),
            num_entities,
            num_relations,
            store,
            ram_rgcn,
            eam_rgcn,
            rel_gru,
            ent_gru,
            tim_lstm,
            hyper_lstm,
            dec_entity,
            dec_relation,
        }
    }

    /// Number of entities `N`.
    pub fn num_entities(&self) -> usize {
        self.num_entities
    }

    /// Number of original relations `M`.
    pub fn num_relations(&self) -> usize {
        self.num_relations
    }

    /// The parameter store (read access).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// The parameter store (mutable; used by the trainer for backward and
    /// optimizer steps).
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// Total scalar parameter count.
    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    /// Unrolls the RAM/EAM/TIM recurrence over `history`, returning one
    /// [`EvolvedState`] per historical snapshot (or a single initial state if
    /// the history is empty, so decoding is always possible).
    pub fn evolve(
        &self,
        g: &mut Graph,
        history: &[Snapshot],
        hypers: &[HyperSnapshot],
    ) -> Vec<EvolvedState> {
        assert_eq!(history.len(), hypers.len(), "history/hypergraph length mismatch");
        let d = self.cfg.dim;
        let m2 = 2 * self.num_relations;

        // The paper's module ablations freeze the ablated embeddings at their
        // random initialization (no gradient), so insert constants then.
        let ent0_raw = if self.cfg.use_eam {
            g.param(&self.store, "ent0")
        } else {
            g.constant(self.store.value("ent0").clone())
        };
        let e0 = if self.cfg.normalize_entities { g.normalize_rows(ent0_raw) } else { ent0_raw };
        let r0 = match self.cfg.relation_mode {
            RelationMode::None => g.constant(self.store.value("rel0").clone()),
            _ => g.param(&self.store, "rel0"),
        };
        let hr0 = g.param(&self.store, "hyper0");

        if history.is_empty() {
            return vec![EvolvedState { entities: e0, relations: r0 }];
        }

        let mut e_prev = e0;
        let mut r_prev = r0;
        let mut hr_prev = hr0;
        let mut c_prev: Option<NodeId> = None;
        let mut hc_prev: Option<NodeId> = None;
        let mut states = Vec::with_capacity(history.len());

        for (snap, hyper) in history.iter().zip(hypers.iter()) {
            // ---- relation update (TIM Eq. 7-8 + RAM Eq. 1-3) ----
            let r_t = match self.cfg.relation_mode {
                RelationMode::None | RelationMode::Static => r0,
                RelationMode::Mp => {
                    let pooled = mean_pool_segments(g, e_prev, &snap.rel_entities);
                    Self::fallback_absent(g, pooled, r0, &snap.rel_entities)
                }
                RelationMode::MpLstm | RelationMode::MpLstmAgg => {
                    let r_lstm = if self.cfg.use_tim {
                        let _t = retia_obs::span!("tim.lstm");
                        // Eq. 7: R_mean = [R_0 ; MP(E_{t-1}, E_r^t)].
                        let pooled = mean_pool_segments(g, e_prev, &snap.rel_entities);
                        let r_mean = g.concat_cols(r0, pooled);
                        // Eq. 8: LSTM along the snapshot sequence.
                        let c0 = c_prev.unwrap_or_else(|| g.constant(Tensor::zeros(m2, d)));
                        let (h, c) = self.tim_lstm.forward(g, &self.store, r_mean, r_prev, c0);
                        c_prev = Some(c);
                        h
                    } else {
                        // TIM severed: no entity→relation channel; relations
                        // evolve from their previous state alone.
                        r_prev
                    };

                    if self.cfg.relation_mode == RelationMode::MpLstmAgg {
                        let _t = retia_obs::span!("ram.aggregate");
                        // Hyperrelation embeddings entering the RAM (Eq. 9-10).
                        let hr_t = match self.cfg.hyperrel_mode {
                            HyperrelMode::Init => hr0,
                            HyperrelMode::Hmp => {
                                let pooled = mean_pool_segments(g, r_lstm, &hyper.hrel_relations);
                                Self::fallback_absent(g, pooled, hr0, &hyper.hrel_relations)
                            }
                            HyperrelMode::HmpHlstm => {
                                let pooled = mean_pool_segments(g, r_lstm, &hyper.hrel_relations);
                                let hr_mean = g.concat_cols(hr0, pooled);
                                let hc0 = hc_prev.unwrap_or_else(|| {
                                    g.constant(Tensor::zeros(NUM_HYPERRELS_WITH_INV, d))
                                });
                                let (h, c) =
                                    self.hyper_lstm.forward(g, &self.store, hr_mean, hr_prev, hc0);
                                hc_prev = Some(c);
                                hr_prev = h;
                                h
                            }
                        };
                        // Eq. 2: aggregate adjacent relations + hyperrelations.
                        let r_agg = self.ram_rgcn.forward(g, &self.store, r_lstm, hr_t, hyper);
                        // Eq. 3: residual GRU against the pre-aggregation state.
                        self.rel_gru.forward(g, &self.store, r_agg, r_lstm)
                    } else {
                        r_lstm
                    }
                }
            };

            // ---- entity update (EAM Eq. 4-6) ----
            let e_t = if self.cfg.use_eam {
                let _t = retia_obs::span!("eam.rgcn");
                let rel_for_eam =
                    if self.cfg.use_tim { r_t } else { g.param(&self.store, "eam_rel0") };
                let e_agg = self.eam_rgcn.forward(g, &self.store, e_prev, rel_for_eam, snap);
                let e = self.ent_gru.forward(g, &self.store, e_agg, e_prev);
                if self.cfg.normalize_entities {
                    g.normalize_rows(e)
                } else {
                    e
                }
            } else {
                e_prev
            };

            states.push(EvolvedState { entities: e_t, relations: r_t });
            e_prev = e_t;
            r_prev = r_t;
        }
        states
    }

    /// Rows of `pooled` whose segment was empty are replaced by the
    /// corresponding `fallback` row (absent relations keep their initial
    /// embedding instead of collapsing to zero).
    fn fallback_absent(
        g: &mut Graph,
        pooled: NodeId,
        fallback: NodeId,
        segments: &[Vec<u32>],
    ) -> NodeId {
        let absent: Rc<Vec<f32>> =
            Rc::new(segments.iter().map(|s| if s.is_empty() { 1.0 } else { 0.0 }).collect());
        let fb = g.row_scale(fallback, absent);
        g.add(pooled, fb)
    }

    /// Summed per-timestamp probabilities for entity queries
    /// (Eq. 11 + the time-variability sum of Eq. 13): `[Q, N]`.
    ///
    /// `subjects[i]` and `rels[i]` define query `i`; `rels` may contain
    /// inverse ids (`r + M`) for subject forecasting.
    pub fn entity_prob_sum(
        &self,
        g: &mut Graph,
        states: &[EvolvedState],
        subjects: Rc<Vec<u32>>,
        rels: Rc<Vec<u32>>,
    ) -> NodeId {
        assert!(!states.is_empty(), "need at least one evolved state");
        let _t = retia_obs::span!("decode.entity", timestamps = states.len());
        let mut probs = Vec::with_capacity(states.len());
        for st in states {
            let s_emb = g.gather_rows(st.entities, subjects.clone());
            let r_emb = g.gather_rows(st.relations, rels.clone());
            let logits = self.dec_entity.forward(g, &self.store, s_emb, r_emb, st.entities);
            probs.push(g.softmax_rows(logits));
        }
        g.add_n(&probs)
    }

    /// Per-timestamp query representations for entity queries: the
    /// candidate-independent half of the Eq. 11 decode — everything before
    /// the `q @ E_t^T` scoring matmul. One detached `[Q, d]` tensor per
    /// evolved state, oldest first.
    ///
    /// The entity-sharded serving decode computes these once on the engine
    /// thread, then scores them against candidate row ranges outside the
    /// graph (`Tensor::matmul_nt_range`), which is bit-identical to the
    /// fused [`Retia::entity_prob_sum`] logits because each logit is an
    /// independent sequential dot product either way.
    pub fn entity_query_reprs(
        &self,
        g: &mut Graph,
        states: &[EvolvedState],
        subjects: Rc<Vec<u32>>,
        rels: Rc<Vec<u32>>,
    ) -> Vec<Tensor> {
        assert!(!states.is_empty(), "need at least one evolved state");
        let _t = retia_obs::span!("decode.entity_repr", timestamps = states.len());
        states
            .iter()
            .map(|st| {
                let s_emb = g.gather_rows(st.entities, subjects.clone());
                let r_emb = g.gather_rows(st.relations, rels.clone());
                let q = self.dec_entity.query_repr(g, &self.store, s_emb, r_emb);
                g.detach(q)
            })
            .collect()
    }

    /// Summed per-timestamp probabilities for relation queries
    /// (Eq. 12 + Eq. 14): `[Q, M]` over the original (non-inverse) relations.
    pub fn relation_prob_sum(
        &self,
        g: &mut Graph,
        states: &[EvolvedState],
        subjects: Rc<Vec<u32>>,
        objects: Rc<Vec<u32>>,
    ) -> NodeId {
        assert!(!states.is_empty(), "need at least one evolved state");
        let _t = retia_obs::span!("decode.relation", timestamps = states.len());
        let orig: Rc<Vec<u32>> = Rc::new((0..self.num_relations as u32).collect());
        let mut probs = Vec::with_capacity(states.len());
        for st in states {
            let s_emb = g.gather_rows(st.entities, subjects.clone());
            let o_emb = g.gather_rows(st.entities, objects.clone());
            let cand = g.gather_rows(st.relations, orig.clone());
            let logits = self.dec_relation.forward(g, &self.store, s_emb, o_emb, cand);
            probs.push(g.softmax_rows(logits));
        }
        g.add_n(&probs)
    }

    /// Joint training loss for forecasting `target`'s facts from `states`
    /// (Eq. 13/14 with weight `λ`, plus the optional static-consistency
    /// constraint). Returns `(loss, entity_loss_value, relation_loss_value)`.
    pub fn loss(
        &self,
        g: &mut Graph,
        states: &[EvolvedState],
        target: &Snapshot,
    ) -> (NodeId, f32, f32) {
        let (subjects, rels, e_targets) = entity_queries(target, self.num_relations);
        let (rs, ro, r_targets) = relation_queries(target);

        let pe = self.entity_prob_sum(g, states, Rc::new(subjects), Rc::new(rels));
        let picked_e = g.gather_cols(pe, Rc::new(e_targets));
        let ln_e = g.ln(picked_e, 1e-9);
        let mean_e = g.mean_all(ln_e);
        let le = g.scale(mean_e, -1.0);

        let pr = self.relation_prob_sum(g, states, Rc::new(rs), Rc::new(ro));
        let picked_r = g.gather_cols(pr, Rc::new(r_targets));
        let ln_r = g.ln(picked_r, 1e-9);
        let mean_r = g.mean_all(ln_r);
        let lr = g.scale(mean_r, -1.0);

        let le_val = g.value(le).item();
        let lr_val = g.value(lr).item();

        let we = g.scale(le, self.cfg.lambda);
        let wr = g.scale(lr, 1.0 - self.cfg.lambda);
        let mut loss = g.add(we, wr);

        if self.cfg.static_weight > 0.0 && self.cfg.use_eam {
            let stat = self.static_constraint(g, states);
            let ws = g.scale(stat, self.cfg.static_weight);
            loss = g.add(loss, ws);
        }
        (loss, le_val, lr_val)
    }

    /// Static-consistency constraint (the RE-GCN-style auxiliary loss the
    /// paper enables on the ICEWS datasets): the angle between each evolved
    /// entity embedding and its initial embedding may grow by at most
    /// `static_angle_deg` per step; violations are penalized linearly.
    fn static_constraint(&self, g: &mut Graph, states: &[EvolvedState]) -> NodeId {
        let ent0 = g.param(&self.store, "ent0");
        let e0n = g.normalize_rows(ent0);
        let mut terms = Vec::with_capacity(states.len());
        for (j, st) in states.iter().enumerate() {
            let en = if self.cfg.normalize_entities {
                st.entities
            } else {
                g.normalize_rows(st.entities)
            };
            let prod = g.mul(en, e0n);
            let cos = g.sum_rows(prod);
            let angle = (self.cfg.static_angle_deg * (j + 1) as f32).min(90.0);
            let thr = angle.to_radians().cos();
            let neg = g.scale(cos, -1.0);
            let gap = g.add_scalar(neg, thr);
            let pen = g.relu(gap);
            terms.push(g.mean_all(pen));
        }
        let total = g.add_n(&terms);
        g.scale(total, 1.0 / states.len().max(1) as f32)
    }

    /// Inference: summed entity probabilities as a plain tensor
    /// (`[Q, N]`, eval mode, no gradients retained).
    pub fn predict_entity(
        &self,
        history: &[Snapshot],
        hypers: &[HyperSnapshot],
        subjects: Vec<u32>,
        rels: Vec<u32>,
    ) -> Tensor {
        let mut g = Graph::inference();
        let states = self.evolve(&mut g, history, hypers);
        let last = last_k(&states, self.cfg.k);
        let p = self.entity_prob_sum(&mut g, last, Rc::new(subjects), Rc::new(rels));
        g.detach(p)
    }

    /// Inference: summed relation probabilities (`[Q, M]`).
    pub fn predict_relation(
        &self,
        history: &[Snapshot],
        hypers: &[HyperSnapshot],
        subjects: Vec<u32>,
        objects: Vec<u32>,
    ) -> Tensor {
        let mut g = Graph::inference();
        let states = self.evolve(&mut g, history, hypers);
        let last = last_k(&states, self.cfg.k);
        let p = self.relation_prob_sum(&mut g, last, Rc::new(subjects), Rc::new(objects));
        g.detach(p)
    }
}

/// The last `k` states (all of them if fewer).
pub(crate) fn last_k(states: &[EvolvedState], k: usize) -> &[EvolvedState] {
    &states[states.len().saturating_sub(k)..]
}

/// Entity-forecasting queries of a snapshot: each fact `(s, r, o)` yields the
/// object query `(s, r) → o` and the subject query `(o, r + M) → s`.
pub fn entity_queries(snap: &Snapshot, num_relations: usize) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let m = num_relations as u32;
    let mut subjects = Vec::with_capacity(snap.facts.len() * 2);
    let mut rels = Vec::with_capacity(snap.facts.len() * 2);
    let mut targets = Vec::with_capacity(snap.facts.len() * 2);
    for q in &snap.facts {
        subjects.push(q.s);
        rels.push(q.r);
        targets.push(q.o);
        subjects.push(q.o);
        rels.push(q.r + m);
        targets.push(q.s);
    }
    (subjects, rels, targets)
}

/// Relation-forecasting queries of a snapshot: `(s, o) → r` per original
/// fact (relation candidates are the `M` original relations, per the paper).
pub fn relation_queries(snap: &Snapshot) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let mut subjects = Vec::with_capacity(snap.facts.len());
    let mut objects = Vec::with_capacity(snap.facts.len());
    let mut targets = Vec::with_capacity(snap.facts.len());
    for q in &snap.facts {
        subjects.push(q.s);
        objects.push(q.o);
        targets.push(q.r);
    }
    (subjects, objects, targets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use retia_data::SyntheticConfig;

    fn tiny_model() -> (Retia, crate::TkgContext) {
        let ds = SyntheticConfig::tiny(1).generate();
        let ctx = crate::TkgContext::new(&ds);
        let cfg = RetiaConfig { dim: 8, channels: 4, k: 2, dropout: 0.0, ..Default::default() };
        (Retia::new(&cfg, &ds), ctx)
    }

    #[test]
    fn evolve_produces_state_per_snapshot() {
        let (model, ctx) = tiny_model();
        let (h, hh) = ctx.history(4, 3);
        let mut g = Graph::new(false, 0);
        let states = model.evolve(&mut g, h, hh);
        assert_eq!(states.len(), 3);
        for st in &states {
            assert_eq!(g.value(st.entities).shape(), (model.num_entities(), 8));
            assert_eq!(g.value(st.relations).shape(), (2 * model.num_relations(), 8));
            assert!(g.value(st.entities).all_finite());
            assert!(g.value(st.relations).all_finite());
        }
    }

    #[test]
    fn empty_history_yields_initial_state() {
        let (model, _) = tiny_model();
        let mut g = Graph::new(false, 0);
        let states = model.evolve(&mut g, &[], &[]);
        assert_eq!(states.len(), 1);
    }

    #[test]
    fn entity_probs_are_distributions_times_k() {
        let (model, ctx) = tiny_model();
        let (h, hh) = ctx.history(3, 2);
        let mut g = Graph::new(false, 0);
        let states = model.evolve(&mut g, h, hh);
        let p =
            model.entity_prob_sum(&mut g, &states, Rc::new(vec![0, 1, 2]), Rc::new(vec![0, 1, 2]));
        let v = g.value(p);
        assert_eq!(v.shape(), (3, model.num_entities()));
        // Each timestep contributes a distribution summing to 1.
        for i in 0..3 {
            let s: f32 = v.row(i).iter().sum();
            assert!((s - states.len() as f32).abs() < 1e-3, "row sum {s}");
        }
    }

    #[test]
    fn relation_probs_cover_original_relations_only() {
        let (model, ctx) = tiny_model();
        let (h, hh) = ctx.history(3, 2);
        let mut g = Graph::new(false, 0);
        let states = model.evolve(&mut g, h, hh);
        let p = model.relation_prob_sum(&mut g, &states, Rc::new(vec![0, 1]), Rc::new(vec![2, 3]));
        assert_eq!(g.value(p).shape(), (2, model.num_relations()));
    }

    #[test]
    fn loss_is_finite_and_positive() {
        let (mut model, ctx) = tiny_model();
        model.cfg.static_weight = 1.0;
        let idx = ctx.train_idx[3];
        let (h, hh) = ctx.history(idx, 2);
        let mut g = Graph::new(true, 7);
        let states = model.evolve(&mut g, h, hh);
        let (loss, le, lr) = model.loss(&mut g, &states, &ctx.snapshots[idx]);
        let v = g.value(loss).item();
        assert!(v.is_finite() && v > 0.0, "loss {v}");
        assert!(le > 0.0 && lr > 0.0);
    }

    #[test]
    fn gradients_flow_to_all_module_families() {
        let (mut model, ctx) = tiny_model();
        let idx = ctx.train_idx[3];
        let (h, hh) = ctx.history(idx, 2);
        let mut g = Graph::new(true, 7);
        let states = model.evolve(&mut g, h, hh);
        let (loss, _, _) = model.loss(&mut g, &states, &ctx.snapshots[idx].clone());
        let snap = ctx.snapshots[idx].clone();
        drop(snap);
        g.backward(loss, model.store_mut());
        for name in [
            "ent0",
            "rel0",
            "hyper0",
            "ram.l0.wself",
            "eam.l0.wself",
            "eam.l0.coef",
            "rgru_rel.w",
            "rgru_ent.w",
            "tim_lstm.w",
            "hyper_lstm.w",
            "dec_e.conv.w",
            "dec_r.fc.w",
        ] {
            assert!(model.store().grad(name).norm() > 0.0, "no gradient reached `{name}`");
        }
    }

    #[test]
    fn ablated_modes_still_run() {
        let ds = SyntheticConfig::tiny(2).generate();
        let ctx = crate::TkgContext::new(&ds);
        for (rm, hm, tim, eam) in [
            (RelationMode::None, HyperrelMode::Init, true, true),
            (RelationMode::Mp, HyperrelMode::Init, true, true),
            (RelationMode::MpLstm, HyperrelMode::Init, true, true),
            (RelationMode::MpLstmAgg, HyperrelMode::Init, true, true),
            (RelationMode::MpLstmAgg, HyperrelMode::Hmp, true, true),
            (RelationMode::MpLstmAgg, HyperrelMode::HmpHlstm, false, true),
            (RelationMode::MpLstmAgg, HyperrelMode::HmpHlstm, true, false),
        ] {
            let cfg = RetiaConfig {
                dim: 8,
                channels: 4,
                k: 2,
                relation_mode: rm,
                hyperrel_mode: hm,
                use_tim: tim,
                use_eam: eam,
                ..Default::default()
            };
            let model = Retia::new(&cfg, &ds);
            let (h, hh) = ctx.history(3, 2);
            let mut g = Graph::new(true, 0);
            let states = model.evolve(&mut g, h, hh);
            let (loss, _, _) = model.loss(&mut g, &states, &ctx.snapshots[3]);
            assert!(
                g.value(loss).item().is_finite(),
                "non-finite loss for {rm:?}/{hm:?}/tim={tim}/eam={eam}"
            );
        }
    }

    #[test]
    fn query_builders_cover_both_directions() {
        let ds = SyntheticConfig::tiny(1).generate();
        let ctx = crate::TkgContext::new(&ds);
        let snap = &ctx.snapshots[0];
        let (s, r, t) = entity_queries(snap, ds.num_relations);
        assert_eq!(s.len(), snap.facts.len() * 2);
        assert_eq!(r.len(), t.len());
        // Inverse queries use relation ids >= M.
        assert!(r.iter().any(|&x| x >= ds.num_relations as u32));
        let (rs, ro, rt) = relation_queries(snap);
        assert_eq!(rs.len(), snap.facts.len());
        assert_eq!(ro.len(), rt.len());
        assert!(rt.iter().all(|&x| x < ds.num_relations as u32));
    }

    #[test]
    fn num_parameters_reported() {
        let (model, _) = tiny_model();
        assert!(model.num_parameters() > 1000);
    }
}
