//! Training loops: general training with early stopping, and the online
//! continual training the paper uses at evaluation time (the
//! time-variability strategy, §III-F).

use retia_eval::{collect_paired_metrics, rank_of, rank_of_filtered, FilterSet, Metrics};
use retia_graph::Snapshot;
use retia_tensor::optim::{clip_grad_norm, Adam};
use retia_tensor::Graph;

use crate::config::RetiaConfig;
use crate::context::{Split, TkgContext};
use crate::model::{entity_queries, last_k, relation_queries, Retia};

/// Per-epoch mean losses (the series plotted in Figures 3 and 4).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpochLoss {
    /// Mean entity-forecasting loss `L_e`.
    pub entity: f64,
    /// Mean relation-forecasting loss `L_r`.
    pub relation: f64,
    /// Mean joint loss `λL_e + (1-λ)L_r`.
    pub joint: f64,
}

/// Evaluation results for one split.
#[derive(Clone, Copy, Debug, Default)]
pub struct EvalReport {
    /// Entity forecasting under the raw setting (the paper's headline
    /// metric; subject and object directions averaged).
    pub entity_raw: Metrics,
    /// Entity forecasting under the time-aware filtered setting.
    pub entity_filtered: Metrics,
    /// Relation forecasting under the raw setting.
    pub relation_raw: Metrics,
    /// Relation forecasting under the time-aware filtered setting.
    pub relation_filtered: Metrics,
}

/// Drives general training, online continual training and evaluation of a
/// [`Retia`] model (and is reused by the RE-GCN-style baselines, which are
/// ablated `Retia` configurations).
pub struct Trainer {
    /// The model being trained.
    pub model: Retia,
    /// Training hyperparameters (shared with the model's config).
    pub cfg: RetiaConfig,
    opt: Adam,
    step_seed: u64,
    steps: u64,
    /// Loss history of the last `fit` call.
    pub loss_history: Vec<EpochLoss>,
}

impl Trainer {
    /// Creates a trainer around a model.
    pub fn new(model: Retia, cfg: RetiaConfig) -> Self {
        // Results are bit-identical at any thread count, so applying the
        // config knob here never changes what a run computes — only how fast.
        retia_tensor::parallel::set_num_threads(cfg.num_threads);
        let opt = Adam::new(cfg.lr);
        Trainer { model, cfg, opt, step_seed: 0x5EED, steps: 0, loss_history: Vec::new() }
    }

    /// One gradient step: forecast snapshot `target_idx` from its history.
    /// Returns the (entity, relation, joint) loss values.
    pub fn train_step(&mut self, ctx: &TkgContext, target_idx: usize) -> EpochLoss {
        self.steps += 1;
        let step = self.steps;
        let _t = retia_obs::span!("train.step", step = step);
        let (history, hypers) = ctx.history(target_idx, self.cfg.k);
        let target = &ctx.snapshots[target_idx];
        self.step_seed = self.step_seed.wrapping_add(1);
        let mut g = Graph::new(true, self.step_seed);
        let states = self.model.evolve(&mut g, history, hypers);
        let decode_states = last_k(&states, self.cfg.k).to_vec();
        let (loss, le, lr) = self.model.loss(&mut g, &decode_states, target);
        let joint = g.value(loss).item() as f64;
        retia_obs::watchdog::check_value("loss.joint", step, joint);
        retia_obs::watchdog::check_value("loss.entity", step, le as f64);
        retia_obs::watchdog::check_value("loss.relation", step, lr as f64);
        retia_obs::metrics::observe("loss.joint", joint);
        {
            let _bw = retia_obs::span!("backward.autodiff");
            g.backward(loss, self.model.store_mut());
        }
        {
            let _opt = retia_obs::span!("backward.optim");
            self.check_gradients(step);
            // clip_grad_norm returns the pre-clip global norm: a free
            // training-health gauge. NaN gradients pass through clipping
            // unscaled (`NaN > max` is false), which is why the watchdog
            // scan above sits between backward and the optimizer step.
            let norm = clip_grad_norm(self.model.store_mut(), self.cfg.grad_clip);
            retia_obs::metrics::set_gauge("grad.norm", norm as f64);
            retia_obs::metrics::observe("grad.norm", norm as f64);
            self.opt.step(self.model.store_mut());
            self.model.store_mut().zero_grad();
        }
        retia_obs::metrics::inc("train.steps");
        EpochLoss { entity: le as f64, relation: lr as f64, joint }
    }

    /// Shape dry run (milliseconds, no floating-point work) before
    /// committing to hours of gradient steps: a mis-wired configuration
    /// fails here with the module and paper equation named instead of deep
    /// inside an epoch.
    fn check_wiring(&self) {
        let report = self.model.validate();
        assert!(report.is_clean(), "model failed shape validation:\n{report}");
    }

    /// Scans every parameter gradient for non-finite values (the NaN
    /// watchdog) and, at `Debug` verbosity, records per-parameter L2-norm
    /// gauges. The common all-finite path is a single pass per tensor.
    fn check_gradients(&self, step: u64) {
        if !retia_obs::enabled() {
            return;
        }
        let per_param = retia_obs::log_level() >= retia_obs::Level::Debug;
        for (name, grad) in self.model.store().iter_grads() {
            if per_param {
                let norm = (grad.norm_sq() as f64).sqrt();
                retia_obs::metrics::set_gauge(&format!("grad.norm.{name}"), norm);
            }
            if retia_obs::watchdog::count_non_finite(grad.data()) > 0 {
                retia_obs::watchdog::check_slice(&format!("grad.{name}"), step, grad.data());
            }
        }
    }

    /// General training: iterates chronologically over the training
    /// snapshots each epoch, early-stopping when validation entity MRR has
    /// not improved for `cfg.patience` consecutive epochs (the paper's
    /// protocol). Returns the per-epoch loss history.
    pub fn fit(&mut self, ctx: &TkgContext) -> Vec<EpochLoss> {
        self.check_wiring();
        self.loss_history.clear();
        let mut best_mrr = f64::NEG_INFINITY;
        let mut best_params: Option<retia_tensor::ParamStore> = None;
        let mut bad_epochs = 0usize;

        for epoch in 0..self.cfg.epochs {
            let (mut se, mut sr, mut sj) = (0.0f64, 0.0f64, 0.0f64);
            let mut n = 0usize;
            // Skip index 0: there is no history to forecast it from.
            for &idx in &ctx.train_idx {
                if idx == 0 {
                    continue;
                }
                let l = self.train_step(ctx, idx);
                se += l.entity;
                sr += l.relation;
                sj += l.joint;
                n += 1;
            }
            let denom = n.max(1) as f64;
            let mean = EpochLoss { entity: se / denom, relation: sr / denom, joint: sj / denom };
            self.loss_history.push(mean);
            retia_obs::metrics::set_gauge("loss.epoch.entity", mean.entity);
            retia_obs::metrics::set_gauge("loss.epoch.relation", mean.relation);
            retia_obs::metrics::set_gauge("loss.epoch.joint", mean.joint);
            retia_obs::event!(
                retia_obs::Level::Info,
                "train.epoch",
                epoch = epoch,
                entity = mean.entity,
                relation = mean.relation,
                joint = mean.joint;
                format!(
                    "epoch {:>3}  loss {:.4} (entity {:.4}, relation {:.4})",
                    epoch, mean.joint, mean.entity, mean.relation
                )
            );

            if self.cfg.patience > 0 {
                let report = {
                    let _t = retia_obs::span!("eval.validation", epoch = epoch);
                    self.evaluate_offline(ctx, Split::Valid)
                };
                let mrr = report.entity_raw.mrr();
                retia_obs::metrics::set_gauge("valid.entity_mrr", mrr);
                if mrr > best_mrr {
                    best_mrr = mrr;
                    best_params = Some(self.model.store().clone());
                    bad_epochs = 0;
                } else {
                    bad_epochs += 1;
                    if bad_epochs >= self.cfg.patience {
                        retia_obs::event!(
                            retia_obs::Level::Info,
                            "train.early_stop",
                            epoch = epoch,
                            best_mrr = best_mrr;
                            format!(
                                "early stop at epoch {epoch}: validation MRR stalled at {best_mrr:.4}"
                            )
                        );
                        break;
                    }
                }
            }
        }
        if let Some(best) = best_params {
            self.model.store_mut().copy_values_from(&best);
        }
        self.loss_history.clone()
    }

    /// Evaluates a split following `cfg.online`: with online continual
    /// training, each evaluated timestamp's facts are trained on (with
    /// `cfg.online_steps` gradient steps) after being scored, before moving
    /// to the next timestamp — the paper's time-variability strategy.
    pub fn evaluate(&mut self, ctx: &TkgContext, split: Split) -> EvalReport {
        self.check_wiring();
        if self.cfg.online {
            self.evaluate_online(ctx, split)
        } else {
            self.evaluate_offline(ctx, split)
        }
    }

    /// Evaluation without parameter updates.
    pub fn evaluate_offline(&mut self, ctx: &TkgContext, split: Split) -> EvalReport {
        let mut report = EvalReport::default();
        for &idx in ctx.split_indices(split) {
            self.score_snapshot(ctx, idx, &mut report);
        }
        report
    }

    /// Evaluation with online continual training.
    pub fn evaluate_online(&mut self, ctx: &TkgContext, split: Split) -> EvalReport {
        let mut report = EvalReport::default();
        let indices: Vec<usize> = ctx.split_indices(split).to_vec();
        for idx in indices {
            self.score_snapshot(ctx, idx, &mut report);
            for _ in 0..self.cfg.online_steps {
                self.train_step(ctx, idx);
            }
        }
        report
    }

    /// Scores one snapshot's queries into `report`.
    fn score_snapshot(&self, ctx: &TkgContext, idx: usize, report: &mut EvalReport) {
        let _t = retia_obs::span!("eval.snapshot", idx = idx);
        let (history, hypers) = ctx.history(idx, self.cfg.k);
        let target = &ctx.snapshots[idx];

        // ---- entity forecasting (both directions) ----
        let (subjects, rels, targets) = entity_queries(target, ctx.num_relations);
        let probs = self.model.predict_entity(history, hypers, subjects.clone(), rels.clone());
        let filters = entity_filters(target, ctx.num_relations);
        // Queries are ranked in parallel over fixed chunks with the partial
        // accumulators merged in chunk order, so the report is the same at
        // any thread count.
        let (raw, filtered) = collect_paired_metrics(targets.len(), probs.cols(), |i| {
            let scores = probs.row(i);
            let t = targets[i] as usize;
            (rank_of(scores, t), rank_of_filtered(scores, t, &filters[i]))
        });
        report.entity_raw.merge(&raw);
        report.entity_filtered.merge(&filtered);

        // ---- relation forecasting ----
        let (rs, ro, rt) = relation_queries(target);
        let probs = self.model.predict_relation(history, hypers, rs.clone(), ro.clone());
        let rfilters = relation_filters(target);
        let (raw, filtered) = collect_paired_metrics(rt.len(), probs.cols(), |i| {
            let scores = probs.row(i);
            let t = rt[i] as usize;
            (rank_of(scores, t), rank_of_filtered(scores, t, &rfilters[i]))
        });
        report.relation_raw.merge(&raw);
        report.relation_filtered.merge(&filtered);
    }
}

/// Time-aware filter sets for the entity queries of a snapshot: for query
/// `(s, r)`, every true object at this timestamp (and symmetrically for
/// inverse queries).
fn entity_filters(snap: &Snapshot, num_relations: usize) -> Vec<FilterSet> {
    use std::collections::HashMap;
    let m = num_relations as u32;
    let mut truths: HashMap<(u32, u32), FilterSet> = HashMap::new();
    for q in &snap.facts {
        truths.entry((q.s, q.r)).or_default().insert(q.o);
        truths.entry((q.o, q.r + m)).or_default().insert(q.s);
    }
    let mut out = Vec::with_capacity(snap.facts.len() * 2);
    for q in &snap.facts {
        out.push(truths[&(q.s, q.r)].clone());
        out.push(truths[&(q.o, q.r + m)].clone());
    }
    out
}

/// Time-aware filter sets for relation queries: for query `(s, o)`, every
/// true relation at this timestamp.
fn relation_filters(snap: &Snapshot) -> Vec<FilterSet> {
    use std::collections::HashMap;
    let mut truths: HashMap<(u32, u32), FilterSet> = HashMap::new();
    for q in &snap.facts {
        truths.entry((q.s, q.o)).or_default().insert(q.r);
    }
    snap.facts.iter().map(|q| truths[&(q.s, q.o)].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RetiaConfig;
    use retia_data::SyntheticConfig;

    fn tiny_setup(epochs: usize) -> (Trainer, TkgContext) {
        let ds = SyntheticConfig::tiny(4).generate();
        let ctx = TkgContext::new(&ds);
        let cfg = RetiaConfig {
            dim: 8,
            channels: 4,
            k: 2,
            epochs,
            patience: 0,
            online: false,
            ..Default::default()
        };
        let model = Retia::new(&cfg, &ds);
        (Trainer::new(model, cfg), ctx)
    }

    #[test]
    fn train_step_reduces_loss_over_steps() {
        let ds = SyntheticConfig::tiny(4).generate();
        let ctx = TkgContext::new(&ds);
        let cfg = RetiaConfig {
            dim: 8,
            channels: 4,
            k: 2,
            lr: 5e-3,
            dropout: 0.0,
            patience: 0,
            online: false,
            ..Default::default()
        };
        let model = Retia::new(&cfg, &ds);
        let mut trainer = Trainer::new(model, cfg);
        let idx = *ctx.train_idx.last().unwrap();
        let first = trainer.train_step(&ctx, idx).joint;
        let mut last = first;
        for _ in 0..60 {
            last = trainer.train_step(&ctx, idx).joint;
        }
        assert!(last < first * 0.8, "loss did not decrease: first {first}, last {last}");
    }

    #[test]
    fn fit_records_loss_history() {
        let (mut trainer, ctx) = tiny_setup(2);
        let hist = trainer.fit(&ctx);
        assert_eq!(hist.len(), 2);
        assert!(hist[1].joint <= hist[0].joint * 1.2, "loss exploded: {hist:?}");
        for l in &hist {
            assert!(l.joint.is_finite() && l.entity.is_finite() && l.relation.is_finite());
        }
    }

    #[test]
    fn evaluate_produces_consistent_counts() {
        let (mut trainer, ctx) = tiny_setup(1);
        trainer.fit(&ctx);
        let report = trainer.evaluate_offline(&ctx, Split::Test);
        let test_facts: usize = ctx.split_fact_count(Split::Test);
        assert_eq!(report.entity_raw.count(), test_facts * 2);
        assert_eq!(report.relation_raw.count(), test_facts);
        assert!(report.entity_raw.mrr() > 0.0);
        // Filtered ranks can only be at least as good as raw ranks.
        assert!(report.entity_filtered.mrr() >= report.entity_raw.mrr() - 1e-9);
        assert!(report.relation_filtered.mrr() >= report.relation_raw.mrr() - 1e-9);
    }

    #[test]
    fn online_evaluation_updates_parameters() {
        let (mut trainer, ctx) = tiny_setup(1);
        trainer.cfg.online = true;
        trainer.fit(&ctx);
        let before = trainer.model.store().value("ent0").clone();
        let _ = trainer.evaluate(&ctx, Split::Test);
        let after = trainer.model.store().value("ent0");
        assert!(before.max_abs_diff(after) > 0.0, "online eval must update params");
    }

    #[test]
    fn offline_evaluation_is_pure() {
        let (mut trainer, ctx) = tiny_setup(1);
        trainer.fit(&ctx);
        let before = trainer.model.store().value("ent0").clone();
        let r1 = trainer.evaluate_offline(&ctx, Split::Test);
        let r2 = trainer.evaluate_offline(&ctx, Split::Test);
        assert_eq!(before, *trainer.model.store().value("ent0"));
        assert_eq!(r1.entity_raw, r2.entity_raw, "offline eval must be deterministic");
    }

    #[test]
    fn nan_watchdog_fires_within_first_steps_of_divergent_run() {
        let (sink, handle) = retia_obs::CaptureSink::new();
        let id = retia_obs::add_sink(Box::new(sink));
        let me = retia_obs::current_thread();
        retia_obs::watchdog::reset();

        let ds = SyntheticConfig::tiny(4).generate();
        let ctx = TkgContext::new(&ds);
        // An absurd learning rate makes Adam catapult the parameters to
        // ~1e30 in one step; the next forward overflows into inf/NaN.
        let cfg = RetiaConfig {
            dim: 8,
            channels: 4,
            k: 2,
            lr: 1e30,
            dropout: 0.0,
            patience: 0,
            online: false,
            ..Default::default()
        };
        let model = Retia::new(&cfg, &ds);
        let mut trainer = Trainer::new(model, cfg);
        let idx = *ctx.train_idx.last().unwrap();
        for _ in 0..6 {
            trainer.train_step(&ctx, idx);
        }
        retia_obs::remove_sink(id);

        let events: Vec<_> = handle
            .events()
            .into_iter()
            .filter(|e| e.thread == me && e.name.starts_with("nonfinite."))
            .collect();
        assert!(!events.is_empty(), "divergent run must trip the NaN watchdog");
        for ev in &events {
            assert_eq!(ev.level, retia_obs::Level::Warn);
            let step = ev.fields.iter().find(|(k, _)| k == "step").map(|(_, v)| *v);
            assert!(
                matches!(step, Some(s) if (1.0..=6.0).contains(&s)),
                "watchdog fired outside the first steps: {step:?}"
            );
        }
    }

    #[test]
    fn nan_watchdog_stays_quiet_on_healthy_run() {
        let (sink, handle) = retia_obs::CaptureSink::new();
        let id = retia_obs::add_sink(Box::new(sink));
        let me = retia_obs::current_thread();

        let (mut trainer, ctx) = tiny_setup(1);
        let idx = *ctx.train_idx.last().unwrap();
        for _ in 0..5 {
            trainer.train_step(&ctx, idx);
        }
        retia_obs::remove_sink(id);

        let fired: Vec<_> = handle
            .events()
            .into_iter()
            .filter(|e| e.thread == me && e.name.starts_with("nonfinite."))
            .collect();
        assert!(fired.is_empty(), "healthy run fired the watchdog: {fired:?}");
    }

    #[test]
    fn early_stopping_restores_best_params() {
        let ds = SyntheticConfig::tiny(9).generate();
        let ctx = TkgContext::new(&ds);
        let cfg = RetiaConfig {
            dim: 8,
            channels: 4,
            k: 2,
            epochs: 3,
            patience: 1,
            online: false,
            ..Default::default()
        };
        let model = Retia::new(&cfg, &ds);
        let mut trainer = Trainer::new(model, cfg);
        trainer.fit(&ctx);
        // After fit with patience, the restored parameters reproduce the best
        // validation MRR observed during training.
        let report = trainer.evaluate_offline(&ctx, Split::Valid);
        assert!(report.entity_raw.mrr() > 0.0);
    }
}
