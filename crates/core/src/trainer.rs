//! Training loops: general training with early stopping, and the online
//! continual training the paper uses at evaluation time (the
//! time-variability strategy, §III-F).
//!
//! Training here is fault-tolerant. A [`RecoveryPolicy`] turns the obs NaN
//! watchdog from warn-only into a state machine: non-finite losses or
//! gradients **skip** the optimizer step; a streak of skips **rolls back**
//! to the last-good in-memory snapshot with learning-rate backoff; an
//! exhausted retry budget **aborts** with a [`DivergenceReport`] instead of
//! training on garbage. A [`crate::CheckpointPolicy`] additionally persists
//! full train state ([`crate::checkpoint`]) so a killed process resumes
//! bit-identically. Faults can be injected on purpose via
//! [`retia_analyze::ChaosPlan`] to prove all of this works.

use retia_analyze::ChaosPlan;
use retia_eval::{collect_paired_metrics, rank_of, rank_of_filtered, FilterSet, Metrics};
use retia_graph::{HyperSnapshot, Snapshot};
use retia_tensor::optim::{clip_grad_norm, Adam};
use retia_tensor::{Graph, ParamStore};

use crate::checkpoint::CheckpointPolicy;
use crate::config::RetiaConfig;
use crate::context::{Split, TkgContext};
use crate::model::{entity_queries, last_k, relation_queries, Retia};

/// Per-epoch mean losses (the series plotted in Figures 3 and 4).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpochLoss {
    /// Mean entity-forecasting loss `L_e`.
    pub entity: f64,
    /// Mean relation-forecasting loss `L_r`.
    pub relation: f64,
    /// Mean joint loss `λL_e + (1-λ)L_r`.
    pub joint: f64,
}

/// Evaluation results for one split.
#[derive(Clone, Copy, Debug, Default)]
pub struct EvalReport {
    /// Entity forecasting under the raw setting (the paper's headline
    /// metric; subject and object directions averaged).
    pub entity_raw: Metrics,
    /// Entity forecasting under the time-aware filtered setting.
    pub entity_filtered: Metrics,
    /// Relation forecasting under the raw setting.
    pub relation_raw: Metrics,
    /// Relation forecasting under the time-aware filtered setting.
    pub relation_filtered: Metrics,
}

/// How the trainer reacts to non-finite losses/gradients. Without a policy
/// (the default) the watchdog only warns and training proceeds as the
/// reference implementation would — NaNs and all.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryPolicy {
    /// Consecutive bad (skipped) steps tolerated before rolling back.
    pub max_bad_steps: u64,
    /// Rollbacks allowed before the run aborts with [`TrainError::Diverged`].
    pub max_rollbacks: u64,
    /// Learning-rate multiplier applied at each rollback (0 < backoff < 1).
    pub lr_backoff: f32,
    /// Applied (non-skipped) steps between refreshes of the last-good
    /// in-memory snapshot.
    pub snapshot_every: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy { max_bad_steps: 3, max_rollbacks: 4, lr_backoff: 0.5, snapshot_every: 8 }
    }
}

/// Diagnostic attached to [`TrainError::Diverged`]: what the run looked
/// like when the recovery budget ran out.
#[derive(Clone, Copy, Debug)]
pub struct DivergenceReport {
    /// Global step at which the run aborted.
    pub step: u64,
    /// Rollbacks performed before giving up.
    pub rollbacks: u64,
    /// Learning rate after all backoffs.
    pub final_lr: f32,
    /// Last observed joint loss (typically NaN/inf).
    pub last_loss: f64,
}

impl std::fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "training diverged: recovery budget exhausted at step {} after {} rollback(s) \
             (lr backed off to {:.3e}, last joint loss {}). Likely causes: learning rate too \
             high, corrupt input batch, or a numerically unstable configuration",
            self.step, self.rollbacks, self.final_lr, self.last_loss
        )
    }
}

/// Training/resume failure.
#[derive(Debug)]
pub enum TrainError {
    /// The run diverged beyond the [`RecoveryPolicy`] budget.
    Diverged(DivergenceReport),
    /// A checkpoint could not be written or read.
    Checkpoint(retia_tensor::CheckpointError),
    /// A checkpoint directory/manifest/config was structurally invalid.
    Invalid(String),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Diverged(report) => report.fmt(f),
            TrainError::Checkpoint(e) => e.fmt(f),
            TrainError::Invalid(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for TrainError {}

impl From<retia_tensor::CheckpointError> for TrainError {
    fn from(e: retia_tensor::CheckpointError) -> Self {
        TrainError::Checkpoint(e)
    }
}

/// Last-good state the recovery machine can roll back to. The [`ParamStore`]
/// clone carries values *and* Adam moments; `adam_t` restores the
/// bias-correction schedule.
struct GoodState {
    store: ParamStore,
    adam_t: u64,
}

#[derive(Default)]
struct RecoveryState {
    snapshot: Option<GoodState>,
    /// Consecutive bad steps since the last applied step.
    streak: u64,
    /// Rollbacks performed so far in this run.
    rollbacks: u64,
    /// Applied steps since the snapshot was last refreshed.
    applied: u64,
}

/// Drives general training, online continual training and evaluation of a
/// [`Retia`] model (and is reused by the RE-GCN-style baselines, which are
/// ablated `Retia` configurations).
pub struct Trainer {
    /// The model being trained.
    pub model: Retia,
    /// Training hyperparameters (shared with the model's config).
    pub cfg: RetiaConfig,
    pub(crate) opt: Adam,
    pub(crate) step_seed: u64,
    pub(crate) steps: u64,
    /// Loss history of the last `fit` call (including epochs restored from
    /// a checkpoint when resuming).
    pub loss_history: Vec<EpochLoss>,
    /// Epochs completed so far; `fit` continues from here after a resume.
    pub(crate) epochs_done: usize,
    pub(crate) best_mrr: f64,
    pub(crate) best_params: Option<ParamStore>,
    pub(crate) bad_epochs: usize,
    pub(crate) last_valid_mrr: Option<f64>,
    recovery: Option<RecoveryPolicy>,
    recovery_state: RecoveryState,
    chaos: ChaosPlan,
    checkpoint: Option<CheckpointPolicy>,
}

impl Trainer {
    /// Creates a trainer around a model. Divergence recovery, chaos
    /// injection and periodic checkpointing are all off by default; see
    /// [`Trainer::set_recovery`], [`Trainer::set_chaos`],
    /// [`Trainer::set_checkpointing`].
    pub fn new(model: Retia, cfg: RetiaConfig) -> Self {
        // Results are bit-identical at any thread count, so applying the
        // config knob here never changes what a run computes — only how fast.
        retia_tensor::parallel::set_num_threads(cfg.num_threads);
        let opt = Adam::new(cfg.lr);
        Trainer {
            model,
            cfg,
            opt,
            step_seed: 0x5EED,
            steps: 0,
            loss_history: Vec::new(),
            epochs_done: 0,
            best_mrr: f64::NEG_INFINITY,
            best_params: None,
            bad_epochs: 0,
            last_valid_mrr: None,
            recovery: None,
            recovery_state: RecoveryState::default(),
            chaos: ChaosPlan::none(),
            checkpoint: None,
        }
    }

    /// Enables (or disables) the divergence-recovery state machine.
    pub fn set_recovery(&mut self, policy: Option<RecoveryPolicy>) {
        self.recovery = policy;
        self.recovery_state = RecoveryState::default();
    }

    /// Arms a deterministic fault plan (testing). Chaos steps are
    /// zero-based over `train_step` invocations.
    pub fn set_chaos(&mut self, plan: ChaosPlan) {
        self.chaos = plan;
    }

    /// Enables (or disables) periodic train-state checkpoints during `fit`.
    pub fn set_checkpointing(&mut self, policy: Option<CheckpointPolicy>) {
        self.checkpoint = policy;
    }

    /// Global gradient steps taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Epochs of `fit` completed so far (nonzero after a resume).
    pub fn epochs_done(&self) -> usize {
        self.epochs_done
    }

    /// One gradient step: forecast snapshot `target_idx` from its history.
    /// Returns the (entity, relation, joint) loss values.
    ///
    /// Infallible wrapper over [`Trainer::try_train_step`] for callers
    /// without a recovery policy (where no error path exists).
    pub fn train_step(&mut self, ctx: &TkgContext, target_idx: usize) -> EpochLoss {
        self.try_train_step(ctx, target_idx)
            .map_err(|e| e.to_string())
            .expect("training diverged beyond the recovery budget; use try_train_step to handle it")
    }

    /// One gradient step with divergence recovery. Without a
    /// [`RecoveryPolicy`] this never fails and behaves exactly like the
    /// reference implementation (NaNs flow into the optimizer); with one,
    /// bad steps are skipped/rolled back and an exhausted budget returns
    /// [`TrainError::Diverged`].
    pub fn try_train_step(
        &mut self,
        ctx: &TkgContext,
        target_idx: usize,
    ) -> Result<EpochLoss, TrainError> {
        // Seed the last-good snapshot from the pre-step state so a rollback
        // target exists even if the very first step diverges.
        if self.recovery.is_some() && self.recovery_state.snapshot.is_none() {
            self.refresh_snapshot();
        }
        self.steps += 1;
        let step = self.steps;
        let _t = retia_obs::span!("train.step", step = step);
        let (history, hypers) = ctx.history(target_idx, self.cfg.k);
        let target = &ctx.snapshots[target_idx];
        self.step_seed = self.step_seed.wrapping_add(1);
        let mut g = Graph::new(true, self.step_seed);
        let states = self.model.evolve(&mut g, history, hypers);
        let decode_states = last_k(&states, self.cfg.k).to_vec();
        let (loss, le, lr) = self.model.loss(&mut g, &decode_states, target);
        let joint = g.value(loss).item() as f64;
        retia_obs::watchdog::check_value("loss.joint", step, joint);
        retia_obs::watchdog::check_value("loss.entity", step, le as f64);
        retia_obs::watchdog::check_value("loss.relation", step, lr as f64);
        retia_obs::metrics::observe("loss.joint", joint);
        {
            let _bw = retia_obs::span!("backward.autodiff");
            g.backward(loss, self.model.store_mut());
        }
        // Chaos injection point: poison gradients between backward and the
        // optimizer step, exactly where a real numerical blow-up lands.
        // Chaos steps are zero-based.
        if let Some(fault) = self.chaos.grad_fault(step - 1) {
            for (_, grad) in self.model.store_mut().iter_grads_mut() {
                if let Some(x) = grad.data_mut().first_mut() {
                    *x = fault.value();
                }
            }
        }
        {
            let _opt = retia_obs::span!("backward.optim");
            self.check_gradients(step);
            let bad = !joint.is_finite() || self.grads_non_finite();
            match self.recovery {
                // Legacy path: no recovery, the optimizer steps regardless
                // (the watchdog above has already warned).
                None => self.apply_optimizer_step(),
                Some(policy) if !bad => {
                    self.recovery_state.streak = 0;
                    self.apply_optimizer_step();
                    self.recovery_state.applied += 1;
                    if self.recovery_state.applied >= policy.snapshot_every {
                        self.refresh_snapshot();
                    }
                }
                Some(policy) => {
                    // Bad step: never let non-finite gradients touch the
                    // parameters or Adam moments.
                    self.model.store_mut().zero_grad();
                    self.recovery_state.streak += 1;
                    retia_obs::watchdog::recovery_skip(step, self.recovery_state.streak);
                    if self.recovery_state.streak >= policy.max_bad_steps {
                        self.rollback_or_abort(policy, step, joint)?;
                    }
                }
            }
        }
        retia_obs::metrics::inc("train.steps");
        Ok(EpochLoss { entity: le as f64, relation: lr as f64, joint })
    }

    /// Clip → Adam step → zero gradients (the healthy-step tail).
    fn apply_optimizer_step(&mut self) {
        // clip_grad_norm returns the pre-clip global norm: a free
        // training-health gauge. NaN gradients pass through clipping
        // unscaled (`NaN > max` is false), which is why the watchdog
        // scan sits between backward and the optimizer step.
        let norm = clip_grad_norm(self.model.store_mut(), self.cfg.grad_clip);
        retia_obs::metrics::set_gauge("grad.norm", norm as f64);
        retia_obs::metrics::observe("grad.norm", norm as f64);
        self.opt.step(self.model.store_mut());
        self.model.store_mut().zero_grad();
    }

    /// Captures the current (post-update) state as the rollback target.
    fn refresh_snapshot(&mut self) {
        self.recovery_state.snapshot =
            Some(GoodState { store: self.model.store().clone(), adam_t: self.opt.steps() });
        self.recovery_state.applied = 0;
    }

    /// Rolls back to the last-good snapshot with learning-rate backoff, or
    /// aborts with a [`DivergenceReport`] when the budget is exhausted.
    fn rollback_or_abort(
        &mut self,
        policy: RecoveryPolicy,
        step: u64,
        last_loss: f64,
    ) -> Result<(), TrainError> {
        self.recovery_state.rollbacks += 1;
        let rollbacks = self.recovery_state.rollbacks;
        if rollbacks > policy.max_rollbacks {
            retia_obs::watchdog::recovery_abort(step, rollbacks - 1);
            return Err(TrainError::Diverged(DivergenceReport {
                step,
                rollbacks: rollbacks - 1,
                final_lr: self.opt.lr,
                last_loss,
            }));
        }
        let snap = self
            .recovery_state
            .snapshot
            .as_ref()
            .expect("recovery snapshot seeded before the first step");
        *self.model.store_mut() = snap.store.clone();
        self.opt.set_steps(snap.adam_t);
        self.opt.lr *= policy.lr_backoff;
        retia_obs::watchdog::recovery_rollback(step, rollbacks, self.opt.lr as f64);
        self.recovery_state.streak = 0;
        Ok(())
    }

    /// True if any parameter gradient holds a NaN/±inf.
    fn grads_non_finite(&self) -> bool {
        self.model
            .store()
            .iter_grads()
            .any(|(_, g)| retia_obs::watchdog::count_non_finite(g.data()) > 0)
    }

    /// Pre-flight before committing to hours of gradient steps: the shape
    /// dry run (a mis-wired configuration fails with the module and paper
    /// equation named), then the value audit (an op that can introduce
    /// NaN/inf under the parameter envelope, or a parameter whose gradient
    /// disposition disagrees with the configuration, fails the same way).
    /// Both cost milliseconds and no floating-point tensor work.
    fn check_wiring(&self) {
        let report = self.model.validate();
        assert!(report.is_clean(), "model failed shape validation:\n{report}");
        let audit = self.model.audit();
        assert!(audit.is_clean(), "model failed the value audit:\n{audit}");
    }

    /// Scans every parameter gradient for non-finite values (the NaN
    /// watchdog) and, at `Debug` verbosity, records per-parameter L2-norm
    /// gauges. The common all-finite path is a single pass per tensor.
    fn check_gradients(&self, step: u64) {
        if !retia_obs::enabled() {
            return;
        }
        let per_param = retia_obs::log_level() >= retia_obs::Level::Debug;
        for (name, grad) in self.model.store().iter_grads() {
            if per_param {
                let norm = (grad.norm_sq() as f64).sqrt();
                retia_obs::metrics::set_gauge(&format!("grad.norm.{name}"), norm);
            }
            if retia_obs::watchdog::count_non_finite(grad.data()) > 0 {
                retia_obs::watchdog::check_slice(&format!("grad.{name}"), step, grad.data());
            }
        }
    }

    /// General training: iterates chronologically over the training
    /// snapshots each epoch, early-stopping when validation entity MRR has
    /// not improved for `cfg.patience` consecutive epochs (the paper's
    /// protocol). Returns the per-epoch loss history.
    ///
    /// Infallible wrapper over [`Trainer::try_fit`] for callers without a
    /// recovery or checkpoint policy (where no error path exists).
    pub fn fit(&mut self, ctx: &TkgContext) -> Vec<EpochLoss> {
        self.try_fit(ctx)
            .map_err(|e| e.to_string())
            .expect("training failed; use try_fit to handle divergence/checkpoint errors")
    }

    /// [`Trainer::fit`] with divergence recovery and periodic
    /// checkpointing. Resumed trainers (see `Trainer::resume`) continue
    /// from `epochs_done` instead of epoch 0, bit-identically to a run
    /// that was never interrupted.
    pub fn try_fit(&mut self, ctx: &TkgContext) -> Result<Vec<EpochLoss>, TrainError> {
        self.check_wiring();
        if self.epochs_done == 0 {
            self.loss_history.clear();
            self.best_mrr = f64::NEG_INFINITY;
            self.best_params = None;
            self.bad_epochs = 0;
            self.last_valid_mrr = None;
        }

        for epoch in self.epochs_done..self.cfg.epochs {
            let (mut se, mut sr, mut sj) = (0.0f64, 0.0f64, 0.0f64);
            let mut n = 0usize;
            // Skip index 0: there is no history to forecast it from.
            for &idx in &ctx.train_idx {
                if idx == 0 {
                    continue;
                }
                let l = self.try_train_step(ctx, idx)?;
                se += l.entity;
                sr += l.relation;
                sj += l.joint;
                n += 1;
            }
            let denom = n.max(1) as f64;
            let mean = EpochLoss { entity: se / denom, relation: sr / denom, joint: sj / denom };
            self.loss_history.push(mean);
            retia_obs::metrics::set_gauge("loss.epoch.entity", mean.entity);
            retia_obs::metrics::set_gauge("loss.epoch.relation", mean.relation);
            retia_obs::metrics::set_gauge("loss.epoch.joint", mean.joint);
            retia_obs::event!(
                retia_obs::Level::Info,
                "train.epoch",
                epoch = epoch,
                entity = mean.entity,
                relation = mean.relation,
                joint = mean.joint;
                format!(
                    "epoch {:>3}  loss {:.4} (entity {:.4}, relation {:.4})",
                    epoch, mean.joint, mean.entity, mean.relation
                )
            );

            let mut stop = false;
            if self.cfg.patience > 0 {
                let report = {
                    let _t = retia_obs::span!("eval.validation", epoch = epoch);
                    self.evaluate_offline(ctx, Split::Valid)
                };
                let mrr = report.entity_raw.mrr();
                retia_obs::metrics::set_gauge("valid.entity_mrr", mrr);
                self.last_valid_mrr = Some(mrr);
                if mrr > self.best_mrr {
                    self.best_mrr = mrr;
                    self.best_params = Some(self.model.store().clone());
                    self.bad_epochs = 0;
                } else {
                    self.bad_epochs += 1;
                    if self.bad_epochs >= self.cfg.patience {
                        let best_mrr = self.best_mrr;
                        retia_obs::event!(
                            retia_obs::Level::Info,
                            "train.early_stop",
                            epoch = epoch,
                            best_mrr = best_mrr;
                            format!(
                                "early stop at epoch {epoch}: validation MRR stalled at {best_mrr:.4}"
                            )
                        );
                        stop = true;
                    }
                }
            }
            self.epochs_done = epoch + 1;
            if let Some(policy) = self.checkpoint.clone() {
                if policy.due(self.epochs_done) || stop || self.epochs_done == self.cfg.epochs {
                    self.save_rotating(&policy)?;
                }
            }
            if stop {
                break;
            }
        }
        if let Some(best) = &self.best_params {
            self.model.store_mut().copy_values_from(best);
        }
        Ok(self.loss_history.clone())
    }

    /// Incremental fit on a standalone snapshot window (the continual
    /// trainer's entry point in retia-serve): forecasts the **last**
    /// snapshot of `snaps` from the preceding ones and takes `steps`
    /// gradient steps on that objective, returning the mean loss. The
    /// global step counter keeps advancing across calls, so a chaos plan
    /// armed on this trainer sweeps its fault window exactly once over the
    /// whole online run rather than restarting per window.
    ///
    /// Divergence recovery and chaos behave exactly as in
    /// [`Trainer::try_train_step`]; checkpointing stays with the caller.
    pub fn fit_window(
        &mut self,
        snaps: &[Snapshot],
        hypers: &[HyperSnapshot],
        steps: usize,
    ) -> Result<EpochLoss, TrainError> {
        if snaps.len() < 2 {
            return Err(TrainError::Invalid(format!(
                "fit_window needs at least 2 snapshots (history + target), got {}",
                snaps.len()
            )));
        }
        if snaps.len() != hypers.len() {
            return Err(TrainError::Invalid(format!(
                "fit_window: {} snapshots but {} hyper snapshots",
                snaps.len(),
                hypers.len()
            )));
        }
        let ctx = TkgContext {
            snapshots: snaps.to_vec(),
            hypers: hypers.to_vec(),
            train_idx: Vec::new(),
            valid_idx: Vec::new(),
            test_idx: Vec::new(),
            num_entities: self.model.num_entities(),
            num_relations: self.model.num_relations(),
        };
        let target_idx = ctx.snapshots.len() - 1;
        let (mut se, mut sr, mut sj) = (0.0f64, 0.0f64, 0.0f64);
        let n = steps.max(1);
        for _ in 0..n {
            let l = self.try_train_step(&ctx, target_idx)?;
            se += l.entity;
            sr += l.relation;
            sj += l.joint;
        }
        let denom = n as f64;
        Ok(EpochLoss { entity: se / denom, relation: sr / denom, joint: sj / denom })
    }

    /// Resets the optimizer's learning rate (undoing accumulated recovery
    /// backoff). The online supervisor calls this when it restores the
    /// trainer to a last-good parameter snapshot after a divergence.
    pub fn set_lr(&mut self, lr: f32) {
        self.opt.lr = lr;
    }

    /// Evaluates a split following `cfg.online`: with online continual
    /// training, each evaluated timestamp's facts are trained on (with
    /// `cfg.online_steps` gradient steps) after being scored, before moving
    /// to the next timestamp — the paper's time-variability strategy.
    ///
    /// Infallible wrapper over [`Trainer::try_evaluate`].
    pub fn evaluate(&mut self, ctx: &TkgContext, split: Split) -> EvalReport {
        self.try_evaluate(ctx, split)
            .map_err(|e| e.to_string())
            .expect("online evaluation diverged; use try_evaluate to handle it")
    }

    /// [`Trainer::evaluate`] with divergence recovery on the online
    /// continual-training steps.
    pub fn try_evaluate(
        &mut self,
        ctx: &TkgContext,
        split: Split,
    ) -> Result<EvalReport, TrainError> {
        self.check_wiring();
        if self.cfg.online {
            self.try_evaluate_online(ctx, split)
        } else {
            Ok(self.evaluate_offline(ctx, split))
        }
    }

    /// Evaluation without parameter updates.
    pub fn evaluate_offline(&mut self, ctx: &TkgContext, split: Split) -> EvalReport {
        let mut report = EvalReport::default();
        for &idx in ctx.split_indices(split) {
            self.score_snapshot(ctx, idx, &mut report);
        }
        report
    }

    /// Evaluation with online continual training (infallible wrapper).
    pub fn evaluate_online(&mut self, ctx: &TkgContext, split: Split) -> EvalReport {
        self.try_evaluate_online(ctx, split)
            .map_err(|e| e.to_string())
            .expect("online evaluation diverged; use try_evaluate_online to handle it")
    }

    /// Evaluation with online continual training.
    pub fn try_evaluate_online(
        &mut self,
        ctx: &TkgContext,
        split: Split,
    ) -> Result<EvalReport, TrainError> {
        let mut report = EvalReport::default();
        let indices: Vec<usize> = ctx.split_indices(split).to_vec();
        for idx in indices {
            self.score_snapshot(ctx, idx, &mut report);
            for _ in 0..self.cfg.online_steps {
                self.try_train_step(ctx, idx)?;
            }
        }
        Ok(report)
    }

    /// Scores one snapshot's queries into `report`.
    fn score_snapshot(&self, ctx: &TkgContext, idx: usize, report: &mut EvalReport) {
        let _t = retia_obs::span!("eval.snapshot", idx = idx);
        let (history, hypers) = ctx.history(idx, self.cfg.k);
        let target = &ctx.snapshots[idx];

        // ---- entity forecasting (both directions) ----
        let (subjects, rels, targets) = entity_queries(target, ctx.num_relations);
        let probs = self.model.predict_entity(history, hypers, subjects.clone(), rels.clone());
        let filters = entity_filters(target, ctx.num_relations);
        // Queries are ranked in parallel over fixed chunks with the partial
        // accumulators merged in chunk order, so the report is the same at
        // any thread count.
        let (raw, filtered) = collect_paired_metrics(targets.len(), probs.cols(), |i| {
            let scores = probs.row(i);
            let t = targets[i] as usize;
            (rank_of(scores, t), rank_of_filtered(scores, t, &filters[i]))
        });
        report.entity_raw.merge(&raw);
        report.entity_filtered.merge(&filtered);

        // ---- relation forecasting ----
        let (rs, ro, rt) = relation_queries(target);
        let probs = self.model.predict_relation(history, hypers, rs.clone(), ro.clone());
        let rfilters = relation_filters(target);
        let (raw, filtered) = collect_paired_metrics(rt.len(), probs.cols(), |i| {
            let scores = probs.row(i);
            let t = rt[i] as usize;
            (rank_of(scores, t), rank_of_filtered(scores, t, &rfilters[i]))
        });
        report.relation_raw.merge(&raw);
        report.relation_filtered.merge(&filtered);
    }
}

/// Time-aware filter sets for the entity queries of a snapshot: for query
/// `(s, r)`, every true object at this timestamp (and symmetrically for
/// inverse queries).
fn entity_filters(snap: &Snapshot, num_relations: usize) -> Vec<FilterSet> {
    use std::collections::HashMap;
    let m = num_relations as u32;
    let mut truths: HashMap<(u32, u32), FilterSet> = HashMap::new();
    for q in &snap.facts {
        truths.entry((q.s, q.r)).or_default().insert(q.o);
        truths.entry((q.o, q.r + m)).or_default().insert(q.s);
    }
    let mut out = Vec::with_capacity(snap.facts.len() * 2);
    for q in &snap.facts {
        out.push(truths[&(q.s, q.r)].clone());
        out.push(truths[&(q.o, q.r + m)].clone());
    }
    out
}

/// Time-aware filter sets for relation queries: for query `(s, o)`, every
/// true relation at this timestamp.
fn relation_filters(snap: &Snapshot) -> Vec<FilterSet> {
    use std::collections::HashMap;
    let mut truths: HashMap<(u32, u32), FilterSet> = HashMap::new();
    for q in &snap.facts {
        truths.entry((q.s, q.o)).or_default().insert(q.r);
    }
    snap.facts.iter().map(|q| truths[&(q.s, q.o)].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RetiaConfig;
    use retia_data::SyntheticConfig;

    fn tiny_setup(epochs: usize) -> (Trainer, TkgContext) {
        let ds = SyntheticConfig::tiny(4).generate();
        let ctx = TkgContext::new(&ds);
        let cfg = RetiaConfig {
            dim: 8,
            channels: 4,
            k: 2,
            epochs,
            patience: 0,
            online: false,
            ..Default::default()
        };
        let model = Retia::new(&cfg, &ds);
        (Trainer::new(model, cfg), ctx)
    }

    #[test]
    fn fit_window_trains_on_standalone_slices() {
        let (mut trainer, ctx) = tiny_setup(1);
        let end = ctx.snapshots.len().min(4);
        let snaps = &ctx.snapshots[..end];
        let hypers = &ctx.hypers[..end];
        let first = trainer.fit_window(snaps, hypers, 4).unwrap();
        assert!(first.joint.is_finite());
        assert_eq!(trainer.steps(), 4, "step counter advances across fit_window");
        let mut last = first.joint;
        for _ in 0..8 {
            last = trainer.fit_window(snaps, hypers, 4).unwrap().joint;
        }
        assert!(last < first.joint, "repeated window fits should reduce loss: {first:?} -> {last}");
    }

    #[test]
    fn fit_window_rejects_degenerate_windows() {
        let (mut trainer, ctx) = tiny_setup(1);
        let one = trainer.fit_window(&ctx.snapshots[..1], &ctx.hypers[..1], 2);
        assert!(matches!(one, Err(TrainError::Invalid(_))));
        let skewed = trainer.fit_window(&ctx.snapshots[..3], &ctx.hypers[..2], 2);
        assert!(matches!(skewed, Err(TrainError::Invalid(_))));
    }

    #[test]
    fn set_lr_undoes_recovery_backoff() {
        let (mut trainer, _) = tiny_setup(1);
        trainer.opt.lr = 1e-5;
        trainer.set_lr(0.001);
        assert_eq!(trainer.opt.lr, 0.001);
    }

    #[test]
    fn train_step_reduces_loss_over_steps() {
        let ds = SyntheticConfig::tiny(4).generate();
        let ctx = TkgContext::new(&ds);
        let cfg = RetiaConfig {
            dim: 8,
            channels: 4,
            k: 2,
            lr: 5e-3,
            dropout: 0.0,
            patience: 0,
            online: false,
            ..Default::default()
        };
        let model = Retia::new(&cfg, &ds);
        let mut trainer = Trainer::new(model, cfg);
        let idx = *ctx.train_idx.last().unwrap();
        let first = trainer.train_step(&ctx, idx).joint;
        let mut last = first;
        for _ in 0..60 {
            last = trainer.train_step(&ctx, idx).joint;
        }
        assert!(last < first * 0.8, "loss did not decrease: first {first}, last {last}");
    }

    #[test]
    fn fit_records_loss_history() {
        let (mut trainer, ctx) = tiny_setup(2);
        let hist = trainer.fit(&ctx);
        assert_eq!(hist.len(), 2);
        assert!(hist[1].joint <= hist[0].joint * 1.2, "loss exploded: {hist:?}");
        for l in &hist {
            assert!(l.joint.is_finite() && l.entity.is_finite() && l.relation.is_finite());
        }
    }

    #[test]
    fn evaluate_produces_consistent_counts() {
        let (mut trainer, ctx) = tiny_setup(1);
        trainer.fit(&ctx);
        let report = trainer.evaluate_offline(&ctx, Split::Test);
        let test_facts: usize = ctx.split_fact_count(Split::Test);
        assert_eq!(report.entity_raw.count(), test_facts * 2);
        assert_eq!(report.relation_raw.count(), test_facts);
        assert!(report.entity_raw.mrr() > 0.0);
        // Filtered ranks can only be at least as good as raw ranks.
        assert!(report.entity_filtered.mrr() >= report.entity_raw.mrr() - 1e-9);
        assert!(report.relation_filtered.mrr() >= report.relation_raw.mrr() - 1e-9);
    }

    #[test]
    fn online_evaluation_updates_parameters() {
        let (mut trainer, ctx) = tiny_setup(1);
        trainer.cfg.online = true;
        trainer.fit(&ctx);
        let before = trainer.model.store().value("ent0").clone();
        let _ = trainer.evaluate(&ctx, Split::Test);
        let after = trainer.model.store().value("ent0");
        assert!(before.max_abs_diff(after) > 0.0, "online eval must update params");
    }

    #[test]
    fn offline_evaluation_is_pure() {
        let (mut trainer, ctx) = tiny_setup(1);
        trainer.fit(&ctx);
        let before = trainer.model.store().value("ent0").clone();
        let r1 = trainer.evaluate_offline(&ctx, Split::Test);
        let r2 = trainer.evaluate_offline(&ctx, Split::Test);
        assert_eq!(before, *trainer.model.store().value("ent0"));
        assert_eq!(r1.entity_raw, r2.entity_raw, "offline eval must be deterministic");
    }

    #[test]
    fn nan_watchdog_fires_within_first_steps_of_divergent_run() {
        let (sink, handle) = retia_obs::CaptureSink::new();
        let id = retia_obs::add_sink(Box::new(sink));
        let me = retia_obs::current_thread();
        retia_obs::watchdog::reset();

        let ds = SyntheticConfig::tiny(4).generate();
        let ctx = TkgContext::new(&ds);
        // An absurd learning rate makes Adam catapult the parameters to
        // ~1e30 in one step; the next forward overflows into inf/NaN.
        let cfg = RetiaConfig {
            dim: 8,
            channels: 4,
            k: 2,
            lr: 1e30,
            dropout: 0.0,
            patience: 0,
            online: false,
            ..Default::default()
        };
        let model = Retia::new(&cfg, &ds);
        let mut trainer = Trainer::new(model, cfg);
        let idx = *ctx.train_idx.last().unwrap();
        for _ in 0..6 {
            trainer.train_step(&ctx, idx);
        }
        retia_obs::remove_sink(id);

        let events: Vec<_> = handle
            .events()
            .into_iter()
            .filter(|e| e.thread == me && e.name.starts_with("nonfinite."))
            .collect();
        assert!(!events.is_empty(), "divergent run must trip the NaN watchdog");
        for ev in &events {
            assert_eq!(ev.level, retia_obs::Level::Warn);
            let step = ev.fields.iter().find(|(k, _)| k == "step").map(|(_, v)| *v);
            assert!(
                matches!(step, Some(s) if (1.0..=6.0).contains(&s)),
                "watchdog fired outside the first steps: {step:?}"
            );
        }
    }

    #[test]
    fn nan_watchdog_stays_quiet_on_healthy_run() {
        let (sink, handle) = retia_obs::CaptureSink::new();
        let id = retia_obs::add_sink(Box::new(sink));
        let me = retia_obs::current_thread();

        let (mut trainer, ctx) = tiny_setup(1);
        let idx = *ctx.train_idx.last().unwrap();
        for _ in 0..5 {
            trainer.train_step(&ctx, idx);
        }
        retia_obs::remove_sink(id);

        let fired: Vec<_> = handle
            .events()
            .into_iter()
            .filter(|e| e.thread == me && e.name.starts_with("nonfinite."))
            .collect();
        assert!(fired.is_empty(), "healthy run fired the watchdog: {fired:?}");
    }

    #[test]
    fn chaos_storm_recovers_with_skip_then_rollback() {
        let (sink, handle) = retia_obs::CaptureSink::new();
        let id = retia_obs::add_sink(Box::new(sink));
        let me = retia_obs::current_thread();

        let (mut trainer, ctx) = tiny_setup(1);
        trainer.set_recovery(Some(RecoveryPolicy::default()));
        // NaN gradients at (zero-based) steps 1–3: exactly max_bad_steps
        // consecutive bad steps, so the machine must skip, skip, skip,
        // then roll back — in that order.
        trainer.set_chaos(retia_analyze::ChaosPlan::parse("grad-nan@1-3").unwrap());
        let idx = *ctx.train_idx.last().unwrap();
        for _ in 0..8 {
            trainer.try_train_step(&ctx, idx).unwrap();
        }
        retia_obs::remove_sink(id);

        let names: Vec<String> = handle
            .events()
            .into_iter()
            .filter(|e| e.thread == me && e.name.starts_with("recovery."))
            .map(|e| e.name)
            .collect();
        assert_eq!(
            names,
            ["recovery.skip", "recovery.skip", "recovery.skip", "recovery.rollback"],
            "recovery decisions out of order"
        );
        // The poisoned gradients must never have reached the parameters.
        for (name, t) in trainer.model.store().iter() {
            assert_eq!(
                retia_obs::watchdog::count_non_finite(t.data()),
                0,
                "parameter `{name}` was poisoned despite recovery"
            );
        }
        // Learning rate was backed off exactly once.
        assert!((trainer.opt.lr - trainer.cfg.lr * 0.5).abs() < 1e-12);
    }

    #[test]
    fn exhausted_recovery_budget_returns_diverged() {
        let (mut trainer, ctx) = tiny_setup(1);
        trainer.set_recovery(Some(RecoveryPolicy {
            max_bad_steps: 1,
            max_rollbacks: 2,
            ..Default::default()
        }));
        // Every step poisoned: each bad step rolls back immediately, so the
        // budget of 2 rollbacks dies on the third bad step.
        trainer.set_chaos(retia_analyze::ChaosPlan::parse("grad-inf@0-99").unwrap());
        let idx = *ctx.train_idx.last().unwrap();
        let mut last = None;
        for _ in 0..10 {
            match trainer.try_train_step(&ctx, idx) {
                Ok(_) => continue,
                Err(e) => {
                    last = Some(e);
                    break;
                }
            }
        }
        match last {
            Some(TrainError::Diverged(report)) => {
                assert_eq!(report.rollbacks, 2);
                assert!(report.final_lr < trainer.cfg.lr, "lr was never backed off");
                let msg = report.to_string();
                assert!(msg.contains("rollback") && msg.contains("learning rate"), "{msg}");
            }
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    #[test]
    fn unprotected_run_is_poisoned_where_recovery_survives() {
        let plan = retia_analyze::ChaosPlan::parse("grad-nan@0-2").unwrap();

        // A: no recovery — the legacy path steps the optimizer on NaN
        // gradients and the parameters rot.
        let (mut unprotected, ctx) = tiny_setup(1);
        unprotected.set_chaos(plan.clone());
        let idx = *ctx.train_idx.last().unwrap();
        for _ in 0..3 {
            let _ = unprotected.try_train_step(&ctx, idx).unwrap();
        }
        let poisoned = unprotected
            .model
            .store()
            .iter()
            .any(|(_, t)| retia_obs::watchdog::count_non_finite(t.data()) > 0);
        assert!(poisoned, "chaos plan failed to poison the unprotected run");

        // B: same faults, recovery on — every parameter stays finite.
        let (mut protected, ctx) = tiny_setup(1);
        protected.set_recovery(Some(RecoveryPolicy::default()));
        protected.set_chaos(plan);
        let idx = *ctx.train_idx.last().unwrap();
        for _ in 0..6 {
            protected.try_train_step(&ctx, idx).unwrap();
        }
        for (name, t) in protected.model.store().iter() {
            assert_eq!(
                retia_obs::watchdog::count_non_finite(t.data()),
                0,
                "parameter `{name}` poisoned despite recovery"
            );
        }
    }

    #[test]
    fn early_stopping_restores_best_params() {
        let ds = SyntheticConfig::tiny(9).generate();
        let ctx = TkgContext::new(&ds);
        let cfg = RetiaConfig {
            dim: 8,
            channels: 4,
            k: 2,
            epochs: 3,
            patience: 1,
            online: false,
            ..Default::default()
        };
        let model = Retia::new(&cfg, &ds);
        let mut trainer = Trainer::new(model, cfg);
        trainer.fit(&ctx);
        // After fit with patience, the restored parameters reproduce the best
        // validation MRR observed during training.
        let report = trainer.evaluate_offline(&ctx, Split::Valid);
        assert!(report.entity_raw.mrr() > 0.0);
    }
}
