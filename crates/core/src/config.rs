//! Model and training configuration, including every ablation switch the
//! paper's experiment section exercises.

use retia_json::Value;

/// Depth of relation-representation modeling — the axis of Figures 6 and 7
/// ("wo. RM" / "w. MP" / "w. MP+LSTM" / "w. MP+LSTM+Agg"). The paper's full
/// model is [`RelationMode::MpLstmAgg`]; RE-GCN/TiRGN sit at
/// [`RelationMode::MpLstm`]. Removing the RAM (Table VI "wo. RAM") is
/// [`RelationMode::None`] — relations stay at their initial embeddings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RelationMode {
    /// Relations stay frozen at their random initialization — no gradient
    /// flows into them at all ("wo. RM" / "wo. RAM", matching the paper's
    /// ablation protocol of "keeping the initialized relation embeddings
    /// unchanged").
    None,
    /// Relations are a *learnable* static table with no temporal evolution
    /// (the RGCRN baseline's relation treatment).
    Static,
    /// Relations are replaced each step by the mean of their adjacent entity
    /// embeddings ("w. MP").
    Mp,
    /// Mean pooling plus LSTM evolution — the RE-GCN/TiRGN level
    /// ("w. MP+LSTM").
    MpLstm,
    /// Full RETIA: mean pooling, LSTM, then hyperrelation-subgraph
    /// aggregation through the RAM ("w. MP+LSTM+Agg").
    MpLstmAgg,
}

/// How hyperrelation embeddings entering the RAM are produced — the axis of
/// Figure 5 ("wo. HRM" / "w. HMP" / "w. HMP+HLSTM").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HyperrelMode {
    /// Initial hyperrelation embeddings, never updated ("wo. HRM").
    Init,
    /// Hyper mean pooling of adjacent relation embeddings ("w. HMP").
    Hmp,
    /// Hyper mean pooling plus hyper LSTM evolution — full RETIA
    /// ("w. HMP+HLSTM").
    HmpHlstm,
}

/// Full configuration of a RETIA model and its trainer.
#[derive(Clone, Debug)]
pub struct RetiaConfig {
    /// Embedding dimensionality `d` (the paper uses 200; the mini-scale
    /// harness uses 32).
    pub dim: usize,
    /// Historical sequence length `k` (paper: 3 for YAGO/WIKI, 4 for
    /// ICEWS18, 9 for ICEWS14/ICEWS05-15).
    pub k: usize,
    /// Conv-TransE kernel count (paper: 50; mini-scale: 16).
    pub channels: usize,
    /// Conv-TransE kernel width (paper: 3).
    pub ksize: usize,
    /// Dropout rate for R-GCN layers and decoders (paper: 0.2).
    pub dropout: f32,
    /// Number of R-GCN layers in the EAM and the RAM (paper: 2).
    pub rgcn_layers: usize,
    /// Basis count for the entity R-GCN's per-relation weights (the RAM's 8
    /// hyperrelation types always use independent weights).
    pub num_bases: usize,
    /// Entity-task weight `λ` of the joint loss (paper: 0.7).
    pub lambda: f32,
    /// Adam learning rate for general and online training (paper: 0.001).
    pub lr: f32,
    /// Global gradient-norm clip.
    pub grad_clip: f32,
    /// Maximum general-training epochs.
    pub epochs: usize,
    /// Early-stopping patience on validation entity MRR (paper: 5).
    pub patience: usize,
    /// Weight of the static-consistency constraint (the paper enables static
    /// graph constraints on the ICEWS datasets; 0 disables).
    pub static_weight: f32,
    /// Per-step angle increment (degrees) of the static-constraint threshold.
    pub static_angle_deg: f32,
    /// Twin-interact module on/off (Table IX, Figures 3–4).
    pub use_tim: bool,
    /// Entity aggregation module on/off (Table VI "wo. EAM").
    pub use_eam: bool,
    /// Relation modeling depth (Figures 6–7; Table VI "wo. RAM" = `None`).
    pub relation_mode: RelationMode,
    /// Hyperrelation modeling depth (Figure 5).
    pub hyperrel_mode: HyperrelMode,
    /// Online continual training during evaluation (the time-variability
    /// strategy of Figure 8; the paper's headline numbers use it).
    pub online: bool,
    /// Number of gradient steps per newly observed timestamp in online mode.
    pub online_steps: usize,
    /// L2-normalize evolved entity embeddings (RE-GCN-style).
    pub normalize_entities: bool,
    /// Seed for parameter init and stochastic ops.
    pub seed: u64,
    /// Worker threads for the tensor/eval kernels. `0` defers to the
    /// `RETIA_NUM_THREADS` environment variable (falling back to the
    /// available parallelism). Any value produces bit-identical results —
    /// chunking is a function of shape, never of thread count.
    pub num_threads: usize,
}

impl Default for RetiaConfig {
    fn default() -> Self {
        RetiaConfig {
            dim: 32,
            k: 3,
            channels: 16,
            ksize: 3,
            dropout: 0.2,
            rgcn_layers: 2,
            num_bases: 4,
            lambda: 0.7,
            lr: 1e-3,
            grad_clip: 1.0,
            epochs: 20,
            patience: 5,
            static_weight: 0.0,
            static_angle_deg: 10.0,
            use_tim: true,
            use_eam: true,
            relation_mode: RelationMode::MpLstmAgg,
            hyperrel_mode: HyperrelMode::HmpHlstm,
            online: true,
            online_steps: 1,
            normalize_entities: true,
            seed: 42,
            num_threads: 0,
        }
    }
}

impl RetiaConfig {
    /// The paper's hyperparameters at full scale (`d = 200`, 50 kernels).
    /// Only used by documentation/examples — the mini-scale defaults train
    /// on CPU in reasonable time.
    pub fn paper_scale() -> Self {
        RetiaConfig { dim: 200, channels: 50, ..Default::default() }
    }

    /// Sanity-checks field ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.dim == 0 {
            return Err("dim must be positive".into());
        }
        if self.k == 0 {
            return Err("history length k must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.lambda) {
            return Err("lambda must be in [0, 1]".into());
        }
        if !(0.0..1.0).contains(&self.dropout) {
            return Err("dropout must be in [0, 1)".into());
        }
        if self.num_bases == 0 {
            return Err("num_bases must be positive".into());
        }
        if self.rgcn_layers == 0 {
            return Err("rgcn_layers must be positive".into());
        }
        Ok(())
    }

    /// Pretty JSON rendering of every field (the CLI's config sidecar
    /// format).
    pub fn to_json(&self) -> String {
        let mut o = Value::object();
        o.insert("dim", Value::from(self.dim));
        o.insert("k", Value::from(self.k));
        o.insert("channels", Value::from(self.channels));
        o.insert("ksize", Value::from(self.ksize));
        o.insert("dropout", Value::from(self.dropout));
        o.insert("rgcn_layers", Value::from(self.rgcn_layers));
        o.insert("num_bases", Value::from(self.num_bases));
        o.insert("lambda", Value::from(self.lambda));
        o.insert("lr", Value::from(self.lr));
        o.insert("grad_clip", Value::from(self.grad_clip));
        o.insert("epochs", Value::from(self.epochs));
        o.insert("patience", Value::from(self.patience));
        o.insert("static_weight", Value::from(self.static_weight));
        o.insert("static_angle_deg", Value::from(self.static_angle_deg));
        o.insert("use_tim", Value::from(self.use_tim));
        o.insert("use_eam", Value::from(self.use_eam));
        o.insert("relation_mode", Value::from(self.relation_mode.as_str()));
        o.insert("hyperrel_mode", Value::from(self.hyperrel_mode.as_str()));
        o.insert("online", Value::from(self.online));
        o.insert("online_steps", Value::from(self.online_steps));
        o.insert("normalize_entities", Value::from(self.normalize_entities));
        o.insert("seed", Value::from(self.seed));
        o.insert("num_threads", Value::from(self.num_threads));
        o.to_string_pretty()
    }

    /// Parses a JSON object produced by [`RetiaConfig::to_json`]. Absent
    /// fields keep their defaults (so sidecars written before a field was
    /// added still load); present fields with the wrong type are errors.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = retia_json::parse(text).map_err(|e| e.to_string())?;
        if !matches!(doc, Value::Object(_)) {
            return Err("config JSON must be an object".into());
        }
        let mut cfg = RetiaConfig::default();
        macro_rules! field {
            ($name:literal, $target:expr, $conv:ident, $ty:literal) => {
                if let Some(v) = doc.get($name) {
                    $target = v
                        .$conv()
                        .ok_or_else(|| format!(concat!($name, " must be ", $ty)))?
                        .try_into()
                        .map_err(|_| format!(concat!($name, " out of range")))?;
                }
            };
        }
        field!("dim", cfg.dim, as_u64, "a non-negative integer");
        field!("k", cfg.k, as_u64, "a non-negative integer");
        field!("channels", cfg.channels, as_u64, "a non-negative integer");
        field!("ksize", cfg.ksize, as_u64, "a non-negative integer");
        field!("dropout", cfg.dropout, as_f32, "a number");
        field!("rgcn_layers", cfg.rgcn_layers, as_u64, "a non-negative integer");
        field!("num_bases", cfg.num_bases, as_u64, "a non-negative integer");
        field!("lambda", cfg.lambda, as_f32, "a number");
        field!("lr", cfg.lr, as_f32, "a number");
        field!("grad_clip", cfg.grad_clip, as_f32, "a number");
        field!("epochs", cfg.epochs, as_u64, "a non-negative integer");
        field!("patience", cfg.patience, as_u64, "a non-negative integer");
        field!("static_weight", cfg.static_weight, as_f32, "a number");
        field!("static_angle_deg", cfg.static_angle_deg, as_f32, "a number");
        field!("use_tim", cfg.use_tim, as_bool, "a boolean");
        field!("use_eam", cfg.use_eam, as_bool, "a boolean");
        field!("online", cfg.online, as_bool, "a boolean");
        field!("online_steps", cfg.online_steps, as_u64, "a non-negative integer");
        field!("normalize_entities", cfg.normalize_entities, as_bool, "a boolean");
        field!("seed", cfg.seed, as_u64, "a non-negative integer");
        field!("num_threads", cfg.num_threads, as_u64, "a non-negative integer");
        if let Some(v) = doc.get("relation_mode") {
            let s = v.as_str().ok_or("relation_mode must be a string")?;
            cfg.relation_mode = s.parse()?;
        }
        if let Some(v) = doc.get("hyperrel_mode") {
            let s = v.as_str().ok_or("hyperrel_mode must be a string")?;
            cfg.hyperrel_mode = s.parse()?;
        }
        Ok(cfg)
    }
}

impl RelationMode {
    /// Snake-case identifier used in config JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            RelationMode::None => "none",
            RelationMode::Static => "static",
            RelationMode::Mp => "mp",
            RelationMode::MpLstm => "mp_lstm",
            RelationMode::MpLstmAgg => "mp_lstm_agg",
        }
    }
}

impl std::str::FromStr for RelationMode {
    type Err = String;

    /// Inverse of [`RelationMode::as_str`].
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "none" => Ok(RelationMode::None),
            "static" => Ok(RelationMode::Static),
            "mp" => Ok(RelationMode::Mp),
            "mp_lstm" => Ok(RelationMode::MpLstm),
            "mp_lstm_agg" => Ok(RelationMode::MpLstmAgg),
            _ => Err(format!("unknown relation_mode `{s}`")),
        }
    }
}

impl HyperrelMode {
    /// Snake-case identifier used in config JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            HyperrelMode::Init => "init",
            HyperrelMode::Hmp => "hmp",
            HyperrelMode::HmpHlstm => "hmp_hlstm",
        }
    }
}

impl std::str::FromStr for HyperrelMode {
    type Err = String;

    /// Inverse of [`HyperrelMode::as_str`].
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "init" => Ok(HyperrelMode::Init),
            "hmp" => Ok(HyperrelMode::Hmp),
            "hmp_hlstm" => Ok(HyperrelMode::HmpHlstm),
            _ => Err(format!("unknown hyperrel_mode `{s}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        RetiaConfig::default().validate().unwrap();
        RetiaConfig::paper_scale().validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_fields() {
        for f in [
            |c: &mut RetiaConfig| c.dim = 0,
            |c: &mut RetiaConfig| c.k = 0,
            |c: &mut RetiaConfig| c.lambda = 1.5,
            |c: &mut RetiaConfig| c.dropout = 1.0,
            |c: &mut RetiaConfig| c.num_bases = 0,
            |c: &mut RetiaConfig| c.rgcn_layers = 0,
        ] {
            let mut c = RetiaConfig::default();
            f(&mut c);
            assert!(c.validate().is_err());
        }
    }

    #[test]
    fn json_roundtrip_preserves_every_field() {
        let mut c = RetiaConfig::paper_scale();
        c.relation_mode = RelationMode::Mp;
        c.hyperrel_mode = HyperrelMode::Hmp;
        c.online = false;
        c.lr = 5e-4;
        c.seed = 123;
        c.num_threads = 4;
        let back = RetiaConfig::from_json(&c.to_json()).unwrap();
        assert_eq!(format!("{c:?}"), format!("{back:?}"));
    }

    #[test]
    fn json_absent_fields_fall_back_to_defaults() {
        let c = RetiaConfig::from_json(r#"{"dim": 64, "seed": 7}"#).unwrap();
        assert_eq!(c.dim, 64);
        assert_eq!(c.seed, 7);
        assert_eq!(c.k, RetiaConfig::default().k);
        assert_eq!(c.relation_mode, RelationMode::MpLstmAgg);
    }

    #[test]
    fn json_rejects_bad_values() {
        assert!(RetiaConfig::from_json("[1]").is_err());
        assert!(RetiaConfig::from_json(r#"{"dim": "big"}"#).is_err());
        assert!(RetiaConfig::from_json(r#"{"relation_mode": "psychic"}"#).is_err());
        assert!(RetiaConfig::from_json("{").is_err());
    }

    #[test]
    fn paper_scale_uses_paper_dims() {
        let c = RetiaConfig::paper_scale();
        assert_eq!(c.dim, 200);
        assert_eq!(c.channels, 50);
        assert_eq!(c.ksize, 3);
        assert_eq!(c.lambda, 0.7);
    }
}
