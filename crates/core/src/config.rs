//! Model and training configuration, including every ablation switch the
//! paper's experiment section exercises.

use serde::{Deserialize, Serialize};

/// Depth of relation-representation modeling — the axis of Figures 6 and 7
/// ("wo. RM" / "w. MP" / "w. MP+LSTM" / "w. MP+LSTM+Agg"). The paper's full
/// model is [`RelationMode::MpLstmAgg`]; RE-GCN/TiRGN sit at
/// [`RelationMode::MpLstm`]. Removing the RAM (Table VI "wo. RAM") is
/// [`RelationMode::None`] — relations stay at their initial embeddings.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RelationMode {
    /// Relations stay frozen at their random initialization — no gradient
    /// flows into them at all ("wo. RM" / "wo. RAM", matching the paper's
    /// ablation protocol of "keeping the initialized relation embeddings
    /// unchanged").
    None,
    /// Relations are a *learnable* static table with no temporal evolution
    /// (the RGCRN baseline's relation treatment).
    Static,
    /// Relations are replaced each step by the mean of their adjacent entity
    /// embeddings ("w. MP").
    Mp,
    /// Mean pooling plus LSTM evolution — the RE-GCN/TiRGN level
    /// ("w. MP+LSTM").
    MpLstm,
    /// Full RETIA: mean pooling, LSTM, then hyperrelation-subgraph
    /// aggregation through the RAM ("w. MP+LSTM+Agg").
    MpLstmAgg,
}

/// How hyperrelation embeddings entering the RAM are produced — the axis of
/// Figure 5 ("wo. HRM" / "w. HMP" / "w. HMP+HLSTM").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum HyperrelMode {
    /// Initial hyperrelation embeddings, never updated ("wo. HRM").
    Init,
    /// Hyper mean pooling of adjacent relation embeddings ("w. HMP").
    Hmp,
    /// Hyper mean pooling plus hyper LSTM evolution — full RETIA
    /// ("w. HMP+HLSTM").
    HmpHlstm,
}

/// Full configuration of a RETIA model and its trainer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RetiaConfig {
    /// Embedding dimensionality `d` (the paper uses 200; the mini-scale
    /// harness uses 32).
    pub dim: usize,
    /// Historical sequence length `k` (paper: 3 for YAGO/WIKI, 4 for
    /// ICEWS18, 9 for ICEWS14/ICEWS05-15).
    pub k: usize,
    /// Conv-TransE kernel count (paper: 50; mini-scale: 16).
    pub channels: usize,
    /// Conv-TransE kernel width (paper: 3).
    pub ksize: usize,
    /// Dropout rate for R-GCN layers and decoders (paper: 0.2).
    pub dropout: f32,
    /// Number of R-GCN layers in the EAM and the RAM (paper: 2).
    pub rgcn_layers: usize,
    /// Basis count for the entity R-GCN's per-relation weights (the RAM's 8
    /// hyperrelation types always use independent weights).
    pub num_bases: usize,
    /// Entity-task weight `λ` of the joint loss (paper: 0.7).
    pub lambda: f32,
    /// Adam learning rate for general and online training (paper: 0.001).
    pub lr: f32,
    /// Global gradient-norm clip.
    pub grad_clip: f32,
    /// Maximum general-training epochs.
    pub epochs: usize,
    /// Early-stopping patience on validation entity MRR (paper: 5).
    pub patience: usize,
    /// Weight of the static-consistency constraint (the paper enables static
    /// graph constraints on the ICEWS datasets; 0 disables).
    pub static_weight: f32,
    /// Per-step angle increment (degrees) of the static-constraint threshold.
    pub static_angle_deg: f32,
    /// Twin-interact module on/off (Table IX, Figures 3–4).
    pub use_tim: bool,
    /// Entity aggregation module on/off (Table VI "wo. EAM").
    pub use_eam: bool,
    /// Relation modeling depth (Figures 6–7; Table VI "wo. RAM" = `None`).
    pub relation_mode: RelationMode,
    /// Hyperrelation modeling depth (Figure 5).
    pub hyperrel_mode: HyperrelMode,
    /// Online continual training during evaluation (the time-variability
    /// strategy of Figure 8; the paper's headline numbers use it).
    pub online: bool,
    /// Number of gradient steps per newly observed timestamp in online mode.
    pub online_steps: usize,
    /// L2-normalize evolved entity embeddings (RE-GCN-style).
    pub normalize_entities: bool,
    /// Seed for parameter init and stochastic ops.
    pub seed: u64,
}

impl Default for RetiaConfig {
    fn default() -> Self {
        RetiaConfig {
            dim: 32,
            k: 3,
            channels: 16,
            ksize: 3,
            dropout: 0.2,
            rgcn_layers: 2,
            num_bases: 4,
            lambda: 0.7,
            lr: 1e-3,
            grad_clip: 1.0,
            epochs: 20,
            patience: 5,
            static_weight: 0.0,
            static_angle_deg: 10.0,
            use_tim: true,
            use_eam: true,
            relation_mode: RelationMode::MpLstmAgg,
            hyperrel_mode: HyperrelMode::HmpHlstm,
            online: true,
            online_steps: 1,
            normalize_entities: true,
            seed: 42,
        }
    }
}

impl RetiaConfig {
    /// The paper's hyperparameters at full scale (`d = 200`, 50 kernels).
    /// Only used by documentation/examples — the mini-scale defaults train
    /// on CPU in reasonable time.
    pub fn paper_scale() -> Self {
        RetiaConfig { dim: 200, channels: 50, ..Default::default() }
    }

    /// Sanity-checks field ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.dim == 0 {
            return Err("dim must be positive".into());
        }
        if self.k == 0 {
            return Err("history length k must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.lambda) {
            return Err("lambda must be in [0, 1]".into());
        }
        if !(0.0..1.0).contains(&self.dropout) {
            return Err("dropout must be in [0, 1)".into());
        }
        if self.num_bases == 0 {
            return Err("num_bases must be positive".into());
        }
        if self.rgcn_layers == 0 {
            return Err("rgcn_layers must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        RetiaConfig::default().validate().unwrap();
        RetiaConfig::paper_scale().validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_fields() {
        for f in [
            |c: &mut RetiaConfig| c.dim = 0,
            |c: &mut RetiaConfig| c.k = 0,
            |c: &mut RetiaConfig| c.lambda = 1.5,
            |c: &mut RetiaConfig| c.dropout = 1.0,
            |c: &mut RetiaConfig| c.num_bases = 0,
            |c: &mut RetiaConfig| c.rgcn_layers = 0,
        ] {
            let mut c = RetiaConfig::default();
            f(&mut c);
            assert!(c.validate().is_err());
        }
    }

    #[test]
    fn paper_scale_uses_paper_dims() {
        let c = RetiaConfig::paper_scale();
        assert_eq!(c.dim, 200);
        assert_eq!(c.channels, 50);
        assert_eq!(c.ksize, 3);
        assert_eq!(c.lambda, 0.7);
    }
}
